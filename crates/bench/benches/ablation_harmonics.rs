//! Ablation: how the warped-axis harmonic count `M` affects envelope cost
//! (accuracy saturates quickly for the near-sinusoidal VCO; cost grows as
//! the bordered Jacobian is O((n·(2M+1))³) per Newton iteration).

use circuitdae::circuits::MemsVcoConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wampde_bench::{run_envelope, unforced_orbit};

fn bench(c: &mut Criterion) {
    let orbit = unforced_orbit();
    let mut g = c.benchmark_group("ablation_harmonics");
    g.sample_size(10);

    for m in [4usize, 6, 8, 10, 12] {
        g.bench_function(format!("vacuum_envelope_20us_M{m}"), |b| {
            b.iter(|| {
                let run = run_envelope(MemsVcoConfig::paper_vacuum(), &orbit, black_box(20e-6), m);
                black_box(run.env.stats.steps)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
