//! Ablation: Backward Euler vs Trapezoidal along the slow axis.
//!
//! BE is the default: the envelope system is a semi-explicit DAE whose
//! algebraic frequency unknown rings under the trapezoidal rule at coarse
//! steps (see `wampde::T2Integrator` docs). This bench quantifies the
//! cost side; the repro binary's figure 10 run shows the accuracy side.

use circuitdae::circuits::{self, MemsVcoConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wampde::{solve_envelope, T2Integrator, T2StepControl, WampdeInit, WampdeOptions};
use wampde_bench::unforced_orbit;

fn bench(c: &mut Criterion) {
    let orbit = unforced_orbit();
    let dae = circuits::mems_vco(MemsVcoConfig::paper_air());

    let mut g = c.benchmark_group("ablation_integrator");
    g.sample_size(10);

    for (name, integ) in [
        ("backward_euler", T2Integrator::BackwardEuler),
        ("trapezoidal", T2Integrator::Trapezoidal),
    ] {
        g.bench_function(format!("air_envelope_500us_fixed_{name}"), |b| {
            let opts = WampdeOptions {
                harmonics: 8,
                integrator: integ,
                step: T2StepControl::Fixed(2e-6),
                ..Default::default()
            };
            let init = WampdeInit::from_orbit(&orbit, &opts);
            b.iter(|| {
                let env = solve_envelope(&dae, &init, black_box(5e-4), &opts)
                    .expect("fixed-step envelope");
                black_box(env.stats.newton_iters)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
