//! Ablation: dense LU vs sparse LU vs GMRES+ILU(0) on the WaMPDE step
//! Jacobian, as circuit size grows (LC VCO loaded with an RC ladder).
//!
//! This is the paper's "iterative linear techniques enable large systems"
//! point: dense LU is O((n·N0)³) per Newton iteration, the sparse paths
//! exploit the block structure.

use circuitdae::circuits;
use criterion::{criterion_group, criterion_main, Criterion};
use shooting::{oscillator_steady_state, ShootingOptions};
use std::hint::black_box;
use wampde::{solve_envelope, LinearSolverKind, T2StepControl, WampdeInit, WampdeOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_linear_solver");
    g.sample_size(10);

    for stages in [0usize, 8, 24] {
        let dae = circuits::ring_loaded_vco(stages);
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default())
            .expect("loaded VCO oscillates");
        let solvers = [
            ("dense", LinearSolverKind::Dense),
            ("sparse_lu", LinearSolverKind::SparseLu),
            (
                "gmres_ilu0",
                LinearSolverKind::GmresIlu0 {
                    restart: 60,
                    max_iters: 600,
                    rtol: 1e-10,
                },
            ),
        ];
        for (name, kind) in solvers {
            g.bench_function(format!("n{}_{name}", dae_dim(stages)), |b| {
                let opts = WampdeOptions {
                    harmonics: 5,
                    step: T2StepControl::Fixed(1e-6),
                    linear_solver: kind,
                    ..Default::default()
                };
                let init = WampdeInit::from_orbit(&orbit, &opts);
                b.iter(|| {
                    let env =
                        solve_envelope(&dae, &init, black_box(6e-6), &opts).expect("envelope step");
                    black_box(env.stats.newton_iterations)
                })
            });
        }
    }
    g.finish();
}

fn dae_dim(stages: usize) -> usize {
    2 + stages
}

criterion_group!(benches, bench);
criterion_main!(benches);
