//! Ablation: dense LU vs sparse LU vs GMRES+ILU(0) on the bordered
//! WaMPDE step Jacobian as circuit size grows (LC VCO loaded with an RC
//! ladder, stages ∈ {4, 32, 128}).
//!
//! This is the paper's "iterative linear techniques enable large systems"
//! point: dense LU is O((n·N0)³) per Newton iteration, the sparse paths
//! exploit the block structure. Each measurement is one factor + solve of
//! the step system via the shared `linsolve` layer — the unit of work
//! every Newton iteration pays. `repro --table linsolve` records the same
//! workload into `target/repro/BENCH_linsolve.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wampde::LinearSolverKind;
use wampde_bench::StepJacobian;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_linear_solver");
    g.sample_size(10);

    for stages in [4usize, 32, 128] {
        let jac = StepJacobian::build(stages, 5);
        let solvers = [
            ("dense", LinearSolverKind::Dense),
            ("sparse_lu", LinearSolverKind::SparseLu),
            ("gmres_ilu0", LinearSolverKind::gmres_default()),
        ];
        for (name, kind) in solvers {
            // Dense LU at n = 130 blocks (dim 1431) costs ~seconds per
            // factorisation; keep the sample small but still measure it —
            // the dense-vs-iterative gap at 128 stages *is* the result.
            g.bench_function(format!("dim{}_{name}", jac.dim()), |b| {
                b.iter(|| {
                    let x = jac.factor_solve(black_box(kind));
                    black_box(x[0])
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
