//! Ablation: the warped formulation vs the unwarped one on the same FM
//! problem. `OmegaMode::Frozen` degenerates the WaMPDE to an unwarped
//! MPDE applied to the autonomous VCO — the formulation the paper shows
//! cannot track FM. At identical discretisation the frozen run either
//! needs far more Newton work or fails; the free run cruises.

use circuitdae::circuits::{self, MemsVcoConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wampde::{solve_envelope, OmegaMode, T2StepControl, WampdeInit, WampdeOptions};
use wampde_bench::unforced_orbit;

fn bench(c: &mut Criterion) {
    let orbit = unforced_orbit();
    let dae = circuits::mems_vco(MemsVcoConfig::paper_vacuum());
    let f0 = orbit.frequency();

    let mut g = c.benchmark_group("ablation_mpde_vs_wampde");
    g.sample_size(10);

    let base = WampdeOptions {
        harmonics: 8,
        step: T2StepControl::Fixed(0.25e-6),
        ..Default::default()
    };

    g.bench_function("warped_free_omega_5us", |b| {
        let init = WampdeInit::from_orbit(&orbit, &base);
        b.iter(|| {
            let env = solve_envelope(&dae, &init, black_box(5e-6), &base).expect("free run");
            black_box(env.stats.newton_iters)
        })
    });

    g.bench_function("unwarped_frozen_omega_5us", |b| {
        let opts = WampdeOptions {
            omega_mode: OmegaMode::Frozen(f0),
            ..base
        };
        let init = WampdeInit::from_orbit(&orbit, &opts);
        b.iter(|| {
            // The frozen run may fail outright — count that as the cost of
            // the attempt (the point of the ablation).
            match solve_envelope(&dae, &init, black_box(5e-6), &opts) {
                Ok(env) => black_box(env.stats.newton_iters),
                Err(_) => black_box(usize::MAX),
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
