//! Figures 1–2: cost of representing the two-tone AM signal — univariate
//! sampling + linear reconstruction vs the 15×15 bivariate grid + path
//! evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_02_am");
    g.sample_size(20);

    g.bench_function("fig01_univariate_sample_and_reconstruct", |b| {
        b.iter(|| {
            let err = multitime::am::univariate_error(black_box(15), 500);
            black_box(err)
        })
    });

    g.bench_function("fig02_bivariate_sample_and_reconstruct", |b| {
        b.iter(|| {
            let err = multitime::am::bivariate_error(black_box(15), 500);
            black_box(err)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
