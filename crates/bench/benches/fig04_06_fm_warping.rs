//! Figures 4–6: representation cost of the FM signal — the unwarped
//! bivariate form needs a 9×129 grid for the accuracy a 9+9-sample warped
//! representation reaches.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_06_fm");
    g.sample_size(20);

    g.bench_function("fig05_unwarped_9x129", |b| {
        b.iter(|| black_box(multitime::fm::unwarped_grid_error(9, 129, 400)))
    });

    g.bench_function("fig06_warped_9_plus_9", |b| {
        b.iter(|| black_box(multitime::fm::warped_grid_error(9, 9, 400)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
