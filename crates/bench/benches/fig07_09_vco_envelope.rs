//! Figures 7–9: the vacuum-damped MEMS VCO — WaMPDE envelope vs adaptive
//! transient over one control period (40 µs ≈ 30 carrier cycles).

use circuitdae::circuits::MemsVcoConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wampde_bench::{run_envelope, run_transient_reference, unforced_orbit, univariate_x0};

fn bench(c: &mut Criterion) {
    let orbit = unforced_orbit();
    // Seed state shared by both methods.
    let seed_run = run_envelope(MemsVcoConfig::paper_vacuum(), &orbit, 2e-6, 9);
    let x0 = univariate_x0(&seed_run);

    let mut g = c.benchmark_group("fig07_09_vacuum_vco");
    g.sample_size(10);

    g.bench_function("wampde_envelope_40us", |b| {
        b.iter(|| {
            let run = run_envelope(MemsVcoConfig::paper_vacuum(), &orbit, black_box(40e-6), 9);
            black_box(run.env.stats.steps)
        })
    });

    g.bench_function("transient_adaptive_40us", |b| {
        b.iter(|| {
            let (tr, _) =
                run_transient_reference(MemsVcoConfig::paper_vacuum(), &x0, black_box(40e-6), 1e-6);
            black_box(tr.stats.steps)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
