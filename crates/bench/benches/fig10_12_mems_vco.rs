//! Figures 10–12: the air-damped (modified) VCO — WaMPDE envelope vs
//! fixed-step transient at the paper's 50/100 points per cycle, over one
//! control period (1 ms ≈ 750 carrier cycles).

use circuitdae::circuits::MemsVcoConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wampde_bench::{run_envelope, run_transient_fixed, unforced_orbit, univariate_x0};

fn bench(c: &mut Criterion) {
    let orbit = unforced_orbit();
    let seed_run = run_envelope(MemsVcoConfig::paper_air(), &orbit, 2e-6, 9);
    let x0 = univariate_x0(&seed_run);

    let mut g = c.benchmark_group("fig10_12_air_vco");
    g.sample_size(10);

    g.bench_function("wampde_envelope_1ms", |b| {
        b.iter(|| {
            let run = run_envelope(MemsVcoConfig::paper_air(), &orbit, black_box(1e-3), 9);
            black_box(run.env.stats.steps)
        })
    });

    for pts in [50usize, 100] {
        g.bench_function(format!("transient_{pts}pts_per_cycle_1ms"), |b| {
            b.iter(|| {
                let (tr, _) =
                    run_transient_fixed(MemsVcoConfig::paper_air(), &x0, black_box(1e-3), pts);
                black_box(tr.stats.steps)
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
