//! The headline claim: "WaMPDE-based simulation results in speedups of
//! two orders of magnitude over transient simulation" — measured as
//! WaMPDE envelope vs the comparable-accuracy transient (1000 points per
//! nominal cycle) on the air-damped VCO over one control period.

use circuitdae::circuits::MemsVcoConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wampde_bench::{run_envelope, run_transient_fixed, unforced_orbit, univariate_x0};

fn bench(c: &mut Criterion) {
    let orbit = unforced_orbit();
    let seed_run = run_envelope(MemsVcoConfig::paper_air(), &orbit, 2e-6, 9);
    let x0 = univariate_x0(&seed_run);

    let mut g = c.benchmark_group("speedup");
    g.sample_size(10);

    g.bench_function("wampde_air_1ms", |b| {
        b.iter(|| {
            let run = run_envelope(MemsVcoConfig::paper_air(), &orbit, black_box(1e-3), 9);
            black_box(run.env.stats.steps)
        })
    });

    g.bench_function("transient_1000pts_air_1ms", |b| {
        b.iter(|| {
            let (tr, _) =
                run_transient_fixed(MemsVcoConfig::paper_air(), &x0, black_box(1e-3), 1000);
            black_box(tr.stats.steps)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
