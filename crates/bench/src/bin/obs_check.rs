//! Dependency-free schema checker for `obskit` trace artifacts.
//!
//!     obs-check <trace.json> <metrics.jsonl> [--require-span NAME]...
//!               [--require-metric NAME]...
//!
//! Validates the two files a traced run produces (`wampde-cli --trace`)
//! against the documented schemas (`docs/OBSERVABILITY.md`):
//!
//! * `trace.json` — a Chrome `trace_event` document: one object with a
//!   `traceEvents` array of `"ph"`-tagged events (`M` metadata, `X`
//!   complete span, `i` instant), every `X` carrying non-negative
//!   `ts`/`dur` microsecond timestamps plus `span_id`/`parent_id`
//!   under `args`.
//! * `metrics.jsonl` — one JSON object per line, `kind` one of
//!   `counter` | `histogram` | `point`, each with its fixed field set.
//!
//! `--require-span NAME` additionally asserts at least one `X` event
//! with that name — CI uses it to prove the whole instrumented stack
//! (sweep → job → analysis → time-step → newton → factor, and under
//! the KLU backend factor.btf → factor.order) actually fired, not just
//! that the files parse. `--require-metric NAME` does the same for a
//! metrics row (e.g. the `lu.fill_ratio` histogram).
//!
//! Exit status 0 on success (one summary line), 1 on the first schema
//! violation (diagnostic on stderr). Parsing reuses `sweepkit`'s
//! dependency-free JSON reader, so the checker cannot drift from the
//! suite's own notion of valid JSON.

use std::collections::BTreeSet;
use sweepkit::{parse_json, Json};

fn fail(msg: &str) -> ! {
    eprintln!("obs-check: {msg}");
    std::process::exit(1);
}

fn num(v: &Json) -> Option<f64> {
    match v {
        Json::Num(x) => Some(*x),
        _ => None,
    }
}

/// A required numeric field that must also be finite and non-negative
/// (timestamps, durations, ids, counts).
fn nonneg(event: &Json, key: &str, what: &str) -> f64 {
    match event.get(key).and_then(num) {
        Some(x) if x.is_finite() && x >= 0.0 => x,
        Some(x) => fail(&format!(
            "{what}: field `{key}` = {x} is not a non-negative finite number"
        )),
        None => fail(&format!("{what}: missing numeric field `{key}`")),
    }
}

fn required_str<'a>(event: &'a Json, key: &str, what: &str) -> &'a str {
    match event.get(key).and_then(Json::as_str) {
        Some(s) => s,
        None => fail(&format!("{what}: missing string field `{key}`")),
    }
}

/// Checks one Chrome `trace_event` document; returns
/// (span-event count, instant-event count, distinct span names).
fn check_trace(text: &str) -> (usize, usize, BTreeSet<String>) {
    let doc = match parse_json(text) {
        Ok(v) => v,
        Err(e) => fail(&format!("trace.json is not valid JSON: {e}")),
    };
    let events = match doc.get("traceEvents").and_then(Json::as_arr) {
        Some(evs) => evs,
        None => fail("trace.json: missing `traceEvents` array"),
    };
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut names = BTreeSet::new();
    let mut ids = BTreeSet::new();
    // First pass: collect span ids so parent links can be validated
    // regardless of event order.
    for (i, ev) in events.iter().enumerate() {
        if ev.get("ph").and_then(Json::as_str) == Some("X") {
            let what = format!("trace.json event {i}");
            if let Some(args) = ev.get("args") {
                ids.insert(nonneg(args, "span_id", &what).to_bits());
            }
        }
    }
    for (i, ev) in events.iter().enumerate() {
        let what = format!("trace.json event {i}");
        let ph = required_str(ev, "ph", &what);
        match ph {
            "M" => {
                required_str(ev, "name", &what);
            }
            "X" => {
                spans += 1;
                names.insert(required_str(ev, "name", &what).to_string());
                nonneg(ev, "ts", &what);
                nonneg(ev, "dur", &what);
                nonneg(ev, "pid", &what);
                nonneg(ev, "tid", &what);
                let args = ev
                    .get("args")
                    .unwrap_or_else(|| fail(&format!("{what}: missing `args`")));
                let id = nonneg(args, "span_id", &what);
                if id < 1.0 {
                    fail(&format!(
                        "{what}: span_id {id} is below 1 (0 is the reserved invalid id)"
                    ));
                }
                // A root span has no parent_id; any present one must
                // resolve to a span in this same trace.
                if let Some(p) = args.get("parent_id") {
                    let parent = match num(p) {
                        Some(x) if x.is_finite() && x >= 1.0 => x,
                        _ => fail(&format!("{what}: malformed parent_id {p:?}")),
                    };
                    if !ids.contains(&parent.to_bits()) {
                        fail(&format!(
                            "{what}: parent_id {parent} names no span in this trace"
                        ));
                    }
                }
            }
            "i" => {
                instants += 1;
                required_str(ev, "name", &what);
                nonneg(ev, "ts", &what);
                required_str(ev, "s", &what);
            }
            other => fail(&format!("{what}: unknown phase `{other}`")),
        }
    }
    if spans == 0 {
        fail("trace.json: no `X` (complete span) events — the run was not instrumented");
    }
    (spans, instants, names)
}

/// Checks a metrics JSONL dump; returns (counter, histogram, point)
/// counts plus the distinct metric names.
fn check_metrics(text: &str) -> (usize, usize, usize, BTreeSet<String>) {
    let (mut counters, mut histograms, mut points) = (0usize, 0usize, 0usize);
    let mut names = BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let what = format!("metrics.jsonl line {}", lineno + 1);
        let row = match parse_json(line) {
            Ok(v @ Json::Obj(_)) => v,
            Ok(_) => fail(&format!("{what}: not a JSON object")),
            Err(e) => fail(&format!("{what}: {e}")),
        };
        names.insert(required_str(&row, "name", &what).to_string());
        match required_str(&row, "kind", &what) {
            "counter" => {
                counters += 1;
                let v = nonneg(&row, "value", &what);
                if v.fract() != 0.0 {
                    fail(&format!("{what}: counter value {v} is not an integer"));
                }
            }
            "histogram" => {
                histograms += 1;
                nonneg(&row, "count", &what);
                for key in ["sum", "min", "max"] {
                    if row.get(key).and_then(num).is_none() {
                        fail(&format!("{what}: missing numeric field `{key}`"));
                    }
                }
            }
            "point" => {
                points += 1;
                nonneg(&row, "t_us", &what);
                nonneg(&row, "tid", &what);
                match row.get("attrs") {
                    Some(Json::Obj(_)) => {}
                    _ => fail(&format!("{what}: missing `attrs` object")),
                }
            }
            other => fail(&format!("{what}: unknown kind `{other}`")),
        }
    }
    if counters == 0 {
        fail("metrics.jsonl: no counter rows — the run was not instrumented");
    }
    (counters, histograms, points, names)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut required: Vec<String> = Vec::new();
    let mut required_metrics: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--require-span" => {
                i += 1;
                match argv.get(i) {
                    Some(name) => required.push(name.clone()),
                    None => fail("--require-span needs a span name"),
                }
            }
            "--require-metric" => {
                i += 1;
                match argv.get(i) {
                    Some(name) => required_metrics.push(name.clone()),
                    None => fail("--require-metric needs a metric name"),
                }
            }
            flag if flag.starts_with("--") => fail(&format!("unknown flag `{flag}`")),
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: obs-check <trace.json> <metrics.jsonl> [--require-span NAME]... \
             [--require-metric NAME]..."
        );
        std::process::exit(2);
    }

    let trace_text = std::fs::read_to_string(&paths[0])
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", paths[0])));
    let metrics_text = std::fs::read_to_string(&paths[1])
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", paths[1])));

    let (spans, instants, names) = check_trace(&trace_text);
    let (counters, histograms, points, metric_names) = check_metrics(&metrics_text);
    for name in &required {
        if !names.contains(name) {
            fail(&format!(
                "trace.json: required span `{name}` never appears (saw: {})",
                names.iter().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    for name in &required_metrics {
        if !metric_names.contains(name) {
            fail(&format!(
                "metrics.jsonl: required metric `{name}` never appears (saw: {})",
                metric_names.iter().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    println!(
        "obs-check: ok — {spans} span(s) across {{{}}}, {instants} instant(s); \
         {counters} counter(s), {histograms} histogram(s), {points} point(s)",
        names.iter().cloned().collect::<Vec<_>>().join(", ")
    );
}
