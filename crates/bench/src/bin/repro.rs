//! Regenerates every figure and headline number of the paper.
//!
//! ```text
//! cargo run --release -p wampde_bench --bin repro            # everything
//! cargo run --release -p wampde_bench --bin repro -- --fig 7 # one figure
//! cargo run --release -p wampde_bench --bin repro -- --table speedup
//! cargo run --release -p wampde_bench --bin repro -- --list  # targets
//! ```
//!
//! CSV data lands in `target/repro/`; summaries print to stdout in the
//! form recorded in `EXPERIMENTS.md`. Unknown `--fig`/`--table` values
//! exit with the valid target list instead of running nothing.

use circuitdae::circuits::{self, MemsVcoConfig};
use multitime::{am, fm};
use sigproc::phase_error_trace;
use wampde_bench::out::{ascii_plot, repro_dir, write_csv, write_text_in};
use wampde_bench::{
    run_envelope, run_transient_fixed, run_transient_reference, unforced_orbit, univariate_x0,
    CyclicJacobian, StepJacobian,
};

/// Every runnable target: figure groups and named tables, with the
/// driver that produces them. The single source for `--list` and for
/// validating `--fig`/`--table` values.
const FIG_GROUPS: &[(&str, &[u32], &str)] = &[
    ("figs 1-3", &[1, 2, 3], "two-tone AM signal, bivariate grid"),
    (
        "figs 4-6",
        &[4, 5, 6],
        "FM signal, unwarped vs warped grids",
    ),
    ("figs 7-9", &[7, 8, 9], "vacuum MEMS VCO envelope + overlay"),
    (
        "figs 10-12",
        &[10, 11, 12],
        "air MEMS VCO envelope + phase error",
    ),
];
const TABLES: &[(&str, &str)] = &[
    (
        "samples",
        "accuracy-matched representation sizes (figs 1-3)",
    ),
    ("speedup", "wall-time/phase-error comparison (figs 10-12)"),
    (
        "linsolve",
        "linear-solver scaling on ring_loaded_vco (BENCH_linsolve.json)",
    ),
    (
        "timestep",
        "adaptive vs fixed slow-time stepping per solver (BENCH_timestep.json)",
    ),
    (
        "newton",
        "symbolic-reuse vs fresh factorisation per Newton iteration (BENCH_newton.json)",
    ),
    (
        "sweep",
        "warm-cache and batched-chain sweep throughput (BENCH_sweep.json)",
    ),
    (
        "obs",
        "instrumentation coverage + overhead on ring_scaling (BENCH_obs.json)",
    ),
];

fn print_targets() {
    println!("available targets:");
    for (label, figs, what) in FIG_GROUPS {
        let nums: Vec<String> = figs.iter().map(u32::to_string).collect();
        println!("  --fig {{{}}}  {label}: {what}", nums.join(","));
    }
    for (name, what) in TABLES {
        println!("  --table {name:<9} {what}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<u32> = Vec::new();
    let mut tables: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                i += 1;
                let fig = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fig requires a figure number (1-12)");
                    std::process::exit(2);
                });
                if !FIG_GROUPS.iter().any(|(_, fs, _)| fs.contains(&fig)) {
                    eprintln!("unknown figure {fig}");
                    print_targets();
                    std::process::exit(2);
                }
                figs.push(fig);
            }
            "--table" => {
                i += 1;
                let table = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--table requires a table name");
                    std::process::exit(2);
                });
                if !TABLES.iter().any(|(name, _)| *name == table) {
                    eprintln!("unknown table '{table}'");
                    print_targets();
                    std::process::exit(2);
                }
                tables.push(table);
            }
            "--list" => {
                print_targets();
                return;
            }
            "--all" => {}
            other => {
                eprintln!("unknown argument: {other}");
                print_targets();
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let all = figs.is_empty() && tables.is_empty();
    let want_fig = |n: u32| all || figs.contains(&n);
    let want_table = |name: &str| all || tables.iter().any(|t| t == name);

    if want_fig(1) || want_fig(2) || want_fig(3) || want_table("samples") {
        figures_1_to_3();
    }
    if want_fig(4) || want_fig(5) || want_fig(6) {
        figures_4_to_6();
    }
    if want_fig(7) || want_fig(8) || want_fig(9) {
        figures_7_to_9();
    }
    if want_fig(10) || want_fig(11) || want_fig(12) || want_table("speedup") {
        figures_10_to_12();
    }
    if want_table("linsolve") {
        table_linsolve();
    }
    if want_table("timestep") {
        table_timestep();
    }
    if want_table("newton") {
        table_newton();
    }
    if want_table("sweep") {
        table_sweep();
    }
    if want_table("obs") {
        table_obs();
    }
}

/// Builds the RC-ladder-loaded LC VCO as deck cards (the deck-level twin
/// of `circuitdae::circuits::ring_loaded_vco`).
fn ring_ladder_cards(stages: usize) -> String {
    let mut s = String::from(
        "C1  tank 0 4.503n\n\
         L1  tank 0 10u\n\
         GN1 tank 0 5m 1.667m\n",
    );
    let mut prev = "tank".to_string();
    for k in 0..stages {
        let node = format!("ld{k}");
        s.push_str(&format!("R{} {prev} {node} 10k\n", k + 2));
        s.push_str(&format!("C{} {node} 0 1p\n", k + 2));
        prev = node;
    }
    s
}

/// Deck-driven adaptive-vs-fixed step comparison for every slow-time
/// stepper, the machine-readable record of the shared `timekit` layer:
/// each solver runs the same deck once with LTE-adaptive stepping and
/// once with a tight fixed step, and must land on the same answer with
/// measurably fewer steps. Emits `target/repro/BENCH_timestep.json`.
fn table_timestep() {
    println!("=== table `timestep`: adaptive vs fixed slow-time stepping ===");
    println!("  solver   mode      integrator   steps  rejected   wall (ms)   rel dev");
    let mut records: Vec<String> = Vec::new();
    let mut record = |solver: &str,
                      mode: &str,
                      integrator: &str,
                      steps: usize,
                      rejected: usize,
                      wall_ns: u128,
                      rel_dev: f64| {
        println!(
            "  {solver:<8} {mode:<9} {integrator:<12} {steps:>5} {rejected:>9} {:>11.2}   {rel_dev:.2e}",
            wall_ns as f64 / 1e6
        );
        records.push(format!(
            "    {{\"solver\": \"{solver}\", \"mode\": \"{mode}\", \"integrator\": \
             \"{integrator}\", \"steps\": {steps}, \"rejected\": {rejected}, \
             \"wall_ns\": {wall_ns}, \"rel_dev\": {rel_dev:e}}}"
        ));
    };

    // --- WaMPDE envelope on the ring-loaded VCO (the acceptance
    // workload). The initial orbit excites a weakly damped settling
    // beat of ω(t2): adaptive BDF2 resolves it finely early and
    // coarsens as it decays, while an equal-accuracy fixed run must
    // keep the transient-resolving step for the whole horizon. ---
    {
        let cards = ring_ladder_cards(8);
        let run = |directive: &str| {
            let deck = circuitdae::parse_deck(&format!("{cards}{directive}\n"))
                .expect("timestep deck parses");
            let dae = deck.base_circuit().expect("timestep deck instantiates");
            let circuitdae::AnalysisSpec::Wampde(w) = &deck.analyses[0] else {
                unreachable!("deck has one .wampde directive")
            };
            let t0 = std::time::Instant::now();
            let env = wampde::run_wampde_spec(&dae, w).expect("wampde run converges");
            (env, w.integrator.label(), t0.elapsed().as_nanos())
        };
        let (env_a, integ, wall_a) = run(".wampde 40u harmonics=5 steps=256");
        // Equal-accuracy fixed baseline: the mean accepted step over the
        // adaptive run's first decile — the resolution the settling
        // transient demands, which a fixed-step user (not knowing where
        // the transient ends) must pay everywhere.
        let hs: Vec<f64> = env_a.t2.windows(2).map(|w| w[1] - w[0]).collect();
        let decile = (hs.len() / 10).max(1);
        let dt_fixed = hs[..decile].iter().sum::<f64>() / decile as f64;
        let (env_f, _, wall_f) = run(&format!(
            ".wampde 40u harmonics=5 steps=256 dt={dt_fixed:e}"
        ));
        let omega_a = *env_a.omega_hz.last().expect("nonempty envelope");
        let omega_f = *env_f.omega_hz.last().expect("nonempty envelope");
        let rel = (omega_a - omega_f).abs() / omega_f;
        assert!(
            rel < 5e-3,
            "adaptive settled omega {omega_a} deviates from fixed {omega_f}"
        );
        record(
            "wampde",
            "adaptive",
            integ,
            env_a.stats.steps,
            env_a.stats.rejected,
            wall_a,
            rel,
        );
        record(
            "wampde",
            "fixed",
            integ,
            env_f.stats.steps,
            env_f.stats.rejected,
            wall_f,
            0.0,
        );
        assert!(
            env_a.stats.steps + env_a.stats.rejected < env_f.stats.steps,
            "adaptive must take fewer t2 solves ({} + {} rejected vs {})",
            env_a.stats.steps,
            env_a.stats.rejected,
            env_f.stats.steps
        );
    }

    // --- Transient on a pulse-driven RC ladder: 1 µs edges separated
    // by long flats. Adaptive trapezoidal resolves the edges and
    // coasts across the flats; a fixed-step run must resolve the edges
    // everywhere. ---
    {
        let mut cards =
            String::from("V1 in 0 PULSE(0 1 1u 2m 1u 4m)\nR1 in ld0 1k\nC1 ld0 0 10n\n");
        for k in 0..3 {
            cards.push_str(&format!("R{} ld{k} ld{} 1k\n", k + 2, k + 1));
            cards.push_str(&format!("C{} ld{} 0 10n\n", k + 2, k + 1));
        }
        // One 1 µs rising edge at t = 0, then ~100 µs of RC settling and
        // a long flat: adaptive steps resolve the edge and settle, then
        // coast at dt_max; the fixed run pays edge resolution everywhere.
        let deck = circuitdae::parse_deck(
            &format!(
                "{cards}.tran 1m rtol=1e-6 atol=1e-9\n\
                 .tran 1m dt=0.25u\n"
            ), // 4 points across the 1 µs edge
        )
        .expect("tran timestep deck parses");
        let dae = deck.base_circuit().expect("deck instantiates");
        let mut finals = Vec::new();
        for spec in &deck.analyses {
            let circuitdae::AnalysisSpec::Tran(t) = spec else {
                unreachable!("deck has only .tran directives")
            };
            let mode = if t.dt > 0.0 { "fixed" } else { "adaptive" };
            let t0 = std::time::Instant::now();
            let res = transim::run_tran_spec(&dae, t).expect("transient converges");
            let wall = t0.elapsed().as_nanos();
            finals.push((
                mode,
                t.integrator.label(),
                res.stats.steps,
                res.stats.rejected,
                wall,
                res.last()[res.last().len() - 2], // deep ladder node
            ));
        }
        let v_fixed = finals.iter().find(|r| r.0 == "fixed").unwrap().5;
        let scale = v_fixed.abs().max(0.1);
        for (mode, integ, steps, rejected, wall, v) in &finals {
            let rel = (v - v_fixed).abs() / scale;
            assert!(rel < 1e-2, "{mode} final value {v} deviates from {v_fixed}");
            record("transim", mode, integ, *steps, *rejected, *wall, rel);
        }
        let adaptive = finals.iter().find(|r| r.0 == "adaptive").unwrap();
        let fixed = finals.iter().find(|r| r.0 == "fixed").unwrap();
        assert!(
            adaptive.2 + adaptive.3 < fixed.2,
            "adaptive must take fewer transient solves ({} + {} rejected vs {})",
            adaptive.2,
            adaptive.3,
            fixed.2
        );
    }

    // --- MPDE envelope on the AM-driven RC low-pass: fixed Backward
    // Euler vs rtol-triggered adaptive stepping. ---
    {
        let deck = circuitdae::parse_deck(
            "R1 out 0 1k\n\
             C1 out 0 1n\n\
             .mpde 1meg 2m amp=1m depth=0.5 fmod=1k rtol=1e-4 atol=1e-6\n\
             .mpde 1meg 2m amp=1m depth=0.5 fmod=1k dt=10u\n",
        )
        .expect("mpde timestep deck parses");
        let dae = deck.base_circuit().expect("deck instantiates");
        let mut finals = Vec::new();
        for spec in &deck.analyses {
            let circuitdae::AnalysisSpec::Mpde(m) = spec else {
                unreachable!("deck has only .mpde directives")
            };
            let mode = if m.rtol > 0.0 { "adaptive" } else { "fixed" };
            let t0 = std::time::Instant::now();
            let res = mpde::run_mpde_spec(&dae, m).expect("mpde run converges");
            let wall = t0.elapsed().as_nanos();
            // Peak demodulated envelope over the run: both modes see the
            // same quasi-static filter response.
            let peak = res
                .envelope_amplitude(0)
                .into_iter()
                .fold(0.0_f64, f64::max);
            finals.push((
                mode,
                m.integrator.label(),
                res.stats.steps,
                res.stats.rejected,
                wall,
                peak,
            ));
        }
        let peak_fixed = finals.iter().find(|r| r.0 == "fixed").unwrap().5;
        for (mode, integ, steps, rejected, wall, peak) in &finals {
            let rel = (peak - peak_fixed).abs() / peak_fixed;
            assert!(rel < 2e-2, "{mode} peak {peak} deviates from {peak_fixed}");
            record("mpde", mode, integ, *steps, *rejected, *wall, rel);
        }
        let adaptive = finals.iter().find(|r| r.0 == "adaptive").unwrap();
        let fixed = finals.iter().find(|r| r.0 == "fixed").unwrap();
        assert!(
            adaptive.2 + adaptive.3 < fixed.2,
            "adaptive must take fewer mpde solves ({} + {} rejected vs {})",
            adaptive.2,
            adaptive.3,
            fixed.2
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"timestep\",\n  \"workload\": \"deck-driven adaptive vs \
         fixed slow-time stepping (timekit controller), per solver\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        records.join(",\n")
    );
    let p = write_text_in(&repro_dir(), "BENCH_timestep.json", &json).expect("write json");
    println!("  -> {}", p.display());
}

/// Machine-readable record of the shared Newton layer
/// (`crates/newtonkit` + pattern-reusing `SparseLu` refactorisation):
///
/// * **kernel** — on the `ring_loaded_vco(128)` bordered step Jacobian
///   (dim 1431), times a fresh sparse-LU factorisation (symbolic DFS +
///   numeric) against the numeric-only refactorisation that every Newton
///   iteration after the first performs, asserts the reuse path is
///   faster *and* bitwise-identical, and records the speedup;
/// * **per-solver rows** — deck-driven runs (using the per-directive
///   `solver=sparselu` key) of transim/mpde/wampde with symbolic reuse
///   on and off: Newton iterations, factorisations, reuse counts, wall.
///
/// Emits `target/repro/BENCH_newton.json`.
fn table_newton() {
    use sparsekit::SparseLu;
    println!("=== table `newton`: pattern-reusing sparse refactorisation ===");
    let mut records: Vec<String> = Vec::new();

    // --- Kernel: fresh vs numeric-only refactorisation. ---
    let jac = StepJacobian::build(128, 5);
    let csc = jac.parts().assemble_triplets().to_csc();
    let reps = 7;
    let mut fresh_ns = u128::MAX;
    let mut lu = SparseLu::factor(&csc).expect("step jacobian factors");
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        lu = SparseLu::factor(&csc).expect("step jacobian factors");
        fresh_ns = fresh_ns.min(t0.elapsed().as_nanos());
    }
    let mut reuse_ns = u128::MAX;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        lu.refactor(&csc).expect("pattern unchanged");
        reuse_ns = reuse_ns.min(t0.elapsed().as_nanos());
    }
    // The refactorisation replays the fresh elimination bit for bit.
    let b = jac.rhs();
    let x_fresh = SparseLu::factor(&csc)
        .expect("step jacobian factors")
        .solve(&b[..csc.nrows()])
        .expect("solves");
    let x_reuse = lu.solve(&b[..csc.nrows()]).expect("solves");
    assert_eq!(
        x_fresh, x_reuse,
        "refactorisation must be bitwise-identical"
    );
    let speedup = fresh_ns as f64 / reuse_ns as f64;
    // The acceptance bar of the Newton-layer extraction: numeric-only
    // refactorisation beats fresh symbolic+numeric per iteration.
    assert!(
        speedup > 1.0,
        "symbolic reuse must beat fresh factorisation ({fresh_ns} ns vs {reuse_ns} ns)"
    );
    println!(
        "  kernel ring_loaded_vco(128), dim {}: fresh {:.2} ms, reuse {:.2} ms -> {speedup:.2}x",
        csc.nrows(),
        fresh_ns as f64 / 1e6,
        reuse_ns as f64 / 1e6
    );
    records.push(format!(
        "    {{\"row\": \"kernel\", \"workload\": \"ring_loaded_vco(128) step jacobian\", \
         \"dim\": {}, \"fresh_ns\": {fresh_ns}, \"reuse_ns\": {reuse_ns}, \
         \"speedup\": {speedup:.3}}}",
        csc.nrows()
    ));

    // --- Per-solver rows: reuse on vs off. ---
    println!("  solver   reuse  iterations  factorisations  reused   wall (ms)");
    let mut solver_row = |solver: &str,
                          reuse: bool,
                          iterations: usize,
                          factorisations: usize,
                          reused: usize,
                          wall_ns: u128| {
        println!(
            "  {solver:<8} {reuse:<6} {iterations:>10} {factorisations:>15} {reused:>7} {:>11.2}",
            wall_ns as f64 / 1e6
        );
        records.push(format!(
            "    {{\"row\": \"solver\", \"solver\": \"{solver}\", \"reuse\": {reuse}, \
             \"iterations\": {iterations}, \"factorisations\": {factorisations}, \
             \"symbolic_reuses\": {reused}, \"wall_ns\": {wall_ns}}}"
        ));
    };

    // transim: deck-driven (per-directive `solver=sparselu` key) pulse
    // transient on the ladder.
    {
        let cards = ring_ladder_cards(16);
        let deck = circuitdae::parse_deck(&format!("{cards}.tran 2u dt=10n solver=sparselu\n"))
            .expect("newton deck parses");
        let dae = deck.base_circuit().expect("newton deck instantiates");
        let circuitdae::AnalysisSpec::Tran(t) = &deck.analyses[0] else {
            unreachable!("deck has one .tran directive")
        };
        assert_eq!(
            t.solver,
            wampde::LinearSolverKind::SparseLu,
            "per-directive solver= key must reach the spec"
        );
        for reuse in [true, false] {
            let newton = transim::NewtonOptions {
                linear_solver: t.solver,
                reuse_symbolic: reuse,
                ..Default::default()
            };
            let x0 = transim::dc_operating_point(&dae, &newton).expect("dc");
            let t0 = std::time::Instant::now();
            let res = transim::run_transient(
                &dae,
                &x0,
                0.0,
                t.t_stop,
                &transim::TransientOptions {
                    integrator: t.integrator,
                    step: transim::StepControl::Fixed(t.dt),
                    newton,
                },
            )
            .expect("transient converges");
            let wall = t0.elapsed().as_nanos();
            if reuse {
                assert_eq!(
                    res.stats.symbolic_reuses,
                    res.stats.factorisations - 1,
                    "constant pattern: one symbolic analysis per run"
                );
            } else {
                assert_eq!(res.stats.symbolic_reuses, 0);
            }
            solver_row(
                "transim",
                reuse,
                res.stats.newton_iters,
                res.stats.factorisations,
                res.stats.symbolic_reuses,
                wall,
            );
        }
    }

    // mpde: AM envelope on the RC low-pass (deck-driven spec, solver=
    // pinned per directive).
    {
        let deck = circuitdae::parse_deck(
            "R1 out 0 1k\n\
             C1 out 0 1n\n\
             .mpde 1meg 2m amp=1m depth=0.5 fmod=1k dt=20u solver=sparselu\n",
        )
        .expect("mpde newton deck parses");
        let dae = deck.base_circuit().expect("deck instantiates");
        let circuitdae::AnalysisSpec::Mpde(m) = &deck.analyses[0] else {
            unreachable!("deck has one .mpde directive")
        };
        for reuse in [true, false] {
            let spec = *m;
            let t0 = std::time::Instant::now();
            // Route through the adapter for the reuse-on row (the
            // default policy), and through the API with the ablation
            // knob for the off row.
            let res = if reuse {
                mpde::run_mpde_spec(&dae, &spec).expect("mpde converges")
            } else {
                let forcing = mpde::AmForcing {
                    node: spec.node,
                    carrier_amplitude: spec.amplitude,
                    mod_depth: spec.mod_depth,
                    mod_freq_hz: spec.mod_freq_hz,
                };
                mpde::solve_envelope_mpde(
                    &dae,
                    &forcing,
                    spec.f1_hz,
                    spec.t_stop,
                    &mpde::MpdeOptions {
                        harmonics: spec.harmonics,
                        dt2: spec.dt,
                        linear_solver: spec.solver,
                        newton: transim::NewtonOptions {
                            reuse_symbolic: false,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                )
                .expect("mpde converges")
            };
            let wall = t0.elapsed().as_nanos();
            solver_row(
                "mpde",
                reuse,
                res.stats.newton_iters,
                res.stats.factorisations,
                res.stats.symbolic_reuses,
                wall,
            );
        }
    }

    // wampde: envelope of the ring-loaded VCO (orbit shot once, shared).
    {
        let dae = circuitdae::circuits::ring_loaded_vco(8);
        let orbit = shooting::oscillator_steady_state(
            &dae,
            &shooting::ShootingOptions {
                steps_per_period: 256,
                linear_solver: wampde::LinearSolverKind::SparseLu,
                ..Default::default()
            },
        )
        .expect("ring VCO oscillates");
        for reuse in [true, false] {
            let opts = wampde::WampdeOptions {
                harmonics: 5,
                step: wampde::T2StepControl::Fixed(2.0e-7),
                linear_solver: wampde::LinearSolverKind::SparseLu,
                newton: transim::NewtonOptions {
                    reuse_symbolic: reuse,
                    ..Default::default()
                },
                ..Default::default()
            };
            let init = wampde::WampdeInit::from_orbit(&orbit, &opts);
            let t0 = std::time::Instant::now();
            let env = wampde::solve_envelope(&dae, &init, 4.0e-6, &opts).expect("envelope");
            let wall = t0.elapsed().as_nanos();
            if reuse {
                assert!(
                    env.stats.symbolic_reuses > 0,
                    "envelope must reuse symbolic analysis: {:?}",
                    env.stats
                );
            } else {
                assert_eq!(env.stats.symbolic_reuses, 0);
            }
            solver_row(
                "wampde",
                reuse,
                env.stats.newton_iters,
                env.stats.factorisations,
                env.stats.symbolic_reuses,
                wall,
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"newton\",\n  \"workload\": \"pattern-reusing symbolic \
         refactorisation (newtonkit + SparseLu::refactor): kernel fresh-vs-reuse on \
         ring_loaded_vco(128), per-solver Newton counters with reuse on/off\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        records.join(",\n")
    );
    let p = write_text_in(&repro_dir(), "BENCH_newton.json", &json).expect("write json");
    println!("  -> {}", p.display());
}

/// Sweep-service throughput: the cache layer and the batched executor.
///
/// Part 1 — cold vs warm-cache on the committed `vco_sweep` deck
/// (8 jobs: shooting + WaMPDE envelope at 4 control voltages):
///
/// * **cold** — empty cache directory, every job computed by a solver
///   and stored;
/// * **warm** — identical rerun, every job answered from the cache.
///
/// Asserts the two outcomes render to byte-identical CSV (the cache
/// changes *when*, never *what*) and that the warm rerun is at least
/// 5× faster than the cold run.
///
/// Part 2 — batched continuation chains vs independent cold jobs on a
/// 32-point control-voltage grid of the RC-ladder-loaded VCO (KLU, so
/// chains also share one sparse symbolic analysis). Both runs use one
/// worker and no cache, so the ratio is pure solver work. Asserts the
/// batched run is at least 1.5× faster, that the mean Newton iteration
/// count per warm-started point is strictly below the cold-start mean,
/// and that every point's oscillation frequency agrees to 1e-6.
/// Emits `target/repro/BENCH_sweep.json`.
fn table_sweep() {
    use sweepkit::{run_deck_with, ResultCache, SweepConfig};
    println!("=== table `sweep`: cold vs warm-cache sweep on vco_sweep ===");
    let deck_text = include_str!("../../../../examples/decks/vco_sweep.ckt");
    let deck = circuitdae::parse_deck(deck_text).expect("vco_sweep deck parses");

    let cache_dir = repro_dir().join("sweep-cache-bench");
    std::fs::remove_dir_all(&cache_dir).ok();
    let config = SweepConfig {
        jobs: 2,
        cache: Some(ResultCache::open(&cache_dir).expect("open cache dir")),
        ..SweepConfig::default()
    };

    let t0 = std::time::Instant::now();
    let cold = run_deck_with(&deck, &config, None).expect("cold sweep converges");
    let cold_ns = t0.elapsed().as_nanos();
    let t0 = std::time::Instant::now();
    let warm = run_deck_with(&deck, &config, None).expect("warm sweep converges");
    let warm_ns = t0.elapsed().as_nanos();

    assert_eq!(cold.stats.cache_hits, 0, "cold run must start empty");
    assert_eq!(
        cold.stats.executed, cold.stats.jobs_total,
        "cold run computes everything"
    );
    assert_eq!(
        warm.stats.cache_hits, warm.stats.jobs_total,
        "warm run must be served entirely from the cache"
    );
    // The determinism invariant: the cache changes when the answer
    // arrives, never which answer — down to rendered artifact bytes.
    for ai in 0..cold.outcome.analysis_labels.len() {
        let (h, r) = cold.outcome.waveform_table(ai);
        let (hw, rw) = warm.outcome.waveform_table(ai);
        let h_refs: Vec<&str> = h.iter().map(String::as_str).collect();
        let hw_refs: Vec<&str> = hw.iter().map(String::as_str).collect();
        assert_eq!(
            wampde_bench::out::csv_string(&h_refs, &r).as_bytes(),
            wampde_bench::out::csv_string(&hw_refs, &rw).as_bytes(),
            "analysis {ai}: warm CSV differs from cold"
        );
    }

    let speedup = cold_ns as f64 / warm_ns as f64;
    println!(
        "  {} job(s): cold {:.1} ms, warm {:.2} ms -> {speedup:.0}x",
        cold.stats.jobs_total,
        cold_ns as f64 / 1e6,
        warm_ns as f64 / 1e6
    );
    // The acceptance bar of the cache layer. Solver jobs run for
    // hundreds of milliseconds; a cache hit is a file read, so 5x is a
    // conservative floor even on loaded CI machines.
    assert!(
        speedup >= 5.0,
        "warm-cache rerun must be at least 5x faster than cold \
         ({cold_ns} ns vs {warm_ns} ns = {speedup:.1}x)"
    );

    // --- Part 2: batched chains vs independent cold jobs. The varactor
    // card replaces the fixed tank capacitor so the ladder VCO gains a
    // control voltage to sweep; KLU exercises the shared-symbolic path.
    let chain_cards = ring_ladder_cards(16).replace(
        "C1  tank 0 4.503n",
        "M1  tank 0 5n 1 1e-12 3e-7 2.47 0.121 DC(1.5)",
    );
    let chain_deck = circuitdae::parse_deck(&format!(
        "{chain_cards}.options solver=klu\n.shooting steps=64\n.sweep M1.control 1.2 1.8 32\n"
    ))
    .expect("chain bench deck parses");
    let run_mode = |warm_start: bool| {
        let config = SweepConfig {
            jobs: 1,
            warm_start,
            ..SweepConfig::default()
        };
        let t0 = std::time::Instant::now();
        let run = run_deck_with(&chain_deck, &config, None).expect("chain bench converges");
        (run, t0.elapsed().as_nanos())
    };
    let (indep, indep_ns) = run_mode(false);
    let (batched, batched_ns) = run_mode(true);
    let metric = |run: &sweepkit::SweepRun, name: &str| -> Vec<f64> {
        run.outcome
            .runs
            .iter()
            .map(|rec| {
                rec.result
                    .metrics
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("{name} metric present"))
            })
            .collect()
    };
    for (cold_hz, warm_hz) in metric(&indep, "freq_hz")
        .iter()
        .zip(metric(&batched, "freq_hz"))
    {
        assert!(
            (cold_hz - warm_hz).abs() <= 1e-6 * cold_hz.abs(),
            "warm-started point drifted: {cold_hz} Hz vs {warm_hz} Hz"
        );
    }
    // The chain anchor (point 0) is computed cold either way; the warm
    // claim is about every continuation-seeded point after it.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let cold_mean = mean(&metric(&indep, "newton_iters")[1..]);
    let warm_mean = mean(&metric(&batched, "newton_iters")[1..]);
    let batched_speedup = indep_ns as f64 / batched_ns as f64;
    println!(
        "  {} point(s) batched: independent {:.0} ms, chained {:.0} ms -> {batched_speedup:.1}x \
         (newton iters/point {cold_mean:.0} -> {warm_mean:.0})",
        indep.stats.jobs_total,
        indep_ns as f64 / 1e6,
        batched_ns as f64 / 1e6
    );
    assert!(
        warm_mean < cold_mean,
        "warm-started points must average fewer Newton iterations than cold starts \
         ({warm_mean:.1} vs {cold_mean:.1})"
    );
    // The acceptance bar of the batched executor: skipping the DC +
    // kick + settle pipeline on 31 of 32 points dwarfs 1.5x, which is a
    // conservative floor even on loaded CI machines.
    assert!(
        batched_speedup >= 1.5,
        "batched chains must be at least 1.5x faster than independent jobs \
         ({indep_ns} ns vs {batched_ns} ns = {batched_speedup:.2}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"workload\": \"vco_sweep.ckt ({} jobs: \
         shooting + wampde at 4 control voltages), cold vs warm content-hashed \
         result cache; 32-point ladder-VCO control grid, independent vs batched \
         continuation chains\",\n  \"results\": [\n    {{\"mode\": \"cold\", \"wall_ns\": {cold_ns}, \
         \"executed\": {}, \"cache_hits\": {}}},\n    {{\"mode\": \"warm\", \
         \"wall_ns\": {warm_ns}, \"executed\": {}, \"cache_hits\": {}}},\n    \
         {{\"mode\": \"independent\", \"wall_ns\": {indep_ns}, \"executed\": {}, \
         \"mean_newton_iters\": {cold_mean:.3}}},\n    {{\"mode\": \"batched\", \
         \"wall_ns\": {batched_ns}, \"executed\": {}, \
         \"mean_newton_iters\": {warm_mean:.3}}}\n  ],\n  \
         \"speedup\": {speedup:.3},\n  \"batched_speedup\": {batched_speedup:.3}\n}}\n",
        cold.stats.jobs_total,
        cold.stats.executed,
        cold.stats.cache_hits,
        warm.stats.executed,
        warm.stats.cache_hits,
        indep.stats.executed,
        batched.stats.executed,
    );
    let p = write_text_in(&repro_dir(), "BENCH_sweep.json", &json).expect("write json");
    println!("  -> {}", p.display());
}

/// Instrumentation acceptance table: coverage and overhead.
///
/// One cold traced sweep of `ring_scaling.ckt` proves every level of
/// the span hierarchy and every metric family actually fires; repeated
/// warm (all-cache-hit) sweeps, traced vs untraced, bound the cost of
/// leaving the instrumentation hooks compiled in (<5%) and re-prove the
/// determinism invariant (identical artifact bytes either way). Emits
/// `target/repro/BENCH_obs.json`.
fn table_obs() {
    use std::sync::Arc;
    use sweepkit::{run_deck_with, ResultCache, SweepConfig};
    println!("=== table `obs`: instrumentation coverage + overhead on ring_scaling ===");
    let deck_text = include_str!("../../../../examples/decks/ring_scaling.ckt");
    let deck = circuitdae::parse_deck(deck_text).expect("ring_scaling deck parses");

    let cache_dir = repro_dir().join("obs-cache-bench");
    std::fs::remove_dir_all(&cache_dir).ok();
    let config = SweepConfig {
        jobs: 2,
        cache: Some(ResultCache::open(&cache_dir).expect("open cache dir")),
        ..SweepConfig::default()
    };

    // Cold traced run: populates the cache and must light up the whole
    // instrumented stack.
    let rec = Arc::new(obskit::CollectingRecorder::new());
    let t0 = std::time::Instant::now();
    let cold = {
        let _g = obskit::install(rec.clone() as Arc<dyn obskit::Recorder>);
        run_deck_with(&deck, &config, None).expect("cold sweep converges")
    };
    let cold_ns = t0.elapsed().as_nanos();
    assert_eq!(cold.stats.executed, cold.stats.jobs_total);
    let span_names: std::collections::BTreeSet<&'static str> =
        rec.spans().iter().map(|s| s.name).collect();
    for level in [
        "sweep",
        "job",
        "analysis",
        "time-step",
        "newton",
        "newton-iter",
        "factor",
        "solve",
        "shooting",
    ] {
        assert!(
            span_names.contains(level),
            "cold traced sweep recorded no `{level}` span (saw {span_names:?})"
        );
    }
    for counter in [
        "sweep.executed",
        "newton.solves",
        "newton.iters",
        "factor.fresh",
        "step.accepted",
    ] {
        assert!(
            rec.counter(counter) > 0,
            "cold traced sweep left counter `{counter}` at zero"
        );
    }
    let cold_spans = rec.spans().len();
    println!(
        "  cold traced: {} job(s), {cold_spans} span(s), {} Newton iteration(s) in {:.1} ms",
        cold.stats.jobs_total,
        rec.counter("newton.iters"),
        cold_ns as f64 / 1e6
    );

    // Warm overhead: min-of-N wall time, traced vs untraced,
    // interleaved so machine drift hits both modes equally. A warm
    // sweep is pure cache reads, so this is the worst case for relative
    // recorder cost.
    const REPS: usize = 9;
    let mut untraced_ns = u128::MAX;
    let mut traced_ns = u128::MAX;
    let mut last_untraced = None;
    let mut last_traced = None;
    for _ in 0..REPS {
        let t0 = std::time::Instant::now();
        let plain = run_deck_with(&deck, &config, None).expect("warm sweep converges");
        untraced_ns = untraced_ns.min(t0.elapsed().as_nanos());

        let warm_rec = Arc::new(obskit::CollectingRecorder::new());
        let t0 = std::time::Instant::now();
        let traced = {
            let _g = obskit::install(warm_rec.clone() as Arc<dyn obskit::Recorder>);
            run_deck_with(&deck, &config, None).expect("warm traced sweep converges")
        };
        traced_ns = traced_ns.min(t0.elapsed().as_nanos());

        assert_eq!(plain.stats.cache_hits, plain.stats.jobs_total);
        assert_eq!(
            warm_rec.counter("sweep.cache_hits"),
            traced.stats.jobs_total as u64,
            "traced warm sweep must count every cache hit"
        );
        last_untraced = Some(plain);
        last_traced = Some(traced);
    }
    let (plain, traced) = (last_untraced.unwrap(), last_traced.unwrap());

    // Determinism: tracing may never change a result bit.
    for ai in 0..plain.outcome.analysis_labels.len() {
        let (h, r) = plain.outcome.waveform_table(ai);
        let (ht, rt) = traced.outcome.waveform_table(ai);
        let h_refs: Vec<&str> = h.iter().map(String::as_str).collect();
        let ht_refs: Vec<&str> = ht.iter().map(String::as_str).collect();
        assert_eq!(
            wampde_bench::out::csv_string(&h_refs, &r).as_bytes(),
            wampde_bench::out::csv_string(&ht_refs, &rt).as_bytes(),
            "analysis {ai}: traced waveform CSV differs from untraced"
        );
    }

    let ratio = traced_ns as f64 / untraced_ns as f64;
    println!(
        "  warm x{REPS}: untraced {:.2} ms, traced {:.2} ms -> {:.1}% overhead",
        untraced_ns as f64 / 1e6,
        traced_ns as f64 / 1e6,
        (ratio - 1.0) * 100.0
    );
    // The acceptance bar: recording spans and counters on an
    // all-cache-hit sweep must cost under 5% wall time.
    assert!(
        ratio < 1.05,
        "tracing overhead {:.1}% exceeds the 5% budget \
         ({untraced_ns} ns untraced vs {traced_ns} ns traced)",
        (ratio - 1.0) * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"workload\": \"ring_scaling.ckt ({} jobs: \
         shooting + wampde at 2 couplings); cold traced sweep for coverage, \
         min-of-{REPS} warm sweeps for overhead\",\n  \"results\": [\n    \
         {{\"mode\": \"cold_traced\", \"wall_ns\": {cold_ns}, \"spans\": {cold_spans}, \
         \"newton_iters\": {}}},\n    \
         {{\"mode\": \"warm_untraced\", \"wall_ns\": {untraced_ns}}},\n    \
         {{\"mode\": \"warm_traced\", \"wall_ns\": {traced_ns}}}\n  ],\n  \
         \"overhead_ratio\": {ratio:.4},\n  \"budget_ratio\": 1.05\n}}\n",
        cold.stats.jobs_total,
        rec.counter("newton.iters"),
    );
    let p = write_text_in(&repro_dir(), "BENCH_obs.json", &json).expect("write json");
    println!("  -> {}", p.display());
}

/// Times one factor + solve of the bordered WaMPDE step Jacobian per
/// backend on `ring_loaded_vco` at stages {4, 32, 128} — plus a
/// sparse-only 1000-stage ladder rung — checks backend agreement, then
/// measures GMRES iteration counts on the quasiperiodic *cyclic* system
/// with the ILU(0) vs block-circulant preconditioners. Asserts the two
/// KLU headline claims (ordered sparse LU beats dense AND GMRES at 128
/// stages; circulant-preconditioned iterations stay flat in the slice
/// count) and emits `target/repro/BENCH_linsolve.json`. The 1000-stage
/// KLU row re-runs under per-solve core budgets of 1/2/4 threads (a
/// `threads` column), and the 128-slice circulant preconditioner setup
/// is timed at 1 vs 4 threads; the resulting `parallel_speedup` (>= 2x)
/// and `circulant_setup_speedup` (>= 1.5x) are asserted when the
/// machine has at least 4 hardware threads, and emitted either way.
fn table_linsolve() {
    println!("=== table `linsolve`: backend scaling on ring_loaded_vco ===");
    let solvers = [
        ("dense", wampde::LinearSolverKind::Dense),
        ("sparselu", wampde::LinearSolverKind::SparseLu),
        ("klu", wampde::LinearSolverKind::Klu),
        ("gmres", wampde::LinearSolverKind::gmres_default()),
    ];
    println!("  stages    dim   backend     wall (ns/solve)");
    let mut records: Vec<String> = Vec::new();
    let mut parallel_speedup: Option<f64> = None;
    for stages in [4usize, 32, 128, 1000] {
        let jac = StepJacobian::build(stages, 5);
        // The 1000-stage rung only runs the backend that stays feasible
        // at dim 11k: dense is O(dim³), *natural-order* sparse LU fills
        // toward dense on the bordered collocation structure, and
        // GMRES+ILU(0) stagnates short of its 1e-10 target (residual
        // ~8e-6 after 1000 iterations). All three collapses are already
        // measured on the 128-stage rung — they are exactly what the
        // ordered kernel exists to fix. The reference switches to KLU.
        let big = stages >= 1000;
        let reference = if big {
            jac.factor_solve(wampde::LinearSolverKind::Klu)
        } else {
            jac.factor_solve(wampde::LinearSolverKind::Dense)
        };
        let scale = reference.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        let mut wall_ns: std::collections::BTreeMap<&str, u128> = std::collections::BTreeMap::new();
        for (name, kind) in solvers {
            if big && name != "klu" {
                continue;
            }
            // Best-of-N wall time; N shrinks as the solve grows.
            let reps = if jac.dim() > 1000 { 2 } else { 5 };
            let mut best = u128::MAX;
            let mut x = Vec::new();
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                x = jac.factor_solve(kind);
                best = best.min(t0.elapsed().as_nanos());
            }
            // Every backend must solve the same system.
            let max_dev = x
                .iter()
                .zip(reference.iter())
                .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
            assert!(
                max_dev < 1e-6 * scale,
                "{name} deviates from reference by {max_dev:e} at {stages} stages"
            );
            wall_ns.insert(name, best);
            println!("  {stages:>6} {:>6}   {name:<10} {best:>14}", jac.dim());
            records.push(format!(
                "    {{\"backend\": \"{name}\", \"stages\": {stages}, \"dim\": {}, \
                 \"wall_ns\": {best}}}",
                jac.dim()
            ));
        }
        if big {
            // The parallel rung: the same 1000-stage KLU solve under an
            // explicit per-solve core budget of 1/2/4 threads. Installing
            // `CoreBudget::new(t, t)` on this (otherwise idle) thread makes
            // the ambient lease grant exactly `t` threads to the stamping
            // and BTF-block phases, independent of the machine's core
            // count, so the thread ladder is reproducible anywhere. Each
            // rung must stay bitwise identical to the serial reference.
            println!("  --- 1000-stage klu row under --solver-threads 1/2/4 ---");
            println!("  stages    dim   backend    threads  wall (ns/solve)");
            let mut wall_t: std::collections::BTreeMap<usize, u128> =
                std::collections::BTreeMap::new();
            for t in [1usize, 2, 4] {
                let budget = wampde::linsolve::CoreBudget::new(t, t);
                let _guard = budget.install();
                let mut best = u128::MAX;
                for _ in 0..3 {
                    let t0 = std::time::Instant::now();
                    let x = jac.factor_solve(wampde::LinearSolverKind::Klu);
                    best = best.min(t0.elapsed().as_nanos());
                    assert!(
                        x.iter()
                            .zip(reference.iter())
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "klu at {t} solver threads is not bitwise identical to serial"
                    );
                }
                wall_t.insert(t, best);
                println!(
                    "  {stages:>6} {:>6}   {:<10} {t:>7} {best:>16}",
                    jac.dim(),
                    "klu"
                );
                records.push(format!(
                    "    {{\"backend\": \"klu\", \"stages\": {stages}, \"dim\": {}, \
                     \"threads\": {t}, \"wall_ns\": {best}}}",
                    jac.dim()
                ));
            }
            parallel_speedup = Some(wall_t[&1] as f64 / wall_t[&4] as f64);
        }
        if stages == 128 {
            // The tentpole claim: the ordered, equilibrated sparse
            // kernel beats both the dense LU and the iterative backend
            // on the dim-1431 production Jacobian.
            let klu = wall_ns["klu"];
            assert!(
                klu < wall_ns["dense"] && klu < wall_ns["gmres"],
                "klu ({klu} ns) must beat dense ({} ns) and gmres ({} ns) at 128 stages",
                wall_ns["dense"],
                wall_ns["gmres"]
            );
        }
    }

    // GMRES iteration counts on the quasiperiodic cyclic system: the
    // block-circulant preconditioner must hold iterations flat as the
    // slice count n1 grows, where structure-blind ILU(0) degrades.
    println!("  --- cyclic system: GMRES iterations per preconditioner ---");
    println!("      n1    dim   ilu0   circulant");
    let mut circ_iters: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();
    for n1 in [16usize, 32, 64, 128] {
        let cyc = CyclicJacobian::build(n1);
        let circ = cyc
            .gmres_circulant_iterations()
            .expect("circulant-preconditioned GMRES converges");
        let ilu = cyc.gmres_ilu0_iterations();
        circ_iters.insert(n1, circ);
        let ilu_txt = ilu.map_or("fail".into(), |n| n.to_string());
        println!("  {n1:>6} {:>6} {ilu_txt:>6} {circ:>11}", cyc.dim());
        records.push(format!(
            "    {{\"precond_ablation\": true, \"n1\": {n1}, \"dim\": {}, \
             \"ilu0_iters\": {}, \"circulant_iters\": {circ}}}",
            cyc.dim(),
            ilu.map_or("null".into(), |n| n.to_string())
        ));
    }
    assert!(
        circ_iters[&128] <= 2 * circ_iters[&16].max(1),
        "circulant iterations must stay flat in n1: {} at 128 slices vs {} at 16",
        circ_iters[&128],
        circ_iters[&16]
    );

    // Parallel circulant setup: the per-DFT-mode dense LUs of the
    // block-circulant preconditioner factor independently, so building
    // the 128-slice preconditioner with 4 threads should cut setup wall
    // time. Timed directly (not via GMRES) to isolate the setup phase.
    println!("  --- circulant preconditioner setup: 128 slices, threads 1 vs 4 ---");
    let cyc = CyclicJacobian::build(128);
    let a = cyc.triplets().to_csr();
    let time_setup = |threads: usize| {
        let mut best = u128::MAX;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            let p =
                wampde::linsolve::BlockCirculantPrecond::from_csr_threads(&a, cyc.shape(), threads)
                    .expect("cyclic jacobian matches its declared shape");
            best = best.min(t0.elapsed().as_nanos());
            std::hint::black_box(&p);
        }
        best
    };
    let setup_1 = time_setup(1);
    let setup_4 = time_setup(4);
    let circulant_setup_speedup = setup_1 as f64 / setup_4 as f64;
    println!(
        "  setup wall: {setup_1} ns at 1 thread, {setup_4} ns at 4 \
         -> {circulant_setup_speedup:.2}x"
    );

    // The wall-clock targets only hold where 4 hardware threads exist;
    // on smaller machines the parallel rungs time-slice one core and the
    // ratios hover near 1.0, so the numbers are emitted but not enforced.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = parallel_speedup.expect("1000-stage rung always runs");
    let assertions = if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "1000-stage klu row at 4 threads must be >= 2x over serial, got {speedup:.2}x"
        );
        assert!(
            circulant_setup_speedup >= 1.5,
            "circulant setup at 4 threads must be >= 1.5x over serial, \
             got {circulant_setup_speedup:.2}x"
        );
        println!("  speedup assertions enforced ({cores} cores): klu {speedup:.2}x, circulant setup {circulant_setup_speedup:.2}x");
        "enforced"
    } else {
        println!(
            "  speedup assertions skipped: {cores} hardware thread(s) < 4 \
             (klu {speedup:.2}x, circulant setup {circulant_setup_speedup:.2}x measured)"
        );
        "skipped (<4 cores)"
    };

    let json = format!(
        "{{\n  \"bench\": \"linsolve\",\n  \"workload\": \"bordered WaMPDE step \
         Jacobian, harmonics=5, factor+solve; cyclic QP system, GMRES \
         preconditioner ablation\",\n  \"cores\": {cores},\n  \
         \"parallel_speedup\": {speedup:.4},\n  \
         \"circulant_setup_speedup\": {circulant_setup_speedup:.4},\n  \
         \"speedup_assertions\": \"{assertions}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        records.join(",\n")
    );
    let p = write_text_in(&repro_dir(), "BENCH_linsolve.json", &json).expect("write json");
    println!("  -> {}", p.display());
}

fn figures_1_to_3() {
    println!("=== Figures 1–3: two-tone AM signal ===");
    let (ts, ys) = am::sample_univariate(15);
    let rows: Vec<Vec<f64>> = ts
        .iter()
        .zip(ys.iter())
        .map(|(&t, &y)| vec![t, y])
        .collect();
    let p = write_csv("fig01_univariate.csv", &["t", "y"], &rows);
    println!(
        "fig 1: {} univariate samples -> {}",
        rows.len(),
        p.display()
    );

    let grid = am::sample_bivariate(15);
    let mut rows = Vec::new();
    for j in 0..15 {
        for (i, &v) in grid.row(j).iter().enumerate() {
            rows.push(vec![i as f64 / 15.0 * am::T1, j as f64 / 15.0 * am::T2, v]);
        }
    }
    let p = write_csv("fig02_bivariate.csv", &["t1", "t2", "yhat"], &rows);
    println!(
        "fig 2: 15x15 = {} bivariate samples -> {}",
        grid.sample_count(),
        p.display()
    );

    println!(
        "fig 3: sawtooth-path reconstruction error = {:.3e}",
        am::bivariate_error(15, 4000)
    );

    println!("\ntable `samples` (accuracy-matched representation size):");
    println!("  rate separation   univariate   bivariate(15x15)");
    for ratio in [50.0_f64, 100.0, 500.0, 1000.0] {
        println!(
            "  {:>14}x   {:>10}   {:>16}",
            ratio,
            (15.0 * ratio) as usize,
            225
        );
    }
    println!("  (paper quotes 750 vs 225 at separation 50x)\n");
}

fn figures_4_to_6() {
    println!("=== Figures 4–6: FM signal and warping ===");
    // Figure 4: the FM waveform over ~70 µs (as in the paper's plot).
    let rows: Vec<Vec<f64>> = (0..4000)
        .map(|k| {
            let t = k as f64 / 4000.0 * 7e-5;
            vec![t, fm::signal(t)]
        })
        .collect();
    let p = write_csv("fig04_fm_signal.csv", &["t", "x"], &rows);
    println!("fig 4: FM signal -> {}", p.display());

    // Figure 5: unwarped bivariate needs huge t2 grids.
    println!("fig 5: unwarped-representation reconstruction error vs t2 grid:");
    let mut rows = Vec::new();
    for n2 in [9usize, 17, 33, 65, 129, 257] {
        let err = fm::unwarped_grid_error(9, n2, 800);
        println!(
            "  9x{n2:<4} grid ({:>5} samples): max err {err:.3e}",
            9 * n2
        );
        rows.push(vec![n2 as f64, (9 * n2) as f64, err]);
    }
    let p = write_csv(
        "fig05_unwarped_error.csv",
        &["n2", "samples", "max_err"],
        &rows,
    );
    println!("  -> {}", p.display());

    // Figure 6: warped bivariate + warping function are tiny.
    let err = fm::warped_grid_error(9, 9, 800);
    println!("fig 6: warped representation (9 + 9 samples): max err {err:.3e}");
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|k| {
            let t = k as f64 / 200.0 / fm::F2;
            vec![t, fm::warping_phi(t), fm::instantaneous_frequency(t)]
        })
        .collect();
    let p = write_csv(
        "fig06_warping.csv",
        &["t", "phi_cycles", "inst_freq"],
        &rows,
    );
    println!("  warping function -> {}\n", p.display());
}

fn figures_7_to_9() {
    println!("=== Figures 7–9: vacuum-damped MEMS VCO ===");
    let orbit = unforced_orbit();
    println!("unforced frequency: {:.1} kHz", orbit.frequency() / 1e3);
    let t_end = 80e-6;
    let run = run_envelope(MemsVcoConfig::paper_vacuum(), &orbit, t_end, 9);

    // Figure 7: local frequency.
    let rows: Vec<Vec<f64>> = run
        .env
        .t2
        .iter()
        .zip(run.env.omega_hz.iter())
        .map(|(&t, &w)| vec![t, w])
        .collect();
    let p = write_csv("fig07_frequency.csv", &["t2", "omega_hz"], &rows);
    let (lo, hi) = run.env.frequency_range();
    println!(
        "fig 7: frequency range {:.3}-{:.3} MHz, swing factor {:.2} (paper: ~3) -> {}",
        lo / 1e6,
        hi / 1e6,
        hi / lo,
        p.display()
    );
    let xs: Vec<f64> = run.env.t2.clone();
    print!(
        "{}",
        ascii_plot("omega(t2) MHz", &xs, &run.env.omega_hz, 70, 12)
    );

    // Figure 8: bivariate surface.
    let (t1g, t2g, surface) = run.env.bivariate(circuits::idx::V_TANK);
    let mut rows = Vec::new();
    for (j, t2) in t2g.iter().enumerate().step_by(1 + t2g.len() / 60) {
        for (i, t1) in t1g.iter().enumerate() {
            rows.push(vec![*t1, *t2, surface[j][i]]);
        }
    }
    let p = write_csv("fig08_bivariate.csv", &["t1", "t2", "v"], &rows);
    let amps: Vec<f64> = surface
        .iter()
        .map(|r| {
            (r.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v))
                - r.iter().fold(f64::INFINITY, |m, v| m.min(*v)))
                / 2.0
        })
        .collect();
    println!(
        "fig 8: amplitude varies {:.2}-{:.2} V across the control sweep -> {}",
        amps.iter().fold(f64::INFINITY, |m, v| m.min(*v)),
        amps.iter().fold(0.0_f64, |m, v| m.max(*v)),
        p.display()
    );

    // Figure 9: overlay vs transient.
    let x0 = univariate_x0(&run);
    let (tr, tr_wall) = run_transient_reference(MemsVcoConfig::paper_vacuum(), &x0, t_end, 1e-8);
    let probes: Vec<f64> = (0..6000).map(|k| k as f64 / 6000.0 * t_end).collect();
    let wam = run.env.reconstruct(circuits::idx::V_TANK, &probes);
    let refv: Vec<f64> = probes
        .iter()
        .map(|&t| tr.sample(circuits::idx::V_TANK, t))
        .collect();
    let rows: Vec<Vec<f64>> = probes
        .iter()
        .zip(wam.iter().zip(refv.iter()))
        .map(|(&t, (&a, &b))| vec![t, a, b])
        .collect();
    let p = write_csv(
        "fig09_overlay.csv",
        &["t", "v_wampde", "v_transient"],
        &rows,
    );
    let err = sigproc::max_abs_error(&wam, &refv);
    let amp = refv.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    println!(
        "fig 9: max deviation {:.3} V on +-{:.2} V ({:.1}% of amplitude); wall {:.0} ms (WaMPDE) vs {:.0} ms (transient rtol 1e-8) -> {}\n",
        err,
        amp,
        100.0 * err / amp,
        run.wall.as_secs_f64() * 1e3,
        tr_wall.as_secs_f64() * 1e3,
        p.display()
    );
}

fn figures_10_to_12() {
    println!("=== Figures 10–12: air-damped MEMS VCO ===");
    let orbit = unforced_orbit();
    let t_end = 3e-3;
    let run = run_envelope(MemsVcoConfig::paper_air(), &orbit, t_end, 9);

    // Figure 10.
    let rows: Vec<Vec<f64>> = run
        .env
        .t2
        .iter()
        .zip(run.env.omega_hz.iter())
        .map(|(&t, &w)| vec![t, w])
        .collect();
    let p = write_csv("fig10_frequency.csv", &["t2", "omega_hz"], &rows);
    let (lo, hi) = run.env.frequency_range();
    println!(
        "fig 10: frequency range {:.3}-{:.3} MHz with settling (paper: ~0.75-1.25) -> {}",
        lo / 1e6,
        hi / 1e6,
        p.display()
    );
    print!(
        "{}",
        ascii_plot("omega(t2) MHz", &run.env.t2, &run.env.omega_hz, 70, 12)
    );

    // Figure 11.
    let (t1g, t2g, surface) = run.env.bivariate(circuits::idx::V_TANK);
    let mut rows = Vec::new();
    for (j, t2) in t2g.iter().enumerate().step_by(1 + t2g.len() / 60) {
        for (i, t1) in t1g.iter().enumerate() {
            rows.push(vec![*t1, *t2, surface[j][i]]);
        }
    }
    let p = write_csv("fig11_bivariate.csv", &["t1", "t2", "v"], &rows);
    let amps: Vec<f64> = surface
        .iter()
        .map(|r| {
            (r.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v))
                - r.iter().fold(f64::INFINITY, |m, v| m.min(*v)))
                / 2.0
        })
        .collect();
    println!(
        "fig 11: amplitude nearly constant: {:.3}-{:.3} V -> {}",
        amps.iter().fold(f64::INFINITY, |m, v| m.min(*v)),
        amps.iter().fold(0.0_f64, |m, v| m.max(*v)),
        p.display()
    );

    // Figure 12 + speedup table.
    println!("fig 12 / table `speedup`: phase error and wall time over 3 ms");
    let x0 = univariate_x0(&run);
    let (fine, fine_wall) = run_transient_fixed(MemsVcoConfig::paper_air(), &x0, t_end, 1000);

    let probes: Vec<f64> = (0..900_000).map(|k| k as f64 / 900_000.0 * t_end).collect();
    let wam = run.env.reconstruct(circuits::idx::V_TANK, &probes);
    let (tw, ew) = phase_error_trace(
        &fine.times,
        &fine.signal(circuits::idx::V_TANK),
        &probes,
        &wam,
    );

    let mut table_rows = Vec::new();
    let mut csv_rows: Vec<Vec<f64>> = Vec::new();
    for pts in [50usize, 100] {
        let (coarse, wall) = run_transient_fixed(MemsVcoConfig::paper_air(), &x0, t_end, pts);
        let (te, ee) = phase_error_trace(
            &fine.times,
            &fine.signal(circuits::idx::V_TANK),
            &coarse.times,
            &coarse.signal(circuits::idx::V_TANK),
        );
        let final_err = ee.last().copied().unwrap_or(0.0);
        table_rows.push((format!("transient {pts:>4} pts/cycle"), final_err, wall));
        for (t, e) in te.iter().zip(ee.iter()).step_by(200) {
            csv_rows.push(vec![pts as f64, *t, *e]);
        }
    }
    let wam_final = ew.last().copied().unwrap_or(0.0);
    for (t, e) in tw.iter().zip(ew.iter()).step_by(200) {
        csv_rows.push(vec![0.0, *t, *e]);
    }
    let p = write_csv(
        "fig12_phase_error.csv",
        &["pts_per_cycle_or_0_wampde", "t", "phase_err_cycles"],
        &csv_rows,
    );

    println!(
        "  method                      final phase err (cycles)   wall (s)   speedup vs 1000pts"
    );
    for (name, err, wall) in &table_rows {
        println!(
            "  {name:<27} {err:>24.2}  {:>9.2}   {:>8.1}x",
            wall.as_secs_f64(),
            fine_wall.as_secs_f64() / wall.as_secs_f64()
        );
    }
    println!(
        "  {:<27} {wam_final:>24.3}  {:>9.2}   {:>8.1}x",
        "WaMPDE (this work)",
        run.wall.as_secs_f64(),
        fine_wall.as_secs_f64() / run.wall.as_secs_f64()
    );
    println!(
        "  {:<27} {:>24} {:>10.2}   {:>8}",
        "transient 1000 pts/cycle",
        "(reference)",
        fine_wall.as_secs_f64(),
        "1.0x"
    );
    println!("  -> {}", p.display());
    println!(
        "\nheadline: WaMPDE is {:.0}x faster than the comparable-accuracy transient (paper: 'two orders of magnitude')",
        fine_wall.as_secs_f64() / run.wall.as_secs_f64()
    );
}
