//! `wampde-cli` — deck-driven, parallel, shardable experiment runs.
//!
//! ```text
//! wampde-cli <deck.ckt> [--jobs N] [--solver-threads M] [--out DIR]
//!            [--solver KIND] [--integrator SCHEME] [--rtol V] [--list]
//!            [--shards M] [--shard-index K]
//!            [--cache-dir DIR] [--no-cache] [--cache-max-bytes BYTES]
//!            [--no-warm-start] [--trace DIR] [--metrics]
//! wampde-cli merge <shard_manifest.json>... [--out DIR]
//! ```
//!
//! Loads a scenario deck (circuit cards + `.tran`/`.shooting`/`.mpde`/
//! `.wampde`/`.sweep` directives, see `docs/DECKS.md`), expands the
//! sweep grid, runs every (grid point × analysis) job on `N` worker
//! threads, and writes artifacts into `DIR` (default
//! `target/sweep/<deck stem>`):
//!
//! * `<stem>_<analysis>_summary.csv` — one metric row per grid point;
//! * `<stem>_<analysis>_waveforms.csv` — long-format waveform table;
//! * `<stem>_manifest.json` — parameters, grid, and artifact index;
//! * `<stem>_shard<K>of<M>.jsonl` — one JSON line per completed job,
//!   streamed in completion order while the sweep runs;
//! * `<stem>_shard<K>of<M>_manifest.json` — the shard's
//!   self-description, input to `merge`.
//!
//! With `--shards M --shard-index K` only the jobs with
//! `id % M == K` run and only the two shard artifacts are written; the
//! `merge` subcommand reassembles the aggregate CSV/JSON from any
//! complete set of shard manifests. Results are cached on disk
//! (`target/sweep-cache` unless `--cache-dir`/`--no-cache` says
//! otherwise), keyed by a content hash of the deck, grid point, and
//! every solver option, so an interrupted or repeated sweep recomputes
//! only missing jobs; `--cache-max-bytes` bounds the cache directory,
//! evicting least-recently-written entries. Jobs run as continuation
//! chains along the fastest-varying sweep axis — each grid point's
//! Newton solves seeded from its neighbour's converged state, sharing
//! one sparse symbolic analysis per chain — unless `--no-warm-start`
//! reverts to independent cold jobs. `docs/SWEEP_SERVICE.md` is the
//! operator guide.
//!
//! `--jobs 0` auto-sizes the worker pool to the machine's available
//! cores. `--solver-threads M` caps *intra-solve* parallelism (parallel
//! BTF block factorisation, circulant-mode LUs, partitioned stamping
//! and SpMV) at `M` threads per solve; `--solver-threads 0` (default)
//! leases leftover cores dynamically under the shared
//! `linsolve::CoreBudget`, so jobs × solver threads never exceeds the
//! machine. See BUILDING.md ("Choosing thread counts").
//!
//! Determinism invariant: aggregate artifacts are byte-identical for
//! any `--jobs` value, any `--solver-threads` value, any shard layout
//! (after `merge`), and cold vs. warm cache. Only the JSONL stream
//! order varies between runs.
//! Instrumentation preserves it too: `--trace DIR` records the run with
//! an `obskit` recorder and writes `DIR/trace.json` (Chrome
//! `trace_event`, open in Perfetto) plus `DIR/metrics.jsonl`
//! (counters, histograms, convergence-trace rows); `--metrics` prints
//! the counter summary after the run. Neither changes a result bit —
//! see `docs/OBSERVABILITY.md`.
//!
//! `--solver dense|sparselu|klu|gmres|gmres-circulant` overrides the
//! linear-solver backend for every analysis — beating both the
//! deck-wide `.options` choice and
//! any per-directive `solver=` key (the command line is the outermost
//! layer); `--integrator be|trap|bdf2` and `--rtol V` likewise override
//! the time-stepping scheme and adaptive tolerance of every
//! time-stepping analysis (for `.mpde`, a positive `--rtol` switches the
//! envelope from fixed-step to LTE-adaptive mode).

use circuitdae::{parse_deck, LinearSolverKind, Scheme};
use std::io::Write;
use std::path::{Path, PathBuf};
use sweepkit::{
    deck_hash, expand_grid, merge_shards, parse_record, parse_shard_manifest,
    render_shard_manifest, run_deck_with, ResultCache, ShardManifest, SweepConfig, SweepOutcome,
};
use wampde_bench::out::{json_escape, write_csv_in, write_text_in};

fn usage() -> ! {
    eprintln!(
        "usage: wampde-cli <deck.ckt> [--jobs N] [--solver-threads M] [--out DIR] \
         [--solver KIND] [--integrator SCHEME] [--rtol V] [--list] \
         [--shards M] [--shard-index K] [--cache-dir DIR] [--no-cache] \
         [--cache-max-bytes BYTES] [--no-warm-start] [--trace DIR] [--metrics]"
    );
    eprintln!("       wampde-cli merge <shard_manifest.json>... [--out DIR]");
    eprintln!("  KIND: dense | sparselu | klu | gmres | gmres-circulant");
    eprintln!("  SCHEME: be | trap | bdf2");
    eprintln!("  --jobs 0 / --solver-threads 0 auto-size to the machine's cores");
    std::process::exit(2);
}

struct Args {
    deck_path: PathBuf,
    jobs: usize,
    solver_threads: usize,
    out_dir: Option<PathBuf>,
    solver: Option<LinearSolverKind>,
    integrator: Option<Scheme>,
    rtol: Option<f64>,
    list: bool,
    shards: usize,
    shard_index: usize,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    cache_max_bytes: Option<u64>,
    warm_start: bool,
    trace_dir: Option<PathBuf>,
    metrics: bool,
}

fn parse_args(argv: &[String]) -> Args {
    let mut deck_path: Option<PathBuf> = None;
    let mut jobs = 1usize;
    let mut solver_threads = 0usize;
    let mut out_dir: Option<PathBuf> = None;
    let mut solver: Option<LinearSolverKind> = None;
    let mut integrator: Option<Scheme> = None;
    let mut rtol: Option<f64> = None;
    let mut list = false;
    let mut shards = 1usize;
    let mut shard_index = 0usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut cache_max_bytes: Option<u64> = None;
    let mut warm_start = true;
    let mut trace_dir: Option<PathBuf> = None;
    let mut metrics = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--solver" => {
                i += 1;
                solver = Some(
                    argv.get(i)
                        .and_then(|v| LinearSolverKind::parse(v))
                        .unwrap_or_else(|| {
                            eprintln!(
                                "--solver requires one of: dense, sparselu, klu, gmres, \
                                 gmres-circulant"
                            );
                            std::process::exit(2);
                        }),
                );
            }
            "--integrator" => {
                i += 1;
                integrator = Some(argv.get(i).and_then(|v| Scheme::parse(v)).unwrap_or_else(
                    || {
                        eprintln!("--integrator requires one of: be, trap, bdf2");
                        std::process::exit(2);
                    },
                ));
            }
            "--rtol" => {
                i += 1;
                rtol = Some(
                    argv.get(i)
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|&v| v > 0.0 && v.is_finite())
                        .unwrap_or_else(|| {
                            eprintln!("--rtol requires a positive number");
                            std::process::exit(2);
                        }),
                );
            }
            "--jobs" => {
                i += 1;
                // 0 = auto: one worker per available core.
                jobs = linsolve::resolve_thread_count(
                    argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--jobs requires a non-negative integer (0 = auto)");
                        std::process::exit(2);
                    }),
                );
            }
            "--solver-threads" => {
                i += 1;
                solver_threads = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--solver-threads requires a non-negative integer (0 = auto)");
                    std::process::exit(2);
                });
            }
            "--shards" => {
                i += 1;
                shards = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--shards requires a positive integer");
                        std::process::exit(2);
                    });
            }
            "--shard-index" => {
                i += 1;
                shard_index = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--shard-index requires a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--cache-dir" => {
                i += 1;
                match argv.get(i) {
                    Some(dir) => cache_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--cache-dir requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--no-cache" => no_cache = true,
            "--cache-max-bytes" => {
                i += 1;
                cache_max_bytes = Some(
                    argv.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| {
                            eprintln!("--cache-max-bytes requires a positive byte count");
                            std::process::exit(2);
                        }),
                );
            }
            "--no-warm-start" => warm_start = false,
            "--trace" => {
                i += 1;
                match argv.get(i) {
                    Some(dir) => trace_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--trace requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics" => metrics = true,
            "--out" => {
                i += 1;
                match argv.get(i) {
                    Some(dir) => out_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--out requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown argument: {other}");
                usage();
            }
            other => {
                if deck_path.replace(PathBuf::from(other)).is_some() {
                    eprintln!("multiple deck paths given");
                    usage();
                }
            }
        }
        i += 1;
    }
    let Some(deck_path) = deck_path else { usage() };
    if shard_index >= shards {
        eprintln!("--shard-index {shard_index} out of range for --shards {shards}");
        std::process::exit(2);
    }
    Args {
        deck_path,
        jobs,
        solver_threads,
        out_dir,
        solver,
        integrator,
        rtol,
        list,
        shards,
        shard_index,
        cache_dir,
        no_cache,
        cache_max_bytes,
        warm_start,
        trace_dir,
        metrics,
    }
}

struct MergeArgs {
    manifests: Vec<PathBuf>,
    out_dir: Option<PathBuf>,
}

fn parse_merge_args(argv: &[String]) -> MergeArgs {
    let mut manifests = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                match argv.get(i) {
                    Some(dir) => out_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--out requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown argument: {other}");
                usage();
            }
            other => manifests.push(PathBuf::from(other)),
        }
        i += 1;
    }
    if manifests.is_empty() {
        eprintln!("merge needs at least one shard manifest");
        usage();
    }
    MergeArgs { manifests, out_dir }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = if argv.first().map(String::as_str) == Some("merge") {
        merge_main(&parse_merge_args(&argv[1..]))
    } else {
        real_main(&parse_args(&argv))
    };
    if let Err(e) = result {
        eprintln!("wampde-cli: {e}");
        std::process::exit(1);
    }
}

/// `NetlistError`, `SweepError`, and `io::Error` all implement
/// `std::error::Error` (the deck subsystem's composability contract), so
/// the whole pipeline threads through one `?`-friendly signature.
fn real_main(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(&args.deck_path)
        .map_err(|e| format!("cannot read {}: {e}", args.deck_path.display()))?;
    let mut deck = parse_deck(&text)?;
    wampde_bench::apply_deck_overrides(&mut deck, args.solver, args.integrator, args.rtol);
    if let Some(kind) = args.solver {
        println!("linear solver override: {}", kind.label());
    }
    if let Some(scheme) = args.integrator {
        println!("integrator override: {}", scheme.label());
    }
    if let Some(rtol) = args.rtol {
        println!("rtol override: {rtol:e}");
    }
    let deck = deck;

    let stem = args
        .deck_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("deck")
        .to_string();
    let params: Vec<String> = deck.sweeps.iter().map(|s| s.label()).collect();
    let grid = expand_grid(&deck.sweeps);
    let n_jobs = grid.len() * deck.analyses.len();

    println!(
        "deck {}: {} device(s), {} analysis(es), {} sweep(s) -> {} point(s), {} job(s)",
        args.deck_path.display(),
        deck.device_names().len(),
        deck.analyses.len(),
        deck.sweeps.len(),
        grid.len(),
        n_jobs,
    );

    if args.list {
        for (i, a) in deck.analyses.iter().enumerate() {
            println!("  analysis {}{i}: {a:?}", a.name());
        }
        for (p, values) in grid.iter().enumerate() {
            let assigns: Vec<String> = params
                .iter()
                .zip(values.iter())
                .map(|(l, v)| format!("{l}={v:.6e}"))
                .collect();
            println!("  point {p}: [{}]", assigns.join(", "));
        }
        return Ok(());
    }

    let out_dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| Path::new("target/sweep").join(&stem));

    let cache = if args.no_cache {
        None
    } else {
        let dir = args
            .cache_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("target/sweep-cache"));
        let mut cache = ResultCache::open(&dir)?;
        cache.set_max_bytes(args.cache_max_bytes);
        Some(cache)
    };
    if let Some(cache) = &cache {
        println!("result cache: {}", cache.dir().display());
    }

    // The JSONL stream is written while jobs complete (observability in
    // flight); its line order is completion order, never relied upon.
    std::fs::create_dir_all(&out_dir)?;
    let jsonl_name = format!("{stem}_shard{}of{}.jsonl", args.shard_index, args.shards);
    let jsonl_path = out_dir.join(&jsonl_name);
    let mut jsonl = std::io::BufWriter::new(std::fs::File::create(&jsonl_path)?);

    let config = SweepConfig {
        jobs: args.jobs,
        shards: args.shards,
        shard_index: args.shard_index,
        cache,
        warm_start: args.warm_start,
        solver_threads: args.solver_threads,
    };
    // Instrumentation never touches results: the recorder only listens
    // to spans/counters the solvers already emit, and the determinism
    // tests hold traced and untraced artifacts byte-identical.
    let recorder = if args.trace_dir.is_some() || args.metrics {
        Some(std::sync::Arc::new(obskit::CollectingRecorder::new()))
    } else {
        None
    };
    let t0 = std::time::Instant::now();
    let run = {
        let _obs = recorder
            .as_ref()
            .map(|r| obskit::install(r.clone() as std::sync::Arc<dyn obskit::Recorder>));
        run_deck_with(&deck, &config, Some(&mut jsonl))?
    };
    jsonl.flush()?;
    let wall = t0.elapsed();
    println!(
        "shard {}/{}: {} of {} job(s) ({} computed, {} cached) on {} worker(s) in {:.2} s",
        args.shard_index,
        args.shards,
        run.stats.jobs_here,
        run.stats.jobs_total,
        run.stats.executed,
        run.stats.cache_hits,
        args.jobs,
        wall.as_secs_f64()
    );
    println!(
        "  {} ({} record(s))",
        jsonl_path.display(),
        run.stats.jobs_here
    );

    if let Some(rec) = &recorder {
        if let Some(dir) = &args.trace_dir {
            std::fs::create_dir_all(dir)?;
            let trace_path = dir.join("trace.json");
            rec.write_chrome_trace(&trace_path)?;
            println!("  {} ({} span(s))", trace_path.display(), rec.spans().len());
            let metrics_path = dir.join("metrics.jsonl");
            rec.write_metrics_jsonl(&metrics_path)?;
            println!("  {}", metrics_path.display());
        }
        if args.metrics {
            println!("metrics:");
            let reg = rec.metrics();
            for (name, value) in reg.counters() {
                println!("  {name} = {value}");
            }
            for (name, h) in reg.histograms() {
                println!(
                    "  {name}: count={} mean={:.3e} min={:.3e} max={:.3e}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
            }
        }
    }

    let outcome = run.outcome;
    let shard_manifest = ShardManifest {
        deck: args.deck_path.display().to_string(),
        deck_hash: deck_hash(&deck),
        shards: args.shards,
        shard_index: args.shard_index,
        jobs_total: n_jobs,
        param_labels: params.clone(),
        analysis_labels: outcome.analysis_labels.clone(),
        grid: outcome.grid.clone(),
        results: jsonl_name,
    };
    let p = write_text_in(
        &out_dir,
        &format!(
            "{stem}_shard{}of{}_manifest.json",
            args.shard_index, args.shards
        ),
        &render_shard_manifest(&shard_manifest),
    )?;
    println!("  {}", p.display());

    if args.shards == 1 {
        write_aggregates(&out_dir, &stem, &shard_manifest.deck, &outcome)?;
    } else {
        println!("  (sharded run: merge the shard manifests for aggregate CSVs)");
    }
    Ok(())
}

fn merge_main(args: &MergeArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut shards = Vec::new();
    for path in &args.manifests {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let manifest =
            parse_shard_manifest(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let base = path.parent().unwrap_or(Path::new("."));
        let results_path = base.join(&manifest.results);
        let records_text = std::fs::read_to_string(&results_path)
            .map_err(|e| format!("cannot read {}: {e}", results_path.display()))?;
        let records = records_text
            .lines()
            .map(|line| parse_record(line).map_err(|e| format!("{}: {e}", results_path.display())))
            .collect::<Result<Vec<_>, _>>()?;
        println!(
            "shard {}/{} ({}): {} record(s)",
            manifest.shard_index,
            manifest.shards,
            path.display(),
            records.len()
        );
        shards.push((manifest, records));
    }
    let outcome = merge_shards(&shards)?;
    let deck_name = shards[0].0.deck.clone();
    let stem = Path::new(&deck_name)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("deck")
        .to_string();
    let out_dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| Path::new("target/sweep").join(&stem));
    println!(
        "merged {} job(s) from {} shard manifest(s)",
        outcome.runs.len(),
        shards.len()
    );
    write_aggregates(&out_dir, &stem, &deck_name, &outcome)?;
    Ok(())
}

/// Writes the aggregate artifacts (per-analysis CSVs + run manifest).
/// Shared by the unsharded run path and `merge`, so both produce the
/// same bytes from the same outcome.
fn write_aggregates(
    out_dir: &Path,
    stem: &str,
    deck_name: &str,
    outcome: &SweepOutcome,
) -> Result<(), Box<dyn std::error::Error>> {
    let params = &outcome.param_labels;
    let mut artifacts: Vec<String> = Vec::new();
    for (ai, label) in outcome.analysis_labels.iter().enumerate() {
        let (sh, sr) = outcome.summary_table(ai);
        let sh_refs: Vec<&str> = sh.iter().map(String::as_str).collect();
        let name = format!("{stem}_{label}_summary.csv");
        let p = write_csv_in(out_dir, &name, &sh_refs, &sr)?;
        println!("  {}", p.display());
        artifacts.push(name);

        let (wh, wr) = outcome.waveform_table(ai);
        let wh_refs: Vec<&str> = wh.iter().map(String::as_str).collect();
        let name = format!("{stem}_{label}_waveforms.csv");
        let p = write_csv_in(out_dir, &name, &wh_refs, &wr)?;
        println!("  {} ({} rows)", p.display(), wr.len());
        artifacts.push(name);

        // Per-point metric digest on stdout.
        for rec in outcome.runs_of(ai) {
            let assigns: Vec<String> = params
                .iter()
                .zip(rec.values.iter())
                .map(|(l, v)| format!("{l}={v:.4e}"))
                .collect();
            let metrics: Vec<String> = rec
                .result
                .metrics
                .iter()
                .map(|(n, v)| format!("{n}={v:.6e}"))
                .collect();
            println!(
                "  {label} point {} [{}]: {}",
                rec.point,
                assigns.join(", "),
                metrics.join(", ")
            );
        }
    }

    let manifest = render_manifest(deck_name, outcome, &artifacts);
    let p = write_text_in(out_dir, &format!("{stem}_manifest.json"), &manifest)?;
    println!("  {}", p.display());
    Ok(())
}

/// Solver run-stat metric names surfaced per analysis in the manifest.
/// Every stepping solver reports the `obskit::RunStats` quintet;
/// shooting reports its outer `iterations` instead.
const STAT_KEYS: [&str; 6] = [
    "steps",
    "rejected",
    "newton_iters",
    "factorisations",
    "symbolic_reuses",
    "iterations",
];

/// Sums the run-stat metrics over every grid point of one analysis.
/// Only keys at least one run reported are returned, so e.g. a
/// shooting analysis never grows phantom zero-valued `steps`.
fn analysis_stats(outcome: &SweepOutcome, ai: usize) -> Vec<(&'static str, f64)> {
    let mut sums = [0.0_f64; STAT_KEYS.len()];
    let mut present = [false; STAT_KEYS.len()];
    for rec in outcome.runs_of(ai) {
        for (name, value) in &rec.result.metrics {
            if let Some(k) = STAT_KEYS.iter().position(|key| key == name) {
                sums[k] += value;
                present[k] = true;
            }
        }
    }
    STAT_KEYS
        .iter()
        .enumerate()
        .filter(|&(k, _)| present[k])
        .map(|(k, &key)| (key, sums[k]))
        .collect()
}

fn render_manifest(deck_name: &str, outcome: &SweepOutcome, artifacts: &[String]) -> String {
    let quote = |s: &str| format!("\"{}\"", json_escape(s));
    let str_list = |xs: &[String]| xs.iter().map(|s| quote(s)).collect::<Vec<_>>().join(", ");
    let points = outcome
        .grid
        .iter()
        .map(|p| {
            let vals: Vec<String> = p.iter().map(|v| format!("{v:.9e}")).collect();
            format!("[{}]", vals.join(", "))
        })
        .collect::<Vec<_>>()
        .join(", ");
    // Aggregated per-analysis solver run stats. Derived from the merged
    // outcome (never from shard-local state), so the unsharded path and
    // `merge` emit byte-identical manifests. Counts are integral by
    // construction; render them without a fractional part.
    let stats = outcome
        .analysis_labels
        .iter()
        .enumerate()
        .map(|(ai, label)| {
            let runs = outcome.runs_of(ai).count();
            let mut fields = vec![format!("\"runs\": {runs}")];
            fields.extend(
                analysis_stats(outcome, ai)
                    .iter()
                    .map(|(key, v)| format!("\"{key}\": {}", *v as u64)),
            );
            format!("    {}: {{{}}}", quote(label), fields.join(", "))
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"deck\": {},\n  \"params\": [{}],\n  \
         \"points\": [{}],\n  \"solver_stats\": {{\n{}\n  }},\n  \
         \"artifacts\": [{}]\n}}\n",
        quote(deck_name),
        str_list(&outcome.param_labels),
        points,
        stats,
        str_list(artifacts),
    )
}
