//! `wampde-cli` — deck-driven, parallel experiment runs.
//!
//! ```text
//! wampde-cli <deck.ckt> [--jobs N] [--out DIR] [--solver KIND]
//!            [--integrator SCHEME] [--rtol V] [--list]
//! ```
//!
//! Loads a scenario deck (circuit cards + `.tran`/`.shooting`/`.mpde`/
//! `.wampde`/`.sweep` directives), expands the sweep grid, runs every
//! (grid point × analysis) job on `N` worker threads, and writes CSV and
//! JSON artifacts into `DIR` (default `target/sweep/<deck stem>`):
//!
//! * `<stem>_<analysis>_summary.csv` — one metric row per grid point;
//! * `<stem>_<analysis>_waveforms.csv` — long-format waveform table;
//! * `<stem>_manifest.json` — parameters, grid, and artifact index.
//!
//! Results are aggregated in grid order, so artifacts are byte-identical
//! for any `--jobs` value. `--list` prints the expanded job plan without
//! running anything.
//!
//! `--solver dense|sparselu|gmres` overrides the linear-solver backend
//! for every analysis — beating both the deck-wide `.options` choice and
//! any per-directive `solver=` key (the command line is the outermost
//! layer); `--integrator be|trap|bdf2` and `--rtol V` likewise override
//! the time-stepping scheme and adaptive tolerance of every
//! time-stepping analysis (for `.mpde`, a positive `--rtol` switches the
//! envelope from fixed-step to LTE-adaptive mode).

use circuitdae::{parse_deck, LinearSolverKind, Scheme};
use std::path::{Path, PathBuf};
use sweepkit::{expand_grid, run_deck};
use wampde_bench::out::{json_escape, write_csv_in, write_text_in};

fn usage() -> ! {
    eprintln!(
        "usage: wampde-cli <deck.ckt> [--jobs N] [--out DIR] [--solver KIND] \
         [--integrator SCHEME] [--rtol V] [--list]"
    );
    eprintln!("  KIND: dense | sparselu | gmres");
    eprintln!("  SCHEME: be | trap | bdf2");
    std::process::exit(2);
}

struct Args {
    deck_path: PathBuf,
    jobs: usize,
    out_dir: Option<PathBuf>,
    solver: Option<LinearSolverKind>,
    integrator: Option<Scheme>,
    rtol: Option<f64>,
    list: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut deck_path: Option<PathBuf> = None;
    let mut jobs = 1usize;
    let mut out_dir: Option<PathBuf> = None;
    let mut solver: Option<LinearSolverKind> = None;
    let mut integrator: Option<Scheme> = None;
    let mut rtol: Option<f64> = None;
    let mut list = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--solver" => {
                i += 1;
                solver = Some(
                    argv.get(i)
                        .and_then(|v| LinearSolverKind::parse(v))
                        .unwrap_or_else(|| {
                            eprintln!("--solver requires one of: dense, sparselu, gmres");
                            std::process::exit(2);
                        }),
                );
            }
            "--integrator" => {
                i += 1;
                integrator = Some(argv.get(i).and_then(|v| Scheme::parse(v)).unwrap_or_else(
                    || {
                        eprintln!("--integrator requires one of: be, trap, bdf2");
                        std::process::exit(2);
                    },
                ));
            }
            "--rtol" => {
                i += 1;
                rtol = Some(
                    argv.get(i)
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|&v| v > 0.0 && v.is_finite())
                        .unwrap_or_else(|| {
                            eprintln!("--rtol requires a positive number");
                            std::process::exit(2);
                        }),
                );
            }
            "--jobs" => {
                i += 1;
                jobs = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                match argv.get(i) {
                    Some(dir) => out_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--out requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown argument: {other}");
                usage();
            }
            other => {
                if deck_path.replace(PathBuf::from(other)).is_some() {
                    eprintln!("multiple deck paths given");
                    usage();
                }
            }
        }
        i += 1;
    }
    let Some(deck_path) = deck_path else { usage() };
    Args {
        deck_path,
        jobs,
        out_dir,
        solver,
        integrator,
        rtol,
        list,
    }
}

fn main() {
    let args = parse_args();
    if let Err(e) = real_main(&args) {
        eprintln!("wampde-cli: {e}");
        std::process::exit(1);
    }
}

/// `NetlistError`, `SweepError`, and `io::Error` all implement
/// `std::error::Error` (the deck subsystem's composability contract), so
/// the whole pipeline threads through one `?`-friendly signature.
fn real_main(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(&args.deck_path)
        .map_err(|e| format!("cannot read {}: {e}", args.deck_path.display()))?;
    let mut deck = parse_deck(&text)?;
    wampde_bench::apply_deck_overrides(&mut deck, args.solver, args.integrator, args.rtol);
    if let Some(kind) = args.solver {
        println!("linear solver override: {}", kind.label());
    }
    if let Some(scheme) = args.integrator {
        println!("integrator override: {}", scheme.label());
    }
    if let Some(rtol) = args.rtol {
        println!("rtol override: {rtol:e}");
    }
    let deck = deck;

    let stem = args
        .deck_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("deck")
        .to_string();
    let params: Vec<String> = deck.sweeps.iter().map(|s| s.label()).collect();
    let grid = expand_grid(&deck.sweeps);
    let n_jobs = grid.len() * deck.analyses.len();

    println!(
        "deck {}: {} device(s), {} analysis(es), {} sweep(s) -> {} point(s), {} job(s)",
        args.deck_path.display(),
        deck.device_names().len(),
        deck.analyses.len(),
        deck.sweeps.len(),
        grid.len(),
        n_jobs,
    );

    if args.list {
        for (i, a) in deck.analyses.iter().enumerate() {
            println!("  analysis {}{i}: {a:?}", a.name());
        }
        for (p, values) in grid.iter().enumerate() {
            let assigns: Vec<String> = params
                .iter()
                .zip(values.iter())
                .map(|(l, v)| format!("{l}={v:.6e}"))
                .collect();
            println!("  point {p}: [{}]", assigns.join(", "));
        }
        return Ok(());
    }

    let out_dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| Path::new("target/sweep").join(&stem));

    let t0 = std::time::Instant::now();
    let outcome = run_deck(&deck, args.jobs)?;
    let wall = t0.elapsed();
    println!(
        "{} job(s) on {} worker(s) in {:.2} s",
        n_jobs,
        args.jobs,
        wall.as_secs_f64()
    );

    let mut artifacts: Vec<String> = Vec::new();
    for (ai, label) in outcome.analysis_labels.iter().enumerate() {
        let (sh, sr) = outcome.summary_table(ai);
        let sh_refs: Vec<&str> = sh.iter().map(String::as_str).collect();
        let name = format!("{stem}_{label}_summary.csv");
        let p = write_csv_in(&out_dir, &name, &sh_refs, &sr)?;
        println!("  {}", p.display());
        artifacts.push(name);

        let (wh, wr) = outcome.waveform_table(ai);
        let wh_refs: Vec<&str> = wh.iter().map(String::as_str).collect();
        let name = format!("{stem}_{label}_waveforms.csv");
        let p = write_csv_in(&out_dir, &name, &wh_refs, &wr)?;
        println!("  {} ({} rows)", p.display(), wr.len());
        artifacts.push(name);

        // Per-point metric digest on stdout.
        for rec in outcome.runs_of(ai) {
            let assigns: Vec<String> = params
                .iter()
                .zip(rec.values.iter())
                .map(|(l, v)| format!("{l}={v:.4e}"))
                .collect();
            let metrics: Vec<String> = rec
                .result
                .metrics
                .iter()
                .map(|(n, v)| format!("{n}={v:.6e}"))
                .collect();
            println!(
                "  {label} point {} [{}]: {}",
                rec.point,
                assigns.join(", "),
                metrics.join(", ")
            );
        }
    }

    let manifest = render_manifest(
        &args.deck_path,
        args.jobs,
        &params,
        &outcome.grid,
        &artifacts,
    );
    let p = write_text_in(&out_dir, &format!("{stem}_manifest.json"), &manifest)?;
    println!("  {}", p.display());
    Ok(())
}

fn render_manifest(
    deck_path: &Path,
    jobs: usize,
    params: &[String],
    grid: &[Vec<f64>],
    artifacts: &[String],
) -> String {
    let quote = |s: &str| format!("\"{}\"", json_escape(s));
    let str_list = |xs: &[String]| xs.iter().map(|s| quote(s)).collect::<Vec<_>>().join(", ");
    let points = grid
        .iter()
        .map(|p| {
            let vals: Vec<String> = p.iter().map(|v| format!("{v:.9e}")).collect();
            format!("[{}]", vals.join(", "))
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"deck\": {},\n  \"jobs\": {},\n  \"params\": [{}],\n  \
         \"points\": [{}],\n  \"artifacts\": [{}]\n}}\n",
        quote(&deck_path.display().to_string()),
        jobs,
        str_list(params),
        points,
        str_list(artifacts),
    )
}
