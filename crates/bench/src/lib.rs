//! Experiment drivers shared by the Criterion benches and the `repro`
//! binary that regenerates every figure of the paper.
//!
//! Each paper artifact maps to one driver here (see `DESIGN.md §3` for
//! the full index); the benches time the underlying computations, while
//! `cargo run --release -p wampde-bench --bin repro` writes the figure
//! data as CSV into `target/repro/` and prints the headline numbers for
//! `EXPERIMENTS.md`.

use circuitdae::circuits::{self, MemsVcoConfig};
use circuitdae::{CircuitDae, Dae};
use shooting::{oscillator_steady_state, PeriodicOrbit, ShootingOptions};
use std::time::{Duration, Instant};
use transim::{
    run_fixed_per_cycle, run_transient, Integrator, StepControl, TransientOptions, TransientResult,
};
use wampde::{solve_envelope, EnvelopeResult, WampdeInit, WampdeOptions};

pub mod out;

/// Unforced steady state of the VCO (the common initial condition).
///
/// # Panics
///
/// Panics when shooting fails (it never does for the calibrated presets).
pub fn unforced_orbit() -> PeriodicOrbit {
    let dae = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    oscillator_steady_state(&dae, &ShootingOptions::default()).expect("unforced VCO oscillates")
}

/// A WaMPDE envelope run of one of the paper's MEMS VCO experiments.
pub struct EnvelopeRun {
    /// The configured circuit.
    pub dae: CircuitDae,
    /// The result.
    pub env: EnvelopeResult,
    /// Wall-clock time of the envelope solve alone.
    pub wall: Duration,
    /// Options used.
    pub opts: WampdeOptions,
}

/// Runs the WaMPDE envelope for a MEMS VCO configuration.
///
/// # Panics
///
/// Panics when the solve fails (calibrated presets converge).
pub fn run_envelope(
    cfg: MemsVcoConfig,
    orbit: &PeriodicOrbit,
    t_end: f64,
    harmonics: usize,
) -> EnvelopeRun {
    let dae = circuits::mems_vco(cfg);
    let opts = WampdeOptions {
        harmonics,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(orbit, &opts);
    let t0 = Instant::now();
    let env = solve_envelope(&dae, &init, t_end, &opts).expect("envelope converges");
    EnvelopeRun {
        dae,
        env,
        wall: t0.elapsed(),
        opts,
    }
}

/// Adaptive-step transient reference for a MEMS VCO configuration,
/// started from the WaMPDE's own `t = 0` state.
///
/// # Panics
///
/// Panics when the transient fails.
pub fn run_transient_reference(
    cfg: MemsVcoConfig,
    x0: &[f64],
    t_end: f64,
    rtol: f64,
) -> (TransientResult, Duration) {
    let dae = circuits::mems_vco(cfg);
    let t0 = Instant::now();
    let res = run_transient(
        &dae,
        x0,
        0.0,
        t_end,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol,
                atol: 1e-12,
                dt_init: 1e-9,
                dt_min: 0.0,
                dt_max: 5e-8,
            },
            ..Default::default()
        },
    )
    .expect("transient reference");
    (res, t0.elapsed())
}

/// Fixed points-per-cycle transient (the paper's Figure 12 baselines).
///
/// # Panics
///
/// Panics when the transient fails.
pub fn run_transient_fixed(
    cfg: MemsVcoConfig,
    x0: &[f64],
    t_end: f64,
    pts_per_cycle: usize,
) -> (TransientResult, Duration) {
    let dae = circuits::mems_vco(cfg);
    let nominal = circuits::nominal_period();
    let t0 = Instant::now();
    let res = run_fixed_per_cycle(
        &dae,
        x0,
        nominal,
        t_end / nominal,
        pts_per_cycle,
        Integrator::Trapezoidal,
    )
    .expect("fixed-step transient");
    (res, t0.elapsed())
}

/// First collocation sample of an envelope's initial slice — the
/// univariate state `x(0) = x̂(0, 0)` used to seed matching transients.
pub fn univariate_x0(run: &EnvelopeRun) -> Vec<f64> {
    run.env.states[0][0..run.dae.dim()].to_vec()
}

/// Applies `wampde-cli`-style overrides to a parsed deck.
///
/// Precedence, outermost first: CLI flags (these) beat every deck-level
/// choice — both the deck-wide `.options solver=` line and any
/// per-directive `solver=`/step keys, which the parser has already
/// resolved into the specs by the time this runs.
pub fn apply_deck_overrides(
    deck: &mut circuitdae::Deck,
    solver: Option<circuitdae::LinearSolverKind>,
    integrator: Option<circuitdae::Scheme>,
    rtol: Option<f64>,
) {
    for a in &mut deck.analyses {
        if let Some(kind) = solver {
            a.set_solver(kind);
        }
        if let Some(scheme) = integrator {
            a.set_integrator(scheme);
        }
        if let Some(r) = rtol {
            a.set_rtol(r);
        }
    }
}

/// An owned bordered WaMPDE step Jacobian for `ring_loaded_vco(stages)`
/// at a smooth synthetic oscillation state — the shared workload of the
/// linear-solver ablation bench and the `repro --table linsolve` emitter.
///
/// The state is analytic rather than a shooting solution so the workload
/// depends only on `(stages, harmonics)` and is cheap to rebuild at any
/// size; the Jacobian structure (block diagonal + `D⊗C` coupling + phase
/// border) is exactly the per-step envelope system.
pub struct StepJacobian {
    colloc: hb::Colloc,
    cblocks: Vec<numkit::DMat>,
    gblocks: Vec<numkit::DMat>,
    phase_row: Vec<f64>,
    omega_col: Vec<f64>,
    inv_h: f64,
    omega: f64,
}

impl StepJacobian {
    /// Builds the step Jacobian for the ladder-loaded VCO.
    pub fn build(stages: usize, harmonics: usize) -> Self {
        let dae = circuits::ring_loaded_vco(stages);
        let n = dae.dim();
        let colloc = hb::Colloc::new(n, harmonics);
        let len = colloc.len();
        // Tank swings ±2 V; load nodes follow at decaying amplitude.
        let x: Vec<f64> = (0..len)
            .map(|k| {
                let (s, i) = (k / n, k % n);
                let phase = 2.0 * std::f64::consts::PI * s as f64 / colloc.n0 as f64;
                2.0 * (phase + 0.3 * i as f64).sin() / (1.0 + 0.2 * i as f64)
            })
            .collect();
        let (cblocks, gblocks) = circuitdae::jac_blocks(&dae, &x);
        // ∂r/∂ω column = θ·(D·q): evaluate q and differentiate.
        let mut q = vec![0.0; len];
        colloc.eval_q_all(&dae, &x, &mut q);
        let mut omega_col = vec![0.0; len];
        colloc.apply_diff(&q, &mut omega_col);
        StepJacobian {
            phase_row: colloc.phase_row(0, 1),
            colloc,
            cblocks,
            gblocks,
            omega_col,
            inv_h: 1.0 / 2.0e-6,
            omega: 0.75e6,
        }
    }

    /// System dimension including the border.
    pub fn dim(&self) -> usize {
        self.colloc.len() + 1
    }

    /// Borrows the assembly description for the shared solver layer.
    pub fn parts(&self) -> wampde::linsolve::JacobianParts<'_> {
        wampde::linsolve::JacobianParts {
            n: self.colloc.n,
            n0: self.colloc.n0,
            dmat: &self.colloc.dmat,
            cblocks: &self.cblocks,
            gblocks: &self.gblocks,
            inv_h: self.inv_h,
            theta: 1.0,
            omega: self.omega,
            border: Some((&self.phase_row, &self.omega_col)),
        }
    }

    /// A smooth right-hand side of matching dimension.
    pub fn rhs(&self) -> Vec<f64> {
        (0..self.dim()).map(|i| (0.13 * i as f64).sin()).collect()
    }

    /// Factors and solves once with `kind`, returning the solution.
    ///
    /// # Panics
    ///
    /// Panics when the backend fails (the workload is well-conditioned).
    pub fn factor_solve(&self, kind: wampde::LinearSolverKind) -> Vec<f64> {
        let f = wampde::linsolve::FactoredJacobian::factor(&self.parts(), kind)
            .expect("step jacobian factors");
        let mut x = self.rhs();
        f.solve_in_place(&mut x).expect("step jacobian solves");
        x
    }
}

/// An owned quasiperiodic *cyclic* Jacobian over `n1` slow-time slices —
/// the workload of the block-circulant GMRES preconditioner ablation.
///
/// Each slice carries one bordered collocation system (a small
/// [`StepJacobian`]) on the d=0 block diagonal, scaled by a smooth
/// envelope wobble so the blocks vary per slice exactly as the real
/// quasiperiodic system's do; the BDF2 cyclic stencil couples slice `m`
/// to slices `m−1` and `m−2` (mod `n1`) through the charge blocks. The
/// matrix is therefore block circulant *to envelope accuracy* — the
/// structure [`wampde::linsolve::BlockCirculantPrecond`] exploits.
pub struct CyclicJacobian {
    trip: sparsekit::Triplets,
    n1: usize,
    bw: usize,
}

impl CyclicJacobian {
    /// Builds the cyclic system with `n1` slices of the
    /// `ring_loaded_vco(4)` collocation block (harmonics = 2).
    pub fn build(n1: usize) -> Self {
        let base = StepJacobian::build(4, 2);
        let bw = base.dim();
        let n = base.colloc.n;
        let dim = n1 * bw;
        // BDF2 cyclic stencil over the slice spacing h.
        let h = 2.0e-6 / n1 as f64;
        let (c0, c1, c2) = (1.5 / h, -2.0 / h, 0.5 / h);

        let mut trip = sparsekit::Triplets::with_capacity(dim, dim, n1 * bw * bw / 4);
        // d = 0 diagonal blocks: the bordered collocation system with
        // inv_h = c0/h, wobbled per slice.
        let mut local = sparsekit::Triplets::new(bw, bw);
        let mut parts = base.parts();
        parts.inv_h = c0;
        parts.push_triplets(&mut local);
        for m in 0..n1 {
            let wob = 1.0 + 0.05 * (2.0 * std::f64::consts::PI * m as f64 / n1 as f64).sin();
            let off = m * bw;
            for (r, c, v) in local.iter() {
                trip.push(off + r, off + c, v * wob);
            }
        }
        // d = 1, 2 stencil couplings: c_d·C_s blocks, sample-diagonal.
        for (d, cd) in [(1usize, c1), (2usize, c2)] {
            for m in 0..n1 {
                let src = (m + n1 - d) % n1;
                for s in 0..base.colloc.n0 {
                    let c = &base.cblocks[s];
                    for i in 0..n {
                        for j in 0..n {
                            let v = cd * c[(i, j)];
                            if v != 0.0 {
                                trip.push(m * bw + s * n + i, src * bw + s * n + j, v);
                            }
                        }
                    }
                }
            }
        }
        CyclicJacobian { trip, n1, bw }
    }

    /// Total system dimension `n1·bw`.
    pub fn dim(&self) -> usize {
        self.n1 * self.bw
    }

    /// The block-cyclic structure hint for the circulant backend.
    pub fn shape(&self) -> wampde::linsolve::CyclicShape {
        wampde::linsolve::CyclicShape {
            blocks: self.n1,
            block_dim: self.bw,
        }
    }

    /// The assembled triplets.
    pub fn triplets(&self) -> &sparsekit::Triplets {
        &self.trip
    }

    /// A smooth right-hand side of matching dimension.
    pub fn rhs(&self) -> Vec<f64> {
        (0..self.dim()).map(|i| (0.17 * i as f64).sin()).collect()
    }

    /// GMRES iterations to `rtol = 1e-8` with the block-circulant
    /// preconditioner (`None` when GMRES fails to converge).
    ///
    /// # Panics
    ///
    /// Panics when the matrix disagrees with its own declared shape.
    pub fn gmres_circulant_iterations(&self) -> Option<usize> {
        let a = self.trip.to_csr();
        let p = wampde::linsolve::BlockCirculantPrecond::from_csr(&a, self.shape())
            .expect("cyclic jacobian matches its declared shape");
        let op = sparsekit::CsrOp::new(&a);
        let opts = sparsekit::GmresOptions {
            restart: 60,
            max_iters: 1000,
            rtol: 1e-8,
            atol: 1e-300,
        };
        sparsekit::gmres(&op, &p, &self.rhs(), None, &opts)
            .ok()
            .map(|r| r.iterations)
    }

    /// GMRES iterations to the same tolerance with the structure-blind
    /// ILU(0) preconditioner (diagonal-regularised like the `gmres`
    /// backend; `None` when GMRES fails to converge within the cap).
    pub fn gmres_ilu0_iterations(&self) -> Option<usize> {
        let a = self.trip.to_csr();
        let n = a.nrows();
        // Unit-regularise the structurally zero diagonals (phase-row /
        // frequency-column corners), as linsolve's gmres backend does.
        let mut reg = sparsekit::Triplets::with_capacity(n, n, a.nnz() + n);
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                reg.push(i, c, v);
            }
        }
        for i in 0..n {
            if a.get(i, i) == 0.0 {
                reg.push(i, i, 1.0);
            }
        }
        let ilu = sparsekit::Ilu0::factor(&reg.to_csr()).ok()?;
        let op = sparsekit::CsrOp::new(&a);
        let opts = sparsekit::GmresOptions {
            restart: 60,
            max_iters: 1000,
            rtol: 1e-8,
            atol: 1e-300,
        };
        sparsekit::gmres(&op, &ilu, &self.rhs(), None, &opts)
            .ok()
            .map(|r| r.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_jacobian_backends_agree() {
        let j = StepJacobian::build(8, 4);
        assert_eq!(j.dim(), 10 * 9 + 1);
        let dense = j.factor_solve(wampde::LinearSolverKind::Dense);
        let sparse = j.factor_solve(wampde::LinearSolverKind::SparseLu);
        let gm = j.factor_solve(wampde::LinearSolverKind::gmres_default());
        let scale = dense.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for i in 0..dense.len() {
            assert!((dense[i] - sparse[i]).abs() < 1e-9 * scale, "sparse at {i}");
            assert!((dense[i] - gm[i]).abs() < 1e-6 * scale, "gmres at {i}");
        }
    }

    #[test]
    fn cli_solver_override_beats_per_directive_and_options_keys() {
        // The deck pins three different layers: a per-directive
        // `solver=sparselu`, a deck-wide `.options solver=gmres`, and a
        // directive with no key at all. The CLI override (outermost
        // layer) must win everywhere; without it, the parser's
        // per-directive > .options precedence must hold.
        const DECK: &str = "C1 tank 0 4.503n\n\
                            L1 tank 0 10u\n\
                            GN1 tank 0 5m 1.667m\n\
                            .wampde 6u harmonics=5 solver=sparselu\n\
                            .shooting steps=128\n\
                            .options solver=gmres\n";
        let mut deck = circuitdae::parse_deck(DECK).unwrap();
        assert_eq!(
            deck.analyses[0].solver(),
            circuitdae::LinearSolverKind::SparseLu
        );
        assert!(matches!(
            deck.analyses[1].solver(),
            circuitdae::LinearSolverKind::GmresIlu0 { .. }
        ));
        apply_deck_overrides(
            &mut deck,
            Some(circuitdae::LinearSolverKind::Dense),
            None,
            None,
        );
        for a in &deck.analyses {
            assert_eq!(a.solver(), circuitdae::LinearSolverKind::Dense);
        }
        // Integrator/rtol overrides ride the same helper.
        apply_deck_overrides(
            &mut deck,
            None,
            Some(circuitdae::Scheme::BackwardEuler),
            Some(3e-5),
        );
        assert_eq!(
            deck.analyses[0].integrator(),
            Some(circuitdae::Scheme::BackwardEuler)
        );
    }

    #[test]
    fn drivers_run_a_short_experiment() {
        let orbit = unforced_orbit();
        let run = run_envelope(MemsVcoConfig::paper_vacuum(), &orbit, 4e-6, 5);
        assert!(run.env.stats.steps > 0);
        let x0 = univariate_x0(&run);
        assert_eq!(x0.len(), 4);
        let (tr, _) = run_transient_fixed(MemsVcoConfig::paper_vacuum(), &x0, 2e-6, 30);
        assert!(tr.stats.steps > 40); // 1.5 cycles x 30 pts
    }
}
