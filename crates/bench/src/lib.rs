//! Experiment drivers shared by the Criterion benches and the `repro`
//! binary that regenerates every figure of the paper.
//!
//! Each paper artifact maps to one driver here (see `DESIGN.md §3` for
//! the full index); the benches time the underlying computations, while
//! `cargo run --release -p wampde-bench --bin repro` writes the figure
//! data as CSV into `target/repro/` and prints the headline numbers for
//! `EXPERIMENTS.md`.

use circuitdae::circuits::{self, MemsVcoConfig};
use circuitdae::{CircuitDae, Dae};
use shooting::{oscillator_steady_state, PeriodicOrbit, ShootingOptions};
use std::time::{Duration, Instant};
use transim::{
    run_fixed_per_cycle, run_transient, Integrator, StepControl, TransientOptions, TransientResult,
};
use wampde::{solve_envelope, EnvelopeResult, WampdeInit, WampdeOptions};

pub mod out;

/// Unforced steady state of the VCO (the common initial condition).
///
/// # Panics
///
/// Panics when shooting fails (it never does for the calibrated presets).
pub fn unforced_orbit() -> PeriodicOrbit {
    let dae = circuits::mems_vco(MemsVcoConfig::constant(1.5));
    oscillator_steady_state(&dae, &ShootingOptions::default()).expect("unforced VCO oscillates")
}

/// A WaMPDE envelope run of one of the paper's MEMS VCO experiments.
pub struct EnvelopeRun {
    /// The configured circuit.
    pub dae: CircuitDae,
    /// The result.
    pub env: EnvelopeResult,
    /// Wall-clock time of the envelope solve alone.
    pub wall: Duration,
    /// Options used.
    pub opts: WampdeOptions,
}

/// Runs the WaMPDE envelope for a MEMS VCO configuration.
///
/// # Panics
///
/// Panics when the solve fails (calibrated presets converge).
pub fn run_envelope(
    cfg: MemsVcoConfig,
    orbit: &PeriodicOrbit,
    t_end: f64,
    harmonics: usize,
) -> EnvelopeRun {
    let dae = circuits::mems_vco(cfg);
    let opts = WampdeOptions {
        harmonics,
        ..Default::default()
    };
    let init = WampdeInit::from_orbit(orbit, &opts);
    let t0 = Instant::now();
    let env = solve_envelope(&dae, &init, t_end, &opts).expect("envelope converges");
    EnvelopeRun {
        dae,
        env,
        wall: t0.elapsed(),
        opts,
    }
}

/// Adaptive-step transient reference for a MEMS VCO configuration,
/// started from the WaMPDE's own `t = 0` state.
///
/// # Panics
///
/// Panics when the transient fails.
pub fn run_transient_reference(
    cfg: MemsVcoConfig,
    x0: &[f64],
    t_end: f64,
    rtol: f64,
) -> (TransientResult, Duration) {
    let dae = circuits::mems_vco(cfg);
    let t0 = Instant::now();
    let res = run_transient(
        &dae,
        x0,
        0.0,
        t_end,
        &TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol,
                atol: 1e-12,
                dt_init: 1e-9,
                dt_min: 0.0,
                dt_max: 5e-8,
            },
            ..Default::default()
        },
    )
    .expect("transient reference");
    (res, t0.elapsed())
}

/// Fixed points-per-cycle transient (the paper's Figure 12 baselines).
///
/// # Panics
///
/// Panics when the transient fails.
pub fn run_transient_fixed(
    cfg: MemsVcoConfig,
    x0: &[f64],
    t_end: f64,
    pts_per_cycle: usize,
) -> (TransientResult, Duration) {
    let dae = circuits::mems_vco(cfg);
    let nominal = circuits::nominal_period();
    let t0 = Instant::now();
    let res = run_fixed_per_cycle(
        &dae,
        x0,
        nominal,
        t_end / nominal,
        pts_per_cycle,
        Integrator::Trapezoidal,
    )
    .expect("fixed-step transient");
    (res, t0.elapsed())
}

/// First collocation sample of an envelope's initial slice — the
/// univariate state `x(0) = x̂(0, 0)` used to seed matching transients.
pub fn univariate_x0(run: &EnvelopeRun) -> Vec<f64> {
    run.env.states[0][0..run.dae.dim()].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drivers_run_a_short_experiment() {
        let orbit = unforced_orbit();
        let run = run_envelope(MemsVcoConfig::paper_vacuum(), &orbit, 4e-6, 5);
        assert!(run.env.stats.steps > 0);
        let x0 = univariate_x0(&run);
        assert_eq!(x0.len(), 4);
        let (tr, _) = run_transient_fixed(MemsVcoConfig::paper_vacuum(), &x0, 2e-6, 30);
        assert!(tr.stats.steps > 40); // 1.5 cycles x 30 pts
    }
}
