//! CSV output and ASCII plotting for the `repro` binary.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory figure data is written to (`target/repro`).
///
/// # Panics
///
/// Panics when the directory cannot be created.
pub fn repro_dir() -> PathBuf {
    let dir = PathBuf::from("target/repro");
    fs::create_dir_all(&dir).expect("create target/repro");
    dir
}

/// Writes a CSV file with a header row and one row per record.
///
/// # Panics
///
/// Panics on I/O failure (the repro binary treats that as fatal).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<f64>]) -> PathBuf {
    let path = repro_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.9e}")).collect();
        writeln!(f, "{}", line.join(",")).expect("write row");
    }
    path
}

/// Renders a quick ASCII line plot (rows × cols characters) of `ys(xs)`.
pub fn ascii_plot(title: &str, xs: &[f64], ys: &[f64], cols: usize, rows: usize) -> String {
    if xs.len() < 2 || ys.len() != xs.len() {
        return format!("{title}: (insufficient data)\n");
    }
    let xmin = xs.first().copied().unwrap_or(0.0);
    let xmax = xs.last().copied().unwrap_or(1.0);
    let ymin = ys.iter().fold(f64::INFINITY, |m, v| m.min(*v));
    let ymax = ys.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v));
    let yspan = (ymax - ymin).max(1e-300);
    let mut grid = vec![vec![b' '; cols]; rows];
    for (x, y) in xs.iter().zip(ys.iter()) {
        let c = (((x - xmin) / (xmax - xmin)) * (cols - 1) as f64).round() as usize;
        let r = (((ymax - y) / yspan) * (rows - 1) as f64).round() as usize;
        grid[r.min(rows - 1)][c.min(cols - 1)] = b'*';
    }
    let mut s = format!("{title}  [y: {ymin:.4e} .. {ymax:.4e}]\n");
    for row in grid {
        s.push('|');
        s.push_str(std::str::from_utf8(&row).expect("ascii"));
        s.push('\n');
    }
    s.push('+');
    s.push_str(&"-".repeat(cols));
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let p = write_csv(
            "unit_test.csv",
            &["a", "b"],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
        );
        let text = fs::read_to_string(p).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn ascii_plot_contains_points() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let plot = ascii_plot("sine", &xs, &ys, 60, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains("sine"));
    }

    #[test]
    fn ascii_plot_degenerate_input() {
        let plot = ascii_plot("empty", &[], &[], 10, 5);
        assert!(plot.contains("insufficient"));
    }
}
