//! CSV/JSON output and ASCII plotting for the `repro` and `wampde-cli`
//! binaries.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory figure data is written to (`target/repro`).
///
/// # Panics
///
/// Panics when the directory cannot be created.
pub fn repro_dir() -> PathBuf {
    let dir = PathBuf::from("target/repro");
    fs::create_dir_all(&dir).expect("create target/repro");
    dir
}

/// Renders a header and f64 rows to CSV text (9-significant-digit
/// engineering notation, the workspace's artifact format).
pub fn csv_string(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut s = String::new();
    s.push_str(&header.join(","));
    s.push('\n');
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.9e}")).collect();
        s.push_str(&line.join(","));
        s.push('\n');
    }
    s
}

/// Writes a CSV file into `dir`, creating the directory if needed.
///
/// # Errors
///
/// Any I/O failure creating the directory or writing the file.
pub fn write_csv_in(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<f64>],
) -> io::Result<PathBuf> {
    write_text_in(dir, name, &csv_string(header, rows))
}

/// Writes a text artifact (e.g. a rendered JSON manifest) into `dir`,
/// creating the directory if needed.
///
/// # Errors
///
/// Any I/O failure creating the directory or writing the file.
pub fn write_text_in(dir: &Path, name: &str, contents: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, contents)?;
    Ok(path)
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes a CSV file with a header row and one row per record into
/// [`repro_dir`].
///
/// # Panics
///
/// Panics on I/O failure (the repro binary treats that as fatal).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<f64>]) -> PathBuf {
    write_csv_in(&repro_dir(), name, header, rows).expect("write csv")
}

/// Renders a quick ASCII line plot (rows × cols characters) of `ys(xs)`.
pub fn ascii_plot(title: &str, xs: &[f64], ys: &[f64], cols: usize, rows: usize) -> String {
    if xs.len() < 2 || ys.len() != xs.len() {
        return format!("{title}: (insufficient data)\n");
    }
    let xmin = xs.first().copied().unwrap_or(0.0);
    let xmax = xs.last().copied().unwrap_or(1.0);
    let ymin = ys.iter().fold(f64::INFINITY, |m, v| m.min(*v));
    let ymax = ys.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v));
    let yspan = (ymax - ymin).max(1e-300);
    let mut grid = vec![vec![b' '; cols]; rows];
    for (x, y) in xs.iter().zip(ys.iter()) {
        let c = (((x - xmin) / (xmax - xmin)) * (cols - 1) as f64).round() as usize;
        let r = (((ymax - y) / yspan) * (rows - 1) as f64).round() as usize;
        grid[r.min(rows - 1)][c.min(cols - 1)] = b'*';
    }
    let mut s = format!("{title}  [y: {ymin:.4e} .. {ymax:.4e}]\n");
    for row in grid {
        s.push('|');
        s.push_str(std::str::from_utf8(&row).expect("ascii"));
        s.push('\n');
    }
    s.push('+');
    s.push_str(&"-".repeat(cols));
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let p = write_csv(
            "unit_test.csv",
            &["a", "b"],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
        );
        let text = fs::read_to_string(p).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn ascii_plot_contains_points() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let plot = ascii_plot("sine", &xs, &ys, 60, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains("sine"));
    }

    #[test]
    fn ascii_plot_degenerate_input() {
        let plot = ascii_plot("empty", &[], &[], 10, 5);
        assert!(plot.contains("insufficient"));
    }

    #[test]
    fn csv_string_matches_file_format() {
        let text = csv_string(&["a", "b"], &[vec![1.0, 2.0]]);
        assert_eq!(text, "a,b\n1.000000000e0,2.000000000e0\n");
    }

    #[test]
    fn write_text_in_creates_directory() {
        let dir = repro_dir().join("nested_out_test");
        let p = write_text_in(&dir, "m.json", "{}").unwrap();
        assert_eq!(fs::read_to_string(p).unwrap(), "{}");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }
}
