//! End-to-end tests of the sweep-service determinism invariants,
//! driving the real `wampde-cli` binary:
//!
//! * cold run and warm-cache rerun produce byte-identical artifacts;
//! * a sweep killed mid-run resumes (same cache) to byte-identical
//!   artifacts — whatever instant the kill landed at, because cache
//!   entries are written atomically and partial entries read as misses;
//! * a 1-shard run and a merged 4-shard run produce byte-identical
//!   aggregates.
//!
//! The tests use a cheap sine-driven RC deck so the full matrix stays
//! fast even in debug builds; the invariants are deck-independent.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const CLI: &str = env!("CARGO_BIN_EXE_wampde-cli");

/// Sine-driven RC low-pass, 6-point resistance sweep: 6 independent
/// transient jobs whose results differ per grid point.
const DECK: &str = "V1 in 0 SIN(0 5 1k)\n\
                    R1 in out 1k\n\
                    C1 out 0 1u\n\
                    .tran 2m dt=20u\n\
                    .sweep R1 1k 3k 6\n";

/// The aggregate artifacts whose bytes the invariants are stated over.
const AGGREGATES: &[&str] = &[
    "rc_sweep_tran0_summary.csv",
    "rc_sweep_tran0_waveforms.csv",
    "rc_sweep_manifest.json",
];

/// Fresh per-test scratch directory under the cargo-managed tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("sweep_service_{tag}"));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes the test deck and returns its path.
fn write_deck(dir: &Path, text: &str) -> PathBuf {
    let path = dir.join("rc_sweep.ckt");
    fs::write(&path, text).expect("write deck");
    path
}

fn run_cli(args: &[&str]) -> std::process::Output {
    let out = Command::new(CLI)
        .args(args)
        .output()
        .expect("spawn wampde-cli");
    assert!(
        out.status.success(),
        "wampde-cli {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn assert_identical(dir_a: &Path, dir_b: &Path, names: &[&str]) {
    for name in names {
        let a = fs::read(dir_a.join(name)).unwrap_or_else(|e| panic!("read {name} in A: {e}"));
        let b = fs::read(dir_b.join(name)).unwrap_or_else(|e| panic!("read {name} in B: {e}"));
        assert!(a == b, "{name} differs between {dir_a:?} and {dir_b:?}");
    }
}

fn p(path: &Path) -> String {
    path.display().to_string()
}

#[test]
fn warm_cache_rerun_is_byte_identical_to_cold() {
    let dir = scratch("warm");
    let deck = write_deck(&dir, DECK);
    let cache = dir.join("cache");
    let cold_out = dir.join("cold");
    let warm_out = dir.join("warm");

    run_cli(&[
        &p(&deck),
        "--jobs",
        "2",
        "--out",
        &p(&cold_out),
        "--cache-dir",
        &p(&cache),
    ]);
    let warm = run_cli(&[
        &p(&deck),
        "--jobs",
        "3",
        "--out",
        &p(&warm_out),
        "--cache-dir",
        &p(&cache),
    ]);
    let stdout = String::from_utf8_lossy(&warm.stdout).to_string();
    assert!(
        stdout.contains("(0 computed, 6 cached)"),
        "warm rerun must be fully cache-served:\n{stdout}"
    );
    // Byte-identity across cold vs warm AND across --jobs 2 vs 3.
    assert_identical(&cold_out, &warm_out, AGGREGATES);
}

#[test]
fn sweep_killed_mid_run_resumes_to_identical_bytes() {
    let dir = scratch("kill");
    // Longer transients so the first attempt has real work to be killed
    // in the middle of. Whatever instant the kill lands at (including
    // after completion on a fast machine), the invariant must hold.
    let deck_text = DECK.replace(".tran 2m dt=20u", ".tran 20m dt=5u");
    let deck = write_deck(&dir, &deck_text);
    let cache = dir.join("cache");
    let killed_out = dir.join("killed");
    let resumed_out = dir.join("resumed");
    let reference_out = dir.join("reference");

    let mut child = Command::new(CLI)
        .args([
            &p(&deck),
            "--jobs",
            "2",
            "--out",
            &p(&killed_out),
            "--cache-dir",
            &p(&cache),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn wampde-cli");
    std::thread::sleep(std::time::Duration::from_millis(400));
    child.kill().ok();
    child.wait().expect("reap killed run");

    // Resume with the same cache: only missing jobs recompute.
    run_cli(&[
        &p(&deck),
        "--jobs",
        "2",
        "--out",
        &p(&resumed_out),
        "--cache-dir",
        &p(&cache),
    ]);
    // Reference: a clean run that never saw the interrupted cache.
    run_cli(&[
        &p(&deck),
        "--jobs",
        "2",
        "--out",
        &p(&reference_out),
        "--no-cache",
    ]);
    assert_identical(&resumed_out, &reference_out, AGGREGATES);
}

#[test]
fn one_shard_and_four_shard_merge_are_byte_identical() {
    let dir = scratch("shards");
    let deck = write_deck(&dir, DECK);
    let direct_out = dir.join("direct");
    let shard_out = dir.join("shards");
    let merged_out = dir.join("merged");

    run_cli(&[
        &p(&deck),
        "--jobs",
        "2",
        "--out",
        &p(&direct_out),
        "--no-cache",
    ]);
    let mut manifests = Vec::new();
    for k in 0..4 {
        run_cli(&[
            &p(&deck),
            "--jobs",
            "2",
            "--shards",
            "4",
            "--shard-index",
            &k.to_string(),
            "--out",
            &p(&shard_out),
            "--no-cache",
        ]);
        manifests.push(shard_out.join(format!("rc_sweep_shard{k}of4_manifest.json")));
        // A sharded run writes shard artifacts only, no aggregates.
        assert!(!shard_out.join("rc_sweep_manifest.json").exists());
    }
    let mut args: Vec<String> = vec!["merge".into()];
    args.extend(manifests.iter().map(|m| p(m)));
    args.push("--out".into());
    args.push(p(&merged_out));
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    run_cli(&arg_refs);
    assert_identical(&direct_out, &merged_out, AGGREGATES);
}

#[test]
fn batched_runs_are_byte_identical_for_any_jobs_and_shards() {
    // Batched execution (continuation chains, the default) must keep the
    // determinism invariant: aggregates are byte-identical for any
    // --jobs count and any shard layout after merge.
    let dir = scratch("batched");
    let deck = write_deck(&dir, DECK);
    let outs: Vec<PathBuf> = ["j1", "j4", "j8"].iter().map(|t| dir.join(t)).collect();
    for (out, jobs) in outs.iter().zip(["1", "4", "8"]) {
        run_cli(&[&p(&deck), "--jobs", jobs, "--out", &p(out), "--no-cache"]);
    }
    assert_identical(&outs[0], &outs[1], AGGREGATES);
    assert_identical(&outs[0], &outs[2], AGGREGATES);

    // A 2-shard layout recomputes non-owned chain positions as warm-up
    // but records owned jobs only; the merge must match bit-for-bit.
    let shard_out = dir.join("shards");
    let merged_out = dir.join("merged");
    let mut args: Vec<String> = vec!["merge".into()];
    for k in 0..2 {
        run_cli(&[
            &p(&deck),
            "--jobs",
            "4",
            "--shards",
            "2",
            "--shard-index",
            &k.to_string(),
            "--out",
            &p(&shard_out),
            "--no-cache",
        ]);
        args.push(p(
            &shard_out.join(format!("rc_sweep_shard{k}of2_manifest.json"))
        ));
    }
    args.push("--out".into());
    args.push(p(&merged_out));
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    run_cli(&arg_refs);
    assert_identical(&outs[0], &merged_out, AGGREGATES);
}

#[test]
fn warm_chains_agree_with_cold_jobs_within_solver_tolerance() {
    // On the paper's VCO control sweep, continuation warm starts change
    // the Newton iterate sequence but must converge to the same physics:
    // every non-counter summary metric agrees with the cold-start run to
    // solver tolerance.
    let dir = scratch("chain_tol");
    let deck = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/decks/vco_sweep.ckt");
    let warm_out = dir.join("warm");
    let cold_out = dir.join("cold");
    run_cli(&[
        &p(&deck),
        "--jobs",
        "4",
        "--out",
        &p(&warm_out),
        "--no-cache",
    ]);
    run_cli(&[
        &p(&deck),
        "--jobs",
        "4",
        "--out",
        &p(&cold_out),
        "--no-cache",
        "--no-warm-start",
    ]);
    // Counters legitimately differ (that is the point of warm starts).
    let counters = [
        "iterations",
        "newton_iters",
        "steps",
        "rejected",
        "factorisations",
        "symbolic_reuses",
    ];
    for name in [
        "vco_sweep_shooting0_summary.csv",
        "vco_sweep_wampde1_summary.csv",
    ] {
        let warm = fs::read_to_string(warm_out.join(name)).expect("warm summary");
        let cold = fs::read_to_string(cold_out.join(name)).expect("cold summary");
        let header: Vec<&str> = warm.lines().next().expect("header").split(',').collect();
        assert_eq!(
            header,
            cold.lines().next().unwrap().split(',').collect::<Vec<_>>()
        );
        for (wline, cline) in warm.lines().skip(1).zip(cold.lines().skip(1)) {
            for ((col, w), c) in header.iter().zip(wline.split(',')).zip(cline.split(',')) {
                if counters.contains(col) {
                    continue;
                }
                let (w, c): (f64, f64) = (w.parse().unwrap(), c.parse().unwrap());
                assert!(
                    (w - c).abs() <= 1e-6 * w.abs().max(c.abs()) + 1e-9,
                    "{name} {col}: warm {w} vs cold {c}"
                );
            }
        }
    }
}

#[test]
fn merge_rejects_an_incomplete_shard_set() {
    let dir = scratch("incomplete");
    let deck = write_deck(&dir, DECK);
    let shard_out = dir.join("shards");
    run_cli(&[
        &p(&deck),
        "--jobs",
        "2",
        "--shards",
        "4",
        "--shard-index",
        "0",
        "--out",
        &p(&shard_out),
        "--no-cache",
    ]);
    let manifest = shard_out.join("rc_sweep_shard0of4_manifest.json");
    let out = Command::new(CLI)
        .args(["merge", &p(&manifest), "--out", &p(&dir.join("merged"))])
        .output()
        .expect("spawn wampde-cli");
    assert!(!out.status.success(), "merging 1 of 4 shards must fail");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("missing"), "{stderr}");
}

#[test]
fn corrupt_cache_entries_are_recomputed_not_trusted() {
    let dir = scratch("corrupt");
    let deck = write_deck(&dir, DECK);
    let cache = dir.join("cache");
    let cold_out = dir.join("cold");
    let after_out = dir.join("after");

    run_cli(&[
        &p(&deck),
        "--jobs",
        "2",
        "--out",
        &p(&cold_out),
        "--cache-dir",
        &p(&cache),
    ]);
    // Truncate every cache entry to simulate torn writes / disk
    // corruption: all of them must read as misses, never as results.
    let mut truncated = 0;
    for entry in fs::read_dir(&cache).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "sweepres") {
            let text = fs::read_to_string(&path).expect("read entry");
            fs::write(&path, &text[..text.len() / 2]).expect("truncate entry");
            truncated += 1;
        }
    }
    assert_eq!(truncated, 6, "one cache entry per job");
    let rerun = run_cli(&[
        &p(&deck),
        "--jobs",
        "2",
        "--out",
        &p(&after_out),
        "--cache-dir",
        &p(&cache),
    ]);
    let stdout = String::from_utf8_lossy(&rerun.stdout).to_string();
    assert!(
        stdout.contains("(6 computed, 0 cached)"),
        "corrupt entries must all recompute:\n{stdout}"
    );
    assert_identical(&cold_out, &after_out, AGGREGATES);
}
