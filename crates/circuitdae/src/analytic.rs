//! Hand-written analytic DAEs used for validation and examples.

use crate::dae::Dae;
use crate::waveform::Waveform;
use numkit::DMat;

/// The van der Pol oscillator in first-order DAE form:
///
/// ```text
/// x1' = x2
/// x2' = μ(1 − x1²)x2 − x1 + forcing(t)
/// ```
///
/// Mapped onto `d/dt q + f = b` with `q = x` (identity mass),
/// `f = (−x2, −μ(1−x1²)x2 + x1)`, `b = (0, forcing(t))`.
///
/// For small `μ` the period is `≈ 2π·(1 + μ²/16)` and the amplitude `≈ 2`,
/// which the shooting/HB tests check against.
///
/// # Example
///
/// ```
/// use circuitdae::analytic::VanDerPol;
/// use circuitdae::Dae;
///
/// let vdp = VanDerPol::unforced(0.5);
/// assert_eq!(vdp.dim(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VanDerPol {
    /// Nonlinearity parameter `μ > 0`.
    pub mu: f64,
    /// Additive forcing applied to the velocity equation.
    pub forcing: Waveform,
}

impl VanDerPol {
    /// Unforced oscillator.
    pub fn unforced(mu: f64) -> Self {
        VanDerPol {
            mu,
            forcing: Waveform::Dc(0.0),
        }
    }

    /// Sinusoidally forced oscillator (`amplitude·sin(2π·freq_hz·t)`).
    pub fn forced(mu: f64, amplitude: f64, freq_hz: f64) -> Self {
        VanDerPol {
            mu,
            forcing: Waveform::sine(0.0, amplitude, freq_hz),
        }
    }

    /// Small-`μ` asymptotic period `2π(1 + μ²/16)`.
    pub fn approx_period(&self) -> f64 {
        2.0 * std::f64::consts::PI * (1.0 + self.mu * self.mu / 16.0)
    }
}

impl Dae for VanDerPol {
    fn dim(&self) -> usize {
        2
    }

    fn eval_q(&self, x: &[f64], out: &mut [f64]) {
        out[0] = x[0];
        out[1] = x[1];
    }

    fn eval_f(&self, x: &[f64], out: &mut [f64]) {
        out[0] = -x[1];
        out[1] = -self.mu * (1.0 - x[0] * x[0]) * x[1] + x[0];
    }

    fn eval_b(&self, t: f64, out: &mut [f64]) {
        out[0] = 0.0;
        out[1] = self.forcing.eval(t);
    }

    fn jac_q(&self, _x: &[f64], out: &mut DMat) {
        out.fill_zero();
        out[(0, 0)] = 1.0;
        out[(1, 1)] = 1.0;
    }

    fn jac_f(&self, x: &[f64], out: &mut DMat) {
        out.fill_zero();
        out[(0, 1)] = -1.0;
        out[(1, 0)] = 2.0 * self.mu * x[0] * x[1] + 1.0;
        out[(1, 1)] = -self.mu * (1.0 - x[0] * x[0]);
    }

    fn var_names(&self) -> Vec<String> {
        vec!["x".into(), "xdot".into()]
    }
}

/// A linear damped oscillator `x'' + 2ζω x' + ω² x = A·sin(2π f t)` with a
/// closed-form solution — the convergence-order reference for the
/// transient integrators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearOscillator {
    /// Natural angular frequency ω (rad/s).
    pub omega: f64,
    /// Damping ratio ζ.
    pub zeta: f64,
    /// Forcing amplitude.
    pub amplitude: f64,
    /// Forcing frequency (Hz).
    pub freq_hz: f64,
}

impl LinearOscillator {
    /// Undamped, unforced oscillator at angular frequency `omega`.
    pub fn undamped(omega: f64) -> Self {
        LinearOscillator {
            omega,
            zeta: 0.0,
            amplitude: 0.0,
            freq_hz: 0.0,
        }
    }

    /// Exact unforced solution from `x(0) = x0, x'(0) = 0` (underdamped).
    ///
    /// # Panics
    ///
    /// Panics when `zeta >= 1` (not underdamped).
    pub fn exact_unforced(&self, x0: f64, t: f64) -> f64 {
        assert!(
            self.zeta < 1.0,
            "exact solution implemented for underdamped case"
        );
        let wd = self.omega * (1.0 - self.zeta * self.zeta).sqrt();
        let decay = (-self.zeta * self.omega * t).exp();
        decay * x0 * ((wd * t).cos() + self.zeta * self.omega / wd * (wd * t).sin())
    }
}

impl Dae for LinearOscillator {
    fn dim(&self) -> usize {
        2
    }

    fn eval_q(&self, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&x[..2]);
    }

    fn eval_f(&self, x: &[f64], out: &mut [f64]) {
        out[0] = -x[1];
        out[1] = 2.0 * self.zeta * self.omega * x[1] + self.omega * self.omega * x[0];
    }

    fn eval_b(&self, t: f64, out: &mut [f64]) {
        out[0] = 0.0;
        out[1] = self.amplitude * (2.0 * std::f64::consts::PI * self.freq_hz * t).sin();
    }

    fn jac_q(&self, _x: &[f64], out: &mut DMat) {
        out.fill_zero();
        out[(0, 0)] = 1.0;
        out[(1, 1)] = 1.0;
    }

    fn jac_f(&self, _x: &[f64], out: &mut DMat) {
        out.fill_zero();
        out[(0, 1)] = -1.0;
        out[(1, 0)] = self.omega * self.omega;
        out[(1, 1)] = 2.0 * self.zeta * self.omega;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dae::{check_jacobians, dae_residual};

    #[test]
    fn vdp_jacobians_consistent() {
        let vdp = VanDerPol::unforced(1.3);
        assert!(check_jacobians(&vdp, &[0.8, -1.1]) < 1e-7);
        let forced = VanDerPol::forced(0.5, 0.3, 1.0);
        assert!(check_jacobians(&forced, &[2.0, 0.1]) < 1e-7);
    }

    #[test]
    fn vdp_equilibrium_residual_zero() {
        let vdp = VanDerPol::unforced(1.0);
        let r = dae_residual(&vdp, 0.0, &[0.0, 0.0], &[0.0, 0.0]);
        assert!(r.iter().all(|v| v.abs() < 1e-15));
    }

    #[test]
    fn vdp_approx_period_small_mu() {
        let vdp = VanDerPol::unforced(0.1);
        assert!((vdp.approx_period() - 2.0 * std::f64::consts::PI).abs() < 0.01);
    }

    #[test]
    fn linear_oscillator_jacobians() {
        let lo = LinearOscillator {
            omega: 2.0,
            zeta: 0.1,
            amplitude: 1.0,
            freq_hz: 0.5,
        };
        assert!(check_jacobians(&lo, &[0.3, -0.2]) < 1e-7);
    }

    #[test]
    fn linear_oscillator_exact_solution_satisfies_dae() {
        let lo = LinearOscillator {
            omega: 3.0,
            zeta: 0.2,
            amplitude: 0.0,
            freq_hz: 0.0,
        };
        // Finite-difference the exact solution and plug into the residual.
        let t = 0.37;
        let h = 1e-6;
        let x0 = 1.5;
        let x = lo.exact_unforced(x0, t);
        let xdot = (lo.exact_unforced(x0, t + h) - lo.exact_unforced(x0, t - h)) / (2.0 * h);
        let xddot =
            (lo.exact_unforced(x0, t + h) - 2.0 * x + lo.exact_unforced(x0, t - h)) / (h * h);
        let r = dae_residual(&lo, t, &[x, xdot], &[xdot, xddot]);
        assert!(r[0].abs() < 1e-6);
        assert!(r[1].abs() < 1e-3); // second difference is noisier
    }
}
