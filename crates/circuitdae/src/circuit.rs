//! Modified-nodal-analysis circuit builder.

use crate::dae::{Dae, Pattern};
use crate::device::{Device, Stamper};
use numkit::DMat;
use sparsekit::Triplets;
use std::fmt;

/// A circuit node handle.
///
/// `Node(0)` is ground (not an unknown); handles are produced by
/// [`Circuit::node`] so indices always refer to the circuit that created
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node(usize);

impl Node {
    /// The index of this node's voltage among the unknowns, or `None` for
    /// ground.
    #[inline]
    pub fn unknown_index(self) -> Option<usize> {
        self.0.checked_sub(1)
    }

    /// Constructs a node handle from a raw index (`0` = ground).
    ///
    /// Exposed for tests and generated circuits; prefer [`Circuit::node`].
    pub fn from_raw(raw: usize) -> Self {
        Node(raw)
    }
}

/// Errors from circuit construction.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A device references a node that this circuit never created.
    UnknownNode {
        /// The offending raw node index.
        node: usize,
    },
    /// A node has no device attached, which would make the system singular.
    FloatingNode {
        /// Name of the unconnected node.
        name: String,
    },
    /// The circuit has no devices.
    Empty,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode { node } => {
                write!(f, "device references unknown node index {node}")
            }
            CircuitError::FloatingNode { name } => {
                write!(f, "node '{name}' has no device attached")
            }
            CircuitError::Empty => write!(f, "circuit contains no devices"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// A SPICE-style circuit under construction.
///
/// Create nodes with [`Circuit::node`], attach [`Device`]s with
/// [`Circuit::add`], then [`Circuit::build`] a [`CircuitDae`] that
/// implements the [`Dae`] trait consumed by every engine in the workspace.
///
/// # Example
///
/// ```
/// use circuitdae::{Circuit, Device, Dae};
///
/// let mut ckt = Circuit::new();
/// let tank = ckt.node("tank");
/// ckt.add(Device::capacitor(tank, Circuit::GND, 4.5e-9));
/// ckt.add(Device::inductor(tank, Circuit::GND, 1e-5));
/// ckt.add(Device::cubic_conductor(tank, Circuit::GND, 2e-3, 2e-3 / 3.0));
/// let dae = ckt.build().unwrap();
/// assert_eq!(dae.dim(), 2); // tank voltage + inductor current
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    devices: Vec<Device>,
}

impl Circuit {
    /// The ground node (reference, not an unknown).
    pub const GND: Node = Node(0);

    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Creates a named node and returns its handle.
    pub fn node(&mut self, name: impl Into<String>) -> Node {
        self.node_names.push(name.into());
        Node(self.node_names.len())
    }

    /// Number of non-ground nodes created so far.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Attaches a device.
    pub fn add(&mut self, device: Device) {
        self.devices.push(device);
    }

    /// The devices attached so far, in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable access to device `index` (insertion order), for applying
    /// parameter overrides before [`Circuit::build`] — the substrate of
    /// deck-driven sweeps.
    pub fn device_mut(&mut self, index: usize) -> Option<&mut Device> {
        self.devices.get_mut(index)
    }

    /// Finalises the circuit into a [`CircuitDae`].
    ///
    /// # Errors
    ///
    /// * [`CircuitError::Empty`] — no devices;
    /// * [`CircuitError::UnknownNode`] — a device references a node index
    ///   this circuit never created;
    /// * [`CircuitError::FloatingNode`] — a created node has no device.
    pub fn build(self) -> Result<CircuitDae, CircuitError> {
        if self.devices.is_empty() {
            return Err(CircuitError::Empty);
        }
        let n_nodes = self.node_names.len();
        let mut touched = vec![false; n_nodes];
        for d in &self.devices {
            for n in d.nodes() {
                if n.0 > n_nodes {
                    return Err(CircuitError::UnknownNode { node: n.0 });
                }
                if let Some(i) = n.unknown_index() {
                    touched[i] = true;
                }
            }
        }
        if let Some(i) = touched.iter().position(|t| !t) {
            return Err(CircuitError::FloatingNode {
                name: self.node_names[i].clone(),
            });
        }

        // Assign extra-unknown offsets after the node voltages.
        let mut offset = n_nodes;
        let mut placed = Vec::with_capacity(self.devices.len());
        let mut names: Vec<String> = self.node_names.iter().map(|n| format!("v({n})")).collect();
        for (k, d) in self.devices.into_iter().enumerate() {
            let extras = d.n_extras();
            match d {
                Device::Inductor { .. } => names.push(format!("i(L{k})")),
                Device::VoltageSource { .. } => names.push(format!("i(V{k})")),
                Device::MemsVaractor { .. } => {
                    names.push(format!("y(M{k})"));
                    names.push(format!("u(M{k})"));
                }
                _ => {}
            }
            placed.push((d, offset));
            offset += extras;
        }

        Ok(CircuitDae {
            dim: offset,
            devices: placed,
            names,
        })
    }
}

/// A finalised circuit implementing [`Dae`].
#[derive(Debug, Clone)]
pub struct CircuitDae {
    dim: usize,
    devices: Vec<(Device, usize)>,
    names: Vec<String>,
}

impl CircuitDae {
    /// Devices and their extra-unknown offsets (read-only inspection).
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter().map(|(d, _)| d)
    }

    /// Index of the extra unknowns of device `k` (in insertion order),
    /// if it has any. Used by tests and post-processing to locate, e.g.,
    /// the MEMS plate displacement.
    pub fn extra_offset(&self, device_index: usize) -> Option<usize> {
        let (d, off) = self.devices.get(device_index)?;
        if d.n_extras() > 0 {
            Some(*off)
        } else {
            None
        }
    }

    /// The circuit with every time-dependent source and control waveform
    /// frozen at its value at time `t` — the *unforced* companion system.
    ///
    /// Freezing changes no device topology, so the returned DAE has the
    /// same dimension and unknown ordering; only `b(t)` becomes constant.
    /// This is how deck-driven WaMPDE runs obtain the oscillator whose
    /// periodic steady state seeds the envelope (paper §4.1: the natural
    /// initial condition is the unforced solution at `t = 0`).
    pub fn frozen_at(&self, t: f64) -> CircuitDae {
        CircuitDae {
            dim: self.dim,
            devices: self
                .devices
                .iter()
                .map(|(d, off)| (d.frozen_at(t), *off))
                .collect(),
            names: self.names.clone(),
        }
    }

    /// Stamps one per-device triplet pass with the device list split
    /// into contiguous chunks across up to `threads` scoped threads.
    ///
    /// Each chunk stamps into its own arena; arenas are merged into
    /// `out` in chunk (= device insertion) order, so the entry sequence
    /// is identical to the serial loop and downstream CSR/CSC
    /// conversions stay bitwise identical at every thread count. Each
    /// device's stamp values depend only on `x`, never on other
    /// devices, so the values themselves are unchanged too.
    fn stamp_jac_partitioned(
        &self,
        x: &[f64],
        out: &mut Triplets,
        threads: usize,
        stamp: fn(&Device, &Stamper<'_>, usize, &mut Triplets),
    ) {
        let workers = threads.min(self.devices.len());
        if workers <= 1 {
            let st = Stamper { x };
            for (d, off) in &self.devices {
                stamp(d, &st, *off, out);
            }
            return;
        }
        let chunk = self.devices.len().div_ceil(workers);
        let mut arenas: Vec<Triplets> = self
            .devices
            .chunks(chunk)
            .map(|_| Triplets::new(out.nrows(), out.ncols()))
            .collect();
        std::thread::scope(|scope| {
            let obs = obskit::current();
            for (devs, arena) in self.devices.chunks(chunk).zip(arenas.iter_mut()) {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _obs = obs.map(obskit::install_handle);
                    let st = Stamper { x };
                    for (d, off) in devs {
                        stamp(d, &st, *off, arena);
                    }
                });
            }
        });
        obskit::counter_add("stamp.parallel_partitions", arenas.len() as u64);
        for arena in &arenas {
            out.append(arena);
        }
    }
}

impl Dae for CircuitDae {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval_q(&self, x: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let st = Stamper { x };
        for (d, off) in &self.devices {
            d.stamp_q(&st, *off, out);
        }
    }

    fn eval_f(&self, x: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let st = Stamper { x };
        for (d, off) in &self.devices {
            d.stamp_f(&st, *off, out);
        }
    }

    fn eval_b(&self, t: f64, out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        for (d, off) in &self.devices {
            d.stamp_b(t, *off, out);
        }
    }

    fn jac_q(&self, x: &[f64], out: &mut DMat) {
        out.fill_zero();
        let st = Stamper { x };
        for (d, off) in &self.devices {
            d.stamp_jac_q(&st, *off, out);
        }
    }

    fn jac_f(&self, x: &[f64], out: &mut DMat) {
        out.fill_zero();
        let st = Stamper { x };
        for (d, off) in &self.devices {
            d.stamp_jac_f(&st, *off, out);
        }
    }

    fn var_names(&self) -> Vec<String> {
        self.names.clone()
    }

    fn sparsity(&self) -> Pattern {
        // Device triplet stamps push every structural position regardless
        // of value, so one stamp at x = 0 reveals the full pattern.
        let x = vec![0.0; self.dim];
        let mut t = Triplets::new(self.dim, self.dim);
        self.jac_q_triplets(&x, &mut t);
        self.jac_f_triplets(&x, &mut t);
        Pattern::from_entries(self.dim, t.iter().map(|(r, c, _)| (r, c)).collect())
    }

    fn jac_q_triplets(&self, x: &[f64], out: &mut Triplets) {
        self.stamp_jac_partitioned(x, out, 1, Device::stamp_jac_q_trip);
    }

    fn jac_f_triplets(&self, x: &[f64], out: &mut Triplets) {
        self.stamp_jac_partitioned(x, out, 1, Device::stamp_jac_f_trip);
    }

    fn jac_q_triplets_threads(&self, x: &[f64], out: &mut Triplets, threads: usize) {
        self.stamp_jac_partitioned(x, out, threads, Device::stamp_jac_q_trip);
    }

    fn jac_f_triplets_threads(&self, x: &[f64], out: &mut Triplets, threads: usize) {
        self.stamp_jac_partitioned(x, out, threads, Device::stamp_jac_f_trip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dae::check_jacobians;
    use crate::device::MemsParams;
    use crate::waveform::Waveform;

    fn rc_circuit() -> CircuitDae {
        let mut ckt = Circuit::new();
        let n = ckt.node("out");
        ckt.add(Device::resistor(n, Circuit::GND, 2.0));
        ckt.add(Device::capacitor(n, Circuit::GND, 3.0));
        ckt.add(Device::current_source(Circuit::GND, n, Waveform::Dc(1.0)));
        ckt.build().unwrap()
    }

    #[test]
    fn rc_values() {
        let dae = rc_circuit();
        let x = [4.0];
        let mut q = [0.0];
        let mut f = [0.0];
        let mut b = [0.0];
        dae.eval_q(&x, &mut q);
        dae.eval_f(&x, &mut f);
        dae.eval_b(0.0, &mut b);
        assert_eq!(q[0], 12.0); // C·v
        assert_eq!(f[0], 2.0); // v/R
        assert_eq!(b[0], 1.0); // injected current
    }

    #[test]
    fn empty_circuit_rejected() {
        assert_eq!(Circuit::new().build().unwrap_err(), CircuitError::Empty);
    }

    #[test]
    fn floating_node_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let _b = ckt.node("floating");
        ckt.add(Device::resistor(a, Circuit::GND, 1.0));
        assert!(matches!(
            ckt.build(),
            Err(CircuitError::FloatingNode { .. })
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut ckt = Circuit::new();
        let _a = ckt.node("a");
        ckt.add(Device::resistor(Node::from_raw(5), Circuit::GND, 1.0));
        assert!(matches!(
            ckt.build(),
            Err(CircuitError::UnknownNode { node: 5 })
        ));
    }

    #[test]
    fn lc_tank_dimensions_and_names() {
        let mut ckt = Circuit::new();
        let t = ckt.node("tank");
        ckt.add(Device::capacitor(t, Circuit::GND, 1e-9));
        ckt.add(Device::inductor(t, Circuit::GND, 1e-5));
        let dae = ckt.build().unwrap();
        assert_eq!(dae.dim(), 2);
        let names = dae.var_names();
        assert_eq!(names[0], "v(tank)");
        assert!(names[1].starts_with("i(L"));
    }

    #[test]
    fn voltage_source_rows() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Device::voltage_source(a, Circuit::GND, Waveform::Dc(5.0)));
        ckt.add(Device::resistor(a, Circuit::GND, 10.0));
        let dae = ckt.build().unwrap();
        // x = [v_a, i_src]; residual f - b at solution v=5, i=-0.5 is zero.
        let x = [5.0, -0.5];
        let mut f = [0.0; 2];
        let mut b = [0.0; 2];
        dae.eval_f(&x, &mut f);
        dae.eval_b(0.0, &mut b);
        assert!((f[0] - b[0]).abs() < 1e-12);
        assert!((f[1] - b[1]).abs() < 1e-12);
    }

    #[test]
    fn frozen_at_keeps_dimension_and_stills_forcing() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Device::resistor(a, Circuit::GND, 1e3));
        ckt.add(Device::current_source(
            Circuit::GND,
            a,
            Waveform::sine(0.0, 1e-3, 1e3),
        ));
        let dae = ckt.build().unwrap();
        let frozen = dae.frozen_at(0.25e-3); // sine peak
        assert_eq!(frozen.dim(), dae.dim());
        assert_eq!(frozen.var_names(), dae.var_names());
        let mut b0 = [0.0];
        let mut b1 = [0.0];
        frozen.eval_b(0.0, &mut b0);
        frozen.eval_b(7.7, &mut b1);
        assert!((b0[0] - 1e-3).abs() < 1e-12);
        assert_eq!(b0, b1);
    }

    #[test]
    fn device_mut_applies_override() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Device::resistor(a, Circuit::GND, 1.0));
        ckt.add(Device::capacitor(a, Circuit::GND, 1.0));
        ckt.device_mut(0).unwrap().set_param(None, 2.0).unwrap();
        assert!(ckt.device_mut(5).is_none());
        assert_eq!(ckt.devices()[0], Device::resistor(a, Circuit::GND, 2.0));
    }

    #[test]
    fn jacobians_match_fd_linear_devices() {
        let dae = rc_circuit();
        assert!(check_jacobians(&dae, &[0.7]) < 1e-7);
    }

    #[test]
    fn jacobians_match_fd_nonlinear_vco() {
        let mut ckt = Circuit::new();
        let t = ckt.node("tank");
        ckt.add(Device::capacitor(t, Circuit::GND, 4.5e-9));
        ckt.add(Device::inductor(t, Circuit::GND, 1e-5));
        ckt.add(Device::cubic_conductor(t, Circuit::GND, 2e-3, 6.7e-4));
        ckt.add(Device::tanh_conductor(t, Circuit::GND, 1e-3, 0.5, 1e-5));
        let dae = ckt.build().unwrap();
        assert!(check_jacobians(&dae, &[0.8, -0.3]) < 1e-6);
    }

    #[test]
    fn jacobians_match_fd_mems() {
        let p = MemsParams {
            c0: 5e-9,
            y0: 1.0,
            mass: 1e-12,
            damping: 3e-7,
            spring_k: 2.5,
            force_gain: 0.12,
            control: Waveform::Dc(1.5),
            tank_coupling: 0.0,
        };
        let mut ckt = Circuit::new();
        let t = ckt.node("tank");
        ckt.add(Device::inductor(t, Circuit::GND, 1e-5));
        ckt.add(Device::cubic_conductor(t, Circuit::GND, 2e-3, 6.7e-4));
        ckt.add(Device::mems_varactor(t, Circuit::GND, p));
        let dae = ckt.build().unwrap();
        // x = [v, iL, y, u]
        assert!(check_jacobians(&dae, &[1.2, -0.5, 0.3, 0.1]) < 1e-6);
    }

    #[test]
    fn jacobians_match_fd_mems_with_tank_coupling() {
        let p = MemsParams {
            c0: 5e-9,
            y0: 1.0,
            mass: 1e-12,
            damping: 3e-7,
            spring_k: 2.5,
            force_gain: 0.12,
            control: Waveform::Dc(1.5),
            tank_coupling: 0.8,
        };
        let mut ckt = Circuit::new();
        let t = ckt.node("tank");
        ckt.add(Device::inductor(t, Circuit::GND, 1e-5));
        ckt.add(Device::mems_varactor(t, Circuit::GND, p));
        let dae = ckt.build().unwrap();
        assert!(check_jacobians(&dae, &[1.2, -0.5, 0.3, 0.1]) < 1e-6);
    }

    #[test]
    fn mems_extra_offset_lookup() {
        let p = MemsParams {
            c0: 5e-9,
            y0: 1.0,
            mass: 1e-12,
            damping: 3e-7,
            spring_k: 2.5,
            force_gain: 0.12,
            control: Waveform::Dc(1.5),
            tank_coupling: 0.0,
        };
        let mut ckt = Circuit::new();
        let t = ckt.node("tank");
        ckt.add(Device::capacitor(t, Circuit::GND, 1e-9));
        ckt.add(Device::mems_varactor(t, Circuit::GND, p));
        let dae = ckt.build().unwrap();
        assert_eq!(dae.extra_offset(0), None);
        assert_eq!(dae.extra_offset(1), Some(1));
        assert_eq!(dae.dim(), 3);
    }

    #[test]
    fn diode_rectifier_jacobians() {
        // Diode + load: analytic Jacobians must match FD on both sides of
        // conduction.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Device::current_source(Circuit::GND, a, Waveform::Dc(1e-3)));
        ckt.add(Device::diode(a, Circuit::GND, 1e-14, 0.02585));
        ckt.add(Device::resistor(a, Circuit::GND, 1e6));
        let dae = ckt.build().unwrap();
        assert!(check_jacobians(&dae, &[0.55]) < 1e-5);
        assert!(check_jacobians(&dae, &[-0.4]) < 1e-6);
    }

    #[test]
    fn vccs_couples_control_to_output() {
        // gm stage: input pair drives current into a load resistor.
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Device::resistor(inp, Circuit::GND, 1e3));
        ckt.add(Device::current_source(
            Circuit::GND,
            inp,
            Waveform::Dc(1e-3),
        )); // v_in = 1
        ckt.add(Device::vccs(Circuit::GND, out, inp, Circuit::GND, 2e-3));
        ckt.add(Device::resistor(out, Circuit::GND, 500.0));
        let dae = ckt.build().unwrap();
        // Solve DC by hand-checking the residual at the expected solution:
        // v_in = 1 V, i_out = 2 mA → v_out = 1 V.
        let x = [1.0, 1.0];
        let mut f = [0.0; 2];
        let mut b = [0.0; 2];
        dae.eval_f(&x, &mut f);
        dae.eval_b(0.0, &mut b);
        assert!((f[0] - b[0]).abs() < 1e-12, "{f:?} vs {b:?}");
        assert!((f[1] - b[1]).abs() < 1e-12, "{f:?} vs {b:?}");
        assert!(check_jacobians(&dae, &[0.3, -0.2]) < 1e-6);
    }

    /// Sparse and dense Jacobian stamping must agree entrywise, and the
    /// reported pattern must cover every dense nonzero.
    fn assert_sparse_matches_dense(dae: &CircuitDae, x: &[f64]) {
        let n = dae.dim();
        let mut dense_q = DMat::zeros(n, n);
        let mut dense_f = DMat::zeros(n, n);
        dae.jac_q(x, &mut dense_q);
        dae.jac_f(x, &mut dense_f);
        let mut tq = Triplets::new(n, n);
        dae.jac_q_triplets(x, &mut tq);
        let mut tf = Triplets::new(n, n);
        dae.jac_f_triplets(x, &mut tf);
        let sq = tq.to_dense();
        let sf = tf.to_dense();
        let pattern = dae.sparsity();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (dense_q[(i, j)] - sq[(i, j)]).abs() < 1e-14,
                    "C({i},{j}): {} vs {}",
                    dense_q[(i, j)],
                    sq[(i, j)]
                );
                assert!(
                    (dense_f[(i, j)] - sf[(i, j)]).abs() < 1e-14,
                    "G({i},{j}): {} vs {}",
                    dense_f[(i, j)],
                    sf[(i, j)]
                );
                if dense_q[(i, j)] != 0.0 || dense_f[(i, j)] != 0.0 {
                    assert!(pattern.contains(i, j), "pattern misses ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn sparse_stamps_match_dense_across_devices() {
        // Covers R, C, L, GN, GT, V, I, diode, VCCS.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Device::voltage_source(a, Circuit::GND, Waveform::Dc(2.0)));
        ckt.add(Device::resistor(a, b, 1e3));
        ckt.add(Device::capacitor(b, Circuit::GND, 1e-9));
        ckt.add(Device::inductor(b, Circuit::GND, 1e-5));
        ckt.add(Device::cubic_conductor(b, Circuit::GND, 2e-3, 6.7e-4));
        ckt.add(Device::tanh_conductor(a, b, 1e-3, 0.5, 1e-5));
        ckt.add(Device::diode(a, b, 1e-14, 0.02585));
        ckt.add(Device::vccs(Circuit::GND, b, a, Circuit::GND, 2e-3));
        ckt.add(Device::current_source(Circuit::GND, a, Waveform::Dc(1e-3)));
        let dae = ckt.build().unwrap();
        let x: Vec<f64> = (0..dae.dim()).map(|i| 0.4 - 0.17 * i as f64).collect();
        assert_sparse_matches_dense(&dae, &x);
    }

    #[test]
    fn sparse_stamps_match_dense_mems_with_coupling() {
        let p = MemsParams {
            c0: 5e-9,
            y0: 1.0,
            mass: 1e-12,
            damping: 3e-7,
            spring_k: 2.5,
            force_gain: 0.12,
            control: Waveform::Dc(1.5),
            tank_coupling: 0.8,
        };
        let mut ckt = Circuit::new();
        let t = ckt.node("tank");
        ckt.add(Device::inductor(t, Circuit::GND, 1e-5));
        ckt.add(Device::mems_varactor(t, Circuit::GND, p));
        let dae = ckt.build().unwrap();
        assert_sparse_matches_dense(&dae, &[1.2, -0.5, 0.3, 0.1]);
    }

    #[test]
    fn ladder_circuit_pattern_is_genuinely_sparse() {
        let dae = crate::circuits::ring_loaded_vco(20);
        let p = dae.sparsity();
        assert!(!p.is_dense());
        assert!(p.density() < 0.25, "density {}", p.density());
        let x: Vec<f64> = (0..dae.dim()).map(|i| (0.3 * i as f64).sin()).collect();
        assert_sparse_matches_dense(&dae, &x);
    }

    #[test]
    fn partitioned_stamping_is_bitwise_identical() {
        let dae = crate::circuits::ring_loaded_vco(12);
        let x: Vec<f64> = (0..dae.dim()).map(|i| (0.3 * i as f64).sin()).collect();
        let n = dae.dim();
        let mut serial_q = Triplets::new(n, n);
        let mut serial_f = Triplets::new(n, n);
        dae.jac_q_triplets(&x, &mut serial_q);
        dae.jac_f_triplets(&x, &mut serial_f);
        for threads in [1, 2, 3, 7, 64] {
            let mut par_q = Triplets::new(n, n);
            let mut par_f = Triplets::new(n, n);
            dae.jac_q_triplets_threads(&x, &mut par_q, threads);
            dae.jac_f_triplets_threads(&x, &mut par_f, threads);
            for (serial, parallel) in [(&serial_q, &par_q), (&serial_f, &par_f)] {
                assert_eq!(serial.len(), parallel.len(), "threads={threads}");
                for ((sr, sc, sv), (pr, pc, pv)) in serial.iter().zip(parallel.iter()) {
                    assert_eq!((sr, sc), (pr, pc), "entry order, threads={threads}");
                    assert_eq!(sv.to_bits(), pv.to_bits(), "value bits, threads={threads}");
                }
            }
        }
    }

    #[test]
    fn device_between_two_internal_nodes() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Device::resistor(a, b, 1.0));
        ckt.add(Device::capacitor(a, Circuit::GND, 1.0));
        ckt.add(Device::capacitor(b, Circuit::GND, 1.0));
        let dae = ckt.build().unwrap();
        let x = [2.0, 1.0];
        let mut f = [0.0; 2];
        dae.eval_f(&x, &mut f);
        assert_eq!(f[0], 1.0); // (2-1)/1 leaving a
        assert_eq!(f[1], -1.0); // entering b
    }
}
