//! Ready-made circuits calibrated to Section 5 of the paper.
//!
//! All values are chosen so the *observables* the paper reports are
//! reproduced (initial frequency ≈ 0.75 MHz at a 1.5 V control, ≈3×
//! frequency swing for the vacuum varactor, ≈0.75–1.25 MHz with visible
//! settling for the air-filled one); exact component values were not
//! published — see `DESIGN.md §2` for the calibration derivation.

use crate::circuit::{Circuit, CircuitDae, Node};
use crate::device::{Device, MemsParams};
use crate::waveform::Waveform;

/// Tank inductance (henries) shared by every VCO preset.
pub const TANK_L: f64 = 1.0e-5;
/// Fixed tank capacitance giving `f ≈ 0.75 MHz`: `C = 1/(L(2πf)²)`.
pub const TANK_C_750K: f64 = 4.503e-9;
/// Negative-conductance magnitude of the cubic element (siemens).
pub const TANK_G1: f64 = 5.0e-3;
/// Cubic limiting coefficient chosen for a ≈2 V oscillation amplitude
/// (`amp ≈ sqrt(4·g1/(3·g3))`).
pub const TANK_G3: f64 = TANK_G1 / 3.0;

/// Unknown indices of [`lc_vco`]-style circuits.
pub mod idx {
    /// Tank node voltage.
    pub const V_TANK: usize = 0;
    /// Inductor branch current.
    pub const I_L: usize = 1;
    /// MEMS plate displacement (MEMS VCOs only).
    pub const MEMS_Y: usize = 2;
    /// MEMS plate velocity (MEMS VCOs only).
    pub const MEMS_U: usize = 3;
}

/// The paper's basic oscillator: an LC tank in parallel with a nonlinear
/// resistor "whose resistance was negative in a region about zero and
/// positive elsewhere", yielding a stable limit cycle near 0.75 MHz.
///
/// Unknowns: `[v(tank), i(L)]`.
pub fn lc_vco() -> CircuitDae {
    let mut ckt = Circuit::new();
    let tank = ckt.node("tank");
    ckt.add(Device::capacitor(tank, Circuit::GND, TANK_C_750K));
    ckt.add(Device::inductor(tank, Circuit::GND, TANK_L));
    ckt.add(Device::cubic_conductor(
        tank,
        Circuit::GND,
        TANK_G1,
        TANK_G3,
    ));
    ckt.build().expect("lc_vco preset is well-formed")
}

/// Mechanical/electrostatic parameters shared by the MEMS presets.
///
/// * plate natural frequency 250 kHz (`ω_n = 2π·250e3`), mass `1e-12`;
/// * `force_gain/spring_k` calibrated so a 1.5 V DC control leaves the
///   tank at `C ≈ 4.5 nF` (0.75 MHz) and the vacuum control sweep reaches
///   ≈3× that frequency.
fn mems_base(control: Waveform, damping: f64) -> MemsParams {
    let omega_n = 2.0 * std::f64::consts::PI * 250.0e3;
    let mass = 1.0e-12;
    let spring_k = omega_n * omega_n * mass;
    // Static displacement y* at 1.5 V must satisfy C0/(1+y*) = 4.503 nF.
    let c0 = 5.0e-9;
    let y_star = c0 / TANK_C_750K - 1.0;
    let force_gain = spring_k * y_star / (1.5 * 1.5);
    MemsParams {
        c0,
        y0: 1.0,
        mass,
        damping,
        spring_k,
        force_gain,
        control,
        tank_coupling: 0.0,
    }
}

/// Parameters of the vacuum-damped MEMS VCO experiment (paper Figures 7–9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemsVcoConfig {
    /// Control-voltage waveform.
    pub control: Waveform,
    /// Plate damping coefficient.
    pub damping: f64,
}

impl MemsVcoConfig {
    /// Figures 7–9: near-vacuum damping (underdamped plate, ζ ≈ 0.25) and
    /// a sinusoidal control whose period is 30× the nominal oscillation
    /// period (40 µs), starting at 1.5 V and sweeping ≈1.25–12.75 V so the
    /// local frequency spans almost 3×.
    pub fn paper_vacuum() -> Self {
        let omega_n = 2.0 * std::f64::consts::PI * 250.0e3;
        let mass = 1.0e-12;
        let zeta = 0.25;
        let offset = 7.0_f64;
        let amplitude = 5.75_f64;
        let phase_rad = ((1.5 - offset) / amplitude).asin();
        MemsVcoConfig {
            control: Waveform::Sine {
                offset,
                amplitude,
                freq_hz: 25.0e3, // period 40 µs = 30 × 1.333 µs
                phase_rad,
            },
            damping: 2.0 * zeta * omega_n * mass,
        }
    }

    /// Figures 10–12: air-filled cavity. The plate is heavily overdamped
    /// (slow pole `k/d` with time constant ≈0.15 ms) and the control is
    /// ≈1000× slower than the oscillator (1 ms period), sweeping
    /// 1.5–6.5 V so the frequency spans ≈0.75–1.25 MHz with visible
    /// settling.
    pub fn paper_air() -> Self {
        let omega_n = 2.0 * std::f64::consts::PI * 250.0e3;
        let mass = 1.0e-12;
        let spring_k = omega_n * omega_n * mass;
        let tau = 1.5e-4; // slow-pole time constant (s)
        MemsVcoConfig {
            control: Waveform::Sine {
                offset: 4.0,
                amplitude: 2.5,
                freq_hz: 1.0e3, // period 1 ms
                phase_rad: -std::f64::consts::FRAC_PI_2,
            },
            damping: spring_k * tau,
        }
    }

    /// A constant-control variant (useful to check that the WaMPDE
    /// local frequency stays put when nothing modulates the VCO).
    pub fn constant(voltage: f64) -> Self {
        let vac = Self::paper_vacuum();
        MemsVcoConfig {
            control: Waveform::Dc(voltage),
            damping: vac.damping,
        }
    }
}

/// The paper's VCO: LC tank + cubic negative resistor + MEMS varactor
/// whose plate separation is driven by a separate control voltage.
///
/// Unknowns: `[v(tank), i(L), y(plate), u(plate)]` (see [`idx`]).
pub fn mems_vco(cfg: MemsVcoConfig) -> CircuitDae {
    let mut ckt = Circuit::new();
    let tank = ckt.node("tank");
    ckt.add(Device::inductor(tank, Circuit::GND, TANK_L));
    ckt.add(Device::cubic_conductor(
        tank,
        Circuit::GND,
        TANK_G1,
        TANK_G3,
    ));
    ckt.add(Device::mems_varactor(
        tank,
        Circuit::GND,
        mems_base(cfg.control, cfg.damping),
    ));
    ckt.build().expect("mems_vco preset is well-formed")
}

/// The MEMS parameters used by [`mems_vco`], for post-processing
/// (e.g. converting a plate displacement back to a capacitance).
pub fn mems_vco_params(cfg: MemsVcoConfig) -> MemsParams {
    mems_base(cfg.control, cfg.damping)
}

/// Expected small-signal oscillation frequency (Hz) of the LC tank for a
/// given plate displacement `y`.
pub fn tank_frequency(params: &MemsParams, y: f64) -> f64 {
    let c = params.capacitance(y);
    1.0 / (2.0 * std::f64::consts::PI * (TANK_L * c).sqrt())
}

/// [`lc_vco`] loaded by a ladder of `stages` lightly coupled RC sections.
///
/// Adds one unknown per stage without changing the oscillation
/// qualitatively (R·C ≪ oscillation period) — the size-scaling workload of
/// the linear-solver ablation bench.
pub fn ring_loaded_vco(stages: usize) -> CircuitDae {
    let mut ckt = Circuit::new();
    let tank = ckt.node("tank");
    ckt.add(Device::capacitor(tank, Circuit::GND, TANK_C_750K));
    ckt.add(Device::inductor(tank, Circuit::GND, TANK_L));
    ckt.add(Device::cubic_conductor(
        tank,
        Circuit::GND,
        TANK_G1,
        TANK_G3,
    ));
    let mut prev: Node = tank;
    for s in 0..stages {
        let n = ckt.node(format!("ld{s}"));
        ckt.add(Device::resistor(prev, n, 1.0e4));
        ckt.add(Device::capacitor(n, Circuit::GND, 1.0e-12));
        prev = n;
    }
    ckt.build().expect("ring_loaded_vco preset is well-formed")
}

/// Nominal (unforced, 1.5 V control) oscillation period of the VCO presets.
pub fn nominal_period() -> f64 {
    2.0 * std::f64::consts::PI * (TANK_L * TANK_C_750K).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dae::{check_jacobians, Dae};

    #[test]
    fn lc_vco_dimensions() {
        let dae = lc_vco();
        assert_eq!(dae.dim(), 2);
        assert!(check_jacobians(&dae, &[1.0, -0.5]) < 1e-6);
    }

    #[test]
    fn nominal_period_is_750khz() {
        let f = 1.0 / nominal_period();
        assert!((f - 0.75e6).abs() / 0.75e6 < 0.01, "f = {f}");
    }

    #[test]
    fn mems_vacuum_static_calibration() {
        let p = mems_vco_params(MemsVcoConfig::constant(1.5));
        let y = p.static_displacement(1.5);
        let f = tank_frequency(&p, y);
        assert!((f - 0.75e6).abs() / 0.75e6 < 0.01, "f = {f}");
    }

    #[test]
    fn mems_vacuum_frequency_span_is_about_3x() {
        let cfg = MemsVcoConfig::paper_vacuum();
        let p = mems_vco_params(cfg);
        let (mut fmin, mut fmax) = (f64::INFINITY, 0.0_f64);
        for i in 0..400 {
            let t = i as f64 * 1e-7;
            let v = cfg.control.eval(t);
            let f = tank_frequency(&p, p.static_displacement(v));
            fmin = fmin.min(f);
            fmax = fmax.max(f);
        }
        let ratio = fmax / fmin;
        assert!(
            (2.5..3.5).contains(&ratio),
            "quasi-static frequency span {ratio}"
        );
    }

    #[test]
    fn mems_air_frequency_span() {
        let cfg = MemsVcoConfig::paper_air();
        let p = mems_vco_params(cfg);
        let fmax = tank_frequency(&p, p.static_displacement(6.5));
        let fmin = tank_frequency(&p, p.static_displacement(1.5));
        assert!((fmin - 0.75e6).abs() / 0.75e6 < 0.02, "fmin = {fmin}");
        assert!((fmax - 1.25e6).abs() / 1.25e6 < 0.05, "fmax = {fmax}");
    }

    #[test]
    fn vacuum_control_starts_at_1v5() {
        let cfg = MemsVcoConfig::paper_vacuum();
        assert!((cfg.control.eval(0.0) - 1.5).abs() < 1e-9);
        let air = MemsVcoConfig::paper_air();
        assert!((air.control.eval(0.0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn mems_vco_jacobians() {
        let dae = mems_vco(MemsVcoConfig::paper_vacuum());
        assert_eq!(dae.dim(), 4);
        assert!(check_jacobians(&dae, &[1.0, -0.3, 0.4, 0.05]) < 1e-6);
    }

    #[test]
    fn ring_loaded_scales_dimension() {
        for stages in [0usize, 3, 10] {
            let dae = ring_loaded_vco(stages);
            assert_eq!(dae.dim(), 2 + stages);
        }
        let dae = ring_loaded_vco(5);
        let x: Vec<f64> = (0..7).map(|i| 0.1 * i as f64).collect();
        assert!(check_jacobians(&dae, &x) < 1e-6);
    }

    #[test]
    fn air_damping_heavier_than_vacuum() {
        let v = MemsVcoConfig::paper_vacuum();
        let a = MemsVcoConfig::paper_air();
        assert!(a.damping > 100.0 * v.damping);
    }
}
