//! The abstract DAE interface (paper eq. (12)) and Jacobian validation.

use numkit::DMat;
use sparsekit::Triplets;

/// The structural sparsity pattern of a DAE's Jacobians: the union of the
/// positions `C = ∂q/∂x` and `G = ∂f/∂x` can ever touch, independent of
/// the evaluation point.
///
/// Sparse-capable consumers use it to size assembly buffers and decide
/// whether a sparse backend is worthwhile; [`Pattern::dense`] (every
/// position) is the contract-safe default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    n: usize,
    entries: Vec<(usize, usize)>,
}

impl Pattern {
    /// The full `n × n` pattern (the default for DAEs without sparse
    /// stamping).
    pub fn dense(n: usize) -> Self {
        Pattern {
            n,
            entries: (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect(),
        }
    }

    /// Builds a pattern from raw (possibly duplicated, unsorted)
    /// coordinates.
    ///
    /// # Panics
    ///
    /// Panics when a coordinate is out of bounds.
    pub fn from_entries(n: usize, mut entries: Vec<(usize, usize)>) -> Self {
        for &(r, c) in &entries {
            assert!(r < n && c < n, "pattern entry ({r},{c}) out of bounds");
        }
        entries.sort_unstable();
        entries.dedup();
        Pattern { n, entries }
    }

    /// System dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzero positions.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fill fraction `nnz / n²` (1.0 for the dense pattern).
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n * self.n) as f64
    }

    /// True when every position is structurally nonzero.
    pub fn is_dense(&self) -> bool {
        self.nnz() == self.n * self.n
    }

    /// Whether position `(row, col)` is structurally nonzero.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        self.entries.binary_search(&(row, col)).is_ok()
    }

    /// The sorted, deduplicated structural positions.
    pub fn entries(&self) -> &[(usize, usize)] {
        &self.entries
    }
}

/// A nonlinear differential-algebraic system
/// `d/dt q(x(t)) + f(x(t)) = b(t)` with analytic Jacobians.
///
/// All engines in the workspace (transient, shooting, harmonic balance,
/// MPDE, WaMPDE) consume this trait, so any struct implementing it — an
/// MNA circuit, a mechanical model, a hand-written ODE — can be run
/// through every method unchanged.
///
/// Implementations must guarantee:
///
/// * `q`, `f` depend on `x` only; all explicit time dependence lives in `b`
///   (this is what the multi-time formulations exploit);
/// * Jacobians are consistent with the values (validated in tests via
///   [`check_jacobians`]).
pub trait Dae {
    /// Number of unknowns `n`.
    fn dim(&self) -> usize;

    /// Charge/flux-like state `q(x)` into `out` (length `n`).
    fn eval_q(&self, x: &[f64], out: &mut [f64]);

    /// Resistive term `f(x)` into `out` (length `n`).
    fn eval_f(&self, x: &[f64], out: &mut [f64]);

    /// Forcing `b(t)` into `out` (length `n`).
    fn eval_b(&self, t: f64, out: &mut [f64]);

    /// Jacobian `C(x) = ∂q/∂x` into `out` (`n × n`, pre-zeroed by caller
    /// contract: implementations overwrite every entry or call
    /// [`DMat::fill_zero`] first).
    fn jac_q(&self, x: &[f64], out: &mut DMat);

    /// Jacobian `G(x) = ∂f/∂x` into `out` (`n × n`).
    fn jac_f(&self, x: &[f64], out: &mut DMat);

    /// Human-readable unknown names, for reporting. Defaults to `x0..`.
    fn var_names(&self) -> Vec<String> {
        (0..self.dim()).map(|i| format!("x{i}")).collect()
    }

    /// Structural sparsity of the Jacobians (union of `C` and `G`
    /// positions over all `x`). The default claims the full dense pattern;
    /// implementations with device-level stamps (notably
    /// [`crate::CircuitDae`]) report the true pattern so sparse backends
    /// can exploit it.
    fn sparsity(&self) -> Pattern {
        Pattern::dense(self.dim())
    }

    /// Jacobian `C(x) = ∂q/∂x` pushed as triplets into `out` (duplicates
    /// sum on conversion; the caller provides a cleared `n × n` buffer).
    ///
    /// The default falls back to dense stamping and pushes *every* entry
    /// — zeros included — so the emitted pattern is stable across `x` and
    /// consistent with the default [`Dae::sparsity`]. Sparse
    /// implementations must keep their pattern within [`Dae::sparsity`]
    /// and x-independent.
    fn jac_q_triplets(&self, x: &[f64], out: &mut Triplets) {
        let n = self.dim();
        let mut m = DMat::zeros(n, n);
        self.jac_q(x, &mut m);
        for i in 0..n {
            for j in 0..n {
                out.push(i, j, m[(i, j)]);
            }
        }
    }

    /// Jacobian `G(x) = ∂f/∂x` pushed as triplets into `out`; same
    /// contract as [`Dae::jac_q_triplets`].
    fn jac_f_triplets(&self, x: &[f64], out: &mut Triplets) {
        let n = self.dim();
        let mut m = DMat::zeros(n, n);
        self.jac_f(x, &mut m);
        for i in 0..n {
            for j in 0..n {
                out.push(i, j, m[(i, j)]);
            }
        }
    }

    /// [`Dae::jac_q_triplets`] with a thread-count hint, for
    /// implementations whose stamps partition across threads (notably
    /// [`crate::CircuitDae`]). The entry sequence pushed into `out`
    /// must be identical to the serial method at every thread count —
    /// callers rely on bitwise-identical downstream factorisations.
    /// The default ignores the hint and stamps serially.
    fn jac_q_triplets_threads(&self, x: &[f64], out: &mut Triplets, _threads: usize) {
        self.jac_q_triplets(x, out);
    }

    /// [`Dae::jac_f_triplets`] with a thread-count hint; same contract
    /// as [`Dae::jac_q_triplets_threads`].
    fn jac_f_triplets_threads(&self, x: &[f64], out: &mut Triplets, _threads: usize) {
        self.jac_f_triplets(x, out);
    }
}

/// Per-sample Jacobian blocks `(C_s, G_s)` of a stacked sample-major
/// state (`x[s·n + i]` = variable `i` at sample `s`) — the building
/// blocks every collocation-style consumer (HB, MPDE, WaMPDE, benches)
/// hands to `linsolve::JacobianParts`.
///
/// # Panics
///
/// Panics when `x.len()` is not a multiple of `dae.dim()`.
pub fn jac_blocks<D: Dae + ?Sized>(dae: &D, x: &[f64]) -> (Vec<DMat>, Vec<DMat>) {
    let n = dae.dim();
    assert!(
        x.len().is_multiple_of(n),
        "stacked state length must be n·N0"
    );
    let n0 = x.len() / n;
    let mut cblocks = Vec::with_capacity(n0);
    let mut gblocks = Vec::with_capacity(n0);
    for s in 0..n0 {
        let xs = &x[s * n..(s + 1) * n];
        let mut c = DMat::zeros(n, n);
        let mut g = DMat::zeros(n, n);
        dae.jac_q(xs, &mut c);
        dae.jac_f(xs, &mut g);
        cblocks.push(c);
        gblocks.push(g);
    }
    (cblocks, gblocks)
}

/// Evaluates the instantaneous DAE residual `C(x)·xdot + f(x) − b(t)`.
///
/// Useful for verifying that a candidate `(x, ẋ)` pair satisfies the
/// system, e.g. when validating reconstructed WaMPDE solutions.
pub fn dae_residual<D: Dae + ?Sized>(dae: &D, t: f64, x: &[f64], xdot: &[f64]) -> Vec<f64> {
    let n = dae.dim();
    let mut c = DMat::zeros(n, n);
    dae.jac_q(x, &mut c);
    let mut r = c.matvec(xdot);
    let mut f = vec![0.0; n];
    dae.eval_f(x, &mut f);
    let mut b = vec![0.0; n];
    dae.eval_b(t, &mut b);
    for i in 0..n {
        r[i] += f[i] - b[i];
    }
    r
}

/// Validates analytic Jacobians against central finite differences at `x`.
///
/// Returns the maximum absolute deviation over both Jacobians; tests
/// assert it is below a tolerance scaled to the Jacobian magnitude.
pub fn check_jacobians<D: Dae + ?Sized>(dae: &D, x: &[f64]) -> f64 {
    let n = dae.dim();
    let mut cq = DMat::zeros(n, n);
    let mut cf = DMat::zeros(n, n);
    dae.jac_q(x, &mut cq);
    dae.jac_f(x, &mut cf);

    let scale_q = cq.max_abs().max(1.0);
    let scale_f = cf.max_abs().max(1.0);

    let mut worst = 0.0_f64;
    let mut xp = x.to_vec();
    let mut qp = vec![0.0; n];
    let mut qm = vec![0.0; n];
    let mut fp = vec![0.0; n];
    let mut fm = vec![0.0; n];

    for j in 0..n {
        let h = 1e-6 * (1.0 + x[j].abs());
        xp[j] = x[j] + h;
        dae.eval_q(&xp, &mut qp);
        dae.eval_f(&xp, &mut fp);
        xp[j] = x[j] - h;
        dae.eval_q(&xp, &mut qm);
        dae.eval_f(&xp, &mut fm);
        xp[j] = x[j];
        for i in 0..n {
            let dq = (qp[i] - qm[i]) / (2.0 * h);
            let df = (fp[i] - fm[i]) / (2.0 * h);
            worst = worst.max((dq - cq[(i, j)]).abs() / scale_q);
            worst = worst.max((df - cf[(i, j)]).abs() / scale_f);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately nonlinear scalar DAE: q = x³/3, f = sin(x), b = cos t.
    struct Cubic;

    impl Dae for Cubic {
        fn dim(&self) -> usize {
            1
        }
        fn eval_q(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0].powi(3) / 3.0;
        }
        fn eval_f(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0].sin();
        }
        fn eval_b(&self, t: f64, out: &mut [f64]) {
            out[0] = t.cos();
        }
        fn jac_q(&self, x: &[f64], out: &mut DMat) {
            out[(0, 0)] = x[0] * x[0];
        }
        fn jac_f(&self, x: &[f64], out: &mut DMat) {
            out[(0, 0)] = x[0].cos();
        }
    }

    #[test]
    fn jacobian_check_accepts_consistent_dae() {
        assert!(check_jacobians(&Cubic, &[0.7]) < 1e-7);
        assert!(check_jacobians(&Cubic, &[-1.3]) < 1e-7);
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        // Pick x(t)=1, xdot=0 at t with cos t = sin 1 => residual 0.
        let t = (1.0_f64.sin()).acos();
        let r = dae_residual(&Cubic, t, &[1.0], &[0.0]);
        assert!(r[0].abs() < 1e-12);
    }

    #[test]
    fn default_var_names() {
        assert_eq!(Cubic.var_names(), vec!["x0".to_string()]);
    }

    #[test]
    fn default_sparse_interface_falls_back_to_dense() {
        let x = [0.7];
        assert!(Cubic.sparsity().is_dense());
        assert_eq!(Cubic.sparsity().nnz(), 1);
        let mut tq = Triplets::new(1, 1);
        Cubic.jac_q_triplets(&x, &mut tq);
        let mut dq = DMat::zeros(1, 1);
        Cubic.jac_q(&x, &mut dq);
        assert_eq!(tq.to_dense()[(0, 0)], dq[(0, 0)]);
        let mut tf = Triplets::new(1, 1);
        Cubic.jac_f_triplets(&x, &mut tf);
        let mut df = DMat::zeros(1, 1);
        Cubic.jac_f(&x, &mut df);
        assert_eq!(tf.to_dense()[(0, 0)], df[(0, 0)]);
    }

    #[test]
    fn pattern_dedup_and_queries() {
        let p = Pattern::from_entries(3, vec![(2, 1), (0, 0), (2, 1), (1, 2)]);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.n(), 3);
        assert!(p.contains(0, 0) && p.contains(2, 1) && p.contains(1, 2));
        assert!(!p.contains(1, 1));
        assert!(!p.is_dense());
        assert!((p.density() - 3.0 / 9.0).abs() < 1e-15);
        assert_eq!(p.entries(), &[(0, 0), (1, 2), (2, 1)]);
        let d = Pattern::dense(2);
        assert!(d.is_dense());
        assert_eq!(d.nnz(), 4);
    }

    #[test]
    #[should_panic]
    fn pattern_rejects_out_of_bounds() {
        let _ = Pattern::from_entries(2, vec![(2, 0)]);
    }
}
