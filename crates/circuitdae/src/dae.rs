//! The abstract DAE interface (paper eq. (12)) and Jacobian validation.

use numkit::DMat;

/// A nonlinear differential-algebraic system
/// `d/dt q(x(t)) + f(x(t)) = b(t)` with analytic Jacobians.
///
/// All engines in the workspace (transient, shooting, harmonic balance,
/// MPDE, WaMPDE) consume this trait, so any struct implementing it — an
/// MNA circuit, a mechanical model, a hand-written ODE — can be run
/// through every method unchanged.
///
/// Implementations must guarantee:
///
/// * `q`, `f` depend on `x` only; all explicit time dependence lives in `b`
///   (this is what the multi-time formulations exploit);
/// * Jacobians are consistent with the values (validated in tests via
///   [`check_jacobians`]).
pub trait Dae {
    /// Number of unknowns `n`.
    fn dim(&self) -> usize;

    /// Charge/flux-like state `q(x)` into `out` (length `n`).
    fn eval_q(&self, x: &[f64], out: &mut [f64]);

    /// Resistive term `f(x)` into `out` (length `n`).
    fn eval_f(&self, x: &[f64], out: &mut [f64]);

    /// Forcing `b(t)` into `out` (length `n`).
    fn eval_b(&self, t: f64, out: &mut [f64]);

    /// Jacobian `C(x) = ∂q/∂x` into `out` (`n × n`, pre-zeroed by caller
    /// contract: implementations overwrite every entry or call
    /// [`DMat::fill_zero`] first).
    fn jac_q(&self, x: &[f64], out: &mut DMat);

    /// Jacobian `G(x) = ∂f/∂x` into `out` (`n × n`).
    fn jac_f(&self, x: &[f64], out: &mut DMat);

    /// Human-readable unknown names, for reporting. Defaults to `x0..`.
    fn var_names(&self) -> Vec<String> {
        (0..self.dim()).map(|i| format!("x{i}")).collect()
    }
}

/// Evaluates the instantaneous DAE residual `C(x)·xdot + f(x) − b(t)`.
///
/// Useful for verifying that a candidate `(x, ẋ)` pair satisfies the
/// system, e.g. when validating reconstructed WaMPDE solutions.
pub fn dae_residual<D: Dae + ?Sized>(dae: &D, t: f64, x: &[f64], xdot: &[f64]) -> Vec<f64> {
    let n = dae.dim();
    let mut c = DMat::zeros(n, n);
    dae.jac_q(x, &mut c);
    let mut r = c.matvec(xdot);
    let mut f = vec![0.0; n];
    dae.eval_f(x, &mut f);
    let mut b = vec![0.0; n];
    dae.eval_b(t, &mut b);
    for i in 0..n {
        r[i] += f[i] - b[i];
    }
    r
}

/// Validates analytic Jacobians against central finite differences at `x`.
///
/// Returns the maximum absolute deviation over both Jacobians; tests
/// assert it is below a tolerance scaled to the Jacobian magnitude.
pub fn check_jacobians<D: Dae + ?Sized>(dae: &D, x: &[f64]) -> f64 {
    let n = dae.dim();
    let mut cq = DMat::zeros(n, n);
    let mut cf = DMat::zeros(n, n);
    dae.jac_q(x, &mut cq);
    dae.jac_f(x, &mut cf);

    let scale_q = cq.max_abs().max(1.0);
    let scale_f = cf.max_abs().max(1.0);

    let mut worst = 0.0_f64;
    let mut xp = x.to_vec();
    let mut qp = vec![0.0; n];
    let mut qm = vec![0.0; n];
    let mut fp = vec![0.0; n];
    let mut fm = vec![0.0; n];

    for j in 0..n {
        let h = 1e-6 * (1.0 + x[j].abs());
        xp[j] = x[j] + h;
        dae.eval_q(&xp, &mut qp);
        dae.eval_f(&xp, &mut fp);
        xp[j] = x[j] - h;
        dae.eval_q(&xp, &mut qm);
        dae.eval_f(&xp, &mut fm);
        xp[j] = x[j];
        for i in 0..n {
            let dq = (qp[i] - qm[i]) / (2.0 * h);
            let df = (fp[i] - fm[i]) / (2.0 * h);
            worst = worst.max((dq - cq[(i, j)]).abs() / scale_q);
            worst = worst.max((df - cf[(i, j)]).abs() / scale_f);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately nonlinear scalar DAE: q = x³/3, f = sin(x), b = cos t.
    struct Cubic;

    impl Dae for Cubic {
        fn dim(&self) -> usize {
            1
        }
        fn eval_q(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0].powi(3) / 3.0;
        }
        fn eval_f(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0].sin();
        }
        fn eval_b(&self, t: f64, out: &mut [f64]) {
            out[0] = t.cos();
        }
        fn jac_q(&self, x: &[f64], out: &mut DMat) {
            out[(0, 0)] = x[0] * x[0];
        }
        fn jac_f(&self, x: &[f64], out: &mut DMat) {
            out[(0, 0)] = x[0].cos();
        }
    }

    #[test]
    fn jacobian_check_accepts_consistent_dae() {
        assert!(check_jacobians(&Cubic, &[0.7]) < 1e-7);
        assert!(check_jacobians(&Cubic, &[-1.3]) < 1e-7);
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        // Pick x(t)=1, xdot=0 at t with cos t = sin 1 => residual 0.
        let t = (1.0_f64.sin()).acos();
        let r = dae_residual(&Cubic, t, &[1.0], &[0.0]);
        assert!(r[0].abs() < 1e-12);
    }

    #[test]
    fn default_var_names() {
        assert_eq!(Cubic.var_names(), vec!["x0".to_string()]);
    }
}
