//! Typed scenario decks: a circuit plus analysis and sweep directives.
//!
//! A *deck* is the versioned text description of an experiment: the
//! circuit cards of [`crate::netlist`], analysis directives naming which
//! solver(s) to run, and `.sweep` directives spanning a parameter grid.
//! [`crate::netlist::parse_deck`] produces a [`Deck`]; the `sweepkit`
//! crate expands its sweeps into jobs and runs them in parallel.
//!
//! ```text
//! * paper MEMS VCO, control sweep
//! L1  tank 0 10u
//! GN1 tank 0 5m 1.667m
//! M1  tank 0 5n 1 1e-12 3e-7 2.47 0.121 DC(1.5)
//! .wampde 6u harmonics=5
//! .sweep M1.control 1.2 1.8 4
//! ```
//!
//! This module holds only *data* (specs are plain numbers); the adapter
//! functions that map a spec onto a solver live in the solver crates
//! (`transim::run_tran_spec`, `shooting::run_shooting_spec`,
//! `mpde::run_mpde_spec`, `wampde::run_wampde_spec`), so `circuitdae`
//! keeps zero solver dependencies.

use crate::circuit::{Circuit, CircuitDae};
use crate::netlist::NetlistError;
use linsolve::LinearSolverKind;

/// `.tran <tstop> [dt=<v>] [rtol=<v>]` — transient integration from the
/// DC operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranSpec {
    /// End time (s).
    pub t_stop: f64,
    /// Fixed step (s); `0.0` selects LTE-adaptive stepping.
    pub dt: f64,
    /// Relative tolerance of the adaptive controller.
    pub rtol: f64,
    /// Linear-solver backend (from the deck's `.options solver=` line).
    pub solver: LinearSolverKind,
}

/// `.shooting [steps=<n>] [phase_var=<k>]` — periodic steady state of an
/// autonomous oscillator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShootingSpec {
    /// Fixed integration steps per period for the flow evaluation.
    pub steps_per_period: usize,
    /// Index of the oscillating unknown (phase anchor).
    pub phase_var: usize,
    /// Linear-solver backend (from the deck's `.options solver=` line).
    pub solver: LinearSolverKind,
}

/// `.mpde <f1> <tstop> [harmonics=<n>] [node=<k>] [amp=<v>] [depth=<v>]
/// [fmod=<v>]` — unwarped MPDE envelope with an AM-modulated carrier
/// forcing into one KCL row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpdeSpec {
    /// Fast carrier fundamental (Hz) — fixed a priori, per the method.
    pub f1_hz: f64,
    /// Envelope end time (s).
    pub t_stop: f64,
    /// Harmonics along the fast axis.
    pub harmonics: usize,
    /// Forced unknown (KCL row) index.
    pub node: usize,
    /// Carrier amplitude.
    pub amplitude: f64,
    /// Modulation depth.
    pub mod_depth: f64,
    /// Envelope modulation frequency (Hz).
    pub mod_freq_hz: f64,
    /// Linear-solver backend (from the deck's `.options solver=` line).
    pub solver: LinearSolverKind,
}

/// `.wampde <tstop> [harmonics=<n>] [phase_var=<k>] [steps=<n>]` — warped
/// MPDE envelope, initialised from the shooting steady state of the
/// circuit with its waveforms frozen at `t = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WampdeSpec {
    /// Envelope end time (s).
    pub t_stop: f64,
    /// Harmonic count `M` along the warped axis.
    pub harmonics: usize,
    /// Phase-condition variable index.
    pub phase_var: usize,
    /// Shooting steps per period for the initial orbit.
    pub shooting_steps: usize,
    /// Linear-solver backend (from the deck's `.options solver=` line).
    pub solver: LinearSolverKind,
}

/// One analysis directive of a deck.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisSpec {
    /// `.tran` — conventional transient (the paper's baseline).
    Tran(TranSpec),
    /// `.shooting` — unforced periodic steady state.
    Shooting(ShootingSpec),
    /// `.mpde` — unwarped multirate envelope (non-autonomous AM).
    Mpde(MpdeSpec),
    /// `.wampde` — warped multirate envelope (the paper's method).
    Wampde(WampdeSpec),
}

impl AnalysisSpec {
    /// The directive keyword, used for labels and artifact names.
    pub fn name(&self) -> &'static str {
        match self {
            AnalysisSpec::Tran(_) => "tran",
            AnalysisSpec::Shooting(_) => "shooting",
            AnalysisSpec::Mpde(_) => "mpde",
            AnalysisSpec::Wampde(_) => "wampde",
        }
    }

    /// The linear-solver backend this analysis will run with.
    pub fn solver(&self) -> LinearSolverKind {
        match self {
            AnalysisSpec::Tran(s) => s.solver,
            AnalysisSpec::Shooting(s) => s.solver,
            AnalysisSpec::Mpde(s) => s.solver,
            AnalysisSpec::Wampde(s) => s.solver,
        }
    }

    /// Overrides the linear-solver backend (used by the `.options`
    /// directive and the `wampde-cli --solver` flag).
    pub fn set_solver(&mut self, kind: LinearSolverKind) {
        match self {
            AnalysisSpec::Tran(s) => s.solver = kind,
            AnalysisSpec::Shooting(s) => s.solver = kind,
            AnalysisSpec::Mpde(s) => s.solver = kind,
            AnalysisSpec::Wampde(s) => s.solver = kind,
        }
    }
}

/// `.sweep <param> <from> <to> <points> [log]` — one swept parameter.
///
/// `param` is a device card name (`R1` — primary value) or a dotted field
/// (`M1.control`, `V1.ampl`); see [`crate::Device::set_param`] for the
/// field tables.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Device card name (uppercase).
    pub device: String,
    /// Optional parameter field (lowercase).
    pub field: Option<String>,
    /// First grid value.
    pub from: f64,
    /// Last grid value.
    pub to: f64,
    /// Number of grid points (≥ 1).
    pub points: usize,
    /// Logarithmic (geometric) spacing instead of linear.
    pub log: bool,
}

impl SweepSpec {
    /// The `NAME` / `NAME.field` label of the swept parameter.
    pub fn label(&self) -> String {
        match &self.field {
            Some(f) => format!("{}.{f}", self.device),
            None => self.device.clone(),
        }
    }

    /// The grid values, `from` to `to` inclusive, linearly or
    /// geometrically spaced. `points == 1` yields `[from]`.
    pub fn values(&self) -> Vec<f64> {
        if self.points <= 1 {
            return vec![self.from];
        }
        let n = (self.points - 1) as f64;
        (0..self.points)
            .map(|i| {
                let w = i as f64 / n;
                if self.log {
                    self.from * (self.to / self.from).powf(w)
                } else {
                    self.from + (self.to - self.from) * w
                }
            })
            .collect()
    }
}

/// A parsed scenario deck: the (unbuilt) circuit, the device card names,
/// and the analysis/sweep directives.
#[derive(Debug, Clone)]
pub struct Deck {
    pub(crate) circuit: Circuit,
    pub(crate) names: Vec<String>,
    /// Analysis directives, in deck order.
    pub analyses: Vec<AnalysisSpec>,
    /// Sweep directives, in deck order (first varies slowest).
    pub sweeps: Vec<SweepSpec>,
}

impl Deck {
    /// Device card names, uppercase, in deck order.
    pub fn device_names(&self) -> &[String] {
        &self.names
    }

    /// Builds the circuit with no overrides applied.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Circuit`] when validation fails (cannot happen for
    /// decks returned by the parser, which validates at parse time).
    pub fn base_circuit(&self) -> Result<CircuitDae, NetlistError> {
        Ok(self.circuit.clone().build()?)
    }

    /// Builds the circuit with sweep values applied: `values[i]` is
    /// assigned to the parameter of `self.sweeps[i]`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Param`] when the value count mismatches the sweep
    /// count, a sweep names an unknown device, or the device rejects the
    /// value; [`NetlistError::Circuit`] when the overridden circuit fails
    /// validation.
    pub fn instantiate(&self, values: &[f64]) -> Result<CircuitDae, NetlistError> {
        if values.len() != self.sweeps.len() {
            return Err(NetlistError::Param {
                device: String::new(),
                message: format!(
                    "expected {} sweep values, got {}",
                    self.sweeps.len(),
                    values.len()
                ),
            });
        }
        let mut ckt = self.circuit.clone();
        for (sw, &v) in self.sweeps.iter().zip(values) {
            let idx = self
                .names
                .iter()
                .position(|n| *n == sw.device)
                .ok_or_else(|| NetlistError::Param {
                    device: sw.device.clone(),
                    message: "sweep references unknown device".into(),
                })?;
            ckt.device_mut(idx)
                .expect("names parallel devices")
                .set_param(sw.field.as_deref(), v)
                .map_err(|message| NetlistError::Param {
                    device: sw.label(),
                    message,
                })?;
        }
        Ok(ckt.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_values_linear_and_log() {
        let mut sw = SweepSpec {
            device: "R1".into(),
            field: None,
            from: 1.0,
            to: 3.0,
            points: 5,
            log: false,
        };
        assert_eq!(sw.values(), vec![1.0, 1.5, 2.0, 2.5, 3.0]);
        sw.log = true;
        sw.from = 1.0;
        sw.to = 100.0;
        sw.points = 3;
        let v = sw.values();
        assert!((v[1] - 10.0).abs() < 1e-12, "{v:?}");
        sw.points = 1;
        assert_eq!(sw.values(), vec![1.0]);
    }

    #[test]
    fn label_includes_field() {
        let sw = SweepSpec {
            device: "M1".into(),
            field: Some("control".into()),
            from: 1.0,
            to: 2.0,
            points: 2,
            log: false,
        };
        assert_eq!(sw.label(), "M1.control");
    }
}
