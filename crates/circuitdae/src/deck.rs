//! Typed scenario decks: a circuit plus analysis and sweep directives.
//!
//! A *deck* is the versioned text description of an experiment: the
//! circuit cards of [`crate::netlist`], analysis directives naming which
//! solver(s) to run, and `.sweep` directives spanning a parameter grid.
//! [`crate::netlist::parse_deck`] produces a [`Deck`]; the `sweepkit`
//! crate expands its sweeps into jobs and runs them in parallel.
//!
//! ```text
//! * paper MEMS VCO, control sweep
//! L1  tank 0 10u
//! GN1 tank 0 5m 1.667m
//! M1  tank 0 5n 1 1e-12 3e-7 2.47 0.121 DC(1.5)
//! .wampde 6u harmonics=5
//! .sweep M1.control 1.2 1.8 4
//! ```
//!
//! This module holds only *data* (specs are plain numbers); the adapter
//! functions that map a spec onto a solver live in the solver crates
//! (`transim::run_tran_spec`, `shooting::run_shooting_spec`,
//! `mpde::run_mpde_spec`, `wampde::run_wampde_spec`), so `circuitdae`
//! keeps zero solver dependencies.

use crate::circuit::{Circuit, CircuitDae};
use crate::netlist::NetlistError;
use linsolve::LinearSolverKind;
use timekit::Scheme;

/// `.tran <tstop> [dt=<v>] [integrator=<s>] [rtol=<v>] [atol=<v>]
/// [dt_min=<v>] [dt_max=<v>]` — transient integration from the DC
/// operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranSpec {
    /// End time (s).
    pub t_stop: f64,
    /// Fixed step (s); `0.0` selects LTE-adaptive stepping.
    pub dt: f64,
    /// Relative tolerance of the adaptive controller.
    pub rtol: f64,
    /// Absolute tolerance of the adaptive controller.
    pub atol: f64,
    /// Minimum adaptive step (`0.0` = auto: span·1e-12).
    pub dt_min: f64,
    /// Maximum adaptive step (`0.0` = auto: span/10).
    pub dt_max: f64,
    /// Integration scheme (`be`, `trap`, `bdf2`).
    pub integrator: Scheme,
    /// Linear-solver backend (from the deck's `.options solver=` line).
    pub solver: LinearSolverKind,
}

impl TranSpec {
    /// The directive defaults: LTE-adaptive trapezoidal stepping at
    /// `rtol = 1e-6`, `atol = 1e-12`, auto step bounds, dense LU.
    pub fn new(t_stop: f64) -> Self {
        TranSpec {
            t_stop,
            dt: 0.0,
            rtol: 1e-6,
            atol: 1e-12,
            dt_min: 0.0,
            dt_max: 0.0,
            integrator: Scheme::Trapezoidal,
            solver: LinearSolverKind::default(),
        }
    }
}

/// `.shooting [steps=<n>] [phase_var=<k>]` — periodic steady state of an
/// autonomous oscillator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShootingSpec {
    /// Fixed integration steps per period for the flow evaluation.
    pub steps_per_period: usize,
    /// Index of the oscillating unknown (phase anchor).
    pub phase_var: usize,
    /// Linear-solver backend (from the deck's `.options solver=` line).
    pub solver: LinearSolverKind,
}

/// `.mpde <f1> <tstop> [harmonics=<n>] [node=<k>] [amp=<v>] [depth=<v>]
/// [fmod=<v>] [dt=<v>] [integrator=<s>] [rtol=<v>] [atol=<v>]
/// [dt_min=<v>] [dt_max=<v>]` — unwarped MPDE envelope with an
/// AM-modulated carrier forcing into one KCL row. Fixed-step by default
/// (`dt`, auto `tstop/50`); `rtol=` switches on LTE-adaptive `t2`
/// stepping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpdeSpec {
    /// Fast carrier fundamental (Hz) — fixed a priori, per the method.
    pub f1_hz: f64,
    /// Envelope end time (s).
    pub t_stop: f64,
    /// Harmonics along the fast axis.
    pub harmonics: usize,
    /// Forced unknown (KCL row) index.
    pub node: usize,
    /// Carrier amplitude.
    pub amplitude: f64,
    /// Modulation depth.
    pub mod_depth: f64,
    /// Envelope modulation frequency (Hz).
    pub mod_freq_hz: f64,
    /// Fixed `t2` step (or `dt_init` in adaptive mode); `0.0` = auto.
    pub dt: f64,
    /// Adaptive relative tolerance; `0.0` keeps fixed-step mode.
    pub rtol: f64,
    /// Adaptive absolute tolerance.
    pub atol: f64,
    /// Minimum adaptive step (`0.0` = auto).
    pub dt_min: f64,
    /// Maximum adaptive step (`0.0` = auto).
    pub dt_max: f64,
    /// Integration scheme along `t2` (`be`, `trap`, `bdf2`).
    pub integrator: Scheme,
    /// Linear-solver backend (from the deck's `.options solver=` line).
    pub solver: LinearSolverKind,
}

impl MpdeSpec {
    /// The directive defaults: fixed-step Backward Euler along `t2`
    /// (auto `t_stop/50`), 6 harmonics, a 50 %-depth AM carrier into
    /// row 0 at `f1/100` modulation, dense LU.
    pub fn new(f1_hz: f64, t_stop: f64) -> Self {
        MpdeSpec {
            f1_hz,
            t_stop,
            harmonics: 6,
            node: 0,
            amplitude: 1e-3,
            mod_depth: 0.5,
            mod_freq_hz: f1_hz / 100.0,
            dt: 0.0,
            rtol: 0.0, // fixed-step mode unless rtol is set
            atol: 1e-9,
            dt_min: 0.0,
            dt_max: 0.0,
            integrator: Scheme::BackwardEuler,
            solver: LinearSolverKind::default(),
        }
    }
}

/// `.wampde <tstop> [harmonics=<n>] [phase_var=<k>] [steps=<n>]
/// [dt=<v>] [integrator=<s>] [rtol=<v>] [atol=<v>] [dt_min=<v>]
/// [dt_max=<v>]` — warped MPDE envelope, initialised from the shooting
/// steady state of the circuit with its waveforms frozen at `t = 0`.
/// LTE-adaptive along `t2` by default; `dt=` pins a fixed step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WampdeSpec {
    /// Envelope end time (s).
    pub t_stop: f64,
    /// Harmonic count `M` along the warped axis.
    pub harmonics: usize,
    /// Phase-condition variable index.
    pub phase_var: usize,
    /// Shooting steps per period for the initial orbit.
    pub shooting_steps: usize,
    /// Fixed `t2` step; `0.0` selects LTE-adaptive stepping.
    pub dt: f64,
    /// Adaptive relative tolerance.
    pub rtol: f64,
    /// Adaptive absolute tolerance.
    pub atol: f64,
    /// Minimum adaptive step (`0.0` = auto).
    pub dt_min: f64,
    /// Maximum adaptive step (`0.0` = auto).
    pub dt_max: f64,
    /// Integration scheme along `t2` (`be`, `trap`, `bdf2`).
    pub integrator: Scheme,
    /// Linear-solver backend (from the deck's `.options solver=` line).
    pub solver: LinearSolverKind,
}

impl WampdeSpec {
    /// The directive defaults: LTE-adaptive BDF2 along `t2` at
    /// `rtol = 1e-4`, `atol = 1e-9`, auto step bounds, 8 harmonics,
    /// 512-step shooting initialisation, dense LU.
    pub fn new(t_stop: f64) -> Self {
        WampdeSpec {
            t_stop,
            harmonics: 8,
            phase_var: 0,
            shooting_steps: 512,
            dt: 0.0, // adaptive unless a fixed step is pinned
            rtol: 1e-4,
            atol: 1e-9,
            dt_min: 0.0,
            dt_max: 0.0,
            integrator: Scheme::Bdf2,
            solver: LinearSolverKind::default(),
        }
    }
}

/// One analysis directive of a deck.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisSpec {
    /// `.tran` — conventional transient (the paper's baseline).
    Tran(TranSpec),
    /// `.shooting` — unforced periodic steady state.
    Shooting(ShootingSpec),
    /// `.mpde` — unwarped multirate envelope (non-autonomous AM).
    Mpde(MpdeSpec),
    /// `.wampde` — warped multirate envelope (the paper's method).
    Wampde(WampdeSpec),
}

impl AnalysisSpec {
    /// The directive keyword, used for labels and artifact names.
    pub fn name(&self) -> &'static str {
        match self {
            AnalysisSpec::Tran(_) => "tran",
            AnalysisSpec::Shooting(_) => "shooting",
            AnalysisSpec::Mpde(_) => "mpde",
            AnalysisSpec::Wampde(_) => "wampde",
        }
    }

    /// The linear-solver backend this analysis will run with.
    pub fn solver(&self) -> LinearSolverKind {
        match self {
            AnalysisSpec::Tran(s) => s.solver,
            AnalysisSpec::Shooting(s) => s.solver,
            AnalysisSpec::Mpde(s) => s.solver,
            AnalysisSpec::Wampde(s) => s.solver,
        }
    }

    /// Overrides the linear-solver backend (used by the `.options`
    /// directive and the `wampde-cli --solver` flag).
    pub fn set_solver(&mut self, kind: LinearSolverKind) {
        match self {
            AnalysisSpec::Tran(s) => s.solver = kind,
            AnalysisSpec::Shooting(s) => s.solver = kind,
            AnalysisSpec::Mpde(s) => s.solver = kind,
            AnalysisSpec::Wampde(s) => s.solver = kind,
        }
    }

    /// The time-integration scheme this analysis will step with
    /// (`None` for `.shooting`, which has no slow-time axis).
    pub fn integrator(&self) -> Option<Scheme> {
        match self {
            AnalysisSpec::Tran(s) => Some(s.integrator),
            AnalysisSpec::Shooting(_) => None,
            AnalysisSpec::Mpde(s) => Some(s.integrator),
            AnalysisSpec::Wampde(s) => Some(s.integrator),
        }
    }

    /// Overrides the integration scheme (used by the `wampde-cli
    /// --integrator` flag). A no-op for `.shooting`.
    pub fn set_integrator(&mut self, scheme: Scheme) {
        match self {
            AnalysisSpec::Tran(s) => s.integrator = scheme,
            AnalysisSpec::Shooting(_) => {}
            AnalysisSpec::Mpde(s) => s.integrator = scheme,
            AnalysisSpec::Wampde(s) => s.integrator = scheme,
        }
    }

    /// Overrides the adaptive relative tolerance (used by the
    /// `wampde-cli --rtol` flag). For `.tran`/`.wampde` it takes effect
    /// in adaptive mode; for `.mpde` a positive value also switches the
    /// envelope from fixed-step to adaptive mode. A no-op for
    /// `.shooting`.
    pub fn set_rtol(&mut self, rtol: f64) {
        match self {
            AnalysisSpec::Tran(s) => s.rtol = rtol,
            AnalysisSpec::Shooting(_) => {}
            AnalysisSpec::Mpde(s) => s.rtol = rtol,
            AnalysisSpec::Wampde(s) => s.rtol = rtol,
        }
    }

    /// Stable, exhaustive serialisation of the *resolved* analysis for
    /// content-hashing (the sweep service's cache keys). Every field of
    /// the spec appears — including options merged in from `.options`
    /// lines or CLI overrides — with floats rendered as the hex of
    /// their IEEE-754 bit pattern, so two specs fingerprint equal iff
    /// they run identically.
    pub fn fingerprint(&self) -> String {
        let b = |v: f64| format!("{:016x}", v.to_bits());
        match self {
            AnalysisSpec::Tran(s) => format!(
                "tran t_stop={} dt={} rtol={} atol={} dt_min={} dt_max={} \
                 integrator={} solver={}",
                b(s.t_stop),
                b(s.dt),
                b(s.rtol),
                b(s.atol),
                b(s.dt_min),
                b(s.dt_max),
                s.integrator.label(),
                s.solver.fingerprint(),
            ),
            AnalysisSpec::Shooting(s) => format!(
                "shooting steps={} phase_var={} solver={}",
                s.steps_per_period,
                s.phase_var,
                s.solver.fingerprint(),
            ),
            AnalysisSpec::Mpde(s) => format!(
                "mpde f1={} t_stop={} harmonics={} node={} amp={} depth={} \
                 fmod={} dt={} rtol={} atol={} dt_min={} dt_max={} \
                 integrator={} solver={}",
                b(s.f1_hz),
                b(s.t_stop),
                s.harmonics,
                s.node,
                b(s.amplitude),
                b(s.mod_depth),
                b(s.mod_freq_hz),
                b(s.dt),
                b(s.rtol),
                b(s.atol),
                b(s.dt_min),
                b(s.dt_max),
                s.integrator.label(),
                s.solver.fingerprint(),
            ),
            AnalysisSpec::Wampde(s) => format!(
                "wampde t_stop={} harmonics={} phase_var={} steps={} dt={} \
                 rtol={} atol={} dt_min={} dt_max={} integrator={} solver={}",
                b(s.t_stop),
                s.harmonics,
                s.phase_var,
                s.shooting_steps,
                b(s.dt),
                b(s.rtol),
                b(s.atol),
                b(s.dt_min),
                b(s.dt_max),
                s.integrator.label(),
                s.solver.fingerprint(),
            ),
        }
    }
}

/// `.sweep <param> <from> <to> <points> [log]` — one swept parameter.
///
/// `param` is a device card name (`R1` — primary value) or a dotted field
/// (`M1.control`, `V1.ampl`); see [`crate::Device::set_param`] for the
/// field tables.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Device card name (uppercase).
    pub device: String,
    /// Optional parameter field (lowercase).
    pub field: Option<String>,
    /// First grid value.
    pub from: f64,
    /// Last grid value.
    pub to: f64,
    /// Number of grid points (≥ 1).
    pub points: usize,
    /// Logarithmic (geometric) spacing instead of linear.
    pub log: bool,
}

impl SweepSpec {
    /// The `NAME` / `NAME.field` label of the swept parameter.
    pub fn label(&self) -> String {
        match &self.field {
            Some(f) => format!("{}.{f}", self.device),
            None => self.device.clone(),
        }
    }

    /// The grid values, `from` to `to` inclusive, linearly or
    /// geometrically spaced. `points == 1` yields `[from]`.
    pub fn values(&self) -> Vec<f64> {
        if self.points <= 1 {
            return vec![self.from];
        }
        let n = (self.points - 1) as f64;
        (0..self.points)
            .map(|i| {
                let w = i as f64 / n;
                if self.log {
                    self.from * (self.to / self.from).powf(w)
                } else {
                    self.from + (self.to - self.from) * w
                }
            })
            .collect()
    }
}

/// A parsed scenario deck: the (unbuilt) circuit, the device card names,
/// and the analysis/sweep directives.
#[derive(Debug, Clone)]
pub struct Deck {
    pub(crate) circuit: Circuit,
    pub(crate) names: Vec<String>,
    /// Analysis directives, in deck order.
    pub analyses: Vec<AnalysisSpec>,
    /// Sweep directives, in deck order (first varies slowest).
    pub sweeps: Vec<SweepSpec>,
}

impl Deck {
    /// Device card names, uppercase, in deck order.
    pub fn device_names(&self) -> &[String] {
        &self.names
    }

    /// Stable serialisation of everything a sweep job's circuit depends
    /// on: the device cards (with every parameter) and the sweep
    /// directives (which decide what the grid-point values bind to).
    /// Analysis directives are *not* included — each job hashes its own
    /// resolved [`AnalysisSpec::fingerprint`] separately, so editing one
    /// directive does not invalidate cached results of the others.
    ///
    /// The rendering leans on `Debug` formatting, whose shortest
    /// round-trip float output is exact: two decks fingerprint equal iff
    /// their circuits and sweep bindings are identical. Cache keys also
    /// mix in a code-version salt, so a formatting change across
    /// toolchains can only cause cache misses, never false hits.
    pub fn fingerprint(&self) -> String {
        format!("{:?}|{:?}|{:?}", self.circuit, self.names, self.sweeps)
    }

    /// Builds the circuit with no overrides applied.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Circuit`] when validation fails (cannot happen for
    /// decks returned by the parser, which validates at parse time).
    pub fn base_circuit(&self) -> Result<CircuitDae, NetlistError> {
        Ok(self.circuit.clone().build()?)
    }

    /// Builds the circuit with sweep values applied: `values[i]` is
    /// assigned to the parameter of `self.sweeps[i]`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Param`] when the value count mismatches the sweep
    /// count, a sweep names an unknown device, or the device rejects the
    /// value; [`NetlistError::Circuit`] when the overridden circuit fails
    /// validation.
    pub fn instantiate(&self, values: &[f64]) -> Result<CircuitDae, NetlistError> {
        if values.len() != self.sweeps.len() {
            return Err(NetlistError::Param {
                device: String::new(),
                message: format!(
                    "expected {} sweep values, got {}",
                    self.sweeps.len(),
                    values.len()
                ),
            });
        }
        let mut ckt = self.circuit.clone();
        for (sw, &v) in self.sweeps.iter().zip(values) {
            let idx = self
                .names
                .iter()
                .position(|n| *n == sw.device)
                .ok_or_else(|| NetlistError::Param {
                    device: sw.device.clone(),
                    message: "sweep references unknown device".into(),
                })?;
            ckt.device_mut(idx)
                .expect("names parallel devices")
                .set_param(sw.field.as_deref(), v)
                .map_err(|message| NetlistError::Param {
                    device: sw.label(),
                    message,
                })?;
        }
        Ok(ckt.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_values_linear_and_log() {
        let mut sw = SweepSpec {
            device: "R1".into(),
            field: None,
            from: 1.0,
            to: 3.0,
            points: 5,
            log: false,
        };
        assert_eq!(sw.values(), vec![1.0, 1.5, 2.0, 2.5, 3.0]);
        sw.log = true;
        sw.from = 1.0;
        sw.to = 100.0;
        sw.points = 3;
        let v = sw.values();
        assert!((v[1] - 10.0).abs() < 1e-12, "{v:?}");
        sw.points = 1;
        assert_eq!(sw.values(), vec![1.0]);
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let a = AnalysisSpec::Tran(TranSpec::new(1e-3));
        let b = AnalysisSpec::Tran(TranSpec::new(1e-3));
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Every option perturbation must change the fingerprint.
        let mut c = TranSpec::new(1e-3);
        c.rtol = 2e-6;
        assert_ne!(a.fingerprint(), AnalysisSpec::Tran(c).fingerprint());
        let mut d = TranSpec::new(1e-3);
        d.solver = LinearSolverKind::SparseLu;
        assert_ne!(a.fingerprint(), AnalysisSpec::Tran(d).fingerprint());
        let mut e = TranSpec::new(1e-3);
        e.integrator = Scheme::BackwardEuler;
        assert_ne!(a.fingerprint(), AnalysisSpec::Tran(e).fingerprint());

        // GMRES parameters are part of the solver fingerprint.
        let mut f = TranSpec::new(1e-3);
        f.solver = LinearSolverKind::gmres_default();
        let mut g = TranSpec::new(1e-3);
        g.solver = LinearSolverKind::GmresIlu0 {
            restart: 30,
            max_iters: 1000,
            rtol: 1e-10,
        };
        assert_ne!(
            AnalysisSpec::Tran(f).fingerprint(),
            AnalysisSpec::Tran(g).fingerprint()
        );
    }

    #[test]
    fn deck_fingerprint_tracks_circuit_and_sweeps() {
        let base = "V1 in 0 DC(5)\nR1 in out 1k\nC1 out 0 1u\n.tran 1m\n";
        let d1 = crate::parse_deck(base).unwrap();
        let d2 = crate::parse_deck(base).unwrap();
        assert_eq!(d1.fingerprint(), d2.fingerprint());

        // A different device value changes it.
        let d3 = crate::parse_deck("V1 in 0 DC(5)\nR1 in out 2k\nC1 out 0 1u\n.tran 1m\n").unwrap();
        assert_ne!(d1.fingerprint(), d3.fingerprint());

        // A different sweep binding changes it even at equal values.
        let s1 = crate::parse_deck(&format!("{base}.sweep R1 1k 3k 3\n")).unwrap();
        let s2 = crate::parse_deck(&format!("{base}.sweep C1 1k 3k 3\n")).unwrap();
        assert_ne!(s1.fingerprint(), s2.fingerprint());

        // Analysis directives are intentionally excluded.
        let a1 = crate::parse_deck(&format!("{base}.tran 2m\n")).unwrap();
        assert_eq!(d1.fingerprint(), a1.fingerprint());
    }

    #[test]
    fn label_includes_field() {
        let sw = SweepSpec {
            device: "M1".into(),
            field: Some("control".into()),
            from: 1.0,
            to: 2.0,
            points: 2,
            log: false,
        };
        assert_eq!(sw.label(), "M1.control");
    }
}
