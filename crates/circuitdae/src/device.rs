//! Circuit devices and their MNA stamps.

use crate::circuit::Node;
use crate::waveform::Waveform;
use numkit::DMat;
use sparsekit::Triplets;

/// Parameters of the electrostatically actuated MEMS varactor
/// (the paper's "novel MEMS varactor with a separate control voltage").
///
/// Mechanical model: a plate of mass `mass` on a spring `spring_k` with
/// viscous damping `damping`, driven by an electrostatic force
/// `force_gain·V_ctl(t)²` from a separate control electrode. The plate
/// displacement `y` (normalised by the reference travel `y0`) sets the
/// tank capacitance through the smooth inverse law
///
/// ```text
/// C(y) = c0 / (1 + y/y0),
/// ```
///
/// which is positive for all `y > −y0` — no clipping logic is needed, and
/// `∂C/∂y` stays smooth for Newton. The *vacuum* configuration uses small
/// `damping` (underdamped plate, fast tracking); the *air-filled*
/// configuration is heavily overdamped, giving the slow settling the
/// paper's Figure 10 highlights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemsParams {
    /// Rest capacitance at `y = 0` (farads).
    pub c0: f64,
    /// Reference travel normalisation (same unit as `y`).
    pub y0: f64,
    /// Plate mass (kg).
    pub mass: f64,
    /// Viscous damping coefficient (N·s/m).
    pub damping: f64,
    /// Spring constant (N/m).
    pub spring_k: f64,
    /// Electrostatic force gain (N/V²) from the control voltage.
    pub force_gain: f64,
    /// Control-voltage waveform applied to the actuation electrode.
    pub control: Waveform,
    /// Optional coupling of the *tank* voltage onto the plate
    /// (`F_tank = ½·tank_coupling·v²·∂C/∂y`); `0.0` disables it, matching
    /// the paper's separate-electrode description.
    pub tank_coupling: f64,
}

impl MemsParams {
    /// Capacitance at plate displacement `y`.
    #[inline]
    pub fn capacitance(&self, y: f64) -> f64 {
        self.c0 / (1.0 + y / self.y0)
    }

    /// `∂C/∂y`.
    #[inline]
    pub fn dc_dy(&self, y: f64) -> f64 {
        let s = 1.0 + y / self.y0;
        -self.c0 / (self.y0 * s * s)
    }

    /// `∂²C/∂y²`.
    #[inline]
    pub fn d2c_dy2(&self, y: f64) -> f64 {
        let s = 1.0 + y / self.y0;
        2.0 * self.c0 / (self.y0 * self.y0 * s * s * s)
    }

    /// Static (quasi-stationary) displacement for a control voltage `v`.
    #[inline]
    pub fn static_displacement(&self, v: f64) -> f64 {
        self.force_gain * v * v / self.spring_k
    }
}

/// A circuit element with MNA stamps.
///
/// Constructors are provided instead of public struct-literal syntax so
/// parameter validation stays in one place.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor `i = (v1 − v2)/r`.
    Resistor {
        /// Positive terminal.
        n1: Node,
        /// Negative terminal.
        n2: Node,
        /// Resistance in ohms (nonzero).
        r: f64,
    },
    /// Linear capacitor `q = c·(v1 − v2)`.
    Capacitor {
        /// Positive terminal.
        n1: Node,
        /// Negative terminal.
        n2: Node,
        /// Capacitance in farads.
        c: f64,
    },
    /// Linear inductor; adds one branch-current unknown.
    Inductor {
        /// Positive terminal.
        n1: Node,
        /// Negative terminal.
        n2: Node,
        /// Inductance in henries.
        l: f64,
    },
    /// Cubic nonlinear conductor `i(v) = −g1·v + g3·v³` — negative
    /// (energy-supplying) around `v = 0`, positive beyond: the classic
    /// negative-resistance element that gives the paper's LC tank its
    /// stable limit cycle.
    CubicConductor {
        /// Positive terminal.
        n1: Node,
        /// Negative terminal.
        n2: Node,
        /// Small-signal negative conductance magnitude (S).
        g1: f64,
        /// Cubic limiting coefficient (S/V²).
        g3: f64,
    },
    /// Saturating nonlinear conductor `i(v) = −isat·tanh(v/vt) + v·gmin`:
    /// an alternative negative-resistance element with bounded drive.
    TanhConductor {
        /// Positive terminal.
        n1: Node,
        /// Negative terminal.
        n2: Node,
        /// Saturation current (A).
        isat: f64,
        /// Transition voltage (V).
        vt: f64,
        /// Parallel loss conductance (S).
        gmin: f64,
    },
    /// Independent current source pushing `w(t)` from `n_from` into `n_to`.
    CurrentSource {
        /// Terminal the current is drawn from.
        n_from: Node,
        /// Terminal the current is injected into.
        n_to: Node,
        /// Source waveform.
        wave: Waveform,
    },
    /// Independent voltage source `v(n1) − v(n2) = w(t)`; adds one
    /// branch-current unknown.
    VoltageSource {
        /// Positive terminal.
        n1: Node,
        /// Negative terminal.
        n2: Node,
        /// Source waveform.
        wave: Waveform,
    },
    /// Electrostatically actuated MEMS varactor between `n1` and `n2`;
    /// adds two unknowns (plate displacement `y`, velocity `u`).
    MemsVaractor {
        /// Positive terminal.
        n1: Node,
        /// Negative terminal.
        n2: Node,
        /// Electromechanical parameters.
        params: MemsParams,
    },
    /// Junction diode `i = Is·(e^{v/vt} − 1)` (anode `n1` → cathode `n2`),
    /// linearly extended beyond `v > 40·vt` for Newton robustness (the
    /// standard SPICE junction limiting).
    Diode {
        /// Anode.
        n1: Node,
        /// Cathode.
        n2: Node,
        /// Saturation current (A).
        isat: f64,
        /// Thermal voltage (V), typically 25.85 mV.
        vt: f64,
    },
    /// Voltage-controlled current source: pushes
    /// `gm·(v(cp) − v(cn))` from `n_from` into `n_to`.
    Vccs {
        /// Terminal current is drawn from.
        n_from: Node,
        /// Terminal current is injected into.
        n_to: Node,
        /// Positive control terminal.
        cp: Node,
        /// Negative control terminal.
        cn: Node,
        /// Transconductance (S).
        gm: f64,
    },
}

/// Junction current and conductance with linear extension above `40·vt`.
fn diode_iv(v: f64, isat: f64, vt: f64) -> (f64, f64) {
    let vcrit = 40.0 * vt;
    if v <= vcrit {
        let e = (v / vt).exp();
        (isat * (e - 1.0), isat * e / vt)
    } else {
        let e = (vcrit / vt).exp();
        let g = isat * e / vt;
        (isat * (e - 1.0) + g * (v - vcrit), g)
    }
}

impl Device {
    /// Linear resistor between `n1` and `n2`.
    ///
    /// # Panics
    ///
    /// Panics when `r == 0`.
    pub fn resistor(n1: Node, n2: Node, r: f64) -> Self {
        assert!(r != 0.0, "resistance must be nonzero");
        Device::Resistor { n1, n2, r }
    }

    /// Linear capacitor between `n1` and `n2`.
    pub fn capacitor(n1: Node, n2: Node, c: f64) -> Self {
        Device::Capacitor { n1, n2, c }
    }

    /// Linear inductor between `n1` and `n2`.
    pub fn inductor(n1: Node, n2: Node, l: f64) -> Self {
        Device::Inductor { n1, n2, l }
    }

    /// Cubic negative-resistance conductor (see [`Device::CubicConductor`]).
    pub fn cubic_conductor(n1: Node, n2: Node, g1: f64, g3: f64) -> Self {
        Device::CubicConductor { n1, n2, g1, g3 }
    }

    /// Saturating negative-resistance conductor.
    pub fn tanh_conductor(n1: Node, n2: Node, isat: f64, vt: f64, gmin: f64) -> Self {
        Device::TanhConductor {
            n1,
            n2,
            isat,
            vt,
            gmin,
        }
    }

    /// Current source pushing `wave` from `n_from` into `n_to`.
    pub fn current_source(n_from: Node, n_to: Node, wave: Waveform) -> Self {
        Device::CurrentSource { n_from, n_to, wave }
    }

    /// Voltage source imposing `v(n1) − v(n2) = wave(t)`.
    pub fn voltage_source(n1: Node, n2: Node, wave: Waveform) -> Self {
        Device::VoltageSource { n1, n2, wave }
    }

    /// MEMS varactor between `n1` and `n2`.
    pub fn mems_varactor(n1: Node, n2: Node, params: MemsParams) -> Self {
        Device::MemsVaractor { n1, n2, params }
    }

    /// Junction diode (anode `n1`, cathode `n2`).
    ///
    /// # Panics
    ///
    /// Panics when `vt <= 0` or `isat <= 0`.
    pub fn diode(n1: Node, n2: Node, isat: f64, vt: f64) -> Self {
        assert!(isat > 0.0, "saturation current must be positive");
        assert!(vt > 0.0, "thermal voltage must be positive");
        Device::Diode { n1, n2, isat, vt }
    }

    /// Voltage-controlled current source `i = gm·(v(cp) − v(cn))`
    /// from `n_from` into `n_to`.
    pub fn vccs(n_from: Node, n_to: Node, cp: Node, cn: Node, gm: f64) -> Self {
        Device::Vccs {
            n_from,
            n_to,
            cp,
            cn,
            gm,
        }
    }

    /// Sets one scalar parameter by field name, for sweep overrides.
    ///
    /// `field = None` selects the device's primary value (`r`, `c`, `l`,
    /// `g1`, `isat`, `gm`, or the DC level of a DC source). Named fields:
    ///
    /// | device | fields |
    /// |---|---|
    /// | `GN` cubic | `g1`, `g3` |
    /// | `GT` tanh | `isat`, `vt`, `gmin` |
    /// | diode | `isat`, `vt` |
    /// | VCCS | `gm` |
    /// | sources | waveform fields (see [`Waveform::set_param`]) |
    /// | MEMS | `control` (DC control voltage), `c0`, `y0`, `mass`, `damping`, `k`, `force_gain` |
    ///
    /// # Errors
    ///
    /// Returns a message when the field does not exist on this device or
    /// the value is out of its legal domain (zero resistance, nonpositive
    /// diode parameters).
    pub fn set_param(&mut self, field: Option<&str>, value: f64) -> Result<(), String> {
        let unknown = |field: &str, allowed: &str| {
            Err(format!("unknown field '{field}' (expected {allowed})"))
        };
        match self {
            Device::Resistor { r, .. } => match field {
                None | Some("r") => {
                    if value == 0.0 {
                        return Err("resistance must be nonzero".into());
                    }
                    *r = value;
                    Ok(())
                }
                Some(f) => unknown(f, "r"),
            },
            Device::Capacitor { c, .. } => match field {
                None | Some("c") => {
                    *c = value;
                    Ok(())
                }
                Some(f) => unknown(f, "c"),
            },
            Device::Inductor { l, .. } => match field {
                None | Some("l") => {
                    *l = value;
                    Ok(())
                }
                Some(f) => unknown(f, "l"),
            },
            Device::CubicConductor { g1, g3, .. } => match field {
                None | Some("g1") => {
                    *g1 = value;
                    Ok(())
                }
                Some("g3") => {
                    *g3 = value;
                    Ok(())
                }
                Some(f) => unknown(f, "g1, g3"),
            },
            Device::TanhConductor { isat, vt, gmin, .. } => match field {
                None | Some("isat") => {
                    *isat = value;
                    Ok(())
                }
                Some("vt") => {
                    *vt = value;
                    Ok(())
                }
                Some("gmin") => {
                    *gmin = value;
                    Ok(())
                }
                Some(f) => unknown(f, "isat, vt, gmin"),
            },
            Device::Diode { isat, vt, .. } => match field {
                None | Some("isat") => {
                    if value <= 0.0 {
                        return Err("saturation current must be positive".into());
                    }
                    *isat = value;
                    Ok(())
                }
                Some("vt") => {
                    if value <= 0.0 {
                        return Err("thermal voltage must be positive".into());
                    }
                    *vt = value;
                    Ok(())
                }
                Some(f) => unknown(f, "isat, vt"),
            },
            Device::Vccs { gm, .. } => match field {
                None | Some("gm") => {
                    *gm = value;
                    Ok(())
                }
                Some(f) => unknown(f, "gm"),
            },
            Device::CurrentSource { wave, .. } | Device::VoltageSource { wave, .. } => {
                match field {
                    Some(f) => wave.set_param(f, value),
                    None => wave.set_param("dc", value).map_err(|_| {
                        "source default parameter requires a DC waveform; \
                         name a waveform field (e.g. NAME.ampl)"
                            .to_string()
                    }),
                }
            }
            Device::MemsVaractor { params, .. } => match field {
                Some("control") => params.control.set_param("dc", value).map_err(|_| {
                    "field 'control' requires a DC control waveform; \
                     use control-waveform fields via a DC source instead"
                        .to_string()
                }),
                Some("c0") => {
                    params.c0 = value;
                    Ok(())
                }
                Some("y0") => {
                    params.y0 = value;
                    Ok(())
                }
                Some("mass") => {
                    params.mass = value;
                    Ok(())
                }
                Some("damping") => {
                    params.damping = value;
                    Ok(())
                }
                Some("k") => {
                    params.spring_k = value;
                    Ok(())
                }
                Some("force_gain") => {
                    params.force_gain = value;
                    Ok(())
                }
                Some(f) => unknown(f, "control, c0, y0, mass, damping, k, force_gain"),
                None => Err("MEMS varactor has no default parameter; name a field \
                     (control, c0, y0, mass, damping, k, force_gain)"
                    .into()),
            },
        }
    }

    /// The device with every time-dependent waveform replaced by its DC
    /// value at time `t` — the unforced companion used to initialise
    /// oscillator analyses.
    pub fn frozen_at(&self, t: f64) -> Device {
        let mut d = self.clone();
        match &mut d {
            Device::CurrentSource { wave, .. } | Device::VoltageSource { wave, .. } => {
                *wave = wave.frozen_at(t);
            }
            Device::MemsVaractor { params, .. } => {
                params.control = params.control.frozen_at(t);
            }
            _ => {}
        }
        d
    }

    /// Number of extra (non-node) unknowns this device introduces.
    pub fn n_extras(&self) -> usize {
        match self {
            Device::Inductor { .. } | Device::VoltageSource { .. } => 1,
            Device::MemsVaractor { .. } => 2,
            _ => 0,
        }
    }

    /// Nodes this device touches (for connectivity validation).
    pub fn nodes(&self) -> Vec<Node> {
        match *self {
            Device::Resistor { n1, n2, .. }
            | Device::Capacitor { n1, n2, .. }
            | Device::Inductor { n1, n2, .. }
            | Device::CubicConductor { n1, n2, .. }
            | Device::TanhConductor { n1, n2, .. }
            | Device::VoltageSource { n1, n2, .. }
            | Device::Diode { n1, n2, .. }
            | Device::MemsVaractor { n1, n2, .. } => vec![n1, n2],
            Device::CurrentSource { n_from, n_to, .. } => vec![n_from, n_to],
            Device::Vccs {
                n_from,
                n_to,
                cp,
                cn,
                ..
            } => vec![n_from, n_to, cp, cn],
        }
    }
}

/// Stamp context: resolves node voltages and accumulates into vectors.
pub(crate) struct Stamper<'a> {
    pub x: &'a [f64],
}

impl Stamper<'_> {
    #[inline]
    pub fn v(&self, n: Node) -> f64 {
        match n.unknown_index() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    #[inline]
    pub fn acc(out: &mut [f64], n: Node, val: f64) {
        if let Some(i) = n.unknown_index() {
            out[i] += val;
        }
    }

    #[inline]
    pub fn acc_jac(out: &mut DMat, row: Node, col: Node, val: f64) {
        if let (Some(i), Some(j)) = (row.unknown_index(), col.unknown_index()) {
            out[(i, j)] += val;
        }
    }

    #[inline]
    pub fn acc_jac_ri(out: &mut DMat, row: Node, col: usize, val: f64) {
        if let Some(i) = row.unknown_index() {
            out[(i, col)] += val;
        }
    }

    #[inline]
    pub fn acc_jac_ir(out: &mut DMat, row: usize, col: Node, val: f64) {
        if let Some(j) = col.unknown_index() {
            out[(row, j)] += val;
        }
    }

    // Sparse (triplet) counterparts of the dense accumulators. These push
    // *unconditionally* — a value of 0.0 is kept — so the emitted pattern
    // is structural: the same positions appear for every `x`, which is
    // what lets `CircuitDae::sparsity` be computed from a single stamp.

    #[inline]
    pub fn trip(out: &mut Triplets, row: Node, col: Node, val: f64) {
        if let (Some(i), Some(j)) = (row.unknown_index(), col.unknown_index()) {
            out.push(i, j, val);
        }
    }

    #[inline]
    pub fn trip_ri(out: &mut Triplets, row: Node, col: usize, val: f64) {
        if let Some(i) = row.unknown_index() {
            out.push(i, col, val);
        }
    }

    #[inline]
    pub fn trip_ir(out: &mut Triplets, row: usize, col: Node, val: f64) {
        if let Some(j) = col.unknown_index() {
            out.push(row, j, val);
        }
    }

    /// Pushes the four-entry conductance-style block `±g` between two
    /// nodes (ground rows/cols skipped).
    #[inline]
    fn trip_pair(out: &mut Triplets, n1: Node, n2: Node, g: f64) {
        Stamper::trip(out, n1, n1, g);
        Stamper::trip(out, n1, n2, -g);
        Stamper::trip(out, n2, n1, -g);
        Stamper::trip(out, n2, n2, g);
    }
}

impl Device {
    /// Accumulates the device's contribution to `q(x)`.
    pub(crate) fn stamp_q(&self, st: &Stamper<'_>, extra: usize, out: &mut [f64]) {
        match *self {
            Device::Capacitor { n1, n2, c } => {
                let v12 = st.v(n1) - st.v(n2);
                Stamper::acc(out, n1, c * v12);
                Stamper::acc(out, n2, -c * v12);
            }
            Device::Inductor { l, .. } => {
                out[extra] += l * st.x[extra];
            }
            Device::MemsVaractor { n1, n2, ref params } => {
                let v12 = st.v(n1) - st.v(n2);
                let y = st.x[extra];
                let u = st.x[extra + 1];
                let c = params.capacitance(y);
                Stamper::acc(out, n1, c * v12);
                Stamper::acc(out, n2, -c * v12);
                out[extra] += y;
                out[extra + 1] += params.mass * u;
            }
            _ => {}
        }
    }

    /// Accumulates the device's contribution to `f(x)`.
    pub(crate) fn stamp_f(&self, st: &Stamper<'_>, extra: usize, out: &mut [f64]) {
        match *self {
            Device::Resistor { n1, n2, r } => {
                let i = (st.v(n1) - st.v(n2)) / r;
                Stamper::acc(out, n1, i);
                Stamper::acc(out, n2, -i);
            }
            Device::CubicConductor { n1, n2, g1, g3 } => {
                let v = st.v(n1) - st.v(n2);
                let i = -g1 * v + g3 * v * v * v;
                Stamper::acc(out, n1, i);
                Stamper::acc(out, n2, -i);
            }
            Device::TanhConductor {
                n1,
                n2,
                isat,
                vt,
                gmin,
            } => {
                let v = st.v(n1) - st.v(n2);
                let i = -isat * (v / vt).tanh() + gmin * v;
                Stamper::acc(out, n1, i);
                Stamper::acc(out, n2, -i);
            }
            Device::Inductor { n1, n2, .. } => {
                let il = st.x[extra];
                Stamper::acc(out, n1, il);
                Stamper::acc(out, n2, -il);
                out[extra] += -(st.v(n1) - st.v(n2));
            }
            Device::VoltageSource { n1, n2, .. } => {
                let i = st.x[extra];
                Stamper::acc(out, n1, i);
                Stamper::acc(out, n2, -i);
                out[extra] += st.v(n1) - st.v(n2);
            }
            Device::MemsVaractor { n1, n2, ref params } => {
                let y = st.x[extra];
                let u = st.x[extra + 1];
                out[extra] += -u;
                let mut fu = params.damping * u + params.spring_k * y;
                if params.tank_coupling != 0.0 {
                    let v12 = st.v(n1) - st.v(n2);
                    fu -= 0.5 * params.tank_coupling * v12 * v12 * params.dc_dy(y);
                }
                out[extra + 1] += fu;
            }
            Device::Diode { n1, n2, isat, vt } => {
                let v = st.v(n1) - st.v(n2);
                let (i, _) = diode_iv(v, isat, vt);
                Stamper::acc(out, n1, i);
                Stamper::acc(out, n2, -i);
            }
            Device::Vccs {
                n_from,
                n_to,
                cp,
                cn,
                gm,
            } => {
                // f holds currents *leaving* each node: an injection into
                // n_to appears with negative sign there.
                let i = gm * (st.v(cp) - st.v(cn));
                Stamper::acc(out, n_to, -i);
                Stamper::acc(out, n_from, i);
            }
            Device::CurrentSource { .. } | Device::Capacitor { .. } => {}
        }
    }

    /// Accumulates the device's contribution to `b(t)`.
    pub(crate) fn stamp_b(&self, t: f64, extra: usize, out: &mut [f64]) {
        match *self {
            Device::CurrentSource { n_from, n_to, wave } => {
                let i = wave.eval(t);
                Stamper::acc(out, n_to, i);
                Stamper::acc(out, n_from, -i);
            }
            Device::VoltageSource { wave, .. } => {
                out[extra] += wave.eval(t);
            }
            Device::MemsVaractor { ref params, .. } => {
                let v = params.control.eval(t);
                out[extra + 1] += params.force_gain * v * v;
            }
            _ => {}
        }
    }

    /// Accumulates the device's contribution to `C(x) = ∂q/∂x`.
    pub(crate) fn stamp_jac_q(&self, st: &Stamper<'_>, extra: usize, out: &mut DMat) {
        match *self {
            Device::Capacitor { n1, n2, c } => {
                Stamper::acc_jac(out, n1, n1, c);
                Stamper::acc_jac(out, n1, n2, -c);
                Stamper::acc_jac(out, n2, n1, -c);
                Stamper::acc_jac(out, n2, n2, c);
            }
            Device::Inductor { l, .. } => {
                out[(extra, extra)] += l;
            }
            Device::MemsVaractor { n1, n2, ref params } => {
                let v12 = st.v(n1) - st.v(n2);
                let y = st.x[extra];
                let c = params.capacitance(y);
                let dcdy = params.dc_dy(y);
                Stamper::acc_jac(out, n1, n1, c);
                Stamper::acc_jac(out, n1, n2, -c);
                Stamper::acc_jac(out, n2, n1, -c);
                Stamper::acc_jac(out, n2, n2, c);
                Stamper::acc_jac_ri(out, n1, extra, dcdy * v12);
                Stamper::acc_jac_ri(out, n2, extra, -dcdy * v12);
                out[(extra, extra)] += 1.0;
                out[(extra + 1, extra + 1)] += params.mass;
            }
            _ => {}
        }
    }

    /// Accumulates the device's contribution to `G(x) = ∂f/∂x`.
    pub(crate) fn stamp_jac_f(&self, st: &Stamper<'_>, extra: usize, out: &mut DMat) {
        match *self {
            Device::Resistor { n1, n2, r } => {
                let g = 1.0 / r;
                Stamper::acc_jac(out, n1, n1, g);
                Stamper::acc_jac(out, n1, n2, -g);
                Stamper::acc_jac(out, n2, n1, -g);
                Stamper::acc_jac(out, n2, n2, g);
            }
            Device::CubicConductor { n1, n2, g1, g3 } => {
                let v = st.v(n1) - st.v(n2);
                let g = -g1 + 3.0 * g3 * v * v;
                Stamper::acc_jac(out, n1, n1, g);
                Stamper::acc_jac(out, n1, n2, -g);
                Stamper::acc_jac(out, n2, n1, -g);
                Stamper::acc_jac(out, n2, n2, g);
            }
            Device::TanhConductor {
                n1,
                n2,
                isat,
                vt,
                gmin,
            } => {
                let v = st.v(n1) - st.v(n2);
                let sech2 = {
                    let t = (v / vt).tanh();
                    1.0 - t * t
                };
                let g = -isat / vt * sech2 + gmin;
                Stamper::acc_jac(out, n1, n1, g);
                Stamper::acc_jac(out, n1, n2, -g);
                Stamper::acc_jac(out, n2, n1, -g);
                Stamper::acc_jac(out, n2, n2, g);
            }
            Device::Inductor { n1, n2, .. } => {
                Stamper::acc_jac_ri(out, n1, extra, 1.0);
                Stamper::acc_jac_ri(out, n2, extra, -1.0);
                Stamper::acc_jac_ir(out, extra, n1, -1.0);
                Stamper::acc_jac_ir(out, extra, n2, 1.0);
            }
            Device::VoltageSource { n1, n2, .. } => {
                Stamper::acc_jac_ri(out, n1, extra, 1.0);
                Stamper::acc_jac_ri(out, n2, extra, -1.0);
                Stamper::acc_jac_ir(out, extra, n1, 1.0);
                Stamper::acc_jac_ir(out, extra, n2, -1.0);
            }
            Device::MemsVaractor { n1, n2, ref params } => {
                out[(extra, extra + 1)] += -1.0;
                out[(extra + 1, extra)] += params.spring_k;
                out[(extra + 1, extra + 1)] += params.damping;
                if params.tank_coupling != 0.0 {
                    let v12 = st.v(n1) - st.v(n2);
                    let y = st.x[extra];
                    let dcdy = params.dc_dy(y);
                    let d2c = params.d2c_dy2(y);
                    let tc = params.tank_coupling;
                    Stamper::acc_jac_ir(out, extra + 1, n1, -tc * v12 * dcdy);
                    Stamper::acc_jac_ir(out, extra + 1, n2, tc * v12 * dcdy);
                    out[(extra + 1, extra)] += -0.5 * tc * v12 * v12 * d2c;
                }
            }
            Device::Diode { n1, n2, isat, vt } => {
                let v = st.v(n1) - st.v(n2);
                let (_, g) = diode_iv(v, isat, vt);
                Stamper::acc_jac(out, n1, n1, g);
                Stamper::acc_jac(out, n1, n2, -g);
                Stamper::acc_jac(out, n2, n1, -g);
                Stamper::acc_jac(out, n2, n2, g);
            }
            Device::Vccs {
                n_from,
                n_to,
                cp,
                cn,
                gm,
            } => {
                Stamper::acc_jac(out, n_to, cp, -gm);
                Stamper::acc_jac(out, n_to, cn, gm);
                Stamper::acc_jac(out, n_from, cp, gm);
                Stamper::acc_jac(out, n_from, cn, -gm);
            }
            Device::CurrentSource { .. } | Device::Capacitor { .. } => {}
        }
    }

    /// Sparse counterpart of [`Device::stamp_jac_q`]: pushes the device's
    /// `∂q/∂x` entries as triplets at their structural positions (zeros
    /// kept, so the pattern is `x`-independent).
    pub(crate) fn stamp_jac_q_trip(&self, st: &Stamper<'_>, extra: usize, out: &mut Triplets) {
        match *self {
            Device::Capacitor { n1, n2, c } => {
                Stamper::trip_pair(out, n1, n2, c);
            }
            Device::Inductor { l, .. } => {
                out.push(extra, extra, l);
            }
            Device::MemsVaractor { n1, n2, ref params } => {
                let v12 = st.v(n1) - st.v(n2);
                let y = st.x[extra];
                let c = params.capacitance(y);
                let dcdy = params.dc_dy(y);
                Stamper::trip_pair(out, n1, n2, c);
                Stamper::trip_ri(out, n1, extra, dcdy * v12);
                Stamper::trip_ri(out, n2, extra, -dcdy * v12);
                out.push(extra, extra, 1.0);
                out.push(extra + 1, extra + 1, params.mass);
            }
            _ => {}
        }
    }

    /// Sparse counterpart of [`Device::stamp_jac_f`]; same contract as
    /// [`Device::stamp_jac_q_trip`].
    pub(crate) fn stamp_jac_f_trip(&self, st: &Stamper<'_>, extra: usize, out: &mut Triplets) {
        match *self {
            Device::Resistor { n1, n2, r } => {
                Stamper::trip_pair(out, n1, n2, 1.0 / r);
            }
            Device::CubicConductor { n1, n2, g1, g3 } => {
                let v = st.v(n1) - st.v(n2);
                Stamper::trip_pair(out, n1, n2, -g1 + 3.0 * g3 * v * v);
            }
            Device::TanhConductor {
                n1,
                n2,
                isat,
                vt,
                gmin,
            } => {
                let v = st.v(n1) - st.v(n2);
                let sech2 = {
                    let t = (v / vt).tanh();
                    1.0 - t * t
                };
                Stamper::trip_pair(out, n1, n2, -isat / vt * sech2 + gmin);
            }
            Device::Inductor { n1, n2, .. } => {
                Stamper::trip_ri(out, n1, extra, 1.0);
                Stamper::trip_ri(out, n2, extra, -1.0);
                Stamper::trip_ir(out, extra, n1, -1.0);
                Stamper::trip_ir(out, extra, n2, 1.0);
            }
            Device::VoltageSource { n1, n2, .. } => {
                Stamper::trip_ri(out, n1, extra, 1.0);
                Stamper::trip_ri(out, n2, extra, -1.0);
                Stamper::trip_ir(out, extra, n1, 1.0);
                Stamper::trip_ir(out, extra, n2, -1.0);
            }
            Device::MemsVaractor { n1, n2, ref params } => {
                out.push(extra, extra + 1, -1.0);
                out.push(extra + 1, extra, params.spring_k);
                out.push(extra + 1, extra + 1, params.damping);
                if params.tank_coupling != 0.0 {
                    let v12 = st.v(n1) - st.v(n2);
                    let y = st.x[extra];
                    let dcdy = params.dc_dy(y);
                    let d2c = params.d2c_dy2(y);
                    let tc = params.tank_coupling;
                    Stamper::trip_ir(out, extra + 1, n1, -tc * v12 * dcdy);
                    Stamper::trip_ir(out, extra + 1, n2, tc * v12 * dcdy);
                    out.push(extra + 1, extra, -0.5 * tc * v12 * v12 * d2c);
                }
            }
            Device::Diode { n1, n2, isat, vt } => {
                let v = st.v(n1) - st.v(n2);
                let (_, g) = diode_iv(v, isat, vt);
                Stamper::trip_pair(out, n1, n2, g);
            }
            Device::Vccs {
                n_from,
                n_to,
                cp,
                cn,
                gm,
            } => {
                Stamper::trip(out, n_to, cp, -gm);
                Stamper::trip(out, n_to, cn, gm);
                Stamper::trip(out, n_from, cp, gm);
                Stamper::trip(out, n_from, cn, -gm);
            }
            Device::CurrentSource { .. } | Device::Capacitor { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn extras_counted() {
        let n1 = Node::from_raw(1);
        assert_eq!(Device::resistor(n1, Circuit::GND, 1.0).n_extras(), 0);
        assert_eq!(Device::inductor(n1, Circuit::GND, 1.0).n_extras(), 1);
        assert_eq!(
            Device::voltage_source(n1, Circuit::GND, Waveform::Dc(1.0)).n_extras(),
            1
        );
    }

    #[test]
    #[should_panic]
    fn zero_resistance_rejected() {
        let _ = Device::resistor(Node::from_raw(1), Circuit::GND, 0.0);
    }

    #[test]
    fn set_param_primary_values() {
        let n1 = Node::from_raw(1);
        let mut r = Device::resistor(n1, Circuit::GND, 1.0e3);
        r.set_param(None, 2.0e3).unwrap();
        assert_eq!(r, Device::resistor(n1, Circuit::GND, 2.0e3));
        assert!(r.set_param(None, 0.0).is_err());
        assert!(r.set_param(Some("c"), 1.0).unwrap_err().contains("'c'"));

        let mut g = Device::cubic_conductor(n1, Circuit::GND, 1e-3, 1e-4);
        g.set_param(Some("g3"), 2e-4).unwrap();
        assert_eq!(g, Device::cubic_conductor(n1, Circuit::GND, 1e-3, 2e-4));

        let mut d = Device::diode(n1, Circuit::GND, 1e-14, 0.025);
        assert!(d.set_param(Some("vt"), -1.0).is_err());
        d.set_param(Some("vt"), 0.05).unwrap();
    }

    #[test]
    fn set_param_source_and_mems() {
        let n1 = Node::from_raw(1);
        let mut i = Device::current_source(Circuit::GND, n1, Waveform::Dc(1e-3));
        i.set_param(None, 2e-3).unwrap();
        assert_eq!(
            i,
            Device::current_source(Circuit::GND, n1, Waveform::Dc(2e-3))
        );
        let mut s = Device::voltage_source(n1, Circuit::GND, Waveform::sine(0.0, 1.0, 50.0));
        assert!(s.set_param(None, 1.0).is_err()); // default needs DC
        s.set_param(Some("ampl"), 3.0).unwrap();

        let mut m = Device::mems_varactor(
            n1,
            Circuit::GND,
            MemsParams {
                c0: 5e-9,
                y0: 1.0,
                mass: 1e-12,
                damping: 1e-7,
                spring_k: 2.5,
                force_gain: 0.12,
                control: Waveform::Dc(1.5),
                tank_coupling: 0.0,
            },
        );
        assert!(m.set_param(None, 1.0).is_err());
        m.set_param(Some("control"), 1.8).unwrap();
        match &m {
            Device::MemsVaractor { params, .. } => {
                assert_eq!(params.control, Waveform::Dc(1.8));
            }
            other => panic!("unexpected device {other:?}"),
        }
    }

    #[test]
    fn frozen_at_replaces_waveforms() {
        let n1 = Node::from_raw(1);
        let src = Device::current_source(Circuit::GND, n1, Waveform::sine(1.0, 2.0, 1.0));
        assert_eq!(
            src.frozen_at(0.25),
            Device::current_source(Circuit::GND, n1, Waveform::Dc(3.0))
        );
        let r = Device::resistor(n1, Circuit::GND, 1.0);
        assert_eq!(r.frozen_at(5.0), r);
    }

    #[test]
    fn mems_capacitance_law() {
        let p = MemsParams {
            c0: 5e-9,
            y0: 1.0,
            mass: 1e-12,
            damping: 1e-7,
            spring_k: 2.5,
            force_gain: 0.12,
            control: Waveform::Dc(1.5),
            tank_coupling: 0.0,
        };
        assert!((p.capacitance(0.0) - 5e-9).abs() < 1e-20);
        assert!((p.capacitance(1.0) - 2.5e-9).abs() < 1e-20);
        // Finite-difference check of dC/dy.
        let h = 1e-7;
        let fd = (p.capacitance(0.5 + h) - p.capacitance(0.5 - h)) / (2.0 * h);
        assert!((fd - p.dc_dy(0.5)).abs() < 1e-12);
        let fd2 = (p.dc_dy(0.5 + h) - p.dc_dy(0.5 - h)) / (2.0 * h);
        assert!((fd2 - p.d2c_dy2(0.5)).abs() < 1e-9);
    }

    #[test]
    fn diode_iv_continuity_at_vcrit() {
        // Value and slope are continuous across the linearisation knee.
        let (isat, vt) = (1e-14, 0.02585);
        let vc = 40.0 * vt;
        let eps = 1e-9;
        let (i_lo, g_lo) = diode_iv(vc - eps, isat, vt);
        let (i_hi, g_hi) = diode_iv(vc + eps, isat, vt);
        assert!((i_lo - i_hi).abs() < 1e-6 * i_lo.abs());
        assert!((g_lo - g_hi).abs() < 1e-6 * g_lo.abs());
        // Far beyond the knee, no overflow.
        let (i_big, g_big) = diode_iv(100.0, isat, vt);
        assert!(i_big.is_finite() && g_big.is_finite());
    }

    #[test]
    fn diode_reverse_blocks() {
        let (i, g) = diode_iv(-1.0, 1e-14, 0.02585);
        assert!((i + 1e-14).abs() < 1e-20); // −Is
        assert!(g > 0.0 && g < 1e-20 * 1e6);
    }

    #[test]
    #[should_panic]
    fn diode_rejects_bad_vt() {
        let _ = Device::diode(Node::from_raw(1), Circuit::GND, 1e-14, 0.0);
    }

    #[test]
    fn static_displacement_balances_spring() {
        let p = MemsParams {
            c0: 5e-9,
            y0: 1.0,
            mass: 1e-12,
            damping: 1e-7,
            spring_k: 2.0,
            force_gain: 0.5,
            control: Waveform::Dc(2.0),
            tank_coupling: 0.0,
        };
        let y = p.static_displacement(2.0);
        assert!((p.spring_k * y - p.force_gain * 4.0).abs() < 1e-12);
    }
}
