//! Differential-algebraic circuit models.
//!
//! Circuits (and many other dynamical systems) are described by the vector
//! DAE of the paper's eq. (12):
//!
//! ```text
//! d/dt q(x(t)) + f(x(t)) = b(t)
//! ```
//!
//! * [`Dae`] is the abstract interface every simulation engine in this
//!   workspace consumes: charge/flux `q`, resistive `f`, forcing `b`, and
//!   their analytic Jacobians `C = ∂q/∂x`, `G = ∂f/∂x`.
//! * [`Circuit`] is a SPICE-style modified-nodal-analysis builder with
//!   device stamps ([`Device`]): R, L, C, nonlinear (negative-resistance)
//!   conductors, sources, and the paper's electrostatically actuated
//!   MEMS varactor.
//! * [`circuits`] contains ready-made circuits calibrated to Section 5 of
//!   the paper (LC-tank VCO at ≈0.75 MHz, vacuum- and air-damped MEMS
//!   variants), plus van der Pol oscillators used by tests and examples.
//!
//! # Example
//!
//! ```
//! use circuitdae::{Circuit, Device, Waveform, Dae};
//!
//! // A parallel RC driven by a current source: one node, one unknown.
//! let mut ckt = Circuit::new();
//! let n = ckt.node("out");
//! ckt.add(Device::resistor(n, Circuit::GND, 1e3));
//! ckt.add(Device::capacitor(n, Circuit::GND, 1e-6));
//! ckt.add(Device::current_source(Circuit::GND, n, Waveform::Dc(1e-3)));
//! let dae = ckt.build().unwrap();
//! assert_eq!(dae.dim(), 1);
//! ```

pub mod analytic;
pub mod circuit;
pub mod circuits;
pub mod dae;
pub mod deck;
pub mod device;
pub mod netlist;
pub mod waveform;

pub use circuit::{Circuit, CircuitDae, CircuitError, Node};
pub use dae::{check_jacobians, dae_residual, jac_blocks, Dae, Pattern};
pub use deck::{AnalysisSpec, Deck, MpdeSpec, ShootingSpec, SweepSpec, TranSpec, WampdeSpec};
// Deck specs carry the backend choice, so re-export it for deck-driven
// callers (the CLI, sweepkit) that never touch `linsolve` directly.
pub use device::{Device, MemsParams};
pub use linsolve::LinearSolverKind;
// Deck specs likewise carry the integration scheme, so deck-driven
// callers can name schemes without depending on `timekit` directly.
pub use netlist::{parse_deck, parse_netlist, NetlistError};
pub use timekit::Scheme;
pub use waveform::Waveform;
