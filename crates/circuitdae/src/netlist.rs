//! SPICE-style netlist and scenario-deck parsing.
//!
//! A small, line-oriented netlist dialect so circuits can be described as
//! text (and experiment configurations versioned) instead of Rust code:
//!
//! ```text
//! * comment lines start with '*' or '#'
//! R1   n1  0    1k          ; resistor, ohms
//! C1   n1  0    4.503n      ; capacitor, farads
//! L1   n1  0    10u         ; inductor, henries
//! GN1  n1  0    5m  1.667m  ; cubic conductor: i = -g1*v + g3*v^3
//! GT1  n1  0    1m  0.5 10u ; tanh conductor: isat, vt, gmin
//! I1   0   n1   SIN(0 1m 1k)        ; current source (offset ampl freq [phase])
//! V1   n2  0    DC(5)               ; voltage source
//! M1   n1  0    5n 1 1e-12 3e-7 2.47 0.12 DC(1.5)
//! *    ^ MEMS varactor: c0 y0 mass damping k force_gain control
//! ```
//!
//! Node `0` (or `gnd`) is ground; all other node names are created on
//! first use. Values accept the usual suffixes
//! `f p n u m k meg g t` (case-insensitive).
//!
//! [`parse_deck`] additionally accepts *directive* lines (SPICE-style
//! analysis cards), producing a typed [`Deck`]:
//!
//! ```text
//! .tran     <tstop> [dt=<v>] [solver=<s>] [STEP KEYS]
//! .shooting [steps=<n>] [phase_var=<k>] [solver=<s>]
//! .mpde     <f1> <tstop> [harmonics=<n>] [node=<k>] [amp=<v>] [depth=<v>] [fmod=<v>] [dt=<v>] [solver=<s>] [STEP KEYS]
//! .wampde   <tstop> [harmonics=<n>] [phase_var=<k>] [steps=<n>] [dt=<v>] [solver=<s>] [STEP KEYS]
//! .sweep    <param> <from> <to> <points> [log]
//! .options  solver=dense|sparselu|klu|gmres|gmres-circulant [gmres_tol=<v>] [gmres_restart=<n>]
//! ```
//!
//! The time-stepping analyses share one set of `STEP KEYS` plumbed into
//! the `timekit` controller: `integrator=be|trap|bdf2`, `rtol=<v>`,
//! `atol=<v>`, `dt_min=<v>`, `dt_max=<v>`. For `.tran` and `.wampde`,
//! `dt=` pins a fixed step and omitting it selects LTE-adaptive
//! stepping; `.mpde` is fixed-step by default (auto `tstop/50`) and a
//! `rtol=` key switches it to adaptive.
//!
//! `.options` selects the linear-solver backend for *every* analysis in
//! the deck (position-independent; a later `.options` line wins). The
//! default is dense LU; `sparselu`, `klu` (BTF + AMD ordered sparse LU),
//! `gmres`, and `gmres-circulant` (block-circulant preconditioning for
//! the quasiperiodic cyclic system) route each solver's inner
//! factorisations through the shared `linsolve` layer's sparse backends.
//! Every analysis directive additionally accepts its own `solver=<s>`
//! key with the same values, which takes precedence over the deck-wide
//! `.options` choice for that analysis alone (and is itself overridden
//! by the `wampde-cli --solver` flag). The `gmres_tol`/`gmres_restart`
//! knobs apply to both GMRES flavours.
//!
//! `<param>` in `.sweep` is a device card name (`R1`) or a dotted field
//! (`M1.control`); see [`Device::set_param`] for the field tables.
//! [`parse_netlist`] rejects directives, so plain-circuit callers get a
//! clear error instead of silently dropped analyses.

use crate::circuit::{Circuit, CircuitDae, Node};
use crate::deck::{AnalysisSpec, Deck, MpdeSpec, ShootingSpec, SweepSpec, TranSpec, WampdeSpec};
use crate::device::{Device, MemsParams};
use crate::waveform::Waveform;
use linsolve::LinearSolverKind;
use std::collections::HashMap;
use std::fmt;
use timekit::Scheme;

/// Errors from netlist parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A malformed line, with its 1-based line number.
    Parse {
        /// Line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The assembled circuit failed validation.
    Circuit(crate::circuit::CircuitError),
    /// A parameter override (sweep assignment) was rejected.
    Param {
        /// `NAME` / `NAME.field` label of the parameter.
        device: String,
        /// Explanation from the device.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Parse { line, message } => {
                write!(f, "netlist line {line}: {message}")
            }
            NetlistError::Circuit(e) => write!(f, "netlist circuit error: {e}"),
            NetlistError::Param { device, message } => {
                write!(f, "parameter '{device}': {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetlistError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::circuit::CircuitError> for NetlistError {
    fn from(e: crate::circuit::CircuitError) -> Self {
        NetlistError::Circuit(e)
    }
}

/// Parses an engineering-notation value: `4.7k`, `10u`, `1meg`, `2.2e-6`.
///
/// # Errors
///
/// Returns a message naming the offending token.
pub fn parse_value(token: &str) -> Result<f64, String> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return Err("empty value".into());
    }
    // Longest-suffix first ("meg" before "m").
    const SUFFIXES: &[(&str, f64)] = &[
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
        ("t", 1e12),
    ];
    for (suffix, mult) in SUFFIXES {
        if let Some(stem) = t.strip_suffix(suffix) {
            // Guard against "1e-" style accidental strips: the stem must
            // parse cleanly on its own.
            if let Ok(v) = stem.parse::<f64>() {
                return Ok(v * mult);
            }
        }
    }
    t.parse::<f64>()
        .map_err(|_| format!("cannot parse value '{token}'"))
}

/// Parses a source waveform: `DC(v)`, `SIN(offset ampl freq [phase])`,
/// `PULSE(low high rise width fall period)`, or a bare number (DC).
fn parse_waveform(tokens: &[&str]) -> Result<Waveform, String> {
    let joined = tokens.join(" ");
    let t = joined.trim();
    let upper = t.to_ascii_uppercase();
    let args_of = |s: &str| -> Result<Vec<f64>, String> {
        let open = s.find('(').ok_or("expected '('")?;
        let close = s.rfind(')').ok_or("expected ')'")?;
        s[open + 1..close]
            .split_whitespace()
            .map(parse_value)
            .collect()
    };
    if upper.starts_with("DC") {
        let a = args_of(t)?;
        if a.len() != 1 {
            return Err("DC takes one argument".into());
        }
        Ok(Waveform::Dc(a[0]))
    } else if upper.starts_with("SIN") {
        let a = args_of(t)?;
        match a.len() {
            3 => Ok(Waveform::sine(a[0], a[1], a[2])),
            4 => Ok(Waveform::Sine {
                offset: a[0],
                amplitude: a[1],
                freq_hz: a[2],
                phase_rad: a[3],
            }),
            _ => Err("SIN takes (offset ampl freq [phase])".into()),
        }
    } else if upper.starts_with("PULSE") {
        let a = args_of(t)?;
        if a.len() != 6 {
            return Err("PULSE takes (low high rise width fall period)".into());
        }
        Ok(Waveform::Pulse {
            low: a[0],
            high: a[1],
            rise: a[2],
            width: a[3],
            fall: a[4],
            period: a[5],
        })
    } else if tokens.len() == 1 {
        Ok(Waveform::Dc(parse_value(tokens[0])?))
    } else {
        Err(format!("unrecognised waveform '{t}'"))
    }
}

/// Parses a plain netlist (device cards only) into a [`CircuitDae`].
///
/// # Errors
///
/// [`NetlistError::Parse`] with the offending line — including any
/// directive line, which belongs in [`parse_deck`] — or
/// [`NetlistError::Circuit`] if the assembled circuit is invalid.
pub fn parse_netlist(text: &str) -> Result<CircuitDae, NetlistError> {
    let deck = parse_impl(text, false)?;
    deck.base_circuit()
}

/// Parses a scenario deck: device cards plus analysis/sweep directives.
///
/// The circuit is validated eagerly (so a deck that parses is known to
/// instantiate), and every `.sweep` is checked against the named device.
///
/// # Errors
///
/// [`NetlistError::Parse`] with the offending line, or
/// [`NetlistError::Circuit`] if the assembled circuit is invalid.
pub fn parse_deck(text: &str) -> Result<Deck, NetlistError> {
    let deck = parse_impl(text, true)?;
    deck.base_circuit()?; // eager validation
    Ok(deck)
}

fn parse_impl(text: &str, allow_directives: bool) -> Result<Deck, NetlistError> {
    let mut ckt = Circuit::new();
    let mut names: Vec<String> = Vec::new();
    // Each analysis remembers whether its directive carried an explicit
    // per-analysis `solver=` key (which then beats the deck-wide
    // `.options` choice).
    let mut analyses: Vec<(AnalysisSpec, bool)> = Vec::new();
    let mut sweeps: Vec<(usize, SweepSpec)> = Vec::new();
    let mut solver: Option<LinearSolverKind> = None;
    let mut nodes: HashMap<String, Node> = HashMap::new();

    let mut node_of = |ckt: &mut Circuit, name: &str| -> Node {
        let key = name.to_ascii_lowercase();
        if key == "0" || key == "gnd" {
            return Circuit::GND;
        }
        *nodes.entry(key.clone()).or_insert_with(|| ckt.node(key))
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let stripped = raw.split(';').next().unwrap_or("");
        let stripped = stripped.trim();
        if stripped.is_empty() || stripped.starts_with('*') || stripped.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = stripped.split_whitespace().collect();

        if tokens[0].starts_with('.') {
            if !allow_directives {
                return Err(NetlistError::Parse {
                    line,
                    message: format!(
                        "directive '{}' not allowed in a plain netlist; use parse_deck",
                        tokens[0]
                    ),
                });
            }
            match parse_directive(&tokens) {
                Ok(Directive::Analysis {
                    spec,
                    solver_explicit,
                }) => analyses.push((spec, solver_explicit)),
                Ok(Directive::Sweep(s)) => sweeps.push((line, s)),
                Ok(Directive::Options(kind)) => solver = Some(kind),
                Err(message) => return Err(NetlistError::Parse { line, message }),
            }
            continue;
        }

        if tokens.len() < 3 {
            return Err(NetlistError::Parse {
                line,
                message: "expected: NAME node node args...".into(),
            });
        }
        let name = tokens[0].to_ascii_uppercase();
        if names.contains(&name) {
            return Err(NetlistError::Parse {
                line,
                message: format!("duplicate device name '{name}'"),
            });
        }
        let n1 = node_of(&mut ckt, tokens[1]);
        let n2 = node_of(&mut ckt, tokens[2]);
        let args = &tokens[3..];
        let perr = |message: String| NetlistError::Parse { line, message };

        let first = name.chars().next().expect("nonempty token");
        match first {
            'R' => {
                let v = one_value(args).map_err(perr)?;
                if v == 0.0 {
                    return Err(NetlistError::Parse {
                        line,
                        message: "resistance must be nonzero".into(),
                    });
                }
                ckt.add(Device::resistor(n1, n2, v));
            }
            'C' => {
                let v = one_value(args).map_err(perr)?;
                ckt.add(Device::capacitor(n1, n2, v));
            }
            'L' => {
                let v = one_value(args).map_err(perr)?;
                ckt.add(Device::inductor(n1, n2, v));
            }
            'G' => {
                // GN = cubic, GT = tanh.
                match name.chars().nth(1) {
                    Some('N') => {
                        let vals = n_values(args, 2).map_err(perr)?;
                        ckt.add(Device::cubic_conductor(n1, n2, vals[0], vals[1]));
                    }
                    Some('T') => {
                        let vals = n_values(args, 3).map_err(perr)?;
                        ckt.add(Device::tanh_conductor(n1, n2, vals[0], vals[1], vals[2]));
                    }
                    _ => {
                        return Err(NetlistError::Parse {
                            line,
                            message: format!("unknown conductor card '{name}' (use GN.../GT...)"),
                        })
                    }
                }
            }
            'I' => {
                let w = parse_waveform(args).map_err(perr)?;
                ckt.add(Device::current_source(n1, n2, w));
            }
            'V' => {
                let w = parse_waveform(args).map_err(perr)?;
                ckt.add(Device::voltage_source(n1, n2, w));
            }
            'D' => {
                // d<name> n+ n- is=<sat current> n=<emission coeff>,
                // both optional (is=1e-14, n=1). The emission coefficient
                // scales the room-temperature thermal voltage kT/q.
                let mut isat = 1.0e-14;
                let mut emission = 1.0;
                for tok in args {
                    let Some((key, value)) = tok.split_once('=') else {
                        return Err(perr(format!(
                            "diode card takes key=value options, got '{tok}' (use is=/n=)"
                        )));
                    };
                    let v = parse_value(value).map_err(perr)?;
                    match key.to_ascii_lowercase().as_str() {
                        "is" => isat = v,
                        "n" => emission = v,
                        other => {
                            return Err(perr(format!(
                                "unknown diode option '{other}' (use is=/n=)"
                            )))
                        }
                    }
                }
                if isat <= 0.0 || emission <= 0.0 {
                    return Err(perr("diode is= and n= must be positive".into()));
                }
                ckt.add(Device::diode(n1, n2, isat, emission * 0.02585));
            }
            'M' => {
                if args.len() < 7 {
                    return Err(NetlistError::Parse {
                        line,
                        message: "MEMS card: M n1 n2 c0 y0 mass damping k force_gain WAVEFORM"
                            .into(),
                    });
                }
                let nums: Vec<f64> = args[..6]
                    .iter()
                    .map(|t| parse_value(t))
                    .collect::<Result<_, _>>()
                    .map_err(perr)?;
                let control = parse_waveform(&args[6..]).map_err(perr)?;
                ckt.add(Device::mems_varactor(
                    n1,
                    n2,
                    MemsParams {
                        c0: nums[0],
                        y0: nums[1],
                        mass: nums[2],
                        damping: nums[3],
                        spring_k: nums[4],
                        force_gain: nums[5],
                        control,
                        tank_coupling: 0.0,
                    },
                ));
            }
            other => {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("unknown device prefix '{other}'"),
                })
            }
        }
        names.push(name);
    }

    // Validate sweeps against the parsed cards: the named device must
    // exist and accept the field at *every* grid value (a linear sweep
    // through zero would otherwise pass an endpoints-only check and fail
    // mid-run), so a deck that parses is known to instantiate at every
    // grid point.
    for (line, sw) in &sweeps {
        let line = *line;
        let Some(idx) = names.iter().position(|n| *n == sw.device) else {
            return Err(NetlistError::Parse {
                line,
                message: format!("sweep references unknown device '{}'", sw.device),
            });
        };
        let mut probe = ckt.devices()[idx].clone();
        for v in sw.values() {
            probe
                .set_param(sw.field.as_deref(), v)
                .map_err(|e| NetlistError::Parse {
                    line,
                    message: format!("sweep parameter '{}' at value {v}: {e}", sw.label()),
                })?;
        }
    }

    // `.options` applies deck-wide: stamp the chosen backend into every
    // analysis spec (each carries it so sweep jobs stay self-contained) —
    // except those whose directive pinned its own `solver=` key.
    if let Some(kind) = solver {
        for (a, explicit) in &mut analyses {
            if !*explicit {
                a.set_solver(kind);
            }
        }
    }

    Ok(Deck {
        circuit: ckt,
        names,
        analyses: analyses.into_iter().map(|(a, _)| a).collect(),
        sweeps: sweeps.into_iter().map(|(_, s)| s).collect(),
    })
}

/// A parsed directive line.
enum Directive {
    Analysis {
        spec: AnalysisSpec,
        /// The directive carried its own `solver=` key, which beats the
        /// deck-wide `.options` choice.
        solver_explicit: bool,
    },
    Sweep(SweepSpec),
    Options(LinearSolverKind),
}

/// Parses a per-directive `solver=` value, naming the directive in the
/// error message.
fn parse_solver_key(v: &str, directive: &str) -> Result<LinearSolverKind, String> {
    LinearSolverKind::parse(v).ok_or_else(|| {
        format!("{directive}: unknown solver '{v}' (dense, sparselu, klu, gmres, gmres-circulant)")
    })
}

/// Positional tokens and `key=value` options of one directive line.
type DirectiveArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits directive arguments into leading positional tokens and trailing
/// `key=value` options, rejecting positionals after the first option.
fn split_args<'a>(args: &[&'a str]) -> Result<DirectiveArgs<'a>, String> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    for &tok in args {
        if let Some((k, v)) = tok.split_once('=') {
            if k.is_empty() || v.is_empty() {
                return Err(format!("malformed option '{tok}' (expected key=value)"));
            }
            options.push((k, v));
        } else if options.is_empty() {
            positional.push(tok);
        } else {
            return Err(format!(
                "positional argument '{tok}' after key=value options"
            ));
        }
    }
    Ok((positional, options))
}

fn parse_usize(v: &str, what: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .map_err(|_| format!("cannot parse {what} '{v}' as an integer"))
}

/// The step-control keys shared by the `.tran`/`.mpde`/`.wampde`
/// directives, with per-directive defaults seeded by the caller. Each
/// key is validated here so every directive rejects a bad value with
/// the same message (plus its own line number).
struct StepKeys<'a> {
    dt: &'a mut f64,
    rtol: &'a mut f64,
    atol: &'a mut f64,
    dt_min: &'a mut f64,
    dt_max: &'a mut f64,
    integrator: &'a mut Scheme,
}

impl StepKeys<'_> {
    /// Cross-field validation after all keys are applied, so a
    /// contradictory pair fails at parse time with the directive's line
    /// number instead of at run time without one.
    fn finish(&self) -> Result<(), String> {
        if *self.dt_min > 0.0 && *self.dt_max > 0.0 && *self.dt_min > *self.dt_max {
            return Err(format!(
                "dt_min {:e} exceeds dt_max {:e}",
                *self.dt_min, *self.dt_max
            ));
        }
        Ok(())
    }

    /// Applies one `key=value` option; `Ok(false)` means the key is not
    /// a step key and the directive should try its own table.
    fn apply(&mut self, k: &str, v: &str) -> Result<bool, String> {
        let positive = |v: f64, what: &str| -> Result<f64, String> {
            if v > 0.0 {
                Ok(v)
            } else {
                Err(format!("{what} must be positive"))
            }
        };
        let nonnegative = |v: f64, what: &str| -> Result<f64, String> {
            if v >= 0.0 {
                Ok(v)
            } else {
                Err(format!("{what} must not be negative"))
            }
        };
        match k {
            "dt" => *self.dt = positive(parse_value(v)?, "dt")?,
            "rtol" => *self.rtol = positive(parse_value(v)?, "rtol")?,
            "atol" => *self.atol = positive(parse_value(v)?, "atol")?,
            "dt_min" => *self.dt_min = nonnegative(parse_value(v)?, "dt_min")?,
            "dt_max" => *self.dt_max = nonnegative(parse_value(v)?, "dt_max")?,
            "integrator" => {
                *self.integrator = Scheme::parse(v)
                    .ok_or_else(|| format!("unknown integrator '{v}' (be, trap, bdf2)"))?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

fn parse_directive(tokens: &[&str]) -> Result<Directive, String> {
    let keyword = tokens[0].to_ascii_lowercase();
    let args = &tokens[1..];
    match keyword.as_str() {
        ".tran" => {
            let (pos, opts) = split_args(args)?;
            let [t_stop] = pos[..] else {
                return Err(
                    "usage: .tran <tstop> [dt=<v>] [integrator=<s>] [rtol=<v>] [atol=<v>] \
                     [dt_min=<v>] [dt_max=<v>] [solver=<s>]"
                        .into(),
                );
            };
            let mut spec = TranSpec::new(parse_value(t_stop)?);
            let mut solver_explicit = false;
            for (k, v) in opts {
                let consumed = StepKeys {
                    dt: &mut spec.dt,
                    rtol: &mut spec.rtol,
                    atol: &mut spec.atol,
                    dt_min: &mut spec.dt_min,
                    dt_max: &mut spec.dt_max,
                    integrator: &mut spec.integrator,
                }
                .apply(k, v)
                .map_err(|e| format!(".tran: {e}"))?;
                if consumed {
                    continue;
                }
                if k == "solver" {
                    spec.solver = parse_solver_key(v, ".tran")?;
                    solver_explicit = true;
                } else {
                    return Err(format!(
                        ".tran: unknown option '{k}' (dt, integrator, rtol, atol, dt_min, \
                         dt_max, solver)"
                    ));
                }
            }
            StepKeys {
                dt: &mut spec.dt,
                rtol: &mut spec.rtol,
                atol: &mut spec.atol,
                dt_min: &mut spec.dt_min,
                dt_max: &mut spec.dt_max,
                integrator: &mut spec.integrator,
            }
            .finish()
            .map_err(|e| format!(".tran: {e}"))?;
            if spec.t_stop <= 0.0 {
                return Err(".tran: tstop must be positive".into());
            }
            Ok(Directive::Analysis {
                spec: AnalysisSpec::Tran(spec),
                solver_explicit,
            })
        }
        ".shooting" => {
            let (pos, opts) = split_args(args)?;
            if !pos.is_empty() {
                return Err("usage: .shooting [steps=<n>] [phase_var=<k>] [solver=<s>]".into());
            }
            let mut spec = ShootingSpec {
                steps_per_period: 512,
                phase_var: 0,
                solver: LinearSolverKind::default(),
            };
            let mut solver_explicit = false;
            for (k, v) in opts {
                match k {
                    "steps" => spec.steps_per_period = parse_usize(v, "steps")?,
                    "phase_var" => spec.phase_var = parse_usize(v, "phase_var")?,
                    "solver" => {
                        spec.solver = parse_solver_key(v, ".shooting")?;
                        solver_explicit = true;
                    }
                    other => {
                        return Err(format!(
                            ".shooting: unknown option '{other}' (steps, phase_var, solver)"
                        ))
                    }
                }
            }
            Ok(Directive::Analysis {
                spec: AnalysisSpec::Shooting(spec),
                solver_explicit,
            })
        }
        ".mpde" => {
            let (pos, opts) = split_args(args)?;
            let [f1, t_stop] = pos[..] else {
                return Err("usage: .mpde <f1> <tstop> [harmonics=<n>] [node=<k>] \
                     [amp=<v>] [depth=<v>] [fmod=<v>] [dt=<v>] [integrator=<s>] \
                     [rtol=<v>] [atol=<v>] [dt_min=<v>] [dt_max=<v>] [solver=<s>]"
                    .into());
            };
            let f1_hz = parse_value(f1)?;
            if f1_hz <= 0.0 {
                return Err(".mpde: carrier frequency must be positive".into());
            }
            let mut spec = MpdeSpec::new(f1_hz, parse_value(t_stop)?);
            let mut solver_explicit = false;
            for (k, v) in opts {
                let consumed = StepKeys {
                    dt: &mut spec.dt,
                    rtol: &mut spec.rtol,
                    atol: &mut spec.atol,
                    dt_min: &mut spec.dt_min,
                    dt_max: &mut spec.dt_max,
                    integrator: &mut spec.integrator,
                }
                .apply(k, v)
                .map_err(|e| format!(".mpde: {e}"))?;
                if consumed {
                    continue;
                }
                match k {
                    "harmonics" => spec.harmonics = parse_usize(v, "harmonics")?,
                    "node" => spec.node = parse_usize(v, "node")?,
                    "amp" => spec.amplitude = parse_value(v)?,
                    "depth" => spec.mod_depth = parse_value(v)?,
                    "fmod" => spec.mod_freq_hz = parse_value(v)?,
                    "solver" => {
                        spec.solver = parse_solver_key(v, ".mpde")?;
                        solver_explicit = true;
                    }
                    other => {
                        return Err(format!(
                            ".mpde: unknown option '{other}' (harmonics, node, amp, depth, \
                             fmod, dt, integrator, rtol, atol, dt_min, dt_max, solver)"
                        ))
                    }
                }
            }
            StepKeys {
                dt: &mut spec.dt,
                rtol: &mut spec.rtol,
                atol: &mut spec.atol,
                dt_min: &mut spec.dt_min,
                dt_max: &mut spec.dt_max,
                integrator: &mut spec.integrator,
            }
            .finish()
            .map_err(|e| format!(".mpde: {e}"))?;
            if spec.t_stop <= 0.0 {
                return Err(".mpde: tstop must be positive".into());
            }
            if spec.harmonics == 0 {
                // N0 = 2M+1 = 1 sample cannot represent the carrier.
                return Err(".mpde: harmonics must be at least 1".into());
            }
            Ok(Directive::Analysis {
                spec: AnalysisSpec::Mpde(spec),
                solver_explicit,
            })
        }
        ".wampde" => {
            let (pos, opts) = split_args(args)?;
            let [t_stop] = pos[..] else {
                return Err(
                    "usage: .wampde <tstop> [harmonics=<n>] [phase_var=<k>] [steps=<n>] \
                     [dt=<v>] [integrator=<s>] [rtol=<v>] [atol=<v>] [dt_min=<v>] [dt_max=<v>] \
                     [solver=<s>]"
                        .into(),
                );
            };
            let mut spec = WampdeSpec::new(parse_value(t_stop)?);
            let mut solver_explicit = false;
            for (k, v) in opts {
                let consumed = StepKeys {
                    dt: &mut spec.dt,
                    rtol: &mut spec.rtol,
                    atol: &mut spec.atol,
                    dt_min: &mut spec.dt_min,
                    dt_max: &mut spec.dt_max,
                    integrator: &mut spec.integrator,
                }
                .apply(k, v)
                .map_err(|e| format!(".wampde: {e}"))?;
                if consumed {
                    continue;
                }
                match k {
                    "harmonics" => spec.harmonics = parse_usize(v, "harmonics")?,
                    "phase_var" => spec.phase_var = parse_usize(v, "phase_var")?,
                    "steps" => spec.shooting_steps = parse_usize(v, "steps")?,
                    "solver" => {
                        spec.solver = parse_solver_key(v, ".wampde")?;
                        solver_explicit = true;
                    }
                    other => {
                        return Err(format!(
                            ".wampde: unknown option '{other}' (harmonics, phase_var, steps, \
                             dt, integrator, rtol, atol, dt_min, dt_max, solver)"
                        ))
                    }
                }
            }
            StepKeys {
                dt: &mut spec.dt,
                rtol: &mut spec.rtol,
                atol: &mut spec.atol,
                dt_min: &mut spec.dt_min,
                dt_max: &mut spec.dt_max,
                integrator: &mut spec.integrator,
            }
            .finish()
            .map_err(|e| format!(".wampde: {e}"))?;
            if spec.t_stop <= 0.0 {
                return Err(".wampde: tstop must be positive".into());
            }
            if spec.harmonics == 0 {
                return Err(".wampde: harmonics must be at least 1".into());
            }
            Ok(Directive::Analysis {
                spec: AnalysisSpec::Wampde(spec),
                solver_explicit,
            })
        }
        ".sweep" => {
            let (pos, opts) = split_args(args)?;
            if !opts.is_empty() {
                return Err(".sweep takes no key=value options".into());
            }
            let (param, from, to, points, log) = match pos[..] {
                [param, from, to, points] => (param, from, to, points, false),
                [param, from, to, points, log_tok] if log_tok.eq_ignore_ascii_case("log") => {
                    (param, from, to, points, true)
                }
                _ => return Err("usage: .sweep <param> <from> <to> <points> [log]".into()),
            };
            let (device, field) = match param.split_once('.') {
                Some((d, f)) => (d.to_ascii_uppercase(), Some(f.to_ascii_lowercase())),
                None => (param.to_ascii_uppercase(), None),
            };
            let from = parse_value(from)?;
            let to = parse_value(to)?;
            let points = parse_usize(points, "points")?;
            if points == 0 {
                return Err(".sweep: points must be at least 1".into());
            }
            if log && (from <= 0.0 || to <= 0.0) {
                return Err(".sweep: log spacing requires positive bounds".into());
            }
            Ok(Directive::Sweep(SweepSpec {
                device,
                field,
                from,
                to,
                points,
                log,
            }))
        }
        ".options" => {
            let (pos, opts) = split_args(args)?;
            if !pos.is_empty() {
                return Err(
                    "usage: .options solver=dense|sparselu|klu|gmres|gmres-circulant \
                     [gmres_tol=<v>] [gmres_restart=<n>]"
                        .into(),
                );
            }
            let mut solver_tok: Option<&str> = None;
            let mut gmres_tol: Option<f64> = None;
            let mut gmres_restart: Option<usize> = None;
            for (k, v) in opts {
                match k {
                    "solver" => solver_tok = Some(v),
                    "gmres_tol" => gmres_tol = Some(parse_value(v)?),
                    "gmres_restart" => {
                        gmres_restart = Some(parse_usize(v, "gmres_restart")?);
                    }
                    other => {
                        return Err(format!(
                            ".options: unknown option '{other}' (solver, gmres_tol, gmres_restart)"
                        ))
                    }
                }
            }
            let Some(tok) = solver_tok else {
                return Err(
                    ".options requires solver=<dense|sparselu|klu|gmres|gmres-circulant>".into(),
                );
            };
            let mut kind = LinearSolverKind::parse(tok).ok_or_else(|| {
                format!(
                    ".options: unknown solver '{tok}' (dense, sparselu, klu, gmres, \
                     gmres-circulant)"
                )
            })?;
            // Both GMRES flavours share the iteration knobs.
            if let LinearSolverKind::GmresIlu0 { restart, rtol, .. }
            | LinearSolverKind::GmresCirculant { restart, rtol, .. } = &mut kind
            {
                if let Some(tol) = gmres_tol {
                    if tol <= 0.0 {
                        return Err(".options: gmres_tol must be positive".into());
                    }
                    *rtol = tol;
                }
                if let Some(r) = gmres_restart {
                    if r == 0 {
                        return Err(".options: gmres_restart must be at least 1".into());
                    }
                    *restart = r;
                }
            } else if gmres_tol.is_some() || gmres_restart.is_some() {
                return Err(".options: gmres_tol/gmres_restart require a gmres solver".into());
            }
            Ok(Directive::Options(kind))
        }
        other => Err(format!(
            "unknown directive '{other}' (.tran, .shooting, .mpde, .wampde, .sweep, .options)"
        )),
    }
}

fn one_value(args: &[&str]) -> Result<f64, String> {
    if args.len() != 1 {
        return Err(format!("expected one value, got {}", args.len()));
    }
    parse_value(args[0])
}

fn n_values(args: &[&str], n: usize) -> Result<Vec<f64>, String> {
    if args.len() != n {
        return Err(format!("expected {n} values, got {}", args.len()));
    }
    args.iter().map(|t| parse_value(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dae::{check_jacobians, Dae};

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert_eq!(parse_value("4.7u").unwrap(), 4.7e-6);
        assert_eq!(parse_value("1meg").unwrap(), 1e6);
        assert_eq!(parse_value("10p").unwrap(), 1e-11);
        assert_eq!(parse_value("2.2e-6").unwrap(), 2.2e-6);
        assert_eq!(parse_value("5").unwrap(), 5.0);
        assert_eq!(parse_value("-3m").unwrap(), -3e-3);
        assert!(parse_value("abc").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn parses_rc_divider() {
        let dae = parse_netlist(
            "* divider\n\
             V1 in 0 DC(10)\n\
             R1 in out 1k\n\
             R2 out 0 1k ; load\n\
             C1 out 0 1u\n",
        )
        .unwrap();
        assert_eq!(dae.dim(), 3); // in, out, i(V1)
        let names = dae.var_names();
        assert!(names.iter().any(|n| n == "v(in)"));
        assert!(names.iter().any(|n| n == "v(out)"));
    }

    #[test]
    fn parses_paper_vco() {
        // The lc_vco preset expressed as text.
        let dae = parse_netlist(
            "C1 tank 0 4.503n\n\
             L1 tank 0 10u\n\
             GN1 tank 0 5m 1.667m\n",
        )
        .unwrap();
        assert_eq!(dae.dim(), 2);
        assert!(check_jacobians(&dae, &[1.0, -0.1]) < 1e-6);
    }

    #[test]
    fn parses_mems_card() {
        let dae = parse_netlist(
            "L1 tank 0 10u\n\
             GN1 tank 0 5m 1.667m\n\
             M1 tank 0 5n 1 1e-12 3e-7 2.47 0.121 DC(1.5)\n",
        )
        .unwrap();
        assert_eq!(dae.dim(), 4); // v, iL, y, u
        assert!(check_jacobians(&dae, &[0.5, 0.01, 0.1, 0.0]) < 1e-6);
    }

    #[test]
    fn parses_diode_card() {
        // Defaults, explicit values, and value suffixes all parse; the
        // exponential stamps must agree with finite differences.
        let dae = parse_netlist(
            "V1 in 0 DC(0.6)\n\
             R1 in a 100\n\
             D1 a 0 is=1e-15 n=1.8\n\
             D2 a 0\n",
        )
        .unwrap();
        assert!(check_jacobians(&dae, &[0.55, 0.5, 0.0]) < 1e-6);
        // A forward-biased diode conducts: di/dv at 0.5 V is far above
        // the reverse-bias conductance floor.
        let mut f0 = vec![0.0; dae.dim()];
        let mut f1 = vec![0.0; dae.dim()];
        dae.eval_f(&[0.6, 0.5, 0.0], &mut f0);
        dae.eval_f(&[0.6, 0.5 + 1e-6, 0.0], &mut f1);
        assert!((f1[1] - f0[1]) / 1e-6 > 1e-3);
    }

    #[test]
    fn diode_card_errors_carry_line_numbers() {
        for (deck, needle) in [
            ("R1 a 0 1k\nD1 a 0 1e-14\n", "key=value"),
            ("R1 a 0 1k\nD1 a 0 vj=0.7\n", "unknown diode option"),
            ("R1 a 0 1k\nD1 a 0 is=0\n", "must be positive"),
            ("R1 a 0 1k\nD1 a 0 n=-2\n", "must be positive"),
        ] {
            match parse_netlist(deck).unwrap_err() {
                NetlistError::Parse { line, message } => {
                    assert_eq!(line, 2, "{deck:?}");
                    assert!(message.contains(needle), "{message:?} for {deck:?}");
                }
                other => panic!("unexpected error {other} for {deck:?}"),
            }
        }
    }

    #[test]
    fn parses_sin_and_pulse_sources() {
        let dae = parse_netlist(
            "I1 0 a SIN(0 1m 1k)\n\
             R1 a 0 50\n\
             V1 b 0 PULSE(0 5 1u 10u 1u 100u)\n\
             R2 b a 1k\n",
        )
        .unwrap();
        let mut b = vec![0.0; dae.dim()];
        dae.eval_b(0.25e-3, &mut b); // sin peak at quarter period
        assert!(b.iter().any(|v| (v.abs() - 1e-3).abs() < 1e-12));
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_netlist("R1 a 0 1k\nQ1 a 0 bogus\n").unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn short_line_rejected() {
        assert!(matches!(
            parse_netlist("R1 a\n"),
            Err(NetlistError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn zero_resistance_rejected() {
        assert!(parse_netlist("R1 a 0 0\n").is_err());
    }

    #[test]
    fn floating_node_propagates_circuit_error() {
        // "b" referenced nowhere else, circuit validation must fire...
        // actually a single device connects it; build a truly floating one
        // via an unknown-only node list is impossible through the parser,
        // so check the empty-netlist case instead.
        assert!(matches!(
            parse_netlist("* nothing\n"),
            Err(NetlistError::Circuit(_))
        ));
    }

    #[test]
    fn gnd_alias() {
        let dae = parse_netlist("R1 a gnd 1k\nC1 a 0 1n\n").unwrap();
        assert_eq!(dae.dim(), 1);
    }

    #[test]
    fn waveform_bare_number_is_dc() {
        let dae = parse_netlist("I1 0 a 2m\nR1 a 0 1k\n").unwrap();
        let mut b = vec![0.0; 1];
        dae.eval_b(0.0, &mut b);
        assert!((b[0] - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn duplicate_device_name_rejected() {
        let err = parse_netlist("R1 a 0 1k\nR1 a 0 2k\n").unwrap_err();
        match err {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("duplicate"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    const VCO_CARDS: &str = "L1  tank 0 10u\n\
                             GN1 tank 0 5m 1.667m\n\
                             M1  tank 0 5n 1 1e-12 3e-7 2.47 0.121 DC(1.5)\n";

    #[test]
    fn deck_parses_analyses_and_sweeps() {
        let deck = parse_deck(&format!(
            "{VCO_CARDS}.wampde 6u harmonics=5 steps=256\n\
             .shooting steps=128\n\
             .sweep M1.control 1.2 1.8 4\n"
        ))
        .unwrap();
        assert_eq!(deck.device_names(), &["L1", "GN1", "M1"]);
        assert_eq!(deck.analyses.len(), 2);
        match &deck.analyses[0] {
            crate::deck::AnalysisSpec::Wampde(w) => {
                assert!((w.t_stop - 6e-6).abs() < 1e-18);
                assert_eq!(w.harmonics, 5);
                assert_eq!(w.shooting_steps, 256);
            }
            other => panic!("unexpected analysis {other:?}"),
        }
        assert_eq!(deck.sweeps.len(), 1);
        assert_eq!(deck.sweeps[0].label(), "M1.control");
        assert_eq!(deck.sweeps[0].values().len(), 4);
    }

    #[test]
    fn deck_instantiate_applies_override() {
        let deck = parse_deck(&format!("{VCO_CARDS}.sweep M1.control 1.2 1.8 4\n")).unwrap();
        let dae = deck.instantiate(&[1.8]).unwrap();
        assert_eq!(dae.dim(), 4);
        // The MEMS force row b[3] = force_gain * v_ctl^2 must scale with
        // the overridden control voltage.
        let mut b_hi = vec![0.0; 4];
        dae.eval_b(0.0, &mut b_hi);
        let mut b_lo = vec![0.0; 4];
        deck.instantiate(&[1.2]).unwrap().eval_b(0.0, &mut b_lo);
        assert!(b_hi[3] > b_lo[3] * 2.0);
        // Mismatched value count is rejected.
        assert!(matches!(
            deck.instantiate(&[]),
            Err(NetlistError::Param { .. })
        ));
    }

    #[test]
    fn plain_netlist_rejects_directives() {
        let err = parse_netlist("R1 a 0 1k\nC1 a 0 1n\n.tran 1m\n").unwrap_err();
        match err {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("parse_deck"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn directive_errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("R1 a 0 1k\nC1 a 0 1n\n.tran\n", 3, "usage: .tran"),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.frobnicate 1\n",
                3,
                "unknown directive",
            ),
            (
                "R1 a 0 1k\n.tran 1m cheese=5\nC1 a 0 1n\n",
                2,
                "unknown option",
            ),
            (".sweep R1 1 10\nR1 a 0 1k\nC1 a 0 1n\n", 1, "usage: .sweep"),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.sweep R1 1k 10k 0\n",
                3,
                "at least 1",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.sweep R1 -1 1 3 log\n",
                3,
                "log spacing",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.sweep Q9 1 2 3\n",
                3,
                "unknown device",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.sweep R1.bogus 1 2 3\n",
                3,
                "'bogus'",
            ),
            ("R1 a 0 1k\nC1 a 0 1n\n.tran 0\n", 3, "must be positive"),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.wampde 1u harmonics=x\n",
                3,
                "integer",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.mpde 1meg 1m harmonics=0\n",
                3,
                "at least 1",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.options cheese=5\n",
                3,
                "unknown option 'cheese'",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.options solver=qr\n",
                3,
                "unknown solver 'qr'",
            ),
            (
                "R1 a 0 1k\n.options gmres_tol=1e-9\nC1 a 0 1n\n",
                2,
                "requires solver=",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.options solver=dense gmres_tol=1e-9\n",
                3,
                "require a gmres solver",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.options solver=gmres gmres_restart=0\n",
                3,
                "at least 1",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.options dense\n",
                3,
                "usage: .options",
            ),
        ];
        for (text, want_line, want_msg) in cases {
            let err = parse_deck(text).unwrap_err();
            match err {
                NetlistError::Parse { line, message } => {
                    assert_eq!(line, *want_line, "text: {text:?}: {message}");
                    assert!(
                        message.contains(want_msg),
                        "text: {text:?}: message {message:?} missing {want_msg:?}"
                    );
                }
                other => panic!("unexpected error {other} for {text:?}"),
            }
        }
    }

    #[test]
    fn step_keys_parse_into_specs() {
        let deck = parse_deck(&format!(
            "{VCO_CARDS}.tran 1m dt=2u integrator=bdf2\n\
             .tran 1m integrator=be rtol=1e-4 atol=1e-10 dt_min=1n dt_max=10u\n\
             .wampde 6u harmonics=5 dt=20n integrator=trap\n\
             .mpde 1meg 2m rtol=2e-4 dt=5u\n"
        ))
        .unwrap();
        match &deck.analyses[0] {
            AnalysisSpec::Tran(t) => {
                assert_eq!(t.integrator, Scheme::Bdf2);
                assert!((t.dt - 2e-6).abs() < 1e-18);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &deck.analyses[1] {
            AnalysisSpec::Tran(t) => {
                assert_eq!(t.integrator, Scheme::BackwardEuler);
                assert_eq!(t.dt, 0.0); // adaptive
                assert!((t.rtol - 1e-4).abs() < 1e-18);
                assert!((t.atol - 1e-10).abs() < 1e-22);
                assert!((t.dt_min - 1e-9).abs() < 1e-21);
                assert!((t.dt_max - 1e-5).abs() < 1e-17);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &deck.analyses[2] {
            AnalysisSpec::Wampde(w) => {
                assert_eq!(w.integrator, Scheme::Trapezoidal);
                assert!((w.dt - 20e-9).abs() < 1e-21);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &deck.analyses[3] {
            AnalysisSpec::Mpde(m) => {
                assert_eq!(m.integrator, Scheme::BackwardEuler);
                assert!((m.rtol - 2e-4).abs() < 1e-18, "rtol enables adaptive");
                assert!((m.dt - 5e-6).abs() < 1e-18);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Integrator getter/setters used by the CLI overrides.
        let mut deck = deck;
        assert_eq!(deck.analyses[0].integrator(), Some(Scheme::Bdf2));
        deck.analyses[0].set_integrator(Scheme::Trapezoidal);
        deck.analyses[0].set_rtol(3e-5);
        match &deck.analyses[0] {
            AnalysisSpec::Tran(t) => {
                assert_eq!(t.integrator, Scheme::Trapezoidal);
                assert!((t.rtol - 3e-5).abs() < 1e-19);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn step_key_errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            (
                "R1 a 0 1k\nC1 a 0 1n\n.tran 1m integrator=rk4\n",
                3,
                "unknown integrator 'rk4'",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.wampde 1u rtol=-1\n",
                3,
                "rtol must be positive",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.mpde 1meg 1m atol=0\n",
                3,
                "atol must be positive",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.tran 1m dt_min=-1n\n",
                3,
                "dt_min must not be negative",
            ),
            ("R1 a 0 1k\nC1 a 0 1n\n.tran 1m dt=0\n", 3, "dt must be"),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.tran 1m dt_min=1u dt_max=1n\n",
                3,
                "dt_min 1e-6 exceeds dt_max 1e-9",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.wampde 1u dt_min=2n dt_max=1n\n",
                3,
                "exceeds dt_max",
            ),
        ];
        for (text, want_line, want_msg) in cases {
            let err = parse_deck(text).unwrap_err();
            match err {
                NetlistError::Parse { line, message } => {
                    assert_eq!(line, *want_line, "text: {text:?}: {message}");
                    assert!(
                        message.contains(want_msg),
                        "text: {text:?}: message {message:?} missing {want_msg:?}"
                    );
                }
                other => panic!("unexpected error {other} for {text:?}"),
            }
        }
    }

    #[test]
    fn options_directive_applies_to_every_analysis() {
        // Position-independent: the `.options` line sits between the two
        // analyses and still configures both.
        let deck = parse_deck(&format!(
            "{VCO_CARDS}.shooting steps=128\n\
             .options solver=gmres gmres_tol=1e-8 gmres_restart=40\n\
             .wampde 1u harmonics=4\n"
        ))
        .unwrap();
        assert_eq!(deck.analyses.len(), 2);
        for a in &deck.analyses {
            match a.solver() {
                LinearSolverKind::GmresIlu0 {
                    restart,
                    max_iters,
                    rtol,
                } => {
                    assert_eq!(restart, 40);
                    assert!(max_iters > 0);
                    assert!((rtol - 1e-8).abs() < 1e-20);
                }
                other => panic!("unexpected solver {other:?}"),
            }
        }
    }

    #[test]
    fn per_directive_solver_key_parses_on_every_analysis() {
        let deck = parse_deck(&format!(
            "{VCO_CARDS}.tran 1m dt=2u solver=sparselu\n\
             .shooting steps=128 solver=gmres\n\
             .mpde 1meg 2m solver=sparselu\n\
             .wampde 6u harmonics=5 solver=dense\n"
        ))
        .unwrap();
        assert_eq!(deck.analyses[0].solver(), LinearSolverKind::SparseLu);
        assert!(matches!(
            deck.analyses[1].solver(),
            LinearSolverKind::GmresIlu0 { .. }
        ));
        assert_eq!(deck.analyses[2].solver(), LinearSolverKind::SparseLu);
        assert_eq!(deck.analyses[3].solver(), LinearSolverKind::Dense);
    }

    #[test]
    fn klu_and_circulant_solver_keys_parse_everywhere() {
        // The KLU backend per-directive and deck-wide...
        let deck = parse_deck(&format!(
            "{VCO_CARDS}.tran 1m dt=2u solver=klu\n\
             .shooting steps=128 solver=gmres-circulant\n\
             .options solver=klu\n\
             .wampde 6u harmonics=5\n"
        ))
        .unwrap();
        assert_eq!(deck.analyses[0].solver(), LinearSolverKind::Klu);
        assert!(matches!(
            deck.analyses[1].solver(),
            LinearSolverKind::GmresCirculant { .. }
        ));
        assert_eq!(deck.analyses[2].solver(), LinearSolverKind::Klu);
        // ...and the GMRES knobs tune the circulant flavour too.
        let deck = parse_deck(&format!(
            "{VCO_CARDS}.options solver=gmres-circulant gmres_tol=1e-8 gmres_restart=30\n\
             .shooting\n"
        ))
        .unwrap();
        match deck.analyses[0].solver() {
            LinearSolverKind::GmresCirculant { restart, rtol, .. } => {
                assert_eq!(restart, 30);
                assert!((rtol - 1e-8).abs() < 1e-20);
            }
            other => panic!("unexpected solver {other:?}"),
        }
    }

    #[test]
    fn per_directive_solver_key_beats_options_in_both_orders() {
        // `.options` after the directive must not clobber the explicit
        // per-analysis key...
        let deck = parse_deck(&format!(
            "{VCO_CARDS}.wampde 6u harmonics=5 solver=sparselu\n\
             .shooting steps=128\n\
             .options solver=gmres\n"
        ))
        .unwrap();
        assert_eq!(deck.analyses[0].solver(), LinearSolverKind::SparseLu);
        assert!(matches!(
            deck.analyses[1].solver(),
            LinearSolverKind::GmresIlu0 { .. }
        ));
        // ...nor when it comes first.
        let deck = parse_deck(&format!(
            "{VCO_CARDS}.options solver=gmres\n\
             .wampde 6u harmonics=5 solver=dense\n\
             .shooting steps=128\n"
        ))
        .unwrap();
        assert_eq!(deck.analyses[0].solver(), LinearSolverKind::Dense);
        assert!(matches!(
            deck.analyses[1].solver(),
            LinearSolverKind::GmresIlu0 { .. }
        ));
    }

    #[test]
    fn per_directive_solver_key_errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            (
                "R1 a 0 1k\nC1 a 0 1n\n.tran 1m solver=qr\n",
                3,
                ".tran: unknown solver 'qr'",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.shooting solver=lu\n",
                3,
                ".shooting: unknown solver 'lu'",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.mpde 1meg 1m solver=cholesky\n",
                3,
                ".mpde: unknown solver 'cholesky'",
            ),
            (
                "R1 a 0 1k\nC1 a 0 1n\n.wampde 1u solver=qr\n",
                3,
                ".wampde: unknown solver 'qr'",
            ),
        ];
        for (text, want_line, want_msg) in cases {
            let err = parse_deck(text).unwrap_err();
            match err {
                NetlistError::Parse { line, message } => {
                    assert_eq!(line, *want_line, "text: {text:?}: {message}");
                    assert!(
                        message.contains(want_msg),
                        "text: {text:?}: message {message:?} missing {want_msg:?}"
                    );
                }
                other => panic!("unexpected error {other} for {text:?}"),
            }
        }
    }

    #[test]
    fn options_default_is_dense_and_last_line_wins() {
        let deck = parse_deck(&format!("{VCO_CARDS}.shooting\n")).unwrap();
        assert_eq!(deck.analyses[0].solver(), LinearSolverKind::Dense);
        let deck = parse_deck(&format!(
            "{VCO_CARDS}.options solver=gmres\n\
             .shooting\n\
             .options solver=sparselu\n"
        ))
        .unwrap();
        assert_eq!(deck.analyses[0].solver(), LinearSolverKind::SparseLu);
    }

    #[test]
    fn sweep_zero_resistance_grid_point_rejected_at_parse() {
        // from = 0 would produce an invalid resistor at the first grid
        // point; the parser catches it with the directive's line number.
        let err = parse_deck("R1 a 0 1k\nC1 a 0 1n\n.sweep R1 0 10k 3\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }), "{err}");
        // An *interior* grid point through zero is caught too (endpoints
        // alone would pass: -1k and 1k are both valid resistances).
        let err = parse_deck("R1 a 0 1k\nC1 a 0 1n\n.sweep R1 -1k 1k 3\n").unwrap_err();
        match err {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("nonzero"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn netlist_error_source_chains_circuit_error() {
        use std::error::Error;
        let err = parse_netlist("* nothing\n").unwrap_err();
        assert!(err.source().is_some());
        let err = parse_netlist("R1 a\n").unwrap_err();
        assert!(err.source().is_none());
    }
}
