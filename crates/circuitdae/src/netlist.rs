//! SPICE-style netlist parsing.
//!
//! A small, line-oriented netlist dialect so circuits can be described as
//! text (and experiment configurations versioned) instead of Rust code:
//!
//! ```text
//! * comment lines start with '*' or '#'
//! R1   n1  0    1k          ; resistor, ohms
//! C1   n1  0    4.503n      ; capacitor, farads
//! L1   n1  0    10u         ; inductor, henries
//! GN1  n1  0    5m  1.667m  ; cubic conductor: i = -g1*v + g3*v^3
//! GT1  n1  0    1m  0.5 10u ; tanh conductor: isat, vt, gmin
//! I1   0   n1   SIN(0 1m 1k)        ; current source (offset ampl freq [phase])
//! V1   n2  0    DC(5)               ; voltage source
//! M1   n1  0    5n 1 1e-12 3e-7 2.47 0.12 DC(1.5)
//! *    ^ MEMS varactor: c0 y0 mass damping k force_gain control
//! ```
//!
//! Node `0` (or `gnd`) is ground; all other node names are created on
//! first use. Values accept the usual suffixes
//! `f p n u m k meg g t` (case-insensitive).

use crate::circuit::{Circuit, CircuitDae, Node};
use crate::device::{Device, MemsParams};
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::fmt;

/// Errors from netlist parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A malformed line, with its 1-based line number.
    Parse {
        /// Line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The assembled circuit failed validation.
    Circuit(crate::circuit::CircuitError),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Parse { line, message } => {
                write!(f, "netlist line {line}: {message}")
            }
            NetlistError::Circuit(e) => write!(f, "netlist circuit error: {e}"),
        }
    }
}

impl std::error::Error for NetlistError {}

impl From<crate::circuit::CircuitError> for NetlistError {
    fn from(e: crate::circuit::CircuitError) -> Self {
        NetlistError::Circuit(e)
    }
}

/// Parses an engineering-notation value: `4.7k`, `10u`, `1meg`, `2.2e-6`.
///
/// # Errors
///
/// Returns a message naming the offending token.
pub fn parse_value(token: &str) -> Result<f64, String> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return Err("empty value".into());
    }
    // Longest-suffix first ("meg" before "m").
    const SUFFIXES: &[(&str, f64)] = &[
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
        ("t", 1e12),
    ];
    for (suffix, mult) in SUFFIXES {
        if let Some(stem) = t.strip_suffix(suffix) {
            // Guard against "1e-" style accidental strips: the stem must
            // parse cleanly on its own.
            if let Ok(v) = stem.parse::<f64>() {
                return Ok(v * mult);
            }
        }
    }
    t.parse::<f64>()
        .map_err(|_| format!("cannot parse value '{token}'"))
}

/// Parses a source waveform: `DC(v)`, `SIN(offset ampl freq [phase])`,
/// `PULSE(low high rise width fall period)`, or a bare number (DC).
fn parse_waveform(tokens: &[&str]) -> Result<Waveform, String> {
    let joined = tokens.join(" ");
    let t = joined.trim();
    let upper = t.to_ascii_uppercase();
    let args_of = |s: &str| -> Result<Vec<f64>, String> {
        let open = s.find('(').ok_or("expected '('")?;
        let close = s.rfind(')').ok_or("expected ')'")?;
        s[open + 1..close]
            .split_whitespace()
            .map(parse_value)
            .collect()
    };
    if upper.starts_with("DC") {
        let a = args_of(t)?;
        if a.len() != 1 {
            return Err("DC takes one argument".into());
        }
        Ok(Waveform::Dc(a[0]))
    } else if upper.starts_with("SIN") {
        let a = args_of(t)?;
        match a.len() {
            3 => Ok(Waveform::sine(a[0], a[1], a[2])),
            4 => Ok(Waveform::Sine {
                offset: a[0],
                amplitude: a[1],
                freq_hz: a[2],
                phase_rad: a[3],
            }),
            _ => Err("SIN takes (offset ampl freq [phase])".into()),
        }
    } else if upper.starts_with("PULSE") {
        let a = args_of(t)?;
        if a.len() != 6 {
            return Err("PULSE takes (low high rise width fall period)".into());
        }
        Ok(Waveform::Pulse {
            low: a[0],
            high: a[1],
            rise: a[2],
            width: a[3],
            fall: a[4],
            period: a[5],
        })
    } else if tokens.len() == 1 {
        Ok(Waveform::Dc(parse_value(tokens[0])?))
    } else {
        Err(format!("unrecognised waveform '{t}'"))
    }
}

/// Parses a netlist into a [`CircuitDae`].
///
/// # Errors
///
/// [`NetlistError::Parse`] with the offending line, or
/// [`NetlistError::Circuit`] if the assembled circuit is invalid.
pub fn parse_netlist(text: &str) -> Result<CircuitDae, NetlistError> {
    let mut ckt = Circuit::new();
    let mut nodes: HashMap<String, Node> = HashMap::new();

    let mut node_of = |ckt: &mut Circuit, name: &str| -> Node {
        let key = name.to_ascii_lowercase();
        if key == "0" || key == "gnd" {
            return Circuit::GND;
        }
        *nodes.entry(key.clone()).or_insert_with(|| ckt.node(key))
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let stripped = raw.split(';').next().unwrap_or("");
        let stripped = stripped.trim();
        if stripped.is_empty() || stripped.starts_with('*') || stripped.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = stripped.split_whitespace().collect();
        if tokens.len() < 3 {
            return Err(NetlistError::Parse {
                line,
                message: "expected: NAME node node args...".into(),
            });
        }
        let name = tokens[0].to_ascii_uppercase();
        let n1 = node_of(&mut ckt, tokens[1]);
        let n2 = node_of(&mut ckt, tokens[2]);
        let args = &tokens[3..];
        let perr = |message: String| NetlistError::Parse { line, message };

        let first = name.chars().next().expect("nonempty token");
        match first {
            'R' => {
                let v = one_value(args).map_err(perr)?;
                if v == 0.0 {
                    return Err(NetlistError::Parse {
                        line,
                        message: "resistance must be nonzero".into(),
                    });
                }
                ckt.add(Device::resistor(n1, n2, v));
            }
            'C' => {
                let v = one_value(args).map_err(perr)?;
                ckt.add(Device::capacitor(n1, n2, v));
            }
            'L' => {
                let v = one_value(args).map_err(perr)?;
                ckt.add(Device::inductor(n1, n2, v));
            }
            'G' => {
                // GN = cubic, GT = tanh.
                match name.chars().nth(1) {
                    Some('N') => {
                        let vals = n_values(args, 2).map_err(perr)?;
                        ckt.add(Device::cubic_conductor(n1, n2, vals[0], vals[1]));
                    }
                    Some('T') => {
                        let vals = n_values(args, 3).map_err(perr)?;
                        ckt.add(Device::tanh_conductor(n1, n2, vals[0], vals[1], vals[2]));
                    }
                    _ => {
                        return Err(NetlistError::Parse {
                            line,
                            message: format!("unknown conductor card '{name}' (use GN.../GT...)"),
                        })
                    }
                }
            }
            'I' => {
                let w = parse_waveform(args).map_err(perr)?;
                ckt.add(Device::current_source(n1, n2, w));
            }
            'V' => {
                let w = parse_waveform(args).map_err(perr)?;
                ckt.add(Device::voltage_source(n1, n2, w));
            }
            'M' => {
                if args.len() < 7 {
                    return Err(NetlistError::Parse {
                        line,
                        message: "MEMS card: M n1 n2 c0 y0 mass damping k force_gain WAVEFORM"
                            .into(),
                    });
                }
                let nums: Vec<f64> = args[..6]
                    .iter()
                    .map(|t| parse_value(t))
                    .collect::<Result<_, _>>()
                    .map_err(perr)?;
                let control = parse_waveform(&args[6..]).map_err(perr)?;
                ckt.add(Device::mems_varactor(
                    n1,
                    n2,
                    MemsParams {
                        c0: nums[0],
                        y0: nums[1],
                        mass: nums[2],
                        damping: nums[3],
                        spring_k: nums[4],
                        force_gain: nums[5],
                        control,
                        tank_coupling: 0.0,
                    },
                ));
            }
            other => {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("unknown device prefix '{other}'"),
                })
            }
        }
    }

    Ok(ckt.build()?)
}

fn one_value(args: &[&str]) -> Result<f64, String> {
    if args.len() != 1 {
        return Err(format!("expected one value, got {}", args.len()));
    }
    parse_value(args[0])
}

fn n_values(args: &[&str], n: usize) -> Result<Vec<f64>, String> {
    if args.len() != n {
        return Err(format!("expected {n} values, got {}", args.len()));
    }
    args.iter().map(|t| parse_value(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dae::{check_jacobians, Dae};

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert_eq!(parse_value("4.7u").unwrap(), 4.7e-6);
        assert_eq!(parse_value("1meg").unwrap(), 1e6);
        assert_eq!(parse_value("10p").unwrap(), 1e-11);
        assert_eq!(parse_value("2.2e-6").unwrap(), 2.2e-6);
        assert_eq!(parse_value("5").unwrap(), 5.0);
        assert_eq!(parse_value("-3m").unwrap(), -3e-3);
        assert!(parse_value("abc").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn parses_rc_divider() {
        let dae = parse_netlist(
            "* divider\n\
             V1 in 0 DC(10)\n\
             R1 in out 1k\n\
             R2 out 0 1k ; load\n\
             C1 out 0 1u\n",
        )
        .unwrap();
        assert_eq!(dae.dim(), 3); // in, out, i(V1)
        let names = dae.var_names();
        assert!(names.iter().any(|n| n == "v(in)"));
        assert!(names.iter().any(|n| n == "v(out)"));
    }

    #[test]
    fn parses_paper_vco() {
        // The lc_vco preset expressed as text.
        let dae = parse_netlist(
            "C1 tank 0 4.503n\n\
             L1 tank 0 10u\n\
             GN1 tank 0 5m 1.667m\n",
        )
        .unwrap();
        assert_eq!(dae.dim(), 2);
        assert!(check_jacobians(&dae, &[1.0, -0.1]) < 1e-6);
    }

    #[test]
    fn parses_mems_card() {
        let dae = parse_netlist(
            "L1 tank 0 10u\n\
             GN1 tank 0 5m 1.667m\n\
             M1 tank 0 5n 1 1e-12 3e-7 2.47 0.121 DC(1.5)\n",
        )
        .unwrap();
        assert_eq!(dae.dim(), 4); // v, iL, y, u
        assert!(check_jacobians(&dae, &[0.5, 0.01, 0.1, 0.0]) < 1e-6);
    }

    #[test]
    fn parses_sin_and_pulse_sources() {
        let dae = parse_netlist(
            "I1 0 a SIN(0 1m 1k)\n\
             R1 a 0 50\n\
             V1 b 0 PULSE(0 5 1u 10u 1u 100u)\n\
             R2 b a 1k\n",
        )
        .unwrap();
        let mut b = vec![0.0; dae.dim()];
        dae.eval_b(0.25e-3, &mut b); // sin peak at quarter period
        assert!(b.iter().any(|v| (v.abs() - 1e-3).abs() < 1e-12));
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_netlist("R1 a 0 1k\nQ1 a 0 bogus\n").unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn short_line_rejected() {
        assert!(matches!(
            parse_netlist("R1 a\n"),
            Err(NetlistError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn zero_resistance_rejected() {
        assert!(parse_netlist("R1 a 0 0\n").is_err());
    }

    #[test]
    fn floating_node_propagates_circuit_error() {
        // "b" referenced nowhere else, circuit validation must fire...
        // actually a single device connects it; build a truly floating one
        // via an unknown-only node list is impossible through the parser,
        // so check the empty-netlist case instead.
        assert!(matches!(
            parse_netlist("* nothing\n"),
            Err(NetlistError::Circuit(_))
        ));
    }

    #[test]
    fn gnd_alias() {
        let dae = parse_netlist("R1 a gnd 1k\nC1 a 0 1n\n").unwrap();
        assert_eq!(dae.dim(), 1);
    }

    #[test]
    fn waveform_bare_number_is_dc() {
        let dae = parse_netlist("I1 0 a 2m\nR1 a 0 1k\n").unwrap();
        let mut b = vec![0.0; 1];
        dae.eval_b(0.0, &mut b);
        assert!((b[0] - 2e-3).abs() < 1e-15);
    }
}
