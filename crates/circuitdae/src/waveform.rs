//! Time-dependent source waveforms.

/// An independent-source waveform `w(t)`.
///
/// Kept as a closed enum (no closures) so circuits stay `Clone + Debug`
/// and simulation runs are reproducible from a printed netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// `offset + amplitude·sin(2π·freq_hz·t + phase_rad)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq_hz: f64,
        /// Phase in radians at `t = 0`.
        phase_rad: f64,
    },
    /// Periodic trapezoidal pulse train starting at `t = 0`:
    /// rises from `low` over `rise`, holds `high` for `width`,
    /// falls over `fall`, then stays `low` until `period`.
    Pulse {
        /// Base level.
        low: f64,
        /// Pulse level.
        high: f64,
        /// Rise time (s).
        rise: f64,
        /// High hold time (s).
        width: f64,
        /// Fall time (s).
        fall: f64,
        /// Repetition period (s).
        period: f64,
    },
}

impl Waveform {
    /// A sine specified by offset, amplitude and frequency with zero phase.
    pub fn sine(offset: f64, amplitude: f64, freq_hz: f64) -> Self {
        Waveform::Sine {
            offset,
            amplitude,
            freq_hz,
            phase_rad: 0.0,
        }
    }

    /// Evaluates the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Sine {
                offset,
                amplitude,
                freq_hz,
                phase_rad,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * freq_hz * t + phase_rad).sin(),
            Waveform::Pulse {
                low,
                high,
                rise,
                width,
                fall,
                period,
            } => {
                let tau = t.rem_euclid(period);
                if tau < rise {
                    low + (high - low) * tau / rise.max(f64::MIN_POSITIVE)
                } else if tau < rise + width {
                    high
                } else if tau < rise + width + fall {
                    high - (high - low) * (tau - rise - width) / fall.max(f64::MIN_POSITIVE)
                } else {
                    low
                }
            }
        }
    }

    /// Natural period of the waveform, if it has one (`None` for DC).
    pub fn period(&self) -> Option<f64> {
        match *self {
            Waveform::Dc(_) => None,
            Waveform::Sine { freq_hz, .. } => {
                if freq_hz > 0.0 {
                    Some(1.0 / freq_hz)
                } else {
                    None
                }
            }
            Waveform::Pulse { period, .. } => Some(period),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(3.3);
        assert_eq!(w.eval(0.0), 3.3);
        assert_eq!(w.eval(1e9), 3.3);
        assert_eq!(w.period(), None);
    }

    #[test]
    fn sine_hits_peaks() {
        let w = Waveform::sine(1.0, 2.0, 1.0);
        assert!((w.eval(0.25) - 3.0).abs() < 1e-12);
        assert!((w.eval(0.75) + 1.0).abs() < 1e-12);
        assert_eq!(w.period(), Some(1.0));
    }

    #[test]
    fn sine_phase_shifts() {
        let w = Waveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            freq_hz: 1.0,
            phase_rad: std::f64::consts::FRAC_PI_2,
        };
        assert!((w.eval(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pulse_levels() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 5.0,
            rise: 0.1,
            width: 0.3,
            fall: 0.1,
            period: 1.0,
        };
        assert!((w.eval(0.05) - 2.5).abs() < 1e-9); // mid-rise
        assert!((w.eval(0.2) - 5.0).abs() < 1e-12); // high
        assert!((w.eval(0.45) - 2.5).abs() < 1e-9); // mid-fall
        assert!((w.eval(0.9)).abs() < 1e-12); // low
        assert!((w.eval(1.2) - 5.0).abs() < 1e-12); // periodic repeat
    }

    #[test]
    fn pulse_period_reported() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            rise: 0.0,
            width: 0.5,
            fall: 0.0,
            period: 2.0,
        };
        assert_eq!(w.period(), Some(2.0));
    }
}
