//! Time-dependent source waveforms.

/// An independent-source waveform `w(t)`.
///
/// Kept as a closed enum (no closures) so circuits stay `Clone + Debug`
/// and simulation runs are reproducible from a printed netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// `offset + amplitude·sin(2π·freq_hz·t + phase_rad)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq_hz: f64,
        /// Phase in radians at `t = 0`.
        phase_rad: f64,
    },
    /// Periodic trapezoidal pulse train starting at `t = 0`:
    /// rises from `low` over `rise`, holds `high` for `width`,
    /// falls over `fall`, then stays `low` until `period`.
    Pulse {
        /// Base level.
        low: f64,
        /// Pulse level.
        high: f64,
        /// Rise time (s).
        rise: f64,
        /// High hold time (s).
        width: f64,
        /// Fall time (s).
        fall: f64,
        /// Repetition period (s).
        period: f64,
    },
}

impl Waveform {
    /// A sine specified by offset, amplitude and frequency with zero phase.
    pub fn sine(offset: f64, amplitude: f64, freq_hz: f64) -> Self {
        Waveform::Sine {
            offset,
            amplitude,
            freq_hz,
            phase_rad: 0.0,
        }
    }

    /// Evaluates the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Sine {
                offset,
                amplitude,
                freq_hz,
                phase_rad,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * freq_hz * t + phase_rad).sin(),
            Waveform::Pulse {
                low,
                high,
                rise,
                width,
                fall,
                period,
            } => {
                let tau = t.rem_euclid(period);
                if tau < rise {
                    low + (high - low) * tau / rise.max(f64::MIN_POSITIVE)
                } else if tau < rise + width {
                    high
                } else if tau < rise + width + fall {
                    high - (high - low) * (tau - rise - width) / fall.max(f64::MIN_POSITIVE)
                } else {
                    low
                }
            }
        }
    }

    /// The waveform frozen at time `t`: a [`Waveform::Dc`] holding the
    /// instantaneous value. Used to build the *unforced* companion of a
    /// driven circuit (e.g. the WaMPDE's shooting initial condition).
    pub fn frozen_at(&self, t: f64) -> Waveform {
        Waveform::Dc(self.eval(t))
    }

    /// Sets one named scalar parameter, for sweep overrides.
    ///
    /// Recognised fields: `dc` (DC value), `offset`/`ampl`/`freq`/`phase`
    /// (sine), `low`/`high`/`rise`/`width`/`fall`/`period` (pulse). Each
    /// field is valid only for the matching waveform shape.
    ///
    /// # Errors
    ///
    /// Returns a message naming the field and the waveform shape when they
    /// do not match, or listing the recognised fields for unknown names.
    pub fn set_param(&mut self, field: &str, value: f64) -> Result<(), String> {
        let shape_err = |shape: &str| Err(format!("field '{field}' requires a {shape} waveform"));
        match field {
            "dc" => match self {
                Waveform::Dc(v) => {
                    *v = value;
                    Ok(())
                }
                _ => shape_err("DC"),
            },
            "offset" | "ampl" | "freq" | "phase" => match self {
                Waveform::Sine {
                    offset,
                    amplitude,
                    freq_hz,
                    phase_rad,
                } => {
                    match field {
                        "offset" => *offset = value,
                        "ampl" => *amplitude = value,
                        "freq" => *freq_hz = value,
                        _ => *phase_rad = value,
                    }
                    Ok(())
                }
                _ => shape_err("SIN"),
            },
            "low" | "high" | "rise" | "width" | "fall" | "period" => match self {
                Waveform::Pulse {
                    low,
                    high,
                    rise,
                    width,
                    fall,
                    period,
                } => {
                    match field {
                        "low" => *low = value,
                        "high" => *high = value,
                        "rise" => *rise = value,
                        "width" => *width = value,
                        "fall" => *fall = value,
                        _ => *period = value,
                    }
                    Ok(())
                }
                _ => shape_err("PULSE"),
            },
            other => Err(format!(
                "unknown waveform field '{other}' (expected dc, offset, ampl, freq, phase, \
                 low, high, rise, width, fall, period)"
            )),
        }
    }

    /// Natural period of the waveform, if it has one (`None` for DC).
    pub fn period(&self) -> Option<f64> {
        match *self {
            Waveform::Dc(_) => None,
            Waveform::Sine { freq_hz, .. } => {
                if freq_hz > 0.0 {
                    Some(1.0 / freq_hz)
                } else {
                    None
                }
            }
            Waveform::Pulse { period, .. } => Some(period),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(3.3);
        assert_eq!(w.eval(0.0), 3.3);
        assert_eq!(w.eval(1e9), 3.3);
        assert_eq!(w.period(), None);
    }

    #[test]
    fn sine_hits_peaks() {
        let w = Waveform::sine(1.0, 2.0, 1.0);
        assert!((w.eval(0.25) - 3.0).abs() < 1e-12);
        assert!((w.eval(0.75) + 1.0).abs() < 1e-12);
        assert_eq!(w.period(), Some(1.0));
    }

    #[test]
    fn sine_phase_shifts() {
        let w = Waveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            freq_hz: 1.0,
            phase_rad: std::f64::consts::FRAC_PI_2,
        };
        assert!((w.eval(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pulse_levels() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 5.0,
            rise: 0.1,
            width: 0.3,
            fall: 0.1,
            period: 1.0,
        };
        assert!((w.eval(0.05) - 2.5).abs() < 1e-9); // mid-rise
        assert!((w.eval(0.2) - 5.0).abs() < 1e-12); // high
        assert!((w.eval(0.45) - 2.5).abs() < 1e-9); // mid-fall
        assert!((w.eval(0.9)).abs() < 1e-12); // low
        assert!((w.eval(1.2) - 5.0).abs() < 1e-12); // periodic repeat
    }

    #[test]
    fn frozen_at_samples_the_instant() {
        let w = Waveform::sine(1.0, 2.0, 1.0);
        assert_eq!(w.frozen_at(0.25), Waveform::Dc(3.0));
        assert_eq!(Waveform::Dc(5.0).frozen_at(123.0), Waveform::Dc(5.0));
    }

    #[test]
    fn set_param_dc_and_sine() {
        let mut w = Waveform::Dc(1.0);
        w.set_param("dc", 2.5).unwrap();
        assert_eq!(w, Waveform::Dc(2.5));
        assert!(w.set_param("ampl", 1.0).is_err());

        let mut s = Waveform::sine(0.0, 1.0, 10.0);
        s.set_param("ampl", 3.0).unwrap();
        s.set_param("freq", 20.0).unwrap();
        assert!((s.eval(1.0 / 80.0) - 3.0).abs() < 1e-12);
        assert!(s.set_param("dc", 1.0).is_err());
        assert!(s.set_param("bogus", 1.0).unwrap_err().contains("bogus"));
    }

    #[test]
    fn set_param_pulse() {
        let mut w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            rise: 0.0,
            width: 0.5,
            fall: 0.0,
            period: 2.0,
        };
        w.set_param("high", 7.0).unwrap();
        assert!((w.eval(0.2) - 7.0).abs() < 1e-12);
        assert!(w.set_param("freq", 1.0).is_err());
    }

    #[test]
    fn pulse_period_reported() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            rise: 0.0,
            width: 0.5,
            fall: 0.0,
            period: 2.0,
        };
        assert_eq!(w.period(), Some(2.0));
    }
}
