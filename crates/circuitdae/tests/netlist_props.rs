//! Property-based tests for netlist value parsing: engineering-suffix
//! round trips, case-insensitivity, and directive parse behaviour under
//! generated grids.

use circuitdae::netlist::parse_value;
use circuitdae::parse_deck;
use proptest::prelude::*;

/// The suffix table of the parser, mirrored here so a drifting multiplier
/// fails a property instead of silently changing every deck.
const SUFFIXES: &[(&str, f64)] = &[
    ("f", 1e-15),
    ("p", 1e-12),
    ("n", 1e-9),
    ("u", 1e-6),
    ("m", 1e-3),
    ("k", 1e3),
    ("meg", 1e6),
    ("g", 1e9),
    ("t", 1e12),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `format!("{m}{suffix}")` parses back to `m * multiplier` for every
    /// suffix, at either case.
    #[test]
    fn suffix_round_trip(
        mantissa in -1000.0f64..1000.0,
        suffix_idx in 0usize..9,
        upper in 0usize..2,
    ) {
        let (suffix, mult) = SUFFIXES[suffix_idx];
        let token = if upper == 1 {
            format!("{mantissa}{}", suffix.to_ascii_uppercase())
        } else {
            format!("{mantissa}{suffix}")
        };
        let parsed = parse_value(&token).unwrap();
        let want = mantissa * mult;
        prop_assert!(
            (parsed - want).abs() <= 1e-12 * want.abs().max(1e-300),
            "token {token}: {parsed} vs {want}"
        );
    }

    /// Bare scientific notation survives a text round trip exactly.
    #[test]
    fn scientific_notation_is_exact(v in -1.0e9f64..1.0e9) {
        let token = format!("{v:e}");
        prop_assert_eq!(parse_value(&token).unwrap().to_bits(), v.to_bits());
    }

    /// A suffix never changes the sign, and scaling the mantissa scales
    /// the parsed value linearly.
    #[test]
    fn suffix_scaling_is_linear(
        mantissa in 0.001f64..1000.0,
        suffix_idx in 0usize..9,
    ) {
        let (suffix, _) = SUFFIXES[suffix_idx];
        let one = parse_value(&format!("{mantissa}{suffix}")).unwrap();
        let two = parse_value(&format!("{}{suffix}", 2.0 * mantissa)).unwrap();
        prop_assert!(one > 0.0);
        prop_assert!((two - 2.0 * one).abs() <= 1e-9 * two.abs());
    }

    /// Every generated linear `.sweep` grid has the requested length and
    /// exact endpoints, and instantiates at every point.
    #[test]
    fn generated_sweep_grids_instantiate(
        from in 0.5f64..2.0,
        span in 0.1f64..3.0,
        points in 2usize..7,
    ) {
        let to = from + span;
        let deck = parse_deck(&format!(
            "V1 in 0 SIN(0 5 1k)\n\
             R1 in out 1k\n\
             C1 out 0 1u\n\
             .tran 1m\n\
             .sweep R1.r {from}k {to}k {points}\n"
        )).unwrap();
        let values = deck.sweeps[0].values();
        prop_assert_eq!(values.len(), points);
        prop_assert!((values[0] - from * 1e3).abs() < 1e-9);
        prop_assert!((values[points - 1] - to * 1e3).abs() < 1e-9);
        for v in &values {
            prop_assert!(deck.instantiate(&[*v]).is_ok());
        }
    }
}

#[test]
fn rejects_suffix_only_and_garbage() {
    for bad in ["", "k", "meg", "1kk", "1 k", "abc", "--3"] {
        assert!(parse_value(bad).is_err(), "accepted {bad:?}");
    }
}
