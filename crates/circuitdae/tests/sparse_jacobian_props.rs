//! Property tests of the sparse Jacobian stamping layer: for randomly
//! parameterised circuits and random states, the triplet-assembled
//! `jac_q`/`jac_f` must agree with the dense stamps entrywise to 1e-12
//! (relative to the matrix magnitude), and the structural pattern must
//! cover every dense nonzero.

use circuitdae::{Circuit, Dae, Device, MemsParams, Waveform};
use numkit::DMat;
use proptest::prelude::*;
use sparsekit::Triplets;

/// Asserts the sparse/dense agreement contract at state `x`.
fn check_sparse_vs_dense(dae: &circuitdae::CircuitDae, x: &[f64]) -> Result<(), String> {
    let n = dae.dim();
    let mut dense_q = DMat::zeros(n, n);
    let mut dense_f = DMat::zeros(n, n);
    dae.jac_q(x, &mut dense_q);
    dae.jac_f(x, &mut dense_f);
    let mut tq = Triplets::new(n, n);
    dae.jac_q_triplets(x, &mut tq);
    let mut tf = Triplets::new(n, n);
    dae.jac_f_triplets(x, &mut tf);
    let sq = tq.to_dense();
    let sf = tf.to_dense();
    let pattern = dae.sparsity();
    let scale_q = dense_q.max_abs().max(1.0);
    let scale_f = dense_f.max_abs().max(1.0);
    for i in 0..n {
        for j in 0..n {
            let dq = (dense_q[(i, j)] - sq[(i, j)]).abs();
            if dq > 1e-12 * scale_q {
                return Err(format!("C({i},{j}): {} vs {}", dense_q[(i, j)], sq[(i, j)]));
            }
            let df = (dense_f[(i, j)] - sf[(i, j)]).abs();
            if df > 1e-12 * scale_f {
                return Err(format!("G({i},{j}): {} vs {}", dense_f[(i, j)], sf[(i, j)]));
            }
            if (dense_q[(i, j)] != 0.0 || dense_f[(i, j)] != 0.0) && !pattern.contains(i, j) {
                return Err(format!("pattern misses ({i},{j})"));
            }
        }
    }
    Ok(())
}

/// A deterministic state vector built from two random seeds.
fn state(n: usize, a: f64, b: f64) -> Vec<f64> {
    (0..n).map(|i| a * (b + 0.7 * i as f64).sin()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random RC-ladder-loaded VCOs (the scaling workload): random stage
    /// count, random element values, random states.
    #[test]
    fn ladder_vco_sparse_matches_dense(
        stages in 1usize..8,
        rval in 1.0e2f64..1.0e5,
        cval in 1.0e-13f64..1.0e-9,
        g1 in 1.0e-4f64..1.0e-2,
        xa in 0.1f64..2.0,
        xb in -3.0f64..3.0,
    ) {
        let mut ckt = Circuit::new();
        let tank = ckt.node("tank");
        ckt.add(Device::capacitor(tank, Circuit::GND, 4.503e-9));
        ckt.add(Device::inductor(tank, Circuit::GND, 1.0e-5));
        ckt.add(Device::cubic_conductor(tank, Circuit::GND, g1, g1 / 3.0));
        let mut prev = tank;
        for s in 0..stages {
            let n = ckt.node(format!("ld{s}"));
            ckt.add(Device::resistor(prev, n, rval));
            ckt.add(Device::capacitor(n, Circuit::GND, cval));
            prev = n;
        }
        let dae = ckt.build().unwrap();
        let x = state(dae.dim(), xa, xb);
        if let Err(msg) = check_sparse_vs_dense(&dae, &x) {
            prop_assert!(false, "{}", msg);
        }
        // The ladder must actually be sparse once it has a few stages.
        if stages >= 4 {
            prop_assert!(!dae.sparsity().is_dense());
        }
    }

    /// Random mixed-device circuits covering every stamp: sources, diode,
    /// tanh conductor, VCCS, and the MEMS varactor (with tank coupling
    /// exercised through a second circuit below).
    #[test]
    fn mixed_device_circuit_sparse_matches_dense(
        r1 in 10.0f64..1.0e5,
        isat in 1.0e-15f64..1.0e-12,
        gm in 1.0e-4f64..1.0e-2,
        vt in 0.1f64..1.0,
        xa in 0.1f64..1.5,
        xb in -3.0f64..3.0,
    ) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Device::voltage_source(a, Circuit::GND, Waveform::sine(0.0, 1.0, 1.0e3)));
        ckt.add(Device::resistor(a, b, r1));
        ckt.add(Device::capacitor(b, Circuit::GND, 1.0e-9));
        ckt.add(Device::diode(a, b, isat, 0.02585));
        ckt.add(Device::tanh_conductor(b, Circuit::GND, 1.0e-3, vt, 1.0e-6));
        ckt.add(Device::vccs(Circuit::GND, b, a, Circuit::GND, gm));
        ckt.add(Device::current_source(Circuit::GND, a, Waveform::Dc(1.0e-3)));
        let dae = ckt.build().unwrap();
        let x = state(dae.dim(), xa, xb);
        if let Err(msg) = check_sparse_vs_dense(&dae, &x) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// Random MEMS varactor parameters with tank coupling on — the one
    /// stamp whose sparse positions depend on a parameter flag.
    #[test]
    fn mems_circuit_sparse_matches_dense(
        c0 in 1.0e-9f64..1.0e-8,
        damping in 1.0e-8f64..1.0e-6,
        coupling in 0.0f64..1.0,
        xa in 0.05f64..0.8,
        xb in -3.0f64..3.0,
    ) {
        let p = MemsParams {
            c0,
            y0: 1.0,
            mass: 1.0e-12,
            damping,
            spring_k: 2.5,
            force_gain: 0.12,
            control: Waveform::Dc(1.5),
            tank_coupling: coupling,
        };
        let mut ckt = Circuit::new();
        let t = ckt.node("tank");
        ckt.add(Device::inductor(t, Circuit::GND, 1.0e-5));
        ckt.add(Device::cubic_conductor(t, Circuit::GND, 5.0e-3, 1.667e-3));
        ckt.add(Device::mems_varactor(t, Circuit::GND, p));
        let dae = ckt.build().unwrap();
        let x = state(dae.dim(), xa, xb);
        if let Err(msg) = check_sparse_vs_dense(&dae, &x) {
            prop_assert!(false, "{}", msg);
        }
    }
}
