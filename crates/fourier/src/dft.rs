//! Direct (matrix) DFT for small sample counts.
//!
//! Harmonic balance works with `N0 = 2M+1` samples — small and odd — where
//! the O(N²) direct transform is both fast and free of padding artifacts.

use numkit::Complex64;

/// Forward DFT: `X[k] = Σ_n x[n]·e^{-j2πkn/N}`.
pub fn dft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (t, &xt) in x.iter().enumerate() {
            let phase = -2.0 * std::f64::consts::PI * ((k * t) % n) as f64 / n as f64;
            acc += xt * Complex64::cis(phase);
        }
        *o = acc;
    }
    out
}

/// Inverse DFT with `1/N` normalisation.
pub fn idft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let mut out = vec![Complex64::ZERO; n];
    for (t, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (k, &xk) in x.iter().enumerate() {
            let phase = 2.0 * std::f64::consts::PI * ((k * t) % n) as f64 / n as f64;
            acc += xk * Complex64::cis(phase);
        }
        *o = acc / n as f64;
    }
    out
}

/// Forward DFT of real samples on the uniform grid `t_s = s/N`, returning
/// the **two-sided, normalised** harmonic coefficients `c_i` for
/// `i = -M..=M` with `N = 2M+1`, such that
/// `x(t) ≈ Σ_i c_i e^{j2πi t}` interpolates the samples.
///
/// # Panics
///
/// Panics when `x.len()` is even (odd counts keep the harmonic set
/// symmetric, which the WaMPDE discretisation relies on).
pub fn harmonics_from_samples(x: &[f64]) -> Vec<Complex64> {
    let n = x.len();
    assert!(
        n % 2 == 1,
        "harmonics_from_samples requires an odd sample count"
    );
    let m = n / 2;
    let buf: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
    let spec = dft(&buf);
    // Bin k of the DFT corresponds to harmonic k for k<=M and k-N for k>M.
    let mut c = vec![Complex64::ZERO; n];
    for (k, s) in spec.iter().enumerate() {
        let i = if k <= m {
            k as isize
        } else {
            k as isize - n as isize
        };
        c[(i + m as isize) as usize] = *s / n as f64;
    }
    c
}

/// Inverse of [`harmonics_from_samples`]: evaluates the trigonometric
/// polynomial with two-sided coefficients `c_(-M..=M)` on the uniform grid.
///
/// # Panics
///
/// Panics when `c.len()` is even.
pub fn samples_from_harmonics(c: &[Complex64]) -> Vec<f64> {
    let n = c.len();
    assert!(
        n % 2 == 1,
        "samples_from_harmonics requires an odd coefficient count"
    );
    let m = (n / 2) as isize;
    (0..n)
        .map(|s| {
            let t = s as f64 / n as f64;
            let mut acc = Complex64::ZERO;
            for (idx, &ci) in c.iter().enumerate() {
                let i = idx as isize - m;
                acc += ci * Complex64::cis(2.0 * std::f64::consts::PI * i as f64 * t);
            }
            acc.re
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft_of_any_len;

    #[test]
    fn dft_matches_fft() {
        let x: Vec<Complex64> = (0..11)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let d = dft(&x);
        let f = fft_of_any_len(&x);
        for (a, b) in d.iter().zip(f.iter()) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn idft_roundtrip() {
        let x: Vec<Complex64> = (0..9)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let back = idft(&dft(&x));
        for (a, b) in back.iter().zip(x.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn harmonics_of_pure_cosine() {
        let n = 9;
        let x: Vec<f64> = (0..n)
            .map(|s| (2.0 * std::f64::consts::PI * s as f64 / n as f64).cos())
            .collect();
        let c = harmonics_from_samples(&x);
        let m = n / 2;
        // cos(2πt) = ½(e^{j2πt} + e^{-j2πt})
        assert!((c[m + 1].re - 0.5).abs() < 1e-12);
        assert!((c[m - 1].re - 0.5).abs() < 1e-12);
        assert!(c[m].abs() < 1e-12);
    }

    #[test]
    fn samples_roundtrip() {
        let x: Vec<f64> = (0..15).map(|s| ((s * s) as f64 * 0.21).sin()).collect();
        let c = harmonics_from_samples(&x);
        let back = samples_from_harmonics(&c);
        for (a, b) in back.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn real_signal_has_hermitian_harmonics() {
        let x: Vec<f64> = (0..7).map(|s| (s as f64 * 1.3).cos() + 0.3).collect();
        let c = harmonics_from_samples(&x);
        let m = 3;
        for i in 0..=m {
            let plus = c[m + i];
            let minus = c[m - i];
            assert!((plus - minus.conj()).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn even_count_rejected() {
        let _ = harmonics_from_samples(&[0.0; 8]);
    }
}
