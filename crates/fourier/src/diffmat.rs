//! Spectral differentiation on the uniform periodic grid.

use numkit::{Complex64, DMat};

/// Dense spectral differentiation matrix `D` for 1-periodic functions
/// sampled at `n` uniform points `t_s = s/n` (**`n` must be odd**).
///
/// For band-limited `x`, `(D·x)_s = x'(t_s)` exactly. `D` realises the
/// frequency-domain operator `F⁻¹·diag(j2πi)·F` in real arithmetic; it is
/// the `ω(t2)·∂/∂t1` building block of the WaMPDE collocation Jacobian.
///
/// # Panics
///
/// Panics when `n` is even or zero. (Even grids make the Nyquist harmonic's
/// derivative ill-defined; the WaMPDE discretisation always uses
/// `n = 2M+1`.)
pub fn spectral_diff_matrix(n: usize) -> DMat {
    assert!(
        n > 0 && n % 2 == 1,
        "spectral differentiation grid must be odd"
    );
    let m = (n / 2) as isize;
    let two_pi = 2.0 * std::f64::consts::PI;
    // D = Re( F^{-1} diag(j2πi) F ), computed directly:
    // D[s][p] = (1/n) Σ_{i=-M..M} j2πi e^{j2πi (s-p)/n}
    DMat::from_fn(n, n, |s, p| {
        let mut acc = Complex64::ZERO;
        for i in -m..=m {
            let phase = two_pi * i as f64 * (s as f64 - p as f64) / n as f64;
            acc += Complex64::new(0.0, two_pi * i as f64) * Complex64::cis(phase);
        }
        acc.re / n as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<f64> {
        (0..n).map(|s| s as f64 / n as f64).collect()
    }

    #[test]
    fn differentiates_single_harmonic_exactly() {
        let n = 15;
        let d = spectral_diff_matrix(n);
        let two_pi = 2.0 * std::f64::consts::PI;
        for k in 1..=3 {
            let x: Vec<f64> = grid(n)
                .iter()
                .map(|&t| (two_pi * k as f64 * t).sin())
                .collect();
            let want: Vec<f64> = grid(n)
                .iter()
                .map(|&t| two_pi * k as f64 * (two_pi * k as f64 * t).cos())
                .collect();
            let got = d.matvec(&x);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g - w).abs() < 1e-9, "harmonic {k}");
            }
        }
    }

    #[test]
    fn constant_maps_to_zero() {
        let d = spectral_diff_matrix(9);
        let got = d.matvec(&[3.5; 9]);
        for g in got {
            assert!(g.abs() < 1e-10);
        }
    }

    #[test]
    fn antisymmetric_structure() {
        // D is a circulant antisymmetric matrix: D[s][p] = -D[p][s].
        let d = spectral_diff_matrix(11);
        for s in 0..11 {
            for p in 0..11 {
                assert!((d[(s, p)] + d[(p, s)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn zero_diagonal() {
        let d = spectral_diff_matrix(7);
        for s in 0..7 {
            assert!(d[(s, s)].abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn even_grid_rejected() {
        let _ = spectral_diff_matrix(8);
    }

    #[test]
    fn derivative_of_band_limited_product() {
        // sin(2πt)·cos(2πt) = ½ sin(4πt): band-limited within M=2, so the
        // matrix differentiates it exactly on an n>=5 grid.
        let n = 9;
        let d = spectral_diff_matrix(n);
        let two_pi = 2.0 * std::f64::consts::PI;
        let x: Vec<f64> = grid(n)
            .iter()
            .map(|&t| (two_pi * t).sin() * (two_pi * t).cos())
            .collect();
        let want: Vec<f64> = grid(n)
            .iter()
            .map(|&t| two_pi * (2.0 * two_pi * t).cos())
            .collect();
        let got = d.matvec(&x);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-9);
        }
    }
}
