//! Fast Fourier transforms.
//!
//! Two engines cover every length:
//!
//! * radix-2 iterative Cooley–Tukey for powers of two;
//! * Bluestein's chirp-z algorithm for everything else (it reduces an
//!   arbitrary-length DFT to a power-of-two convolution).
//!
//! Convention: `X[k] = Σ_n x[n]·e^{-j2πkn/N}` (unnormalised forward),
//! inverse divides by `N`.

use numkit::Complex64;

/// In-place radix-2 FFT.
///
/// # Panics
///
/// Panics when `x.len()` is not a power of two (use [`fft_of_any_len`] for
/// general lengths).
pub fn fft_in_place(x: &mut [Complex64]) {
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "fft_in_place requires power-of-two length"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = x[i + k];
                let v = x[i + k + len / 2] * w;
                x[i + k] = u + v;
                x[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// In-place radix-2 inverse FFT (normalised by `1/N`).
///
/// # Panics
///
/// Panics when `x.len()` is not a power of two.
pub fn ifft_in_place(x: &mut [Complex64]) {
    let n = x.len();
    for v in x.iter_mut() {
        *v = v.conj();
    }
    fft_in_place(x);
    let inv = 1.0 / n as f64;
    for v in x.iter_mut() {
        *v = v.conj() * inv;
    }
}

/// Forward DFT of arbitrary length, choosing radix-2 or Bluestein.
pub fn fft_of_any_len(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = x.to_vec();
        fft_in_place(&mut buf);
        return buf;
    }
    bluestein(x)
}

/// Inverse DFT of arbitrary length (normalised by `1/N`).
pub fn ifft_of_any_len(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let conj: Vec<Complex64> = x.iter().map(|v| v.conj()).collect();
    let f = fft_of_any_len(&conj);
    let inv = 1.0 / n as f64;
    f.into_iter().map(|v| v.conj() * inv).collect()
}

/// Bluestein chirp-z transform: DFT of arbitrary length `n` via a
/// power-of-two cyclic convolution of length `>= 2n-1`.
fn bluestein(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let m = (2 * n - 1).next_power_of_two();
    let pi = std::f64::consts::PI;

    // Chirp w[k] = e^{-jπk²/n}. Reduce k² mod 2n to keep the phase
    // argument bounded and accurate for large k.
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex64::cis(-pi * k2 as f64 / n as f64)
        })
        .collect();

    let mut a = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
    }
    let mut b = vec![Complex64::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    fft_in_place(&mut a);
    fft_in_place(&mut b);
    for (ai, bi) in a.iter_mut().zip(b.iter()) {
        *ai *= *bi;
    }
    ifft_in_place(&mut a);

    (0..n).map(|k| a[k] * chirp[k]).collect()
}

/// Forward DFT of a real signal; returns the full complex spectrum.
pub fn rfft(x: &[f64]) -> Vec<Complex64> {
    let buf: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
    fft_of_any_len(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex64::cis(
                            -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(p, q)| (*p - *q).abs())
            .fold(0.0_f64, f64::max)
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect()
    }

    #[test]
    fn radix2_matches_naive() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let x = ramp(n);
            let mut fast = x.clone();
            fft_in_place(&mut fast);
            assert!(max_err(&fast, &naive_dft(&x)) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        for &n in &[3usize, 5, 7, 15, 31, 100] {
            let x = ramp(n);
            let fast = fft_of_any_len(&x);
            assert!(max_err(&fast, &naive_dft(&x)) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn roundtrip_power_of_two() {
        let x = ramp(64);
        let mut buf = x.clone();
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        assert!(max_err(&buf, &x) < 1e-12);
    }

    #[test]
    fn roundtrip_any_len() {
        for &n in &[3usize, 9, 21, 50] {
            let x = ramp(n);
            let back = ifft_of_any_len(&fft_of_any_len(&x));
            assert!(max_err(&back, &x) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn parseval_identity() {
        let x = ramp(33);
        let f = fft_of_any_len(&x);
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq_energy: f64 = f.iter().map(|v| v.norm_sqr()).sum::<f64>() / 33.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn single_tone_lands_on_bin() {
        let n = 16;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * 3.0 * t as f64 / n as f64))
            .collect();
        let f = fft_of_any_len(&x);
        assert!((f[3].abs() - n as f64).abs() < 1e-9);
        for (k, v) in f.iter().enumerate() {
            if k != 3 {
                assert!(v.abs() < 1e-9, "leak at bin {k}");
            }
        }
    }

    #[test]
    fn rfft_of_cosine_is_symmetric() {
        let n = 8;
        let x: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / n as f64).cos())
            .collect();
        let f = rfft(&x);
        assert!((f[1].re - n as f64 / 2.0).abs() < 1e-9);
        assert!((f[n - 1].re - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(fft_of_any_len(&[]).is_empty());
        let one = fft_of_any_len(&[Complex64::new(5.0, 0.0)]);
        assert_eq!(one.len(), 1);
        assert!((one[0].re - 5.0).abs() < 1e-15);
    }

    #[test]
    fn linearity() {
        let a = ramp(24);
        let b: Vec<Complex64> = ramp(24)
            .iter()
            .map(|v| *v * Complex64::new(0.0, 1.5))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(b.iter()).map(|(p, q)| *p + *q).collect();
        let fa = fft_of_any_len(&a);
        let fb = fft_of_any_len(&b);
        let fsum = fft_of_any_len(&sum);
        let lin: Vec<Complex64> = fa.iter().zip(fb.iter()).map(|(p, q)| *p + *q).collect();
        assert!(max_err(&fsum, &lin) < 1e-9);
    }
}
