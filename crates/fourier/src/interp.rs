//! Band-limited (trigonometric) interpolation of periodic samples.

use crate::series::FourierSeries;

/// Interpolates an odd count of uniform samples of a 1-periodic signal at
/// an arbitrary point `t` using the interpolating trigonometric polynomial.
///
/// This is the reconstruction primitive the WaMPDE uses along the warped
/// axis: `x(t) = x̂(φ(t) mod 1, t2)` (paper eq. (17)) with `x̂(·, t2)` known
/// at `N0` collocation points.
///
/// # Panics
///
/// Panics when `samples.len()` is even or zero.
///
/// # Example
///
/// ```
/// use fourier::trig_interp;
///
/// let n = 9;
/// let samples: Vec<f64> = (0..n)
///     .map(|s| (2.0 * std::f64::consts::PI * s as f64 / n as f64).sin())
///     .collect();
/// let v = trig_interp(&samples, 0.125);
/// assert!((v - (2.0 * std::f64::consts::PI * 0.125).sin()).abs() < 1e-10);
/// ```
pub fn trig_interp(samples: &[f64], t: f64) -> f64 {
    FourierSeries::from_samples(samples).eval(t)
}

/// Barycentric form of the trigonometric interpolant — O(N) per point with
/// no transform, preferable when each sample set is evaluated only once.
///
/// Uses the classical odd-`N` identity
/// `x(t) = Σ_s x_s · sinc-like kernel sin(Nπ(t−t_s)) / (N·sin(π(t−t_s)))`.
///
/// # Panics
///
/// Panics when `samples.len()` is even or zero.
pub fn trig_interp_barycentric(samples: &[f64], t: f64) -> f64 {
    let n = samples.len();
    assert!(
        n % 2 == 1 && n > 0,
        "trig interpolation requires odd sample count"
    );
    let nf = n as f64;
    let pi = std::f64::consts::PI;
    let mut acc = 0.0;
    for (s, &xs) in samples.iter().enumerate() {
        let d = t - s as f64 / nf;
        let denom = (pi * d).sin();
        let kernel = if denom.abs() < 1e-13 {
            // t coincides with a grid point (use the limit value 1 there).
            let wrapped = (d - d.round()).abs();
            if wrapped < 1e-13 {
                1.0
            } else {
                (nf * pi * d).sin() / (nf * denom)
            }
        } else {
            (nf * pi * d).sin() / (nf * denom)
        };
        acc += xs * kernel;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<f64> {
        (0..n).map(|s| s as f64 / n as f64).collect()
    }

    #[test]
    fn exact_on_grid_points() {
        let samples: Vec<f64> = (0..7).map(|s| (s as f64).sin()).collect();
        for (s, &v) in samples.iter().enumerate() {
            let t = s as f64 / 7.0;
            assert!((trig_interp(&samples, t) - v).abs() < 1e-10);
            assert!((trig_interp_barycentric(&samples, t) - v).abs() < 1e-10);
        }
    }

    #[test]
    fn band_limited_exactness() {
        let two_pi = 2.0 * std::f64::consts::PI;
        let f = |t: f64| 0.3 + (two_pi * t).cos() - 0.5 * (3.0 * two_pi * t).sin();
        let samples: Vec<f64> = grid(9).iter().map(|&t| f(t)).collect();
        for &t in &[0.05, 0.21, 0.333, 0.6, 0.95] {
            assert!((trig_interp(&samples, t) - f(t)).abs() < 1e-9, "t={t}");
            assert!(
                (trig_interp_barycentric(&samples, t) - f(t)).abs() < 1e-9,
                "bary t={t}"
            );
        }
    }

    #[test]
    fn two_forms_agree() {
        let samples: Vec<f64> = (0..11).map(|s| ((s * s) as f64 * 0.37).cos()).collect();
        for i in 0..50 {
            let t = i as f64 / 50.0;
            let a = trig_interp(&samples, t);
            let b = trig_interp_barycentric(&samples, t);
            assert!((a - b).abs() < 1e-8, "t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn periodic_wraparound() {
        let samples: Vec<f64> = grid(9)
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * t).sin())
            .collect();
        let a = trig_interp_barycentric(&samples, 0.25);
        let b = trig_interp_barycentric(&samples, 1.25);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn even_count_rejected() {
        let _ = trig_interp_barycentric(&[0.0; 6], 0.1);
    }
}
