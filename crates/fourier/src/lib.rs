//! Spectral machinery for the multi-time methods.
//!
//! Everything in this crate operates on functions that are **1-periodic**
//! in their argument (the WaMPDE's warped time scale is normalised to unit
//! period, eq. (18) of the paper). Provided here:
//!
//! * [`fft`] — radix-2 Cooley–Tukey and Bluestein (arbitrary length)
//!   transforms over [`numkit::Complex64`];
//! * [`dft()`] — direct DFT/IDFT for the small, usually odd sample counts
//!   harmonic balance prefers (`N0 = 2M+1`);
//! * [`series`] — [`series::FourierSeries`]: truncated complex Fourier
//!   series with evaluation, differentiation and resampling;
//! * [`diffmat`] — the dense spectral differentiation matrix `D` with
//!   `(D·q)(t1_s) ≈ ∂q/∂t1` on the uniform collocation grid;
//! * [`interp`] — band-limited (trigonometric) interpolation between
//!   arbitrary points and uniform grids.

pub mod dft;
pub mod diffmat;
pub mod fft;
pub mod interp;
pub mod series;

pub use dft::{dft, idft};
pub use diffmat::spectral_diff_matrix;
pub use fft::{fft_in_place, fft_of_any_len, ifft_in_place};
pub use interp::trig_interp;
pub use series::FourierSeries;
