//! Truncated complex Fourier series of real 1-periodic signals.

use crate::dft::{harmonics_from_samples, samples_from_harmonics};
use numkit::Complex64;

/// A truncated, two-sided Fourier series
/// `x(t) = Σ_{i=-M..M} c_i·e^{j2πi t}` of a **real**, 1-periodic signal.
///
/// Coefficients are stored for `i = -M..=M` (length `2M+1`) and kept
/// Hermitian (`c_{-i} = conj(c_i)`), so evaluation returns a real value.
///
/// # Example
///
/// ```
/// use fourier::FourierSeries;
///
/// // Samples of cos(2πt) on a 9-point grid.
/// let n = 9;
/// let samples: Vec<f64> = (0..n)
///     .map(|s| (2.0 * std::f64::consts::PI * s as f64 / n as f64).cos())
///     .collect();
/// let series = FourierSeries::from_samples(&samples);
/// assert!((series.eval(0.25)).abs() < 1e-12); // cos(π/2) = 0
/// ```
#[derive(Debug, Clone)]
pub struct FourierSeries {
    /// Two-sided coefficients, index `m + i` holds harmonic `i`.
    coeffs: Vec<Complex64>,
}

impl FourierSeries {
    /// Builds the interpolating series from an odd number of uniform
    /// samples on `t_s = s/N`.
    ///
    /// # Panics
    ///
    /// Panics when the sample count is even or zero.
    pub fn from_samples(samples: &[f64]) -> Self {
        FourierSeries {
            coeffs: harmonics_from_samples(samples),
        }
    }

    /// Builds from explicit two-sided coefficients (length must be odd).
    ///
    /// # Panics
    ///
    /// Panics when `coeffs.len()` is even or zero.
    pub fn from_coeffs(coeffs: Vec<Complex64>) -> Self {
        assert!(
            coeffs.len() % 2 == 1,
            "two-sided coefficient count must be odd"
        );
        FourierSeries { coeffs }
    }

    /// Highest retained harmonic `M`.
    #[inline]
    pub fn max_harmonic(&self) -> usize {
        self.coeffs.len() / 2
    }

    /// Two-sided coefficient slice (index `max_harmonic() + i` ↦ harmonic `i`).
    #[inline]
    pub fn coeffs(&self) -> &[Complex64] {
        &self.coeffs
    }

    /// Coefficient of harmonic `i` (may be negative).
    ///
    /// # Panics
    ///
    /// Panics when `|i| > max_harmonic()`.
    pub fn coeff(&self, i: isize) -> Complex64 {
        let m = self.max_harmonic() as isize;
        assert!(i.abs() <= m, "harmonic index out of range");
        self.coeffs[(m + i) as usize]
    }

    /// Evaluates the series at `t` (any real argument; the series is
    /// 1-periodic).
    pub fn eval(&self, t: f64) -> f64 {
        let m = self.max_harmonic() as isize;
        // Real-signal form: c_0 + 2·Re Σ_{i>0} c_i e^{j2πit}, accumulated
        // with a phasor recurrence instead of per-term trig calls.
        let mut acc = self.coeff(0).re;
        let w = Complex64::cis(2.0 * std::f64::consts::PI * t.fract());
        let mut ph = w;
        for i in 1..=m {
            acc += 2.0 * (self.coeff(i) * ph).re;
            ph *= w;
        }
        acc
    }

    /// Evaluates the time derivative `x'(t)`.
    pub fn eval_deriv(&self, t: f64) -> f64 {
        let m = self.max_harmonic() as isize;
        let two_pi = 2.0 * std::f64::consts::PI;
        let mut acc = 0.0;
        let w = Complex64::cis(two_pi * t.fract());
        let mut ph = w;
        for i in 1..=m {
            let jw = Complex64::new(0.0, two_pi * i as f64);
            acc += 2.0 * (self.coeff(i) * jw * ph).re;
            ph *= w;
        }
        acc
    }

    /// Resamples onto the uniform `n`-point grid (`n` odd).
    ///
    /// When `n` exceeds the native grid the result is the band-limited
    /// (zero-padded) interpolation; when smaller, harmonics are truncated.
    ///
    /// # Panics
    ///
    /// Panics when `n` is even or zero.
    pub fn resample(&self, n: usize) -> Vec<f64> {
        assert!(n % 2 == 1, "resample target must be odd");
        let m_new = n / 2;
        let m_old = self.max_harmonic();
        let mut c = vec![Complex64::ZERO; n];
        for i in -(m_new.min(m_old) as isize)..=(m_new.min(m_old) as isize) {
            c[(m_new as isize + i) as usize] = self.coeff(i);
        }
        samples_from_harmonics(&c)
    }

    /// RMS magnitude of the top `k` harmonics — a truncation-error
    /// indicator used to pick the WaMPDE harmonic count.
    pub fn tail_energy(&self, k: usize) -> f64 {
        let m = self.max_harmonic();
        if k == 0 || m == 0 {
            return 0.0;
        }
        let k = k.min(m);
        let mut acc = 0.0;
        for i in (m - k + 1)..=m {
            acc += self.coeff(i as isize).norm_sqr();
        }
        (2.0 * acc).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<f64> {
        (0..n).map(|s| s as f64 / n as f64).collect()
    }

    #[test]
    fn interpolates_samples() {
        let n = 11;
        let samples: Vec<f64> = grid(n)
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * t).sin() + 0.5)
            .collect();
        let s = FourierSeries::from_samples(&samples);
        for (i, &t) in grid(n).iter().enumerate() {
            assert!((s.eval(t) - samples[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn eval_is_periodic() {
        let samples: Vec<f64> = grid(9)
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * t).cos())
            .collect();
        let s = FourierSeries::from_samples(&samples);
        assert!((s.eval(0.3) - s.eval(1.3)).abs() < 1e-10);
        assert!((s.eval(0.3) - s.eval(-0.7)).abs() < 1e-10);
    }

    #[test]
    fn derivative_of_sine() {
        let two_pi = 2.0 * std::f64::consts::PI;
        let samples: Vec<f64> = grid(15).iter().map(|&t| (two_pi * t).sin()).collect();
        let s = FourierSeries::from_samples(&samples);
        for &t in &[0.0, 0.13, 0.42, 0.77] {
            let want = two_pi * (two_pi * t).cos();
            assert!((s.eval_deriv(t) - want).abs() < 1e-8, "t={t}");
        }
    }

    #[test]
    fn resample_upsamples_band_limited_exactly() {
        let two_pi = 2.0 * std::f64::consts::PI;
        let f = |t: f64| (two_pi * t).cos() + 0.25 * (2.0 * two_pi * t).sin();
        let coarse: Vec<f64> = grid(7).iter().map(|&t| f(t)).collect();
        let s = FourierSeries::from_samples(&coarse);
        let fine = s.resample(21);
        for (i, v) in fine.iter().enumerate() {
            let t = i as f64 / 21.0;
            assert!((v - f(t)).abs() < 1e-10);
        }
    }

    #[test]
    fn coeff_accessor_is_hermitian() {
        let samples: Vec<f64> = grid(9)
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * t).cos())
            .collect();
        let s = FourierSeries::from_samples(&samples);
        assert!((s.coeff(1) - s.coeff(-1).conj()).abs() < 1e-12);
    }

    #[test]
    fn tail_energy_small_for_smooth_signal() {
        let two_pi = 2.0 * std::f64::consts::PI;
        let samples: Vec<f64> = grid(31).iter().map(|&t| (two_pi * t).cos()).collect();
        let s = FourierSeries::from_samples(&samples);
        assert!(s.tail_energy(5) < 1e-10);
    }

    #[test]
    #[should_panic]
    fn from_coeffs_even_rejected() {
        let _ = FourierSeries::from_coeffs(vec![Complex64::ZERO; 4]);
    }
}
