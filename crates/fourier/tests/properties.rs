//! Property-based tests for the spectral kernels.

use fourier::fft::{fft_of_any_len, ifft_of_any_len};
use fourier::{spectral_diff_matrix, FourierSeries};
use numkit::Complex64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// DFT shift theorem: rotating the input multiplies bin k by a phasor.
    #[test]
    fn fft_shift_theorem(re in prop::collection::vec(-10.0f64..10.0, 4..64)) {
        let n = re.len();
        let x: Vec<Complex64> = re.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let mut shifted = x.clone();
        shifted.rotate_left(1);
        let fx = fft_of_any_len(&x);
        let fs = fft_of_any_len(&shifted);
        for k in 0..n {
            let phase = Complex64::cis(2.0 * std::f64::consts::PI * k as f64 / n as f64);
            let want = fx[k] * phase;
            prop_assert!((fs[k] - want).abs() < 1e-7 * (1.0 + want.abs()), "bin {k}");
        }
    }

    /// Forward-inverse round trip at arbitrary (non power-of-two) length.
    #[test]
    fn roundtrip_any_length(
        re in prop::collection::vec(-100.0f64..100.0, 1..97),
        im in prop::collection::vec(-100.0f64..100.0, 1..97),
    ) {
        let n = re.len().min(im.len());
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::new(re[i], im[i])).collect();
        let back = ifft_of_any_len(&fft_of_any_len(&x));
        for (a, b) in back.iter().zip(x.iter()) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }

    /// A Fourier series built from samples interpolates those samples and
    /// is 1-periodic.
    #[test]
    fn series_interpolates_and_is_periodic(
        samples in prop::collection::vec(-5.0f64..5.0, 1..12),
        probe in -2.0f64..2.0,
    ) {
        let n = 2 * samples.len() + 1; // odd
        let data: Vec<f64> = (0..n).map(|i| samples[i % samples.len()]).collect();
        let s = FourierSeries::from_samples(&data);
        for (i, &v) in data.iter().enumerate() {
            let t = i as f64 / n as f64;
            prop_assert!((s.eval(t) - v).abs() < 1e-8);
        }
        prop_assert!((s.eval(probe) - s.eval(probe + 1.0)).abs() < 1e-8);
    }

    /// Differentiating a constant series gives zero; differentiating any
    /// series and integrating the values over a period gives zero mean.
    #[test]
    fn derivative_has_zero_mean(samples in prop::collection::vec(-5.0f64..5.0, 2..10)) {
        let n = 2 * samples.len() + 1;
        let data: Vec<f64> = (0..n).map(|i| samples[i % samples.len()]).collect();
        let s = FourierSeries::from_samples(&data);
        let mean: f64 = (0..n).map(|i| s.eval_deriv(i as f64 / n as f64)).sum::<f64>() / n as f64;
        prop_assert!(mean.abs() < 1e-7);
    }

    /// The spectral differentiation matrix annihilates constants and is
    /// consistent with FourierSeries::eval_deriv at the grid points.
    #[test]
    fn diffmat_consistent_with_series(samples in prop::collection::vec(-3.0f64..3.0, 1..6)) {
        let n = 2 * samples.len() + 1;
        let data: Vec<f64> = (0..n).map(|i| samples[i % samples.len()]).collect();
        let d = spectral_diff_matrix(n);
        let via_mat = d.matvec(&data);
        let s = FourierSeries::from_samples(&data);
        for (i, got) in via_mat.iter().enumerate() {
            let want = s.eval_deriv(i as f64 / n as f64);
            prop_assert!((got - want).abs() < 1e-6 * (1.0 + want.abs()));
        }
    }

    /// Resampling up then evaluating at original points is the identity.
    #[test]
    fn resample_preserves_values(samples in prop::collection::vec(-5.0f64..5.0, 1..8)) {
        let n = 2 * samples.len() + 1;
        let data: Vec<f64> = (0..n).map(|i| samples[i % samples.len()]).collect();
        let s = FourierSeries::from_samples(&data);
        let fine = s.resample(3 * n); // 3n is odd
        let s2 = FourierSeries::from_samples(&fine);
        for (i, &v) in data.iter().enumerate() {
            let t = i as f64 / n as f64;
            prop_assert!((s2.eval(t) - v).abs() < 1e-7);
        }
    }
}
