//! Spectral collocation core shared by harmonic balance and the WaMPDE.
//!
//! State layout: the `n·N0` collocation unknowns are **sample-major** —
//! `x[s*n + i]` holds variable `i` at warped-time sample `t1 = s/N0`. This
//! keeps the per-sample device Jacobians contiguous, so the big Jacobian
//! assembles from `n×n` blocks:
//!
//! ```text
//! ∂r[s]/∂x[s'] = δ_{ss'}·(extra_s + G_s)  +  ω·D[s][s']·C_{s'}
//! ```

use circuitdae::Dae;
use numkit::DMat;

/// Collocation workspace for one (warped) periodic axis.
#[derive(Debug, Clone)]
pub struct Colloc {
    /// DAE dimension `n`.
    pub n: usize,
    /// Odd sample count `N0 = 2M+1`.
    pub n0: usize,
    /// Spectral differentiation matrix (`N0 × N0`) for unit period.
    pub dmat: DMat,
}

impl Colloc {
    /// Creates a collocation grid with `2·harmonics + 1` samples.
    ///
    /// # Panics
    ///
    /// Panics when `harmonics == 0` or `dae_dim == 0`.
    pub fn new(dae_dim: usize, harmonics: usize) -> Self {
        assert!(dae_dim > 0, "dae dimension must be positive");
        assert!(harmonics > 0, "need at least one harmonic");
        let n0 = 2 * harmonics + 1;
        Colloc {
            n: dae_dim,
            n0,
            dmat: fourier::spectral_diff_matrix(n0),
        }
    }

    /// Total collocation unknowns `n·N0`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n * self.n0
    }

    /// True when the grid is empty (never — kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of variable `i` at sample `s`.
    #[inline]
    pub fn idx(&self, s: usize, i: usize) -> usize {
        s * self.n + i
    }

    /// Warped-time coordinate of sample `s`.
    #[inline]
    pub fn t1(&self, s: usize) -> f64 {
        s as f64 / self.n0 as f64
    }

    /// Evaluates `q` at every sample of the stacked state `x` into `out`
    /// (both `n·N0`, sample-major).
    pub fn eval_q_all<D: Dae + ?Sized>(&self, dae: &D, x: &[f64], out: &mut [f64]) {
        for s in 0..self.n0 {
            let lo = s * self.n;
            dae.eval_q(&x[lo..lo + self.n], &mut out[lo..lo + self.n]);
        }
    }

    /// Evaluates `f` at every sample.
    pub fn eval_f_all<D: Dae + ?Sized>(&self, dae: &D, x: &[f64], out: &mut [f64]) {
        for s in 0..self.n0 {
            let lo = s * self.n;
            dae.eval_f(&x[lo..lo + self.n], &mut out[lo..lo + self.n]);
        }
    }

    /// Applies the spectral derivative along the sample axis:
    /// `out[s][i] = Σ_{s'} D[s][s']·vals[s'][i]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn apply_diff(&self, vals: &[f64], out: &mut [f64]) {
        assert_eq!(vals.len(), self.len(), "apply_diff: vals length");
        assert_eq!(out.len(), self.len(), "apply_diff: out length");
        for s in 0..self.n0 {
            let orow = &mut out[s * self.n..(s + 1) * self.n];
            orow.iter_mut().for_each(|v| *v = 0.0);
            for sp in 0..self.n0 {
                let d = self.dmat[(s, sp)];
                if d == 0.0 {
                    continue;
                }
                let vrow = &vals[sp * self.n..(sp + 1) * self.n];
                for (o, v) in orow.iter_mut().zip(vrow.iter()) {
                    *o += d * v;
                }
            }
        }
    }

    /// Coefficient vector of the phase-condition row
    /// `Im{X̂ᵏ_l} = −(1/N0)·Σ_s sin(2πls/N0)·x[s][k] = 0`
    /// (paper eq. (20)): the imaginary part of the `l`-th Fourier
    /// coefficient of variable `k`, which pins the free translation along
    /// the warped axis.
    ///
    /// # Panics
    ///
    /// Panics when `k >= n` or `l` is zero or above the harmonic count.
    pub fn phase_row(&self, k: usize, l: usize) -> Vec<f64> {
        assert!(k < self.n, "phase variable out of range");
        assert!(l >= 1 && l <= self.n0 / 2, "phase harmonic out of range");
        let mut row = vec![0.0; self.len()];
        for s in 0..self.n0 {
            let arg = 2.0 * std::f64::consts::PI * (l * s) as f64 / self.n0 as f64;
            row[self.idx(s, k)] = -arg.sin() / self.n0 as f64;
        }
        row
    }

    /// Evaluates the imaginary part of the `l`-th Fourier coefficient of
    /// variable `k` for a stacked state — the quantity [`Colloc::phase_row`]
    /// sets to zero.
    pub fn phase_value(&self, x: &[f64], k: usize, l: usize) -> f64 {
        let row = self.phase_row(k, l);
        row.iter().zip(x.iter()).map(|(a, b)| a * b).sum()
    }

    /// Extracts the samples of variable `i` as a contiguous vector
    /// (length `N0`), e.g. for trigonometric interpolation.
    pub fn extract_var(&self, x: &[f64], i: usize) -> Vec<f64> {
        (0..self.n0).map(|s| x[self.idx(s, i)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::analytic::VanDerPol;

    #[test]
    fn indexing_layout() {
        let c = Colloc::new(3, 2);
        assert_eq!(c.n0, 5);
        assert_eq!(c.len(), 15);
        assert_eq!(c.idx(0, 0), 0);
        assert_eq!(c.idx(1, 0), 3);
        assert_eq!(c.idx(2, 1), 7);
        assert!((c.t1(1) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn apply_diff_on_harmonic() {
        let c = Colloc::new(1, 3); // n0 = 7
        let two_pi = 2.0 * std::f64::consts::PI;
        let x: Vec<f64> = (0..7).map(|s| (two_pi * s as f64 / 7.0).sin()).collect();
        let mut out = vec![0.0; 7];
        c.apply_diff(&x, &mut out);
        for (s, o) in out.iter().enumerate() {
            let want = two_pi * (two_pi * s as f64 / 7.0).cos();
            assert!((o - want).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_diff_multivar() {
        // Two variables carrying different harmonics must not mix.
        let c = Colloc::new(2, 2); // n0 = 5
        let two_pi = 2.0 * std::f64::consts::PI;
        let mut x = vec![0.0; c.len()];
        for s in 0..5 {
            let t = s as f64 / 5.0;
            x[c.idx(s, 0)] = (two_pi * t).cos();
            x[c.idx(s, 1)] = (2.0 * two_pi * t).sin();
        }
        let mut out = vec![0.0; c.len()];
        c.apply_diff(&x, &mut out);
        for s in 0..5 {
            let t = s as f64 / 5.0;
            let want0 = -two_pi * (two_pi * t).sin();
            let want1 = 2.0 * two_pi * (2.0 * two_pi * t).cos();
            assert!((out[c.idx(s, 0)] - want0).abs() < 1e-9);
            assert!((out[c.idx(s, 1)] - want1).abs() < 1e-9);
        }
    }

    #[test]
    fn phase_row_kills_cosine_keeps_sine() {
        let c = Colloc::new(1, 3);
        let two_pi = 2.0 * std::f64::consts::PI;
        let cos_wave: Vec<f64> = (0..7).map(|s| (two_pi * s as f64 / 7.0).cos()).collect();
        let sin_wave: Vec<f64> = (0..7).map(|s| (two_pi * s as f64 / 7.0).sin()).collect();
        // cos has a real first coefficient: phase value 0.
        assert!(c.phase_value(&cos_wave, 0, 1).abs() < 1e-12);
        // sin = (e^{jθ} − e^{-jθ})/2j has Im{X_1} = −1/2: phase value ±1/2.
        assert!((c.phase_value(&sin_wave, 0, 1).abs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eval_all_matches_pointwise() {
        let vdp = VanDerPol::unforced(0.7);
        let c = Colloc::new(2, 2);
        let x: Vec<f64> = (0..c.len()).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut q = vec![0.0; c.len()];
        let mut f = vec![0.0; c.len()];
        c.eval_q_all(&vdp, &x, &mut q);
        c.eval_f_all(&vdp, &x, &mut f);
        for s in 0..c.n0 {
            let xs = &x[s * 2..s * 2 + 2];
            let mut qs = [0.0; 2];
            let mut fs = [0.0; 2];
            circuitdae::Dae::eval_q(&vdp, xs, &mut qs);
            circuitdae::Dae::eval_f(&vdp, xs, &mut fs);
            assert_eq!(&q[s * 2..s * 2 + 2], &qs);
            assert_eq!(&f[s * 2..s * 2 + 2], &fs);
        }
    }

    #[test]
    fn extract_var_pulls_column() {
        let c = Colloc::new(2, 1);
        let x = [1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        assert_eq!(c.extract_var(&x, 0), vec![1.0, 2.0, 3.0]);
        assert_eq!(c.extract_var(&x, 1), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic]
    fn phase_row_rejects_dc() {
        let c = Colloc::new(1, 2);
        let _ = c.phase_row(0, 0);
    }
}
