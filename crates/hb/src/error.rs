//! Error type for harmonic-balance solves.

use std::fmt;

/// Errors from harmonic-balance analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum HbError {
    /// The Newton iteration on the collocated system failed.
    Newton(transim::TransimError),
    /// Invalid configuration.
    BadInput(String),
}

impl fmt::Display for HbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbError::Newton(e) => write!(f, "harmonic balance newton: {e}"),
            HbError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for HbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HbError::Newton(e) => Some(e),
            HbError::BadInput(_) => None,
        }
    }
}

impl From<transim::TransimError> for HbError {
    fn from(e: transim::TransimError) -> Self {
        HbError::Newton(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(HbError::BadInput("x".into()).to_string().contains("x"));
    }
}
