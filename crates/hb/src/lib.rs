//! Harmonic balance: periodic steady state in the frequency domain.
//!
//! Harmonic balance (Nakhla & Vlach \[NV76\]; Kundert et al.) expands the
//! periodic solution in a truncated Fourier series and collocates the DAE
//! at `N0 = 2M+1` uniform samples of the normalised period. It is one of
//! the two classical steady-state baselines the paper discusses (the other
//! being shooting) — applicable to forced circuits and, with an explicit
//! frequency unknown plus a phase condition, to free-running oscillators;
//! but *not* to forced oscillators with FM-quasiperiodic response, which is
//! exactly the gap the WaMPDE fills.
//!
//! The [`colloc::Colloc`] core (sample layout, spectral differentiation,
//! block Jacobian assembly, phase row) is shared with the `wampde` crate:
//! the WaMPDE time-stepper is harmonic balance along the warped axis plus
//! a time discretisation along the slow axis.

pub mod colloc;
pub mod error;
pub mod solve;

pub use colloc::Colloc;
pub use error::HbError;
pub use solve::{solve_autonomous, solve_forced, HbOptions, HbSolution};
