//! Forced and autonomous harmonic-balance solvers.

use crate::colloc::Colloc;
use crate::error::HbError;
use circuitdae::Dae;
use fourier::FourierSeries;
use linsolve::JacobianParts;
use numkit::DMat;
use sparsekit::Triplets;
use transim::{newton_solve, NewtonOptions, NonlinearSystem};

/// Options for the harmonic-balance solvers.
#[derive(Debug, Clone, Copy)]
pub struct HbOptions {
    /// Number of harmonics `M` (collocation uses `2M+1` samples).
    pub harmonics: usize,
    /// Inner Newton options.
    pub newton: NewtonOptions,
    /// Phase-condition variable `k` (autonomous only).
    pub phase_var: usize,
    /// Phase-condition harmonic `l ≥ 1` (autonomous only).
    pub phase_harmonic: usize,
}

impl Default for HbOptions {
    fn default() -> Self {
        HbOptions {
            harmonics: 8,
            newton: NewtonOptions::default(),
            phase_var: 0,
            phase_harmonic: 1,
        }
    }
}

/// A periodic steady state from harmonic balance.
#[derive(Debug, Clone)]
pub struct HbSolution {
    /// Collocation core (grid size, differentiation matrix).
    pub colloc: Colloc,
    /// Stacked samples (`n·N0`, sample-major; see [`Colloc::idx`]).
    pub x: Vec<f64>,
    /// Fundamental frequency in hertz.
    pub freq_hz: f64,
    /// Newton iterations used.
    pub iterations: usize,
}

impl HbSolution {
    /// Waveform of variable `i` evaluated at real time `t` by band-limited
    /// interpolation.
    pub fn eval(&self, i: usize, t: f64) -> f64 {
        let samples = self.colloc.extract_var(&self.x, i);
        fourier::trig_interp(&samples, t * self.freq_hz)
    }

    /// Fourier series (over the normalised period) of variable `i`.
    pub fn series(&self, i: usize) -> FourierSeries {
        FourierSeries::from_samples(&self.colloc.extract_var(&self.x, i))
    }

    /// Peak-to-peak amplitude of variable `i` over the collocation grid.
    pub fn amplitude(&self, i: usize) -> f64 {
        let s = self.colloc.extract_var(&self.x, i);
        let max = s.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v));
        let min = s.iter().fold(f64::INFINITY, |m, v| m.min(*v));
        max - min
    }
}

/// Newton system for forced HB: fixed fundamental, unknowns = samples.
struct ForcedSystem<'a, D: Dae + ?Sized> {
    dae: &'a D,
    colloc: &'a Colloc,
    freq_hz: f64,
    /// Forcing evaluated at the collocation times (sample-major).
    b: Vec<f64>,
}

impl<D: Dae + ?Sized> NonlinearSystem for ForcedSystem<'_, D> {
    fn dim(&self) -> usize {
        self.colloc.len()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let (n, len) = (self.colloc.n, self.colloc.len());
        let mut q = vec![0.0; len];
        self.colloc.eval_q_all(self.dae, x, &mut q);
        let mut dq = vec![0.0; len];
        self.colloc.apply_diff(&q, &mut dq);
        self.colloc.eval_f_all(self.dae, x, out);
        for s in 0..self.colloc.n0 {
            for i in 0..n {
                let k = self.colloc.idx(s, i);
                out[k] += self.freq_hz * dq[k] - self.b[k];
            }
        }
    }

    fn jacobian(&self, x: &[f64], out: &mut DMat) {
        assemble_block_jacobian(self.dae, self.colloc, x, self.freq_hz, out, 0);
    }

    fn jacobian_triplets(&self, x: &[f64], out: &mut Triplets) -> bool {
        let (cblocks, gblocks) = circuitdae::jac_blocks(self.dae, x);
        JacobianParts {
            n: self.colloc.n,
            n0: self.colloc.n0,
            dmat: &self.colloc.dmat,
            cblocks: &cblocks,
            gblocks: &gblocks,
            inv_h: 0.0,
            theta: 1.0,
            omega: self.freq_hz,
            border: None,
        }
        .push_triplets(out);
        true
    }
}

/// Newton system for autonomous HB: unknowns = samples + frequency; the
/// final row is the phase condition.
struct AutonomousSystem<'a, D: Dae + ?Sized> {
    dae: &'a D,
    colloc: &'a Colloc,
    b0: Vec<f64>,
    phase_row: &'a [f64],
}

impl<D: Dae + ?Sized> NonlinearSystem for AutonomousSystem<'_, D> {
    fn dim(&self) -> usize {
        self.colloc.len() + 1
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let len = self.colloc.len();
        let freq = x[len];
        let xs = &x[..len];
        let mut q = vec![0.0; len];
        self.colloc.eval_q_all(self.dae, xs, &mut q);
        let mut dq = vec![0.0; len];
        self.colloc.apply_diff(&q, &mut dq);
        self.colloc.eval_f_all(self.dae, xs, &mut out[..len]);
        for s in 0..self.colloc.n0 {
            for i in 0..self.colloc.n {
                let k = self.colloc.idx(s, i);
                out[k] += freq * dq[k] - self.b0[i];
            }
        }
        out[len] = self
            .phase_row
            .iter()
            .zip(xs.iter())
            .map(|(a, b)| a * b)
            .sum();
    }

    fn jacobian(&self, x: &[f64], out: &mut DMat) {
        let len = self.colloc.len();
        let freq = x[len];
        let xs = &x[..len];
        assemble_block_jacobian(self.dae, self.colloc, xs, freq, out, 1);
        // ∂r/∂ω column: (D·q)(t1_s).
        let mut q = vec![0.0; len];
        self.colloc.eval_q_all(self.dae, xs, &mut q);
        let mut dq = vec![0.0; len];
        self.colloc.apply_diff(&q, &mut dq);
        for k in 0..len {
            out[(k, len)] = dq[k];
        }
        // Phase row; ∂phase/∂ω = 0.
        for k in 0..len {
            out[(len, k)] = self.phase_row[k];
        }
        out[(len, len)] = 0.0;
    }

    fn jacobian_triplets(&self, x: &[f64], out: &mut Triplets) -> bool {
        let len = self.colloc.len();
        let freq = x[len];
        let xs = &x[..len];
        let (cblocks, gblocks) = circuitdae::jac_blocks(self.dae, xs);
        // ∂r/∂ω column: (D·q)(t1_s).
        let mut q = vec![0.0; len];
        self.colloc.eval_q_all(self.dae, xs, &mut q);
        let mut dq = vec![0.0; len];
        self.colloc.apply_diff(&q, &mut dq);
        JacobianParts {
            n: self.colloc.n,
            n0: self.colloc.n0,
            dmat: &self.colloc.dmat,
            cblocks: &cblocks,
            gblocks: &gblocks,
            inv_h: 0.0,
            theta: 1.0,
            omega: freq,
            border: Some((self.phase_row, &dq)),
        }
        .push_triplets(out);
        true
    }
}

/// Assembles the collocation Jacobian
/// `J[s,s'] = δ_{ss'}·G_s + ω·D[s][s']·C_{s'}` into the top-left block of
/// `out` (which may be `pad` rows/cols larger for border rows).
fn assemble_block_jacobian<D: Dae + ?Sized>(
    dae: &D,
    colloc: &Colloc,
    x: &[f64],
    freq: f64,
    out: &mut DMat,
    _pad: usize,
) {
    let n = colloc.n;
    out.fill_zero();
    // Per-sample C and G blocks.
    let mut cblocks = Vec::with_capacity(colloc.n0);
    let mut g = DMat::zeros(n, n);
    for s in 0..colloc.n0 {
        let xs = &x[s * n..(s + 1) * n];
        let mut c = DMat::zeros(n, n);
        dae.jac_q(xs, &mut c);
        cblocks.push(c);
        dae.jac_f(xs, &mut g);
        for i in 0..n {
            for j in 0..n {
                out[(colloc.idx(s, i), colloc.idx(s, j))] += g[(i, j)];
            }
        }
    }
    for s in 0..colloc.n0 {
        for sp in 0..colloc.n0 {
            let d = freq * colloc.dmat[(s, sp)];
            if d == 0.0 {
                continue;
            }
            let c = &cblocks[sp];
            for i in 0..n {
                for j in 0..n {
                    out[(colloc.idx(s, i), colloc.idx(sp, j))] += d * c[(i, j)];
                }
            }
        }
    }
}

/// Solves the periodic steady state of a *forced* circuit whose response
/// locks to the forcing fundamental `freq_hz`.
///
/// `init` optionally provides stacked starting samples (defaults to the
/// DC operating point replicated across the grid).
///
/// # Errors
///
/// [`HbError::BadInput`] for inconsistent sizes; [`HbError::Newton`] when
/// the collocated Newton fails.
pub fn solve_forced<D: Dae + ?Sized>(
    dae: &D,
    freq_hz: f64,
    init: Option<&[f64]>,
    opts: &HbOptions,
) -> Result<HbSolution, HbError> {
    let _sp = obskit::span_with("hb", &[("mode", obskit::AttrValue::Str("forced"))]);
    // `partial_cmp` keeps the NaN-rejecting behavior of `!(f > 0.0)`.
    if freq_hz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(HbError::BadInput(
            "forcing frequency must be positive".into(),
        ));
    }
    let colloc = Colloc::new(dae.dim(), opts.harmonics);
    let len = colloc.len();

    // Forcing at collocation times t_s = s/(N0·f).
    let mut b = vec![0.0; len];
    let mut bs = vec![0.0; colloc.n];
    for s in 0..colloc.n0 {
        let t = colloc.t1(s) / freq_hz;
        dae.eval_b(t, &mut bs);
        b[s * colloc.n..(s + 1) * colloc.n].copy_from_slice(&bs);
    }

    let mut x = match init {
        Some(x0) => {
            if x0.len() != len {
                return Err(HbError::BadInput(format!(
                    "init has length {}, expected {len}",
                    x0.len()
                )));
            }
            x0.to_vec()
        }
        None => {
            let dc = transim::dc_operating_point(dae, &opts.newton)?;
            let mut x = vec![0.0; len];
            for s in 0..colloc.n0 {
                x[s * colloc.n..(s + 1) * colloc.n].copy_from_slice(&dc);
            }
            x
        }
    };

    let sys = ForcedSystem {
        dae,
        colloc: &colloc,
        freq_hz,
        b,
    };
    let rep = newton_solve(&sys, &mut x, &opts.newton)?;
    Ok(HbSolution {
        colloc,
        x,
        freq_hz,
        iterations: rep.iterations,
    })
}

/// Solves the periodic steady state of a *free-running* oscillator: the
/// fundamental frequency is an unknown, pinned by the phase condition
/// `Im{X̂ᵏ_l} = 0` (paper eq. (20)).
///
/// The initial guess (stacked samples + frequency) must be roughly on the
/// limit cycle — use `shooting::oscillator_steady_state` +
/// `PeriodicOrbit::resample_uniform` to obtain one. (Like all oscillator
/// steady-state solvers, autonomous HB has the trivial equilibrium as a
/// spurious attractor of Newton when started from nothing.)
///
/// # Errors
///
/// See [`HbError`].
pub fn solve_autonomous<D: Dae + ?Sized>(
    dae: &D,
    init_samples: &[Vec<f64>],
    init_freq_hz: f64,
    opts: &HbOptions,
) -> Result<HbSolution, HbError> {
    let _sp = obskit::span_with("hb", &[("mode", obskit::AttrValue::Str("autonomous"))]);
    let colloc = Colloc::new(dae.dim(), opts.harmonics);
    if init_samples.len() != colloc.n0 {
        return Err(HbError::BadInput(format!(
            "need {} initial samples, got {}",
            colloc.n0,
            init_samples.len()
        )));
    }
    if init_freq_hz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(HbError::BadInput(
            "initial frequency must be positive".into(),
        ));
    }
    let len = colloc.len();
    let mut x = vec![0.0; len + 1];
    for (s, row) in init_samples.iter().enumerate() {
        if row.len() != colloc.n {
            return Err(HbError::BadInput("initial sample has wrong width".into()));
        }
        x[s * colloc.n..(s + 1) * colloc.n].copy_from_slice(row);
    }
    x[len] = init_freq_hz;

    let mut b0 = vec![0.0; colloc.n];
    dae.eval_b(0.0, &mut b0);
    let phase_row = colloc.phase_row(opts.phase_var, opts.phase_harmonic);
    let sys = AutonomousSystem {
        dae,
        colloc: &colloc,
        b0,
        phase_row: &phase_row,
    };
    let rep = newton_solve(&sys, &mut x, &opts.newton)?;
    let freq_hz = x[len];
    x.truncate(len);
    Ok(HbSolution {
        colloc,
        x,
        freq_hz,
        iterations: rep.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::analytic::{LinearOscillator, VanDerPol};
    use circuitdae::{circuits, Circuit, Device, Waveform};
    use shooting::{oscillator_steady_state, ShootingOptions};

    #[test]
    fn forced_rc_filter_matches_analytic() {
        // Sine current into parallel RC: |V| = I·R/\sqrt{1+(ωRC)²}.
        let (r, c, f, i0) = (1.0e3, 1.0e-6, 200.0, 1.0e-3);
        let mut ckt = Circuit::new();
        let n = ckt.node("out");
        ckt.add(Device::resistor(n, Circuit::GND, r));
        ckt.add(Device::capacitor(n, Circuit::GND, c));
        ckt.add(Device::current_source(
            Circuit::GND,
            n,
            Waveform::sine(0.0, i0, f),
        ));
        let dae = ckt.build().unwrap();
        let sol = solve_forced(&dae, f, None, &HbOptions::default()).unwrap();
        let w = 2.0 * std::f64::consts::PI * f;
        let want_amp = i0 * r / (1.0 + (w * r * c).powi(2)).sqrt();
        // True sinusoid amplitude from the fundamental coefficient (the
        // sample max under-reads a sine between grid points).
        let got_amp = 2.0 * sol.series(0).coeff(1).abs();
        assert!(
            (got_amp - want_amp).abs() / want_amp < 1e-6,
            "amp {got_amp} vs {want_amp}"
        );
    }

    #[test]
    fn forced_linear_oscillator_resonance_phase() {
        // Forced at resonance, displacement lags forcing by 90°: response
        // is ∝ −cos when forcing is sin.
        let osc = LinearOscillator {
            omega: 2.0 * std::f64::consts::PI,
            zeta: 0.1,
            amplitude: 1.0,
            freq_hz: 1.0,
        };
        let sol = solve_forced(&osc, 1.0, None, &HbOptions::default()).unwrap();
        let series = sol.series(0);
        let c1 = series.coeff(1);
        // x(t) = 2|c1| cos(2πt + arg c1); 90° lag from sin forcing means
        // arg ≈ π (−cos) for the displacement of a resonant 2nd-order system.
        let lag = c1.arg().abs();
        assert!(
            (lag - std::f64::consts::PI).abs() < 0.1,
            "phase {lag} (c1 = {c1})"
        );
    }

    #[test]
    fn autonomous_vdp_matches_shooting() {
        let vdp = VanDerPol::unforced(0.5);
        let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();
        let opts = HbOptions {
            harmonics: 10,
            ..Default::default()
        };
        let init = orbit.resample_uniform(2 * opts.harmonics + 1);
        let sol = solve_autonomous(&vdp, &init, orbit.frequency(), &opts).unwrap();
        let rel = (sol.freq_hz - orbit.frequency()).abs() / orbit.frequency();
        assert!(
            rel < 1e-4,
            "HB {} vs shooting {}",
            sol.freq_hz,
            orbit.frequency()
        );
        // Amplitude ≈ 2 (peak-to-peak 4).
        assert!((sol.amplitude(0) - 4.0).abs() < 0.1);
    }

    #[test]
    fn autonomous_lc_vco_frequency() {
        let dae = circuits::lc_vco();
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let opts = HbOptions {
            harmonics: 8,
            ..Default::default()
        };
        let init = orbit.resample_uniform(2 * opts.harmonics + 1);
        let sol = solve_autonomous(&dae, &init, orbit.frequency(), &opts).unwrap();
        assert!(
            (sol.freq_hz - 0.75e6).abs() / 0.75e6 < 0.02,
            "freq {}",
            sol.freq_hz
        );
        // Phase condition holds at the solution.
        let pv = sol.colloc.phase_value(&sol.x, 0, 1);
        assert!(pv.abs() < 1e-9, "phase residual {pv}");
    }

    #[test]
    fn forced_hb_sparse_backend_matches_dense() {
        let (r, c, f, i0) = (1.0e3, 1.0e-6, 200.0, 1.0e-3);
        let mut ckt = Circuit::new();
        let n = ckt.node("out");
        ckt.add(Device::resistor(n, Circuit::GND, r));
        ckt.add(Device::capacitor(n, Circuit::GND, c));
        ckt.add(Device::current_source(
            Circuit::GND,
            n,
            Waveform::sine(0.0, i0, f),
        ));
        let dae = ckt.build().unwrap();
        let dense = solve_forced(&dae, f, None, &HbOptions::default()).unwrap();
        for kind in [
            circuitdae::LinearSolverKind::SparseLu,
            circuitdae::LinearSolverKind::gmres_default(),
        ] {
            let opts = HbOptions {
                newton: transim::NewtonOptions {
                    linear_solver: kind,
                    ..Default::default()
                },
                ..Default::default()
            };
            let sol = solve_forced(&dae, f, None, &opts).unwrap();
            for (a, b) in dense.x.iter().zip(sol.x.iter()) {
                assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", kind.label());
            }
        }
    }

    #[test]
    fn autonomous_hb_sparse_backend_matches_dense() {
        // The bordered autonomous system exercises the zero corner
        // diagonal through the sparse backends.
        let vdp = VanDerPol::unforced(0.5);
        let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();
        let base = HbOptions {
            harmonics: 6,
            ..Default::default()
        };
        let init = orbit.resample_uniform(2 * base.harmonics + 1);
        let dense = solve_autonomous(&vdp, &init, orbit.frequency(), &base).unwrap();
        let sparse_opts = HbOptions {
            newton: transim::NewtonOptions {
                linear_solver: circuitdae::LinearSolverKind::SparseLu,
                ..Default::default()
            },
            ..base
        };
        let sparse = solve_autonomous(&vdp, &init, orbit.frequency(), &sparse_opts).unwrap();
        let rel = (dense.freq_hz - sparse.freq_hz).abs() / dense.freq_hz;
        assert!(rel < 1e-9, "{} vs {}", dense.freq_hz, sparse.freq_hz);
    }

    #[test]
    fn bad_inputs_rejected() {
        let vdp = VanDerPol::unforced(0.5);
        assert!(solve_forced(&vdp, -1.0, None, &HbOptions::default()).is_err());
        assert!(solve_forced(&vdp, 1.0, Some(&[0.0; 3]), &HbOptions::default()).is_err());
        assert!(solve_autonomous(&vdp, &[], 1.0, &HbOptions::default()).is_err());
        let bad_freq = vec![vec![0.0; 2]; 17];
        assert!(solve_autonomous(&vdp, &bad_freq, -1.0, &HbOptions::default()).is_err());
    }

    #[test]
    fn eval_interpolates_periodically() {
        let vdp = VanDerPol::unforced(0.3);
        let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();
        let opts = HbOptions::default();
        let init = orbit.resample_uniform(2 * opts.harmonics + 1);
        let sol = solve_autonomous(&vdp, &init, orbit.frequency(), &opts).unwrap();
        let t_period = 1.0 / sol.freq_hz;
        let a = sol.eval(0, 0.3 * t_period);
        let b = sol.eval(0, 1.3 * t_period);
        assert!((a - b).abs() < 1e-9);
    }
}
