//! A shared core budget for nested parallelism.
//!
//! Two layers of the workspace want threads at once: the sweep service
//! runs `--jobs N` worker threads, and *inside* each job the linear
//! solver can fan out again — parallel BTF block factorisation
//! ([`sparsekit::SparseLu::factor_ordered_threads`]), parallel
//! circulant-mode LUs ([`crate::BlockCirculantPrecond`]), partitioned
//! SpMV, and partitioned stamping. Letting every layer size itself
//! independently oversubscribes the machine (`N × M` threads on `P`
//! cores); serialising the inner layer wastes the cores a narrow sweep
//! leaves idle.
//!
//! [`CoreBudget`] arbitrates: one handle per process (created by the
//! sweep executor, or by any standalone driver) tracks `total` cores
//! and the number currently claimed. Sweep workers claim their baseline
//! core via [`CoreBudget::occupy`]; each solve-time parallel section
//! takes a [`CoreLease`] that grabs however many *extra* cores are
//! still free (up to the per-solve `solver_cap`) and releases them on
//! drop. A chain running alone therefore gets the whole machine, while
//! a sweep wide enough to occupy every core degrades the inner solves
//! to serial — no oversubscription, no idle cores.
//!
//! Leases are intentionally *dynamic*: the thread count an individual
//! factorisation sees depends on what else runs at that instant. This
//! is safe because every parallel kernel behind a lease is bitwise
//! identical to its serial form at every thread count (enforced by
//! proptests and the `par-smoke` CI job), so artifacts stay
//! byte-identical for any `--jobs`/`--solver-threads` combination.
//!
//! The handle travels two ways, mirroring [`crate::SharedSymbolic`]:
//! explicitly by value, or ambiently via [`CoreBudget::install`] — the
//! factor paths in this crate pick the ambient handle up through
//! [`CoreBudget::lease_ambient`] at each parallel section.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct BudgetInner {
    /// Cores the budget arbitrates (≥ 1).
    total: usize,
    /// Per-lease ceiling: a single solve never uses more than this many
    /// threads even when more cores are free (`--solver-threads M`).
    solver_cap: usize,
    /// Cores currently claimed (occupations + live lease extras).
    claimed: AtomicUsize,
}

/// A shared, clonable core budget (see the module docs).
#[derive(Debug, Clone)]
pub struct CoreBudget {
    inner: Arc<BudgetInner>,
}

std::thread_local! {
    static AMBIENT_BUDGET: std::cell::RefCell<Option<CoreBudget>> =
        const { std::cell::RefCell::new(None) };
}

impl CoreBudget {
    /// A budget over `total` cores with per-solve cap `solver_cap`.
    /// Both are clamped to at least 1.
    pub fn new(total: usize, solver_cap: usize) -> Self {
        CoreBudget {
            inner: Arc::new(BudgetInner {
                total: total.max(1),
                solver_cap: solver_cap.max(1),
                claimed: AtomicUsize::new(0),
            }),
        }
    }

    /// Total cores the budget arbitrates.
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// The per-solve thread ceiling.
    pub fn solver_cap(&self) -> usize {
        self.inner.solver_cap
    }

    /// Cores currently claimed (diagnostic).
    pub fn claimed(&self) -> usize {
        self.inner.claimed.load(Ordering::Relaxed)
    }

    /// Unconditionally claims `n` cores — the baseline claim of a
    /// worker thread that exists regardless of budget state. Released
    /// when the returned guard drops.
    pub fn occupy(&self, n: usize) -> CoreOccupation {
        self.inner.claimed.fetch_add(n, Ordering::Relaxed);
        CoreOccupation {
            inner: Arc::clone(&self.inner),
            n,
        }
    }

    /// Claims up to `solver_cap − 1` *extra* cores for one parallel
    /// solve section, never exceeding the free budget. The lease's
    /// [`CoreLease::threads`] is `1 + extra` (the calling thread plus
    /// the extras); it is at least 1 and at most `solver_cap`. Extras
    /// return to the budget when the lease drops.
    pub fn lease(&self) -> CoreLease {
        let want_extra = self
            .inner
            .solver_cap
            .min(self.inner.total)
            .saturating_sub(1);
        let mut extra = 0;
        if want_extra > 0 {
            let mut current = self.inner.claimed.load(Ordering::Relaxed);
            loop {
                let free = self.inner.total.saturating_sub(current);
                let take = free.min(want_extra);
                if take == 0 {
                    break;
                }
                match self.inner.claimed.compare_exchange(
                    current,
                    current + take,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        extra = take;
                        break;
                    }
                    Err(now) => current = now,
                }
            }
        }
        CoreLease {
            inner: Some(Arc::clone(&self.inner)),
            extra,
        }
    }

    /// Installs this handle as the thread's ambient budget until the
    /// guard drops; the factor paths of this crate lease from it via
    /// [`CoreBudget::lease_ambient`].
    #[must_use = "the budget is only installed while the guard lives"]
    pub fn install(&self) -> CoreBudgetGuard {
        let previous = AMBIENT_BUDGET.with(|slot| slot.borrow_mut().replace(self.clone()));
        CoreBudgetGuard { previous }
    }

    /// The handle currently installed on this thread, if any.
    pub fn ambient() -> Option<CoreBudget> {
        AMBIENT_BUDGET.with(|slot| slot.borrow().clone())
    }

    /// Leases from the thread's ambient budget. Without an installed
    /// budget the returned lease is inert ([`CoreLease::threads`] is 1),
    /// so call sites need no special casing.
    pub fn lease_ambient() -> CoreLease {
        match Self::ambient() {
            Some(budget) => budget.lease(),
            None => CoreLease {
                inner: None,
                extra: 0,
            },
        }
    }
}

/// RAII guard from [`CoreBudget::install`]; restores the previously
/// installed handle (if any) on drop.
#[derive(Debug)]
pub struct CoreBudgetGuard {
    previous: Option<CoreBudget>,
}

impl Drop for CoreBudgetGuard {
    fn drop(&mut self) {
        AMBIENT_BUDGET.with(|slot| *slot.borrow_mut() = self.previous.take());
    }
}

/// RAII baseline claim from [`CoreBudget::occupy`].
#[derive(Debug)]
pub struct CoreOccupation {
    inner: Arc<BudgetInner>,
    n: usize,
}

impl Drop for CoreOccupation {
    fn drop(&mut self) {
        self.inner.claimed.fetch_sub(self.n, Ordering::Relaxed);
    }
}

/// RAII core lease from [`CoreBudget::lease`] /
/// [`CoreBudget::lease_ambient`]; holds `threads() − 1` extra cores
/// until dropped.
#[derive(Debug)]
pub struct CoreLease {
    inner: Option<Arc<BudgetInner>>,
    extra: usize,
}

impl CoreLease {
    /// Thread count the leased parallel section may use: the calling
    /// thread plus the leased extras.
    pub fn threads(&self) -> usize {
        1 + self.extra
    }
}

impl Drop for CoreLease {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            if self.extra > 0 {
                inner.claimed.fetch_sub(self.extra, Ordering::Relaxed);
            }
        }
    }
}

/// Resolves a user-facing thread-count flag: `0` means "auto" — the
/// machine's [`std::thread::available_parallelism`] (1 when that is
/// unavailable). Used for both `wampde-cli --jobs 0` and
/// `--solver-threads 0`.
pub fn resolve_thread_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_grants_up_to_cap_and_releases() {
        let budget = CoreBudget::new(8, 4);
        let lease = budget.lease();
        assert_eq!(lease.threads(), 4);
        assert_eq!(budget.claimed(), 3);
        drop(lease);
        assert_eq!(budget.claimed(), 0);
    }

    #[test]
    fn occupied_budget_degrades_leases_to_serial() {
        let budget = CoreBudget::new(4, 4);
        let _workers = budget.occupy(4);
        let lease = budget.lease();
        assert_eq!(lease.threads(), 1, "no free cores, solve must be serial");
        assert_eq!(budget.claimed(), 4);
    }

    #[test]
    fn partial_budget_grants_partial_lease() {
        let budget = CoreBudget::new(4, 4);
        let _workers = budget.occupy(2);
        let lease = budget.lease();
        assert_eq!(lease.threads(), 3, "1 baseline + 2 free extras");
        drop(lease);
        assert_eq!(budget.claimed(), 2);
    }

    #[test]
    fn solver_cap_bounds_a_lease_below_free_cores() {
        let budget = CoreBudget::new(16, 2);
        let lease = budget.lease();
        assert_eq!(lease.threads(), 2);
    }

    #[test]
    fn ambient_lease_is_inert_without_install() {
        assert!(CoreBudget::ambient().is_none());
        let lease = CoreBudget::lease_ambient();
        assert_eq!(lease.threads(), 1);
    }

    #[test]
    fn ambient_install_scopes_with_guard() {
        let budget = CoreBudget::new(4, 4);
        {
            let _guard = budget.install();
            assert!(CoreBudget::ambient().is_some());
            let lease = CoreBudget::lease_ambient();
            assert_eq!(lease.threads(), 4);
        }
        assert!(CoreBudget::ambient().is_none());
    }

    #[test]
    fn resolve_zero_is_machine_parallelism() {
        assert_eq!(resolve_thread_count(3), 3);
        let auto = resolve_thread_count(0);
        assert!(auto >= 1);
        assert_eq!(
            auto,
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
    }
}
