//! FFT-diagonalised block-circulant preconditioner for cyclic Jacobians.
//!
//! The quasiperiodic (cyclic) WaMPDE Jacobian is block circulant to a
//! good approximation: slice `m` couples to slices `m−1, m−2` (mod
//! `n1`) through the integrator stencil, and the per-slice blocks vary
//! only as fast as the envelope. A true block-circulant matrix
//! `A_{r,c} = B_{(r−c) mod n1}` is diagonalised by the DFT over the
//! block index (the multirate frequency-domain view of Bittner &
//! Brachtendorf, arXiv:1604.07194): with the convolution theorem,
//!
//! ```text
//! (F ⊗ I) A (F⁻¹ ⊗ I) = diag(M̂_0, …, M̂_{n1−1}),
//! M̂_k = Σ_d B_d · e^{−2πi·k·d/n1},
//! ```
//!
//! so one application of the preconditioner costs `bw` FFTs of length
//! `n1`, `n1` dense complex back-substitutions of size `bw`, and `bw`
//! inverse FFTs — `O(n·log n1 + n·bw)` instead of a growing Krylov
//! space. The preconditioner averages the actual (slice-varying) blocks
//! into their circulant part, which is why GMRES iteration counts stay
//! flat as `n1` grows instead of scaling with it.

use numkit::Complex64;
use sparsekit::{Csr, Precond};

/// Block-cyclic structure hint for a Jacobian: `blocks` diagonal blocks
/// of size `block_dim`, coupled cyclically in the block index.
///
/// Produced by systems that know their own structure (the quasiperiodic
/// WaMPDE cyclic system) and consumed by the
/// [`crate::LinearSolverKind::GmresCirculant`] backend through
/// [`crate::FactorCache::set_cyclic_shape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclicShape {
    /// Number of cyclic blocks (`n1` slow-time slices).
    pub blocks: usize,
    /// Rows per block (slice unknowns + the per-slice frequency).
    pub block_dim: usize,
}

impl CyclicShape {
    /// Total system dimension `blocks · block_dim`.
    pub fn dim(&self) -> usize {
        self.blocks * self.block_dim
    }
}

/// Dense complex LU with partial pivoting (factor once per mode, solve
/// once per preconditioner application).
#[derive(Debug, Clone)]
struct ComplexLu {
    n: usize,
    /// Factors packed in place: `L` (unit diagonal) below, `U` on/above.
    lu: Vec<Complex64>,
    /// `perm[k]` = original row pivoted at step `k`.
    perm: Vec<usize>,
}

impl ComplexLu {
    /// Factors a dense complex matrix in row-major layout. Returns
    /// `None` when a pivot column is entirely (near-)zero.
    fn factor(n: usize, mut a: Vec<Complex64>) -> Option<Self> {
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting on |·|.
            let (mut best, mut best_abs) = (k, a[perm[k] * n + k].abs());
            for (r, &pr) in perm.iter().enumerate().skip(k + 1) {
                let v = a[pr * n + k].abs();
                if v > best_abs {
                    best = r;
                    best_abs = v;
                }
            }
            if best_abs <= 0.0 || !best_abs.is_finite() {
                return None;
            }
            perm.swap(k, best);
            let pk = perm[k];
            let inv_pivot = a[pk * n + k].recip();
            for &pr in perm.iter().skip(k + 1) {
                let l = a[pr * n + k] * inv_pivot;
                a[pr * n + k] = l;
                if l != Complex64::ZERO {
                    for j in k + 1..n {
                        let u = a[pk * n + j];
                        a[pr * n + j] -= l * u;
                    }
                }
            }
        }
        Some(ComplexLu { n, lu: a, perm })
    }

    /// Solves `A·x = b` in place (in permuted order internally).
    fn solve_in_place(&self, b: &mut [Complex64]) {
        let n = self.n;
        let mut y = vec![Complex64::ZERO; n];
        for k in 0..n {
            let mut s = b[self.perm[k]];
            for (j, &yj) in y.iter().enumerate().take(k) {
                s -= self.lu[self.perm[k] * n + j] * yj;
            }
            y[k] = s;
        }
        for k in (0..n).rev() {
            let mut s = y[k];
            for (j, &bj) in b.iter().enumerate().skip(k + 1) {
                s -= self.lu[self.perm[k] * n + j] * bj;
            }
            b[k] = s * self.lu[self.perm[k] * n + k].recip();
        }
    }
}

/// The assembled preconditioner: one dense complex LU per DFT mode of
/// the circulant-averaged block sequence.
#[derive(Debug, Clone)]
pub struct BlockCirculantPrecond {
    n1: usize,
    bw: usize,
    /// Mode solvers; `None` for (rare) singular modes, applied as
    /// identity so the preconditioner stays well defined.
    modes: Vec<Option<ComplexLu>>,
}

impl BlockCirculantPrecond {
    /// Builds the preconditioner from a CSR matrix of the given cyclic
    /// shape by averaging the blocks at each cyclic distance
    /// `d = (block_row − block_col) mod n1` into `B_d`, then factoring
    /// every DFT mode `M̂_k = Σ_d B_d·e^{−2πikd/n1}`.
    ///
    /// Returns `None` when the matrix dimension disagrees with the
    /// shape (the caller should fall back to a structure-agnostic
    /// preconditioner).
    pub fn from_csr(a: &Csr, shape: CyclicShape) -> Option<Self> {
        Self::build(a, shape, 1)
    }

    /// Builds the preconditioner like
    /// [`BlockCirculantPrecond::from_csr`], distributing the mutually
    /// independent per-DFT-mode assemblies and dense complex
    /// factorisations across up to `threads` scoped threads.
    ///
    /// Every mode `k` is assembled and factored by exactly one thread
    /// with the serial loop's operation sequence, into its own
    /// preallocated `modes[k]` slot, so the result is bitwise identical
    /// to [`BlockCirculantPrecond::from_csr`] at every thread count.
    pub fn from_csr_threads(a: &Csr, shape: CyclicShape, threads: usize) -> Option<Self> {
        Self::build(a, shape, threads)
    }

    fn build(a: &Csr, shape: CyclicShape, threads: usize) -> Option<Self> {
        let n1 = shape.blocks;
        let bw = shape.block_dim;
        if n1 == 0 || bw == 0 || a.nrows() != shape.dim() || a.ncols() != shape.dim() {
            return None;
        }
        // Circulant average: B_d[p][q] = (1/n1)·Σ_r A[r·bw+p][((r−d) mod n1)·bw+q].
        let mut bd = vec![0.0_f64; n1 * bw * bw];
        let inv_n1 = 1.0 / n1 as f64;
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            let (br, p) = (i / bw, i % bw);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                let (bc, q) = (j / bw, j % bw);
                let d = (br + n1 - bc) % n1;
                bd[(d * bw + p) * bw + q] += v * inv_n1;
            }
        }
        // Mode matrices via the DFT of the block sequence. Assembling
        // all n1 modes costs n1·(entries of B) complex multiplies; the
        // B_d are sparse in d (stencil depth ≤ 2 for the cyclic
        // Jacobian), so iterate distances with any nonzero block.
        let live: Vec<usize> = (0..n1)
            .filter(|&d| bd[d * bw * bw..(d + 1) * bw * bw].iter().any(|&v| v != 0.0))
            .collect();
        let tau = 2.0 * std::f64::consts::PI / n1 as f64;
        let mut modes: Vec<Option<ComplexLu>> = vec![None; n1];
        let workers = threads.min(n1);
        if workers <= 1 {
            for (k, slot) in modes.iter_mut().enumerate() {
                *slot = Self::factor_mode(bw, tau, k, &bd, &live);
            }
        } else {
            // Contiguous mode ranges, one per thread: each `modes[k]`
            // slot is written by exactly one worker.
            let chunk = n1.div_ceil(workers);
            std::thread::scope(|scope| {
                for (c, slots) in modes.chunks_mut(chunk).enumerate() {
                    let base = c * chunk;
                    let (bd, live) = (&bd, &live);
                    scope.spawn(move || {
                        for (i, slot) in slots.iter_mut().enumerate() {
                            *slot = Self::factor_mode(bw, tau, base + i, bd, live);
                        }
                    });
                }
            });
        }
        Some(BlockCirculantPrecond { n1, bw, modes })
    }

    /// Assembles and factors one DFT mode `M̂_k = Σ_d B_d·e^{−2πikd/n1}`.
    fn factor_mode(bw: usize, tau: f64, k: usize, bd: &[f64], live: &[usize]) -> Option<ComplexLu> {
        let mut m = vec![Complex64::ZERO; bw * bw];
        for &d in live {
            let w = Complex64::cis(-tau * (k as f64) * (d as f64));
            let block = &bd[d * bw * bw..(d + 1) * bw * bw];
            for (slot, &v) in m.iter_mut().zip(block.iter()) {
                if v != 0.0 {
                    *slot += w.scale(v);
                }
            }
        }
        ComplexLu::factor(bw, m)
    }

    /// Number of modes whose solver factored successfully (diagnostic).
    pub fn live_modes(&self) -> usize {
        self.modes.iter().filter(|m| m.is_some()).count()
    }
}

impl Precond for BlockCirculantPrecond {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let (n1, bw) = (self.n1, self.bw);
        // Forward FFT along the block index, one sequence per in-block
        // position p, gathered into per-mode right-hand sides.
        let mut rhs = vec![Complex64::ZERO; n1 * bw]; // [mode][p]
        let mut seq = vec![Complex64::ZERO; n1];
        for p in 0..bw {
            for (r, s) in seq.iter_mut().enumerate() {
                *s = Complex64::new(x[r * bw + p], 0.0);
            }
            let hat = fourier::fft::fft_of_any_len(&seq);
            for (k, h) in hat.iter().enumerate() {
                rhs[k * bw + p] = *h;
            }
        }
        // Decoupled per-mode solves.
        for (k, mode) in self.modes.iter().enumerate() {
            if let Some(lu) = mode {
                lu.solve_in_place(&mut rhs[k * bw..(k + 1) * bw]);
            }
        }
        // Inverse FFT back to the block index; the imaginary parts
        // cancel (conjugate-symmetric modes of a real operator) and are
        // dropped.
        for p in 0..bw {
            for (k, s) in seq.iter_mut().enumerate() {
                *s = rhs[k * bw + p];
            }
            let back = fourier::fft::ifft_of_any_len(&seq);
            for (r, b) in back.iter().enumerate() {
                y[r * bw + p] = b.re;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::Triplets;

    /// Builds an exactly block-circulant matrix from distance blocks.
    fn circulant(n1: usize, bw: usize, dist_blocks: &[(usize, Vec<f64>)]) -> Csr {
        let mut t = Triplets::new(n1 * bw, n1 * bw);
        for r in 0..n1 {
            for &(d, ref block) in dist_blocks {
                let c = (r + n1 - d) % n1;
                for p in 0..bw {
                    for q in 0..bw {
                        let v = block[p * bw + q];
                        if v != 0.0 {
                            t.push(r * bw + p, c * bw + q, v);
                        }
                    }
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn exact_inverse_on_true_circulant() {
        // On an exactly block-circulant matrix the preconditioner IS the
        // inverse (to round-off): P⁻¹(A·x) = x.
        let (n1, bw) = (6, 3);
        let b0 = vec![4.0, 1.0, 0.0, 0.5, 3.0, 0.2, 0.0, 0.1, 5.0];
        let b1 = vec![-1.0, 0.0, 0.2, 0.0, -0.8, 0.0, 0.3, 0.0, -1.2];
        let b2 = vec![0.1, 0.0, 0.0, 0.0, 0.1, 0.0, 0.0, 0.0, 0.1];
        let a = circulant(n1, bw, &[(0, b0), (1, b1), (2, b2)]);
        let shape = CyclicShape {
            blocks: n1,
            block_dim: bw,
        };
        let p = BlockCirculantPrecond::from_csr(&a, shape).unwrap();
        assert_eq!(p.live_modes(), n1);
        let x: Vec<f64> = (0..n1 * bw).map(|i| (0.37 * i as f64).sin()).collect();
        let mut ax = vec![0.0; n1 * bw];
        a.matvec_into(&x, &mut ax);
        let mut back = vec![0.0; n1 * bw];
        p.apply(&ax, &mut back);
        for (got, want) in back.iter().zip(x.iter()) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn non_power_of_two_block_count() {
        // n1 = 7 exercises the Bluestein FFT path.
        let (n1, bw) = (7, 2);
        let b0 = vec![3.0, 0.4, 0.1, 2.0];
        let b1 = vec![-0.5, 0.0, 0.0, -0.5];
        let a = circulant(n1, bw, &[(0, b0), (1, b1)]);
        let shape = CyclicShape {
            blocks: n1,
            block_dim: bw,
        };
        let p = BlockCirculantPrecond::from_csr(&a, shape).unwrap();
        let x: Vec<f64> = (0..n1 * bw).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut ax = vec![0.0; n1 * bw];
        a.matvec_into(&x, &mut ax);
        let mut back = vec![0.0; n1 * bw];
        p.apply(&ax, &mut back);
        for (got, want) in back.iter().zip(x.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = circulant(4, 2, &[(0, vec![1.0, 0.0, 0.0, 1.0])]);
        assert!(BlockCirculantPrecond::from_csr(
            &a,
            CyclicShape {
                blocks: 3,
                block_dim: 2
            }
        )
        .is_none());
    }

    #[test]
    fn gmres_converges_fast_with_circulant_precond() {
        // A perturbed block circulant (slice-varying diagonal blocks):
        // the averaged preconditioner is inexact but close, so GMRES
        // needs only a handful of iterations.
        let (n1, bw) = (16, 2);
        let mut t = Triplets::new(n1 * bw, n1 * bw);
        for r in 0..n1 {
            let wob = 1.0 + 0.1 * (r as f64 * 0.7).sin();
            let prev = (r + n1 - 1) % n1;
            for p in 0..bw {
                t.push(r * bw + p, r * bw + p, 4.0 * wob);
                t.push(r * bw + p, prev * bw + p, -1.0);
            }
            t.push(r * bw, r * bw + 1, 0.5);
        }
        let a = t.to_csr();
        let shape = CyclicShape {
            blocks: n1,
            block_dim: bw,
        };
        let p = BlockCirculantPrecond::from_csr(&a, shape).unwrap();
        let b: Vec<f64> = (0..n1 * bw).map(|i| (0.3 * i as f64).cos()).collect();
        let op = sparsekit::CsrOp::new(&a);
        let res = sparsekit::gmres(
            &op,
            &p,
            &b,
            None,
            &sparsekit::GmresOptions {
                restart: 40,
                max_iters: 200,
                rtol: 1e-10,
                atol: 1e-300,
            },
        )
        .unwrap();
        assert!(
            res.iterations <= 10,
            "expected fast convergence, took {}",
            res.iterations
        );
    }
}
