//! Shared sparse-capable linear-solver layer.
//!
//! Every solver crate in the workspace (transient Newton, shooting,
//! harmonic balance, MPDE, WaMPDE) faces the same inner problem: factor a
//! Jacobian, then back-substitute one or more right-hand sides. This crate
//! owns that step behind one backend switch, [`LinearSolverKind`], so the
//! paper's "iterative linear techniques enable large systems" route
//! (GMRES+ILU(0)) is available to *all* of them, not just the WaMPDE.
//!
//! Two matrix descriptions are supported:
//!
//! * [`JacobianParts`] — the block-structured collocation Jacobian
//!   `J[s,s'] = δ_{ss'}·(inv_h·C_s + θ·G_s) + θ·ω·D[s,s']·C_{s'}`,
//!   optionally bordered by a phase row and an `∂r/∂ω` column. Used by the
//!   WaMPDE envelope, the MPDE, and harmonic balance.
//! * [`NewtonMatrix`] — a plain square Jacobian, dense or in triplet form.
//!   Used by `transim`'s damped Newton, shooting's monodromy chain and
//!   bordered boundary system, and the WaMPDE quasiperiodic cyclic system.
//!
//! Errors are solver-agnostic ([`LinSolveError`]); each consumer maps them
//! into its own error enum (`TransimError::SingularJacobian`,
//! `WampdeError::LinearSolve`, ...).
//!
//! For GMRES, structurally zero diagonal entries (bordered corners, phase
//! rows) are regularised *in the ILU(0) preconditioner only*; the true
//! operator is never modified.
//!
//! # Example
//!
//! Factor a triplet-assembled matrix with the backend of your choice and
//! back-substitute — the same two calls work for `Dense`, `SparseLu`, and
//! `GmresIlu0`:
//!
//! ```
//! use linsolve::{FactoredJacobian, LinearSolverKind, NewtonMatrix};
//! use sparsekit::Triplets;
//!
//! # fn main() -> Result<(), linsolve::LinSolveError> {
//! // [[4, 1], [0, 2]] · x = [10, 4] has the solution x = (2, 2).
//! let mut t = Triplets::new(2, 2);
//! t.push(0, 0, 4.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 1, 2.0);
//! let matrix = NewtonMatrix::Triplets(&t);
//! let lu = FactoredJacobian::factor_matrix(&matrix, LinearSolverKind::SparseLu)?;
//! let mut x = vec![10.0, 4.0];
//! lu.solve_in_place(&mut x)?;
//! assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use numkit::{DMat, DenseLu};
use sparsekit::{gmres, Csr, CsrOp, GmresOptions, Ilu0, OrderingPlan, SparseLu, Triplets};
use std::fmt;

pub mod budget;
pub mod circulant;

pub use budget::{resolve_thread_count, CoreBudget, CoreBudgetGuard, CoreLease, CoreOccupation};
pub use circulant::{BlockCirculantPrecond, CyclicShape};

/// Solver-agnostic linear-solve failure (factorisation or back-solve).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinSolveError {
    /// Human-readable cause from the underlying backend.
    pub cause: String,
}

impl LinSolveError {
    fn new(cause: impl fmt::Display) -> Self {
        LinSolveError {
            cause: cause.to_string(),
        }
    }
}

impl fmt::Display for LinSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear solve failed: {}", self.cause)
    }
}

impl std::error::Error for LinSolveError {}

/// Which linear solver factors a Jacobian.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LinearSolverKind {
    /// Dense LU — simplest, right for small circuits.
    #[default]
    Dense,
    /// Sparse LU (Gilbert–Peierls) on the assembled sparse Jacobian.
    SparseLu,
    /// KLU-class sparse LU: BTF decomposition + per-block AMD ordering +
    /// row equilibration on top of the Gilbert–Peierls kernel (Davis &
    /// Palamadai Natarajan, ACM TOMS 2010) — the right direct solver for
    /// large circuit Jacobians.
    Klu,
    /// Restarted GMRES with ILU(0), per the paper's note on iterative
    /// methods for large systems.
    GmresIlu0 {
        /// Restart length.
        restart: usize,
        /// Iteration cap.
        max_iters: usize,
        /// Relative residual target.
        rtol: f64,
    },
    /// Restarted GMRES with the FFT-diagonalised block-circulant
    /// preconditioner ([`BlockCirculantPrecond`]) — structure-exploiting
    /// for the quasiperiodic cyclic Jacobian. Falls back to ILU(0) when
    /// no [`CyclicShape`] is available (see
    /// [`FactorCache::set_cyclic_shape`]).
    GmresCirculant {
        /// Restart length.
        restart: usize,
        /// Iteration cap.
        max_iters: usize,
        /// Relative residual target.
        rtol: f64,
    },
}

impl LinearSolverKind {
    /// The GMRES backend at its recommended defaults (restart 60, 1000
    /// iterations, relative residual 1e-10 — tight enough that sparse and
    /// dense solver paths agree to solver tolerances).
    pub fn gmres_default() -> Self {
        LinearSolverKind::GmresIlu0 {
            restart: 60,
            max_iters: 1000,
            rtol: 1e-10,
        }
    }

    /// The circulant-preconditioned GMRES backend at the same defaults
    /// as [`LinearSolverKind::gmres_default`].
    pub fn gmres_circulant_default() -> Self {
        LinearSolverKind::GmresCirculant {
            restart: 60,
            max_iters: 1000,
            rtol: 1e-10,
        }
    }

    /// Parses a backend name (`dense`, `sparselu`, `klu`, `gmres`,
    /// `gmres-circulant`), as used by the `.options solver=` deck
    /// directive and `wampde-cli --solver`. The GMRES names select their
    /// recommended defaults.
    pub fn parse(token: &str) -> Option<Self> {
        match token.to_ascii_lowercase().as_str() {
            "dense" => Some(LinearSolverKind::Dense),
            "sparselu" => Some(LinearSolverKind::SparseLu),
            "klu" => Some(LinearSolverKind::Klu),
            "gmres" => Some(LinearSolverKind::gmres_default()),
            "gmres-circulant" => Some(LinearSolverKind::gmres_circulant_default()),
            _ => None,
        }
    }

    /// Short backend name for labels and artifact records.
    pub fn label(&self) -> &'static str {
        match self {
            LinearSolverKind::Dense => "dense",
            LinearSolverKind::SparseLu => "sparselu",
            LinearSolverKind::Klu => "klu",
            LinearSolverKind::GmresIlu0 { .. } => "gmres",
            LinearSolverKind::GmresCirculant { .. } => "gmres-circulant",
        }
    }

    /// Exhaustive, bit-exact serialisation of the backend choice, used
    /// by the sweep service's content-hashed cache keys. Numeric fields
    /// are rendered as the hex of their IEEE-754 bit pattern, so two
    /// kinds fingerprint equal iff they solve identically.
    pub fn fingerprint(&self) -> String {
        match self {
            LinearSolverKind::Dense => "dense".into(),
            LinearSolverKind::SparseLu => "sparselu".into(),
            LinearSolverKind::Klu => "klu".into(),
            LinearSolverKind::GmresIlu0 {
                restart,
                max_iters,
                rtol,
            } => format!(
                "gmres(restart={restart},max_iters={max_iters},rtol={:016x})",
                rtol.to_bits()
            ),
            LinearSolverKind::GmresCirculant {
                restart,
                max_iters,
                rtol,
            } => format!(
                "gmres-circulant(restart={restart},max_iters={max_iters},rtol={:016x})",
                rtol.to_bits()
            ),
        }
    }
}

/// Assembly-ready description of one (optionally bordered) block
/// collocation Jacobian
///
/// ```text
/// J[s,s'] = δ_{ss'}·(inv_h·C_s + θ·G_s) + θ·ω·D[s,s']·C_{s'}
/// ```
///
/// with `N0` samples of block size `n` in the sample-major layout
/// `idx(s, i) = s·n + i`. Setting `inv_h = 0, θ = 1` yields the harmonic
/// balance Jacobian; `ω = f1` the MPDE step Jacobian; the WaMPDE envelope
/// uses the full form plus the phase/frequency border.
pub struct JacobianParts<'a> {
    /// Block size (the DAE dimension).
    pub n: usize,
    /// Sample count along the periodic axis (`N0 = 2M+1`).
    pub n0: usize,
    /// Spectral differentiation matrix (`N0 × N0`).
    pub dmat: &'a DMat,
    /// Per-sample `C_s = ∂q/∂x`.
    pub cblocks: &'a [DMat],
    /// Per-sample `G_s = ∂f/∂x`.
    pub gblocks: &'a [DMat],
    /// Coefficient of `C_s` on the diagonal (`1/h`, or `a0/h`; `0` for
    /// steady-state problems).
    pub inv_h: f64,
    /// Weight of the instantaneous terms (1 for BE, ½ for trapezoidal).
    pub theta: f64,
    /// Current local frequency (Hz).
    pub omega: f64,
    /// Optional border: (phase row, `∂r/∂ω` column), both of length
    /// `n·n0`; the corner entry is zero.
    pub border: Option<(&'a [f64], &'a [f64])>,
}

impl JacobianParts<'_> {
    /// Unbordered system size `n·N0`.
    pub fn len(&self) -> usize {
        self.n * self.n0
    }

    /// True only for degenerate empty systems (kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total system dimension including the border.
    pub fn dim(&self) -> usize {
        self.len() + usize::from(self.border.is_some())
    }

    /// Flat index of variable `i` at sample `s`.
    #[inline]
    fn idx(&self, s: usize, i: usize) -> usize {
        s * self.n + i
    }

    /// Assembles the full dense matrix.
    pub fn assemble_dense(&self) -> DMat {
        let mut jac = DMat::zeros(self.dim(), self.dim());
        self.assemble_dense_into(&mut jac);
        jac
    }

    /// Assembles into a caller-provided `dim() × dim()` buffer (zeroed
    /// first) — the allocation-free path for Newton engines that stamp
    /// the same system every iteration.
    ///
    /// # Panics
    ///
    /// Panics when `jac` has the wrong shape.
    pub fn assemble_dense_into(&self, jac: &mut DMat) {
        assert_eq!(jac.nrows(), self.dim(), "assemble_dense_into: shape");
        assert_eq!(jac.ncols(), self.dim(), "assemble_dense_into: shape");
        jac.fill_zero();
        let len = self.len();
        let n = self.n;
        for s in 0..self.n0 {
            let g = &self.gblocks[s];
            let c = &self.cblocks[s];
            for i in 0..n {
                for j in 0..n {
                    jac[(self.idx(s, i), self.idx(s, j))] +=
                        self.inv_h * c[(i, j)] + self.theta * g[(i, j)];
                }
            }
        }
        for s in 0..self.n0 {
            for sp in 0..self.n0 {
                let d = self.theta * self.omega * self.dmat[(s, sp)];
                if d == 0.0 {
                    continue;
                }
                let c = &self.cblocks[sp];
                for i in 0..n {
                    for j in 0..n {
                        jac[(self.idx(s, i), self.idx(sp, j))] += d * c[(i, j)];
                    }
                }
            }
        }
        if let Some((row, col)) = self.border {
            for k in 0..len {
                jac[(len, k)] = row[k];
                jac[(k, len)] = col[k];
            }
        }
    }

    /// Pushes the nonzero entries into a triplet buffer (duplicates sum on
    /// conversion; the caller provides a `dim() × dim()` buffer).
    pub fn push_triplets(&self, t: &mut Triplets) {
        let len = self.len();
        let n = self.n;
        for s in 0..self.n0 {
            let g = &self.gblocks[s];
            let c = &self.cblocks[s];
            for i in 0..n {
                for j in 0..n {
                    let v = self.inv_h * c[(i, j)] + self.theta * g[(i, j)];
                    if v != 0.0 {
                        t.push(self.idx(s, i), self.idx(s, j), v);
                    }
                }
            }
        }
        for s in 0..self.n0 {
            for sp in 0..self.n0 {
                let d = self.theta * self.omega * self.dmat[(s, sp)];
                if d == 0.0 {
                    continue;
                }
                let c = &self.cblocks[sp];
                for i in 0..n {
                    for j in 0..n {
                        let v = d * c[(i, j)];
                        if v != 0.0 {
                            t.push(self.idx(s, i), self.idx(sp, j), v);
                        }
                    }
                }
            }
        }
        if let Some((row, col)) = self.border {
            for k in 0..len {
                if row[k] != 0.0 {
                    t.push(len, k, row[k]);
                }
                if col[k] != 0.0 {
                    t.push(k, len, col[k]);
                }
            }
        }
    }

    /// Like [`Self::push_triplets`], with the per-sample stamp loops
    /// partitioned across up to `threads` scoped threads.
    ///
    /// Each thread stamps a contiguous range of samples into its own
    /// index-disjoint arenas (one for the diagonal blocks, one for the
    /// `D ⊗ C` cross terms); the arenas are then merged in canonical
    /// serial order — all diagonal stamps in ascending `s`, then all
    /// cross stamps in ascending `s`, then the border — so the entry
    /// sequence, and therefore the [`Triplets::to_csr`]/`to_csc`
    /// results, are bitwise identical to the serial path at every
    /// thread count. Entry *values* are computed by the identical
    /// expressions, just on a different thread.
    pub fn push_triplets_threads(&self, t: &mut Triplets, threads: usize) {
        let workers = threads.min(self.n0);
        if workers <= 1 {
            return self.push_triplets(t);
        }
        let len = self.len();
        let n = self.n;
        let dim = self.dim();
        let chunk = self.n0.div_ceil(workers);
        let ranges: Vec<(usize, usize)> = (0..workers)
            .map(|w| (w * chunk, ((w + 1) * chunk).min(self.n0)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let mut arenas: Vec<(Triplets, Triplets)> = ranges
            .iter()
            .map(|_| (Triplets::new(dim, dim), Triplets::new(dim, dim)))
            .collect();
        std::thread::scope(|scope| {
            let obs = obskit::current();
            for (&(lo, hi), arena) in ranges.iter().zip(arenas.iter_mut()) {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _obs = obs.map(obskit::install_handle);
                    let (diag, cross) = arena;
                    for s in lo..hi {
                        let g = &self.gblocks[s];
                        let c = &self.cblocks[s];
                        for i in 0..n {
                            for j in 0..n {
                                let v = self.inv_h * c[(i, j)] + self.theta * g[(i, j)];
                                if v != 0.0 {
                                    diag.push(self.idx(s, i), self.idx(s, j), v);
                                }
                            }
                        }
                    }
                    for s in lo..hi {
                        for sp in 0..self.n0 {
                            let d = self.theta * self.omega * self.dmat[(s, sp)];
                            if d == 0.0 {
                                continue;
                            }
                            let c = &self.cblocks[sp];
                            for i in 0..n {
                                for j in 0..n {
                                    let v = d * c[(i, j)];
                                    if v != 0.0 {
                                        cross.push(self.idx(s, i), self.idx(sp, j), v);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
        obskit::counter_add("stamp.parallel_partitions", arenas.len() as u64);
        for (diag, _) in &arenas {
            t.append(diag);
        }
        for (_, cross) in &arenas {
            t.append(cross);
        }
        if let Some((row, col)) = self.border {
            for k in 0..len {
                if row[k] != 0.0 {
                    t.push(len, k, row[k]);
                }
                if col[k] != 0.0 {
                    t.push(k, len, col[k]);
                }
            }
        }
    }

    /// The triplet form (allocating convenience over [`Self::push_triplets`]).
    pub fn assemble_triplets(&self) -> Triplets {
        self.assemble_triplets_threads(1)
    }

    /// The triplet form, assembled by [`Self::push_triplets_threads`]
    /// under the given thread count (bitwise identical to
    /// [`Self::assemble_triplets`]).
    pub fn assemble_triplets_threads(&self, threads: usize) -> Triplets {
        let mut t = Triplets::with_capacity(
            self.dim(),
            self.dim(),
            self.n0 * self.n0 * self.n + 4 * self.len(),
        );
        self.push_triplets_threads(&mut t, threads);
        t
    }
}

/// A plain square Newton-style Jacobian in either description.
///
/// The non-collocation consumers (`transim::newton_solve`, shooting's
/// monodromy and bordered boundary systems, the WaMPDE quasiperiodic
/// cyclic matrix) hand their matrix to the backend switch through this.
pub enum NewtonMatrix<'a> {
    /// A dense matrix (converted to sparse form when a sparse backend is
    /// selected; exact zeros define the pattern).
    Dense(&'a DMat),
    /// A triplet-assembled sparse matrix (converted to dense when the
    /// dense backend is selected).
    Triplets(&'a Triplets),
}

impl NewtonMatrix<'_> {
    /// Row count of the described matrix.
    pub fn dim(&self) -> usize {
        match self {
            NewtonMatrix::Dense(m) => m.nrows(),
            NewtonMatrix::Triplets(t) => t.nrows(),
        }
    }

    fn to_triplets(&self) -> Triplets {
        match self {
            NewtonMatrix::Dense(m) => {
                let n = m.nrows();
                let mut t = Triplets::new(n, m.ncols());
                for i in 0..n {
                    for j in 0..m.ncols() {
                        let v = m[(i, j)];
                        if v != 0.0 {
                            t.push(i, j, v);
                        }
                    }
                }
                t
            }
            NewtonMatrix::Triplets(t) => (*t).clone(),
        }
    }
}

/// A factored (or preconditioned) Jacobian ready for repeated solves.
#[derive(Debug)]
pub enum FactoredJacobian {
    /// Dense LU factors.
    Dense(DenseLu),
    /// Sparse LU factors.
    Sparse(SparseLu),
    /// Equilibrated CSR operator + ILU(0) preconditioner for GMRES.
    Gmres {
        /// Assembled matrix after row/column equilibration
        /// (`A' = R·A·C`; zero diagonals untouched).
        a: Csr,
        /// Row scales `R` applied to the right-hand side.
        row_scale: Vec<f64>,
        /// Column scales `C` applied to the computed solution.
        col_scale: Vec<f64>,
        /// ILU(0) of the diagonal-regularised equilibrated matrix.
        precond: Ilu0,
        /// Iteration parameters.
        opts: GmresOptions,
    },
    /// Raw CSR operator + block-circulant preconditioner for GMRES on
    /// cyclic (quasiperiodic) Jacobians. No equilibration: the per-mode
    /// solves are exact dense factorisations.
    GmresCyclic {
        /// Assembled matrix, unscaled.
        a: Csr,
        /// The FFT-diagonalised preconditioner.
        precond: BlockCirculantPrecond,
        /// Iteration parameters.
        opts: GmresOptions,
    },
}

/// Builds the structure-exploiting GMRES pair for a cyclic Jacobian:
/// the raw CSR operator preconditioned by [`BlockCirculantPrecond`].
///
/// Falls back to [`factor_gmres`] (ILU(0)) when `shape` is `None` or
/// disagrees with the matrix dimension — the circulant backend then
/// behaves exactly like plain `gmres` rather than failing.
fn factor_gmres_cyclic(
    trip: &Triplets,
    shape: Option<CyclicShape>,
    restart: usize,
    max_iters: usize,
    rtol: f64,
) -> Result<FactoredJacobian, LinSolveError> {
    let a = trip.to_csr();
    if let Some(s) = shape {
        let lease = CoreBudget::lease_ambient();
        let precond = BlockCirculantPrecond::from_csr_threads(&a, s, lease.threads());
        drop(lease);
        if let Some(precond) = precond {
            return Ok(FactoredJacobian::GmresCyclic {
                a,
                precond,
                opts: GmresOptions {
                    restart,
                    max_iters,
                    rtol,
                    atol: 1e-300,
                },
            });
        }
    }
    factor_gmres(trip, restart, max_iters, rtol)
}

/// Runs the KLU symbolic pipeline (BTF + per-block AMD) under the
/// `factor.btf` / `factor.order` spans, then factors through the
/// equilibrated matched-pivot path.
///
/// With `threads > 1` the independent BTF diagonal blocks are factored
/// concurrently ([`SparseLu::factor_ordered_threads`] — bitwise
/// identical to serial), and the `factor.parallel_blocks` counter
/// records how many blocks the parallel-capable path dispatched.
fn factor_klu(csc: &sparsekit::Csc, threads: usize) -> Result<SparseLu, LinSolveError> {
    let form = {
        let _sp = obskit::span("factor.btf");
        sparsekit::btf(csc).map_err(LinSolveError::new)?
    };
    let plan = {
        let _sp = obskit::span("factor.order");
        OrderingPlan::from_btf(csc, &form)
    };
    let lu = if threads > 1 {
        obskit::counter_add("factor.parallel_blocks", plan.nblocks() as u64);
        SparseLu::factor_ordered_threads(csc, &plan, threads)
    } else {
        SparseLu::factor_ordered(csc, &plan)
    }
    .map_err(LinSolveError::new)?;
    if csc.nnz() > 0 {
        obskit::observe("lu.fill_ratio", lu.factor_nnz() as f64 / csc.nnz() as f64);
    }
    Ok(lu)
}

/// Builds the GMRES operator + preconditioner pair from triplets.
///
/// Circuit-style Jacobians mix entries spanning many decades (pF charges
/// next to O(1) phase rows), which wrecks ILU(0) pivots, so the matrix is
/// first max-norm equilibrated: `A' = R·A·C` with `R`/`C` scaling every
/// row then column to unit max magnitude. GMRES solves
/// `A'·y = R·b`, and the solution is recovered as `x = C·y`.
///
/// Rows whose diagonal is structurally missing or exactly zero (bordered
/// corners, phase rows) additionally get a unit diagonal in the
/// *preconditioner* matrix only; the true operator is never modified.
fn factor_gmres(
    trip: &Triplets,
    restart: usize,
    max_iters: usize,
    rtol: f64,
) -> Result<FactoredJacobian, LinSolveError> {
    let mut a = trip.to_csr();
    let n = a.nrows();

    // Max-norm row scales, then column scales of the row-scaled matrix.
    let mut row_scale = vec![1.0_f64; n];
    for (i, rs) in row_scale.iter_mut().enumerate() {
        let (_, vals) = a.row(i);
        let m = vals.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        if m > 0.0 {
            *rs = 1.0 / m;
        }
    }
    let mut col_max = vec![0.0_f64; n.max(a.ncols())];
    for (i, rs) in row_scale.iter().enumerate() {
        let (cols, vals) = a.row(i);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            col_max[c] = col_max[c].max((v * rs).abs());
        }
    }
    let col_scale: Vec<f64> = col_max
        .iter()
        .map(|&m| if m > 0.0 { 1.0 / m } else { 1.0 })
        .collect();
    {
        let indptr = a.indptr().to_vec();
        let indices = a.indices().to_vec();
        let data = a.data_mut();
        for i in 0..n {
            for k in indptr[i]..indptr[i + 1] {
                data[k] *= row_scale[i] * col_scale[indices[k]];
            }
        }
    }

    let zero_diag: Vec<usize> = (0..n).filter(|&i| a.get(i, i) == 0.0).collect();
    let precond_csr = if zero_diag.is_empty() {
        a.clone()
    } else {
        // Rebuild from the *scaled* entries so the unit regularisation is
        // commensurate with the equilibrated rows.
        let mut reg = Triplets::with_capacity(n, a.ncols(), a.nnz() + zero_diag.len());
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                reg.push(i, c, v);
            }
        }
        for &i in &zero_diag {
            reg.push(i, i, 1.0);
        }
        reg.to_csr()
    };
    let precond =
        Ilu0::factor(&precond_csr).map_err(|e| LinSolveError::new(format!("ilu0: {e}")))?;
    Ok(FactoredJacobian::Gmres {
        a,
        row_scale,
        col_scale,
        precond,
        opts: GmresOptions {
            restart,
            max_iters,
            rtol,
            atol: 1e-300,
        },
    })
}

impl FactoredJacobian {
    /// Factors the described collocation Jacobian with the requested
    /// backend.
    ///
    /// # Errors
    ///
    /// [`LinSolveError`] when the factorisation fails.
    pub fn factor(
        parts: &JacobianParts<'_>,
        kind: LinearSolverKind,
    ) -> Result<Self, LinSolveError> {
        match kind {
            LinearSolverKind::Dense => {
                let jac = parts.assemble_dense();
                let lu = DenseLu::factor(&jac).map_err(LinSolveError::new)?;
                Ok(FactoredJacobian::Dense(lu))
            }
            LinearSolverKind::SparseLu => {
                let csc = parts.assemble_triplets().to_csc();
                let lu = SparseLu::factor(&csc).map_err(LinSolveError::new)?;
                Ok(FactoredJacobian::Sparse(lu))
            }
            LinearSolverKind::Klu => {
                // One lease spans stamping and factorisation so the two
                // parallel sections do not double-claim cores.
                let lease = CoreBudget::lease_ambient();
                let csc = parts.assemble_triplets_threads(lease.threads()).to_csc();
                Ok(FactoredJacobian::Sparse(factor_klu(&csc, lease.threads())?))
            }
            LinearSolverKind::GmresIlu0 {
                restart,
                max_iters,
                rtol,
            } => factor_gmres(&parts.assemble_triplets(), restart, max_iters, rtol),
            // The collocation Jacobian is not block cyclic; the circulant
            // backend degrades to ILU(0) here (no shape available).
            LinearSolverKind::GmresCirculant {
                restart,
                max_iters,
                rtol,
            } => factor_gmres(&parts.assemble_triplets(), restart, max_iters, rtol),
        }
    }

    /// Factors a plain square Jacobian with the requested backend,
    /// converting between the dense and triplet descriptions as needed.
    ///
    /// # Errors
    ///
    /// [`LinSolveError`] when the factorisation fails.
    pub fn factor_matrix(
        matrix: &NewtonMatrix<'_>,
        kind: LinearSolverKind,
    ) -> Result<Self, LinSolveError> {
        match kind {
            LinearSolverKind::Dense => {
                let lu = match matrix {
                    NewtonMatrix::Dense(m) => DenseLu::factor(m),
                    NewtonMatrix::Triplets(t) => DenseLu::factor(&t.to_dense()),
                }
                .map_err(LinSolveError::new)?;
                Ok(FactoredJacobian::Dense(lu))
            }
            LinearSolverKind::SparseLu => {
                let csc = matrix.to_triplets().to_csc();
                let lu = SparseLu::factor(&csc).map_err(LinSolveError::new)?;
                Ok(FactoredJacobian::Sparse(lu))
            }
            LinearSolverKind::Klu => {
                let csc = matrix.to_triplets().to_csc();
                let lease = CoreBudget::lease_ambient();
                Ok(FactoredJacobian::Sparse(factor_klu(&csc, lease.threads())?))
            }
            LinearSolverKind::GmresIlu0 {
                restart,
                max_iters,
                rtol,
            } => factor_gmres(&matrix.to_triplets(), restart, max_iters, rtol),
            // No cyclic shape travels with a bare matrix; use
            // [`FactorCache::set_cyclic_shape`] to engage the circulant
            // preconditioner. Stateless calls degrade to ILU(0).
            LinearSolverKind::GmresCirculant {
                restart,
                max_iters,
                rtol,
            } => factor_gmres(&matrix.to_triplets(), restart, max_iters, rtol),
        }
    }

    /// System dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        match self {
            FactoredJacobian::Dense(lu) => lu.dim(),
            FactoredJacobian::Sparse(lu) => lu.dim(),
            FactoredJacobian::Gmres { a, .. } => a.nrows(),
            FactoredJacobian::GmresCyclic { a, .. } => a.nrows(),
        }
    }

    /// Solves `J·x = rhs` in place.
    ///
    /// # Errors
    ///
    /// [`LinSolveError`] when the backend fails (e.g. GMRES stagnates).
    pub fn solve_in_place(&self, rhs: &mut [f64]) -> Result<(), LinSolveError> {
        match self {
            FactoredJacobian::Dense(lu) => lu.solve_in_place(rhs).map_err(LinSolveError::new),
            FactoredJacobian::Sparse(lu) => lu.solve_in_place(rhs).map_err(LinSolveError::new),
            FactoredJacobian::Gmres {
                a,
                row_scale,
                col_scale,
                precond,
                opts,
            } => {
                let b: Vec<f64> = rhs
                    .iter()
                    .zip(row_scale.iter())
                    .map(|(v, s)| v * s)
                    .collect();
                let lease = CoreBudget::lease_ambient();
                let op = CsrOp::with_threads(a, lease.threads());
                let result = gmres(&op, precond, &b, None, opts).map_err(LinSolveError::new)?;
                for (slot, (y, s)) in rhs.iter_mut().zip(result.x.iter().zip(col_scale.iter())) {
                    *slot = y * s;
                }
                Ok(())
            }
            FactoredJacobian::GmresCyclic { a, precond, opts } => {
                let lease = CoreBudget::lease_ambient();
                let op = CsrOp::with_threads(a, lease.threads());
                let result = gmres(&op, precond, rhs, None, opts).map_err(LinSolveError::new)?;
                rhs.copy_from_slice(&result.x);
                Ok(())
            }
        }
    }
}

/// A batch-shared pool of sparse symbolic analyses.
///
/// Sweep jobs over one circuit share a sparsity pattern, so the
/// BTF + AMD ordering and Gilbert–Peierls symbolic structure computed by
/// the first job can seed every later one: a [`FactorCache`] holding a
/// `SharedSymbolic` clones a matching template and performs a
/// numeric-only [`SparseLu::refactor`] instead of a fresh symbolic
/// factorisation. `refactor` is bitwise-identical to factoring fresh
/// (asserted by `repro --table newton`), so sharing never changes a
/// result bit.
///
/// The pool keeps a handful of templates keyed by a cheap
/// `(dim, nnz)` signature — enough to cover the distinct patterns one
/// analysis produces (DC Jacobian vs. time-step Jacobian) without
/// growing unboundedly. `refactor` itself re-validates the full pattern,
/// so a signature collision merely falls through to a fresh
/// factorisation.
///
/// Two ways to wire it in:
///
/// * explicitly, via [`FactorCache::set_shared_symbolic`] /
///   `newtonkit::NewtonEngine::set_shared_symbolic`;
/// * ambiently, via [`SharedSymbolic::install`]: every `FactorCache`
///   created on the thread while the guard lives picks the handle up.
///   Solver entry points build their engines internally (their options
///   structs are `Copy` and cannot carry an `Arc`), so the ambient route
///   is how the sweep executor threads one handle through a whole
///   chain of jobs.
#[derive(Debug, Clone, Default)]
pub struct SharedSymbolic {
    inner: std::sync::Arc<std::sync::Mutex<Vec<SymbolicTemplate>>>,
}

#[derive(Debug)]
struct SymbolicTemplate {
    dim: usize,
    nnz: usize,
    lu: SparseLu,
}

/// At most this many distinct `(dim, nnz)` patterns are retained per
/// handle; later patterns simply factor fresh without being published.
const SHARED_SYMBOLIC_CAP: usize = 4;

std::thread_local! {
    static AMBIENT_SYMBOLIC: std::cell::RefCell<Option<SharedSymbolic>> =
        const { std::cell::RefCell::new(None) };
}

/// RAII guard from [`SharedSymbolic::install`]; restores the previously
/// installed handle (if any) on drop.
#[derive(Debug)]
pub struct SharedSymbolicGuard {
    previous: Option<SharedSymbolic>,
}

impl Drop for SharedSymbolicGuard {
    fn drop(&mut self) {
        AMBIENT_SYMBOLIC.with(|slot| *slot.borrow_mut() = self.previous.take());
    }
}

impl SharedSymbolic {
    /// An empty pool.
    pub fn new() -> Self {
        SharedSymbolic::default()
    }

    /// Installs this handle as the thread's ambient pool until the guard
    /// drops; [`FactorCache::new`] on this thread picks it up.
    #[must_use = "the handle is only installed while the guard lives"]
    pub fn install(&self) -> SharedSymbolicGuard {
        let previous = AMBIENT_SYMBOLIC.with(|slot| slot.borrow_mut().replace(self.clone()));
        SharedSymbolicGuard { previous }
    }

    /// The handle currently installed on this thread, if any.
    pub fn ambient() -> Option<SharedSymbolic> {
        AMBIENT_SYMBOLIC.with(|slot| slot.borrow().clone())
    }

    /// Number of templates currently held (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().map(|t| t.len()).unwrap_or(0)
    }

    /// Whether the pool holds no templates yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A clone of the template matching `csc`'s signature, if one exists.
    fn checkout(&self, csc: &sparsekit::Csc) -> Option<SparseLu> {
        let templates = self.inner.lock().ok()?;
        templates
            .iter()
            .find(|t| t.dim == csc.ncols() && t.nnz == csc.nnz())
            .map(|t| t.lu.clone())
    }

    /// Publishes a freshly factored `lu` for `csc`'s signature unless a
    /// template with that signature (or the cap) is already in place.
    fn publish(&self, csc: &sparsekit::Csc, lu: &SparseLu) {
        if let Ok(mut templates) = self.inner.lock() {
            let sig = (csc.ncols(), csc.nnz());
            if templates.len() < SHARED_SYMBOLIC_CAP
                && !templates.iter().any(|t| (t.dim, t.nnz) == sig)
            {
                templates.push(SymbolicTemplate {
                    dim: sig.0,
                    nnz: sig.1,
                    lu: lu.clone(),
                });
            }
        }
    }
}

/// Counters accumulated by a [`FactorCache`] across factorisations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactorStats {
    /// Total factorisations performed (any backend).
    pub factorisations: usize,
    /// Factorisations that reused the cached symbolic analysis
    /// (sparse-LU numeric-only refactorisation).
    pub symbolic_reuses: usize,
    /// Sparse factorisations that had to redo symbolic analysis because
    /// the sparsity pattern changed or the cached pivots went stale.
    pub pattern_rebuilds: usize,
}

/// A stateful factor-then-solve cache for Newton-style iterations.
///
/// Newton re-factors the same sparsity pattern every iteration (and, in
/// time-stepping solvers, every step), so on the [`LinearSolverKind::SparseLu`]
/// backend the cache keeps the previous [`SparseLu`] and performs a
/// numeric-only [`SparseLu::refactor`] whenever the incoming pattern
/// matches — skipping the symbolic reachability analysis. A pattern
/// change (or a stale-pivot failure) transparently falls back to a fresh
/// factorisation and is counted in [`FactorStats::pattern_rebuilds`].
///
/// Dense LU and GMRES+ILU(0) have no symbolic phase worth caching; they
/// factor fresh each call (still counted in
/// [`FactorStats::factorisations`]).
#[derive(Debug)]
pub struct FactorCache {
    kind: LinearSolverKind,
    reuse: bool,
    factored: Option<FactoredJacobian>,
    cyclic: Option<CyclicShape>,
    shared: Option<SharedSymbolic>,
    stats: FactorStats,
}

impl FactorCache {
    /// A cache factoring through `kind`, with symbolic reuse enabled.
    ///
    /// Adopts the thread's ambient [`SharedSymbolic`] pool when one is
    /// installed (see [`SharedSymbolic::install`]).
    pub fn new(kind: LinearSolverKind) -> Self {
        FactorCache {
            kind,
            reuse: true,
            factored: None,
            cyclic: None,
            shared: SharedSymbolic::ambient(),
            stats: FactorStats::default(),
        }
    }

    /// Attaches (or detaches) a batch-shared symbolic pool, overriding
    /// whatever ambient handle [`FactorCache::new`] adopted.
    pub fn set_shared_symbolic(&mut self, shared: Option<SharedSymbolic>) {
        self.shared = shared;
    }

    /// Enables/disables symbolic reuse (ablation knob; on by default).
    pub fn set_reuse(&mut self, reuse: bool) {
        self.reuse = reuse;
    }

    /// Declares the block-cyclic structure of incoming matrices, letting
    /// the [`LinearSolverKind::GmresCirculant`] backend build its
    /// structure-exploiting preconditioner. `None` (the default) makes
    /// that backend fall back to ILU(0). Other backends ignore the hint.
    pub fn set_cyclic_shape(&mut self, shape: Option<CyclicShape>) {
        self.cyclic = shape;
    }

    /// The currently declared cyclic structure hint.
    pub fn cyclic_shape(&self) -> Option<CyclicShape> {
        self.cyclic
    }

    /// The configured backend.
    pub fn kind(&self) -> LinearSolverKind {
        self.kind
    }

    /// Switches the backend, dropping any cached factorisation state.
    pub fn set_kind(&mut self, kind: LinearSolverKind) {
        if kind != self.kind {
            self.kind = kind;
            self.factored = None;
        }
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> FactorStats {
        self.stats
    }

    /// Factors the described matrix, reusing cached symbolic analysis on
    /// the sparse-LU backend when the pattern is unchanged.
    ///
    /// # Errors
    ///
    /// [`LinSolveError`] when the factorisation fails.
    pub fn factor_matrix(&mut self, matrix: &NewtonMatrix<'_>) -> Result<(), LinSolveError> {
        let sp = obskit::span("factor");
        self.stats.factorisations += 1;
        if matches!(
            self.kind,
            LinearSolverKind::SparseLu | LinearSolverKind::Klu
        ) {
            // Convert without cloning the triplet buffer: this runs once
            // per Newton iteration on the hot path.
            let csc = match matrix {
                NewtonMatrix::Triplets(t) => t.to_csc(),
                NewtonMatrix::Dense(_) => matrix.to_triplets().to_csc(),
            };
            if self.reuse {
                if let Some(FactoredJacobian::Sparse(lu)) = &mut self.factored {
                    // The ordering plan lives inside the cached factors,
                    // so numeric-only refactorisation is identical for
                    // the plain and KLU-ordered paths.
                    if lu.refactor(&csc).is_ok() {
                        self.stats.symbolic_reuses += 1;
                        sp.attr("mode", "reused");
                        obskit::counter_add("factor.reused", 1);
                        return Ok(());
                    }
                    self.stats.pattern_rebuilds += 1;
                    obskit::counter_add("factor.rebuilds", 1);
                }
                // First factorisation in this cache: a batch pool may
                // already hold the symbolic analysis for this pattern.
                // `refactor` re-validates the pattern and is bitwise-
                // identical to a fresh factor, so this is a pure skip of
                // the symbolic phase; a mismatch falls through to fresh.
                if self.factored.is_none() {
                    if let Some(shared) = &self.shared {
                        if let Some(mut lu) = shared.checkout(&csc) {
                            if lu.refactor(&csc).is_ok() {
                                self.stats.symbolic_reuses += 1;
                                self.factored = Some(FactoredJacobian::Sparse(lu));
                                sp.attr("mode", "shared");
                                obskit::counter_add("batch.symbolic_reuses", 1);
                                return Ok(());
                            }
                        }
                    }
                }
            }
            let lu = match self.kind {
                LinearSolverKind::Klu => {
                    let lease = CoreBudget::lease_ambient();
                    factor_klu(&csc, lease.threads())?
                }
                _ => SparseLu::factor(&csc).map_err(LinSolveError::new)?,
            };
            if self.reuse {
                if let Some(shared) = &self.shared {
                    shared.publish(&csc, &lu);
                }
            }
            self.factored = Some(FactoredJacobian::Sparse(lu));
            sp.attr("mode", "fresh");
            obskit::counter_add("factor.fresh", 1);
            return Ok(());
        }
        if let LinearSolverKind::GmresCirculant {
            restart,
            max_iters,
            rtol,
        } = self.kind
        {
            let trip;
            let t = match matrix {
                NewtonMatrix::Triplets(t) => *t,
                NewtonMatrix::Dense(_) => {
                    trip = matrix.to_triplets();
                    &trip
                }
            };
            self.factored = Some(factor_gmres_cyclic(
                t,
                self.cyclic,
                restart,
                max_iters,
                rtol,
            )?);
            sp.attr("mode", "fresh");
            obskit::counter_add("factor.fresh", 1);
            return Ok(());
        }
        self.factored = Some(FactoredJacobian::factor_matrix(matrix, self.kind)?);
        sp.attr("mode", "fresh");
        obskit::counter_add("factor.fresh", 1);
        Ok(())
    }

    /// Solves `J·x = rhs` in place against the most recent factorisation.
    ///
    /// # Errors
    ///
    /// [`LinSolveError`] when nothing has been factored yet or the
    /// backend fails (e.g. GMRES stagnates).
    pub fn solve_in_place(&self, rhs: &mut [f64]) -> Result<(), LinSolveError> {
        let _sp = obskit::span("solve");
        match &self.factored {
            Some(f) => f.solve_in_place(rhs),
            None => Err(LinSolveError::new("no factorisation cached")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small synthetic collocation system: n = 2 blocks over N0 = 5
    /// samples with well-conditioned C/G blocks and a border.
    fn synthetic_parts<'a>(
        dmat: &'a DMat,
        cblocks: &'a [DMat],
        gblocks: &'a [DMat],
    ) -> JacobianParts<'a> {
        JacobianParts {
            n: 2,
            n0: 5,
            dmat,
            cblocks,
            gblocks,
            inv_h: 10.0,
            theta: 0.5,
            omega: 1.3,
            border: None,
        }
    }

    fn synthetic_blocks() -> (DMat, Vec<DMat>, Vec<DMat>) {
        // A circulant-ish differentiation matrix stand-in (exact spectral
        // structure is irrelevant for backend agreement).
        let n0 = 5;
        let dmat = DMat::from_fn(n0, n0, |s, sp| {
            if s == sp {
                0.0
            } else {
                0.5 * ((s as f64 - sp as f64) * 0.7).sin()
            }
        });
        let mut cblocks = Vec::new();
        let mut gblocks = Vec::new();
        for s in 0..n0 {
            let sf = s as f64;
            cblocks.push(DMat::from_rows(&[
                &[2.0 + 0.1 * sf, 0.3],
                &[0.0, 1.5 - 0.05 * sf],
            ]));
            gblocks.push(DMat::from_rows(&[
                &[0.5, -0.2 * sf],
                &[0.1 * sf, 0.8 + 0.02 * sf],
            ]));
        }
        (dmat, cblocks, gblocks)
    }

    #[test]
    fn backends_agree_unbordered() {
        let (dmat, cblocks, gblocks) = synthetic_blocks();
        let parts = synthetic_parts(&dmat, &cblocks, &gblocks);
        let rhs: Vec<f64> = (0..parts.dim())
            .map(|i| ((i * 3 % 7) as f64) - 3.0)
            .collect();

        let mut dense = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::Dense)
            .unwrap()
            .solve_in_place(&mut dense)
            .unwrap();
        let mut sparse = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::SparseLu)
            .unwrap()
            .solve_in_place(&mut sparse)
            .unwrap();
        let mut gm = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::gmres_default())
            .unwrap()
            .solve_in_place(&mut gm)
            .unwrap();
        for i in 0..rhs.len() {
            assert!(
                (dense[i] - sparse[i]).abs() < 1e-9,
                "sparse mismatch at {i}"
            );
            assert!((dense[i] - gm[i]).abs() < 1e-7, "gmres mismatch at {i}");
        }
    }

    #[test]
    fn backends_agree_bordered() {
        let (dmat, cblocks, gblocks) = synthetic_blocks();
        let len = 10;
        let row: Vec<f64> = (0..len)
            .map(|k| if k % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let col: Vec<f64> = (0..len).map(|k| 0.1 + (k as f64 * 0.11).cos()).collect();
        let mut parts = synthetic_parts(&dmat, &cblocks, &gblocks);
        parts.border = Some((&row, &col));
        assert_eq!(parts.dim(), len + 1);
        let rhs: Vec<f64> = (0..parts.dim())
            .map(|i| 1.0 + (i as f64 * 0.3).sin())
            .collect();

        let mut dense = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::Dense)
            .unwrap()
            .solve_in_place(&mut dense)
            .unwrap();
        let mut sparse = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::SparseLu)
            .unwrap()
            .solve_in_place(&mut sparse)
            .unwrap();
        // The bordered corner is structurally zero: the GMRES path must
        // regularise the preconditioner diagonal on its own.
        let mut gm = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::gmres_default())
            .unwrap()
            .solve_in_place(&mut gm)
            .unwrap();
        for i in 0..rhs.len() {
            assert!(
                (dense[i] - sparse[i]).abs() < 1e-9,
                "sparse mismatch at {i}"
            );
            assert!((dense[i] - gm[i]).abs() < 1e-6, "gmres mismatch at {i}");
        }
    }

    #[test]
    fn parallel_assembly_is_bitwise_identical() {
        let (dmat, cblocks, gblocks) = synthetic_blocks();
        let len = 10;
        let row: Vec<f64> = (0..len).map(|k| (k as f64 * 0.4).sin()).collect();
        let col: Vec<f64> = (0..len).map(|k| 0.1 + (k as f64 * 0.11).cos()).collect();
        for bordered in [false, true] {
            let mut parts = synthetic_parts(&dmat, &cblocks, &gblocks);
            if bordered {
                parts.border = Some((&row, &col));
            }
            let serial = parts.assemble_triplets();
            for threads in [2, 3, 7] {
                let parallel = parts.assemble_triplets_threads(threads);
                assert_eq!(parallel.len(), serial.len(), "threads={threads}");
                for ((sr, sc, sv), (pr, pc, pv)) in serial.iter().zip(parallel.iter()) {
                    assert_eq!((sr, sc), (pr, pc), "coordinate order, threads={threads}");
                    assert_eq!(
                        sv.to_bits(),
                        pv.to_bits(),
                        "value bits at ({sr},{sc}), threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn klu_under_installed_budget_matches_serial_bitwise() {
        let (dmat, cblocks, gblocks) = synthetic_blocks();
        let parts = synthetic_parts(&dmat, &cblocks, &gblocks);
        let rhs: Vec<f64> = (0..parts.dim())
            .map(|i| ((i * 5 % 11) as f64) - 4.0)
            .collect();
        let mut serial = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::Klu)
            .unwrap()
            .solve_in_place(&mut serial)
            .unwrap();
        let budget = CoreBudget::new(4, 4);
        let _guard = budget.install();
        let mut leased = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::Klu)
            .unwrap()
            .solve_in_place(&mut leased)
            .unwrap();
        for (s, p) in serial.iter().zip(leased.iter()) {
            assert_eq!(s.to_bits(), p.to_bits(), "budgeted KLU must match serial");
        }
    }

    #[test]
    fn dense_and_triplet_assembly_agree() {
        let (dmat, cblocks, gblocks) = synthetic_blocks();
        let parts = synthetic_parts(&dmat, &cblocks, &gblocks);
        let a = parts.assemble_dense();
        let b = parts.assemble_triplets().to_dense();
        for i in 0..parts.dim() {
            for j in 0..parts.dim() {
                assert!((a[(i, j)] - b[(i, j)]).abs() < 1e-15, "({i},{j})");
            }
        }
    }

    #[test]
    fn factor_matrix_backends_agree() {
        let m = DMat::from_rows(&[
            &[4.0, 1.0, 0.0, 0.5],
            &[1.0, 3.0, 0.2, 0.0],
            &[0.0, 0.2, 5.0, 1.0],
            &[0.5, 0.0, 1.0, 2.0],
        ]);
        let rhs = vec![1.0, -2.0, 0.5, 3.0];
        let mut dense = rhs.clone();
        FactoredJacobian::factor_matrix(&NewtonMatrix::Dense(&m), LinearSolverKind::Dense)
            .unwrap()
            .solve_in_place(&mut dense)
            .unwrap();

        // Same matrix assembled as triplets, solved with every backend.
        let mut t = Triplets::new(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                if m[(i, j)] != 0.0 {
                    t.push(i, j, m[(i, j)]);
                }
            }
        }
        for kind in [
            LinearSolverKind::Dense,
            LinearSolverKind::SparseLu,
            LinearSolverKind::gmres_default(),
        ] {
            let f = FactoredJacobian::factor_matrix(&NewtonMatrix::Triplets(&t), kind).unwrap();
            assert_eq!(f.dim(), 4);
            let mut x = rhs.clone();
            f.solve_in_place(&mut x).unwrap();
            for i in 0..4 {
                assert!((x[i] - dense[i]).abs() < 1e-8, "{}: {i}", kind.label());
            }
        }
        // Dense matrix through the sparse backends too.
        for kind in [
            LinearSolverKind::SparseLu,
            LinearSolverKind::gmres_default(),
        ] {
            let f = FactoredJacobian::factor_matrix(&NewtonMatrix::Dense(&m), kind).unwrap();
            let mut x = rhs.clone();
            f.solve_in_place(&mut x).unwrap();
            for i in 0..4 {
                assert!((x[i] - dense[i]).abs() < 1e-8, "{}: {i}", kind.label());
            }
        }
    }

    #[test]
    fn gmres_regularises_zero_diagonal() {
        // Saddle-point-like matrix with an exactly zero corner diagonal.
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(0, 2, 1.0);
        t.push(2, 0, 1.0);
        t.push(1, 2, 0.5);
        t.push(2, 1, 0.5);
        let rhs = vec![1.0, 2.0, 3.0];
        let mut dense = rhs.clone();
        FactoredJacobian::factor_matrix(&NewtonMatrix::Triplets(&t), LinearSolverKind::Dense)
            .unwrap()
            .solve_in_place(&mut dense)
            .unwrap();
        let mut gm = rhs.clone();
        FactoredJacobian::factor_matrix(
            &NewtonMatrix::Triplets(&t),
            LinearSolverKind::gmres_default(),
        )
        .unwrap()
        .solve_in_place(&mut gm)
        .unwrap();
        for i in 0..3 {
            assert!((dense[i] - gm[i]).abs() < 1e-8, "{dense:?} vs {gm:?}");
        }
    }

    #[test]
    fn singular_matrix_reported() {
        let m = DMat::zeros(2, 2);
        let err =
            FactoredJacobian::factor_matrix(&NewtonMatrix::Dense(&m), LinearSolverKind::Dense)
                .unwrap_err();
        assert!(!err.cause.is_empty());
        assert!(err.to_string().contains("linear solve failed"));
    }

    #[test]
    fn factor_cache_reuses_symbolic_on_same_pattern() {
        // Same pattern, shifting values: one symbolic analysis, then
        // numeric-only refactorisations — each solving correctly.
        let mut cache = FactorCache::new(LinearSolverKind::SparseLu);
        for iter in 0..4 {
            let shift = iter as f64;
            let mut t = Triplets::new(3, 3);
            t.push(0, 0, 4.0 + shift);
            t.push(1, 1, 3.0 + shift);
            t.push(2, 2, 5.0 + shift);
            t.push(0, 1, 1.0);
            t.push(2, 0, 0.5);
            cache.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
            let mut x = vec![1.0, 2.0, 3.0];
            cache.solve_in_place(&mut x).unwrap();
            let mut reference = vec![1.0, 2.0, 3.0];
            FactoredJacobian::factor_matrix(
                &NewtonMatrix::Triplets(&t),
                LinearSolverKind::SparseLu,
            )
            .unwrap()
            .solve_in_place(&mut reference)
            .unwrap();
            assert_eq!(x, reference, "iteration {iter}");
        }
        let stats = cache.stats();
        assert_eq!(stats.factorisations, 4);
        assert_eq!(stats.symbolic_reuses, 3);
        assert_eq!(stats.pattern_rebuilds, 0);
    }

    #[test]
    fn factor_cache_rebuilds_on_pattern_change() {
        let mut cache = FactorCache::new(LinearSolverKind::SparseLu);
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        cache.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
        // New pattern: off-diagonal appears.
        let mut t2 = Triplets::new(2, 2);
        t2.push(0, 0, 2.0);
        t2.push(1, 1, 3.0);
        t2.push(0, 1, 1.0);
        cache.factor_matrix(&NewtonMatrix::Triplets(&t2)).unwrap();
        let mut x = vec![3.0, 3.0];
        cache.solve_in_place(&mut x).unwrap();
        assert!((x[1] - 1.0).abs() < 1e-12 && (x[0] - 1.0).abs() < 1e-12);
        let stats = cache.stats();
        assert_eq!(stats.factorisations, 2);
        assert_eq!(stats.symbolic_reuses, 0);
        assert_eq!(stats.pattern_rebuilds, 1);
    }

    #[test]
    fn shared_symbolic_skips_symbolic_in_a_second_cache() {
        // Two caches (two "sweep jobs") over the same pattern: the first
        // factors fresh and publishes, the second's very first factor is
        // a numeric-only refactor of the shared template — with a
        // solution identical to factoring from scratch.
        let shared = SharedSymbolic::new();
        let mk = |shift: f64| {
            let mut t = Triplets::new(3, 3);
            t.push(0, 0, 4.0 + shift);
            t.push(1, 1, 3.0 + shift);
            t.push(2, 2, 5.0);
            t.push(0, 1, 1.0);
            t.push(2, 0, 0.5);
            t
        };
        let t0 = mk(0.0);
        let mut first = FactorCache::new(LinearSolverKind::Klu);
        first.set_shared_symbolic(Some(shared.clone()));
        first.factor_matrix(&NewtonMatrix::Triplets(&t0)).unwrap();
        assert_eq!(first.stats().symbolic_reuses, 0);
        assert_eq!(shared.len(), 1);

        let t1 = mk(2.5);
        let mut second = FactorCache::new(LinearSolverKind::Klu);
        second.set_shared_symbolic(Some(shared.clone()));
        second.factor_matrix(&NewtonMatrix::Triplets(&t1)).unwrap();
        assert_eq!(second.stats().factorisations, 1);
        assert_eq!(second.stats().symbolic_reuses, 1, "template not reused");
        let mut x = vec![1.0, 2.0, 3.0];
        second.solve_in_place(&mut x).unwrap();
        let mut reference = vec![1.0, 2.0, 3.0];
        FactoredJacobian::factor_matrix(&NewtonMatrix::Triplets(&t1), LinearSolverKind::Klu)
            .unwrap()
            .solve_in_place(&mut reference)
            .unwrap();
        assert_eq!(x, reference, "shared-symbolic solve differs from fresh");
    }

    #[test]
    fn shared_symbolic_mismatch_falls_through_to_fresh() {
        // A different pattern must not borrow the template; it factors
        // fresh and is published as a second template.
        let shared = SharedSymbolic::new();
        let mut a = Triplets::new(2, 2);
        a.push(0, 0, 2.0);
        a.push(1, 1, 3.0);
        let mut cache = FactorCache::new(LinearSolverKind::SparseLu);
        cache.set_shared_symbolic(Some(shared.clone()));
        cache.factor_matrix(&NewtonMatrix::Triplets(&a)).unwrap();

        let mut b = Triplets::new(2, 2);
        b.push(0, 0, 2.0);
        b.push(1, 1, 3.0);
        b.push(0, 1, 1.0);
        let mut other = FactorCache::new(LinearSolverKind::SparseLu);
        other.set_shared_symbolic(Some(shared.clone()));
        other.factor_matrix(&NewtonMatrix::Triplets(&b)).unwrap();
        assert_eq!(other.stats().symbolic_reuses, 0);
        assert_eq!(shared.len(), 2);
        let mut x = vec![3.0, 3.0];
        other.solve_in_place(&mut x).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ambient_install_seeds_new_caches_until_guard_drops() {
        let shared = SharedSymbolic::new();
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        {
            let _guard = shared.install();
            let mut cache = FactorCache::new(LinearSolverKind::SparseLu);
            cache.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
            assert_eq!(shared.len(), 1, "ambient cache did not publish");
            let mut warm = FactorCache::new(LinearSolverKind::SparseLu);
            warm.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
            assert_eq!(warm.stats().symbolic_reuses, 1);
        }
        // Guard dropped: new caches are unpooled again.
        let mut cold = FactorCache::new(LinearSolverKind::SparseLu);
        cold.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
        assert_eq!(cold.stats().symbolic_reuses, 0);
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn factor_cache_reuse_can_be_disabled() {
        let mut cache = FactorCache::new(LinearSolverKind::SparseLu);
        cache.set_reuse(false);
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        cache.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
        cache.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
        assert_eq!(cache.stats().symbolic_reuses, 0);
        assert_eq!(cache.stats().factorisations, 2);
    }

    #[test]
    fn factor_cache_dense_and_gmres_paths() {
        let m = DMat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        for kind in [LinearSolverKind::Dense, LinearSolverKind::gmres_default()] {
            let mut cache = FactorCache::new(kind);
            assert!(cache.solve_in_place(&mut [1.0, 1.0]).is_err(), "unfactored");
            cache.factor_matrix(&NewtonMatrix::Dense(&m)).unwrap();
            let mut x = vec![5.0, 4.0];
            cache.solve_in_place(&mut x).unwrap();
            assert!((x[0] - 1.0).abs() < 1e-8, "{}", kind.label());
            assert!((x[1] - 1.0).abs() < 1e-8, "{}", kind.label());
            assert_eq!(cache.stats().symbolic_reuses, 0);
        }
    }

    #[test]
    fn factor_cache_set_kind_resets_state() {
        let mut cache = FactorCache::new(LinearSolverKind::SparseLu);
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        cache.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
        cache.set_kind(LinearSolverKind::Dense);
        assert!(cache.solve_in_place(&mut [1.0, 1.0]).is_err());
        assert_eq!(cache.kind(), LinearSolverKind::Dense);
    }

    #[test]
    fn assemble_dense_into_matches_allocating_path() {
        let (dmat, cblocks, gblocks) = synthetic_blocks();
        let parts = synthetic_parts(&dmat, &cblocks, &gblocks);
        let a = parts.assemble_dense();
        let mut b = DMat::from_fn(parts.dim(), parts.dim(), |_, _| 7.0); // pre-dirty
        parts.assemble_dense_into(&mut b);
        for i in 0..parts.dim() {
            for j in 0..parts.dim() {
                assert_eq!(a[(i, j)], b[(i, j)], "({i},{j})");
            }
        }
    }

    #[test]
    fn kind_parsing_and_labels() {
        assert_eq!(
            LinearSolverKind::parse("dense"),
            Some(LinearSolverKind::Dense)
        );
        assert_eq!(
            LinearSolverKind::parse("SPARSELU"),
            Some(LinearSolverKind::SparseLu)
        );
        assert_eq!(LinearSolverKind::parse("klu"), Some(LinearSolverKind::Klu));
        assert!(matches!(
            LinearSolverKind::parse("gmres"),
            Some(LinearSolverKind::GmresIlu0 { .. })
        ));
        assert!(matches!(
            LinearSolverKind::parse("gmres-circulant"),
            Some(LinearSolverKind::GmresCirculant { .. })
        ));
        assert_eq!(LinearSolverKind::parse("bogus"), None);
        assert_eq!(LinearSolverKind::gmres_default().label(), "gmres");
        assert_eq!(LinearSolverKind::default().label(), "dense");
        assert_eq!(LinearSolverKind::SparseLu.label(), "sparselu");
        assert_eq!(LinearSolverKind::Klu.label(), "klu");
        assert_eq!(
            LinearSolverKind::gmres_circulant_default().label(),
            "gmres-circulant"
        );
        assert!(LinearSolverKind::gmres_circulant_default()
            .fingerprint()
            .starts_with("gmres-circulant("));
    }

    #[test]
    fn klu_backend_agrees_with_dense() {
        // Bordered collocation Jacobian — the shape KLU is for.
        let (dmat, cblocks, gblocks) = synthetic_blocks();
        let len = 10;
        let row: Vec<f64> = (0..len)
            .map(|k| if k % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let col: Vec<f64> = (0..len).map(|k| 0.1 + (k as f64 * 0.11).cos()).collect();
        let mut parts = synthetic_parts(&dmat, &cblocks, &gblocks);
        parts.border = Some((&row, &col));
        let rhs: Vec<f64> = (0..parts.dim())
            .map(|i| 1.0 + (i as f64 * 0.3).sin())
            .collect();
        let mut dense = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::Dense)
            .unwrap()
            .solve_in_place(&mut dense)
            .unwrap();
        let mut klu = rhs.clone();
        FactoredJacobian::factor(&parts, LinearSolverKind::Klu)
            .unwrap()
            .solve_in_place(&mut klu)
            .unwrap();
        for i in 0..rhs.len() {
            assert!((dense[i] - klu[i]).abs() < 1e-9, "klu mismatch at {i}");
        }
    }

    #[test]
    fn factor_cache_klu_reuses_symbolic_on_same_pattern() {
        let mut cache = FactorCache::new(LinearSolverKind::Klu);
        for iter in 0..4 {
            let shift = iter as f64;
            let mut t = Triplets::new(3, 3);
            t.push(0, 0, 4.0 + shift);
            t.push(1, 1, 3.0 + shift);
            t.push(2, 2, 5.0 + shift);
            t.push(0, 1, 1.0);
            t.push(2, 0, 0.5);
            cache.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
            let mut x = vec![1.0, 2.0, 3.0];
            cache.solve_in_place(&mut x).unwrap();
            let mut reference = vec![1.0, 2.0, 3.0];
            FactoredJacobian::factor_matrix(&NewtonMatrix::Triplets(&t), LinearSolverKind::Dense)
                .unwrap()
                .solve_in_place(&mut reference)
                .unwrap();
            for i in 0..3 {
                assert!((x[i] - reference[i]).abs() < 1e-12, "iteration {iter}, {i}");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.factorisations, 4);
        assert_eq!(stats.symbolic_reuses, 3);
        assert_eq!(stats.pattern_rebuilds, 0);
    }

    #[test]
    fn factor_cache_circulant_uses_shape_and_falls_back() {
        // Block-cyclic system: 4 blocks of 2, diagonal + previous-block
        // coupling — exactly the quasiperiodic stencil shape.
        let (n1, bw) = (4, 2);
        let mut t = Triplets::new(n1 * bw, n1 * bw);
        for r in 0..n1 {
            let prev = (r + n1 - 1) % n1;
            for p in 0..bw {
                t.push(r * bw + p, r * bw + p, 4.0);
                t.push(r * bw + p, prev * bw + p, -1.0);
            }
        }
        let rhs: Vec<f64> = (0..n1 * bw).map(|i| (0.3 * i as f64).cos()).collect();
        let mut dense = rhs.clone();
        FactoredJacobian::factor_matrix(&NewtonMatrix::Triplets(&t), LinearSolverKind::Dense)
            .unwrap()
            .solve_in_place(&mut dense)
            .unwrap();

        let mut cache = FactorCache::new(LinearSolverKind::gmres_circulant_default());
        cache.set_cyclic_shape(Some(CyclicShape {
            blocks: n1,
            block_dim: bw,
        }));
        cache.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
        let mut x = rhs.clone();
        cache.solve_in_place(&mut x).unwrap();
        for i in 0..rhs.len() {
            assert!((x[i] - dense[i]).abs() < 1e-8, "cyclic mismatch at {i}");
        }

        // Without a shape hint the backend still solves (ILU0 fallback).
        cache.set_cyclic_shape(None);
        cache.factor_matrix(&NewtonMatrix::Triplets(&t)).unwrap();
        let mut y = rhs.clone();
        cache.solve_in_place(&mut y).unwrap();
        for i in 0..rhs.len() {
            assert!((y[i] - dense[i]).abs() < 1e-8, "fallback mismatch at {i}");
        }
    }
}
