//! The unwarped Multirate Partial Differential Equation (MPDE).
//!
//! For a *non-autonomous* circuit driven by a fast periodic carrier at a
//! **known, fixed** fundamental `f1` and a slow envelope, the MPDE
//! (Brachtendorf et al. \[BWLBG96\]; Roychowdhury \[Roy97, Roy99\])
//! replaces `d/dt q(x) + f(x) = b(t)` with
//!
//! ```text
//! f1·∂q(x̂)/∂t1 + ∂q(x̂)/∂t2 + f(x̂) = b̂(t1, t2),
//! ```
//!
//! where `b̂` is the bivariate form of the forcing and
//! `x(t) = x̂(f1·t, t)`. Solving along `t2` with steps on the *envelope*
//! time scale captures AM-quasiperiodic behaviour compactly — this is the
//! method the WaMPDE generalises, and Section 3 of the paper explains why
//! it **cannot** capture FM from autonomous components: the fast
//! fundamental is pinned a priori. (That failure mode is demonstrated by
//! `wampde::OmegaMode::Frozen` in the ablation benches; this crate covers
//! the legitimate non-autonomous use.)
//!
//! # Example
//!
//! ```
//! use circuitdae::{Circuit, Device, Waveform};
//! use mpde::{solve_envelope_mpde, AmForcing, MpdeOptions};
//!
//! // RC low-pass driven by an AM current: carrier 1 MHz, envelope 1 kHz.
//! let mut ckt = Circuit::new();
//! let n = ckt.node("out");
//! ckt.add(Device::resistor(n, Circuit::GND, 1.0e3));
//! ckt.add(Device::capacitor(n, Circuit::GND, 1.0e-9));
//! // The DAE's own b(t) is unused by the MPDE; forcing comes in bivariate.
//! let dae = ckt.build().unwrap();
//! let forcing = AmForcing {
//!     node: 0,
//!     carrier_amplitude: 1.0e-3,
//!     mod_depth: 0.5,
//!     mod_freq_hz: 1.0e3,
//! };
//! let sol = solve_envelope_mpde(
//!     &dae,
//!     &forcing,
//!     1.0e6,
//!     2.0e-3,
//!     &MpdeOptions::default(),
//! ).unwrap();
//! assert!(sol.t2.len() > 10);
//! ```

use circuitdae::Dae;
use hb::Colloc;
use linsolve::{JacobianParts, LinearSolverKind};
use newtonkit::{NewtonEngine, NewtonError, NewtonPolicy, NewtonSystem};
use std::cell::RefCell;
use std::fmt;
use timekit::{History, Scheme, StepPolicy, StepVerdict};
use transim::NewtonOptions;

/// Errors from the MPDE envelope solver.
#[derive(Debug, Clone, PartialEq)]
pub enum MpdeError {
    /// Newton failed at a `t2` step.
    NewtonFailed {
        /// Slow time of the failure.
        at_t2: f64,
        /// Final residual norm.
        residual: f64,
    },
    /// The step Jacobian was singular.
    Singular {
        /// Slow time of the failure.
        at_t2: f64,
    },
    /// Adaptive slow-time stepping underflowed its minimum step.
    StepTooSmall {
        /// Slow time of the failure.
        at_t2: f64,
        /// Rejected step.
        step: f64,
    },
    /// Invalid configuration.
    BadInput(String),
}

impl fmt::Display for MpdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpdeError::NewtonFailed { at_t2, residual } => {
                write!(
                    f,
                    "mpde newton failed at t2={at_t2:.6e} (residual {residual:.3e})"
                )
            }
            MpdeError::Singular { at_t2 } => write!(f, "mpde jacobian singular at t2={at_t2:.6e}"),
            MpdeError::StepTooSmall { at_t2, step } => {
                write!(
                    f,
                    "mpde slow-time step {step:.3e} underflow at t2={at_t2:.6e}"
                )
            }
            MpdeError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for MpdeError {}

/// A bivariate forcing `b̂(t1, t2)` with `t1 ∈ [0, 1)` the normalised fast
/// phase and `t2` ordinary time.
pub trait BivariateForcing {
    /// Evaluates the forcing into `out` (length = DAE dimension).
    fn eval(&self, t1: f64, t2: f64, out: &mut [f64]);
}

/// Amplitude-modulated sinusoidal current into one node:
/// `b̂ = A·(1 + m·sin(2π·f_mod·t2))·sin(2π·t1)`.
#[derive(Debug, Clone, Copy)]
pub struct AmForcing {
    /// Index of the forced unknown (KCL row).
    pub node: usize,
    /// Carrier amplitude.
    pub carrier_amplitude: f64,
    /// Modulation depth `m`.
    pub mod_depth: f64,
    /// Envelope frequency (Hz).
    pub mod_freq_hz: f64,
}

impl BivariateForcing for AmForcing {
    fn eval(&self, t1: f64, t2: f64, out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let env = 1.0 + self.mod_depth * (2.0 * std::f64::consts::PI * self.mod_freq_hz * t2).sin();
        out[self.node] = self.carrier_amplitude * env * (2.0 * std::f64::consts::PI * t1).sin();
    }
}

/// Options for [`solve_envelope_mpde`].
#[derive(Debug, Clone, Copy)]
pub struct MpdeOptions {
    /// Harmonics along the fast axis (`N0 = 2M+1` samples).
    pub harmonics: usize,
    /// Fixed `t2` step (`0.0` = auto: 1/50 of the run). Only consulted
    /// when [`MpdeOptions::step`] is `None` (the legacy fixed-step
    /// configuration path).
    pub dt2: f64,
    /// Integration scheme along `t2` (shared `timekit` table). The
    /// historical — and default — choice is Backward Euler.
    pub integrator: Scheme,
    /// Full step policy; `None` keeps the legacy fixed-step behaviour
    /// driven by [`MpdeOptions::dt2`]. `Some(StepPolicy::Adaptive {..})`
    /// switches the envelope to LTE-adaptive `t2` stepping.
    pub step: Option<StepPolicy>,
    /// Inner Newton options.
    pub newton: NewtonOptions,
    /// Linear solver for the per-step collocation Jacobian.
    pub linear_solver: LinearSolverKind,
}

impl Default for MpdeOptions {
    fn default() -> Self {
        MpdeOptions {
            harmonics: 6,
            dt2: 0.0,
            integrator: Scheme::BackwardEuler,
            step: None,
            newton: NewtonOptions::default(),
            linear_solver: LinearSolverKind::default(),
        }
    }
}

/// Counters reported alongside an MPDE envelope run.
///
/// This is the workspace-wide [`obskit::RunStats`] summary (shared with
/// `transim::TransientStats` and `wampde::EnvelopeStats`); `steps`
/// counts accepted `t2` steps and `newton_iters` includes the `t2 = 0`
/// steady solve. The former `newton_iterations` field survives as a
/// deprecated accessor method.
pub type MpdeStats = obskit::RunStats;

/// An MPDE envelope solution.
#[derive(Debug, Clone)]
pub struct MpdeResult {
    /// DAE dimension.
    pub n: usize,
    /// Fast-axis sample count.
    pub n0: usize,
    /// Fast fundamental (Hz).
    pub f1_hz: f64,
    /// Slow time points.
    pub t2: Vec<f64>,
    /// Stacked collocation states per `t2` point (sample-major).
    pub states: Vec<Vec<f64>>,
    /// Run statistics.
    pub stats: MpdeStats,
}

impl MpdeResult {
    /// Samples of variable `var` at `t2` index `idx`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn var_samples(&self, idx: usize, var: usize) -> Vec<f64> {
        let x = &self.states[idx];
        (0..self.n0).map(|s| x[s * self.n + var]).collect()
    }

    /// Fast-axis peak-to-peak amplitude of `var` at each `t2` point — the
    /// demodulated envelope.
    pub fn envelope_amplitude(&self, var: usize) -> Vec<f64> {
        (0..self.t2.len())
            .map(|idx| {
                let s = self.var_samples(idx, var);
                let max = s.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v));
                let min = s.iter().fold(f64::INFINITY, |m, v| m.min(*v));
                (max - min) / 2.0
            })
            .collect()
    }

    /// Reconstructs the univariate solution `x(t) = x̂(f1·t, t)` of `var`
    /// at the given times (trig interpolation along `t1`, linear along
    /// `t2`).
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range or fewer than 2 points stored.
    pub fn reconstruct(&self, var: usize, ts: &[f64]) -> Vec<f64> {
        assert!(self.t2.len() >= 2, "need at least two envelope points");
        let mut samples = vec![0.0; self.n0];
        ts.iter()
            .map(|&t| {
                let m = self.t2.len();
                let i = if t <= self.t2[0] {
                    0
                } else if t >= self.t2[m - 1] {
                    m - 2
                } else {
                    self.t2
                        .partition_point(|&v| v <= t)
                        .saturating_sub(1)
                        .min(m - 2)
                };
                let w = ((t - self.t2[i]) / (self.t2[i + 1] - self.t2[i])).clamp(0.0, 1.0);
                let xa = &self.states[i];
                let xb = &self.states[i + 1];
                for (s, slot) in samples.iter_mut().enumerate() {
                    let k = s * self.n + var;
                    *slot = xa[k] * (1.0 - w) + xb[k] * w;
                }
                fourier::interp::trig_interp_barycentric(&samples, (t * self.f1_hz).fract())
            })
            .collect()
    }
}

/// Solves the MPDE by envelope-following along `t2` (Backward Euler by
/// default; any `timekit` scheme via [`MpdeOptions::integrator`], fixed
/// or LTE-adaptive steps via [`MpdeOptions::step`]) with harmonic
/// collocation along the fast axis.
///
/// The initial condition is the forced periodic steady state at `t2 = 0`
/// (an inner harmonic-balance-style Newton solve from the DC point).
///
/// # Errors
///
/// See [`MpdeError`].
pub fn solve_envelope_mpde<D: Dae + ?Sized, F: BivariateForcing + ?Sized>(
    dae: &D,
    forcing: &F,
    f1_hz: f64,
    t2_end: f64,
    opts: &MpdeOptions,
) -> Result<MpdeResult, MpdeError> {
    solve_envelope_mpde_from(dae, forcing, f1_hz, t2_end, opts, None)
}

/// [`solve_envelope_mpde`] with a continuation warm start: `init` (a
/// neighbouring grid point's converged `t2 = 0` collocation state,
/// `states[0]` of its [`MpdeResult`]) seeds the inner steady-state
/// Newton solve, skipping the DC operating point entirely. The steady
/// solve still runs to the same tolerances, so the warm start changes
/// the iteration count, not the fixed point. `init = None` reproduces
/// [`solve_envelope_mpde`] exactly; a wrong-length `init` is rejected.
///
/// # Errors
///
/// See [`MpdeError`].
pub fn solve_envelope_mpde_from<D: Dae + ?Sized, F: BivariateForcing + ?Sized>(
    dae: &D,
    forcing: &F,
    f1_hz: f64,
    t2_end: f64,
    opts: &MpdeOptions,
    init: Option<&[f64]>,
) -> Result<MpdeResult, MpdeError> {
    // `partial_cmp` keeps the NaN-rejecting behavior of `!(v > 0.0)`.
    if f1_hz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(MpdeError::BadInput(
            "carrier frequency must be positive".into(),
        ));
    }
    if t2_end.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(MpdeError::BadInput("t2_end must be positive".into()));
    }
    let n = dae.dim();
    let colloc = Colloc::new(n, opts.harmonics);
    let len = colloc.len();
    let policy = opts.step.unwrap_or(StepPolicy::Fixed(if opts.dt2 > 0.0 {
        opts.dt2
    } else {
        t2_end / 50.0
    }));
    let mut ctl = policy
        .resolve(t2_end, opts.integrator.order())
        .map_err(MpdeError::BadInput)?;

    // Forcing at collocation phases, updated per step.
    let mut bgrid = vec![0.0; len];
    let eval_forcing = |t2: f64, bgrid: &mut Vec<f64>| {
        let mut row = vec![0.0; n];
        for s in 0..colloc.n0 {
            forcing.eval(s as f64 / colloc.n0 as f64, t2, &mut row);
            bgrid[s * n..(s + 1) * n].copy_from_slice(&row);
        }
    };

    // One Newton engine for the whole envelope: the step Jacobian's
    // sparsity pattern is stable along t2, so the sparse-LU backend pays
    // for symbolic analysis once and refactors numerically thereafter.
    let mut engine = NewtonEngine::new();
    let mut stats = MpdeStats::default();

    // Initial condition: periodic steady state at t2 = 0 (steady-envelope
    // solve: f1·D·q + f = b̂(·, 0) — the general step residual with
    // a0h = 0 and θ = 1), seeded from the neighbouring grid point's
    // converged collocation state when one is in hand, from the DC
    // operating point otherwise.
    let mut x: Vec<f64> = match init {
        Some(seed) => {
            if seed.len() != len {
                return Err(MpdeError::BadInput(format!(
                    "warm-start state has {} entries, collocation grid needs {len}",
                    seed.len()
                )));
            }
            seed.to_vec()
        }
        None => {
            let dc = transim::dc_operating_point(dae, &opts.newton)
                .map_err(|e| MpdeError::BadInput(format!("dc operating point failed: {e}")))?;
            (0..colloc.n0).flat_map(|_| dc.iter().copied()).collect()
        }
    };
    eval_forcing(0.0, &mut bgrid);
    let zeros = vec![0.0; len];
    newton_mpde(
        &mut engine,
        &mut stats,
        dae,
        &colloc,
        &mut x,
        0.0,
        1.0,
        &zeros,
        &zeros,
        f1_hz,
        &bgrid,
        &opts.newton,
        opts.linear_solver,
        0.0,
    )?;

    let mut t2s = vec![0.0];
    let mut states = vec![x.clone()];
    let mut q_cur = vec![0.0; len];
    let mut dq_buf = vec![0.0; len];
    let mut fv_buf = vec![0.0; len];
    colloc.eval_q_all(dae, &x, &mut q_cur);
    // g_prev = f1·D·q + f − b̂ at the newest accepted point (the (1−θ)
    // term of averaging schemes).
    let mut g_prev = vec![0.0; len];
    eval_g_mpde(
        dae,
        &colloc,
        &x,
        &q_cur,
        f1_hz,
        &bgrid,
        &mut dq_buf,
        &mut fv_buf,
        &mut g_prev,
    );

    // Shared predictor/BDF2 history over the stacked collocation states.
    let mut history = History::new(3);
    history.push(0.0, x.clone(), q_cur.clone());

    let mut t2 = 0.0;
    let max_attempts = ctl.attempt_budget(t2_end);
    let mut qlin = vec![0.0; len];

    while t2 < t2_end - 1e-15 * t2_end {
        if stats.steps + stats.rejected > max_attempts {
            return Err(MpdeError::StepTooSmall {
                at_t2: t2,
                step: ctl.h(),
            });
        }
        let h_try = ctl.propose(t2, t2_end);
        let t_new = t2 + h_try;
        let step_span = obskit::span("time-step");
        step_span.attr("t2", t_new);
        step_span.attr("h", h_try);
        eval_forcing(t_new, &mut bgrid);

        let coeffs = opts.integrator.step_coeffs(h_try, &history, &mut qlin);
        let predicted = history.predict(t_new);
        let mut x_new = predicted.clone().unwrap_or_else(|| x.clone());
        let newton = newton_mpde(
            &mut engine,
            &mut stats,
            dae,
            &colloc,
            &mut x_new,
            coeffs.a0h,
            coeffs.theta,
            &qlin,
            &g_prev,
            f1_hz,
            &bgrid,
            &opts.newton,
            opts.linear_solver,
            t_new,
        );

        let newton_ok = newton.is_ok();
        let accept = match newton {
            Ok(()) => match &predicted {
                Some(pred) if ctl.adaptive() => {
                    let err = ctl.lte(&x_new, pred);
                    ctl.evaluate(h_try, err) == StepVerdict::Accept
                }
                // Fixed step, or no history yet: accept the step.
                _ => true,
            },
            Err(e) => {
                if ctl.at_min(h_try) {
                    return Err(e);
                }
                ctl.reject_failure(h_try);
                false
            }
        };

        step_span.attr("accepted", accept);
        if accept {
            t2 = t_new;
            x = x_new;
            colloc.eval_q_all(dae, &x, &mut q_cur);
            eval_g_mpde(
                dae,
                &colloc,
                &x,
                &q_cur,
                f1_hz,
                &bgrid,
                &mut dq_buf,
                &mut fv_buf,
                &mut g_prev,
            );
            t2s.push(t2);
            states.push(x.clone());
            stats.steps += 1;
            history.push(t2, x.clone(), q_cur.clone());
        } else {
            stats.rejected += 1;
            if newton_ok && ctl.underflowed() {
                return Err(MpdeError::StepTooSmall {
                    at_t2: t2,
                    step: ctl.h(),
                });
            }
        }
    }

    Ok(MpdeResult {
        n,
        n0: colloc.n0,
        f1_hz,
        t2: t2s,
        states,
        stats,
    })
}

/// Evaluates the instantaneous MPDE operator
/// `g = f1·D·q + f(x) − b̂` into `out`, reusing the caller's already
/// computed charge vector `q` and scratch buffers (this runs once per
/// accepted step in the envelope hot loop).
#[allow(clippy::too_many_arguments)]
fn eval_g_mpde<D: Dae + ?Sized>(
    dae: &D,
    colloc: &Colloc,
    x: &[f64],
    q: &[f64],
    f1: f64,
    bgrid: &[f64],
    dq: &mut [f64],
    fv: &mut [f64],
    out: &mut [f64],
) {
    colloc.apply_diff(q, dq);
    colloc.eval_f_all(dae, x, fv);
    for k in 0..out.len() {
        out[k] = f1 * dq[k] + fv[k] - bgrid[k];
    }
}

/// One MPDE step (or the `t2 = 0` steady problem when `a0h = 0`) as a
/// shared-engine Newton system:
/// `r = a0h·q(x) + qlin + θ·(f1·D·q(x) + f(x) − b̂) + (1−θ)·g_prev`,
/// Jacobian `δ(a0h·C + θ·G) + θ·f1·D⊗C` — the `a0h`-shifted, unbordered
/// collocation form with ω pinned at the carrier fundamental `f1`.
struct MpdeStepSystem<'a, D: Dae + ?Sized> {
    dae: &'a D,
    colloc: &'a Colloc,
    a0h: f64,
    theta: f64,
    qlin: &'a [f64],
    g_prev: &'a [f64],
    f1: f64,
    bgrid: &'a [f64],
    /// (q, dq, fv) residual scratch.
    work: RefCell<(Vec<f64>, Vec<f64>, Vec<f64>)>,
}

impl<'a, D: Dae + ?Sized> MpdeStepSystem<'a, D> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        dae: &'a D,
        colloc: &'a Colloc,
        a0h: f64,
        theta: f64,
        qlin: &'a [f64],
        g_prev: &'a [f64],
        f1: f64,
        bgrid: &'a [f64],
    ) -> Self {
        let len = colloc.len();
        MpdeStepSystem {
            dae,
            colloc,
            a0h,
            theta,
            qlin,
            g_prev,
            f1,
            bgrid,
            work: RefCell::new((vec![0.0; len], vec![0.0; len], vec![0.0; len])),
        }
    }

    fn parts<'b>(
        &'b self,
        cblocks: &'b [numkit::DMat],
        gblocks: &'b [numkit::DMat],
    ) -> JacobianParts<'b> {
        JacobianParts {
            n: self.colloc.n,
            n0: self.colloc.n0,
            dmat: &self.colloc.dmat,
            cblocks,
            gblocks,
            inv_h: self.a0h,
            theta: self.theta,
            omega: self.f1,
            border: None,
        }
    }
}

impl<D: Dae + ?Sized> NewtonSystem for MpdeStepSystem<'_, D> {
    fn dim(&self) -> usize {
        self.colloc.len()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let (q, dq, fv) = &mut *self.work.borrow_mut();
        self.colloc.eval_q_all(self.dae, x, q);
        self.colloc.apply_diff(q, dq);
        self.colloc.eval_f_all(self.dae, x, fv);
        for k in 0..out.len() {
            let g_inst = self.f1 * dq[k] + fv[k] - self.bgrid[k];
            out[k] = self.a0h * q[k]
                + self.qlin[k]
                + self.theta * g_inst
                + (1.0 - self.theta) * self.g_prev[k];
        }
    }

    fn jacobian(&self, x: &[f64], out: &mut numkit::DMat) {
        let (cblocks, gblocks) = circuitdae::jac_blocks(self.dae, x);
        self.parts(&cblocks, &gblocks).assemble_dense_into(out);
    }

    fn jacobian_triplets(&self, x: &[f64], out: &mut sparsekit::Triplets) -> bool {
        let (cblocks, gblocks) = circuitdae::jac_blocks(self.dae, x);
        self.parts(&cblocks, &gblocks).push_triplets(out);
        true
    }

    /// Block-scaled convergence (cf. `wampde::envelope`): every
    /// collocation sample weighted by the global sample magnitude.
    fn update_norm(&self, dx_scaled: &[f64], x: &[f64], abstol: f64, reltol: f64) -> f64 {
        let x_scale = x.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
        let w = abstol + reltol * x_scale;
        (dx_scaled.iter().map(|d| (d / w).powi(2)).sum::<f64>() / dx_scaled.len() as f64).sqrt()
    }
}

/// Newton solve of one MPDE step through the shared engine, mapping the
/// solver-agnostic errors and accumulating run statistics.
#[allow(clippy::too_many_arguments)]
fn newton_mpde<D: Dae + ?Sized>(
    engine: &mut NewtonEngine,
    stats: &mut MpdeStats,
    dae: &D,
    colloc: &Colloc,
    x: &mut [f64],
    a0h: f64,
    theta: f64,
    qlin: &[f64],
    g_prev: &[f64],
    f1: f64,
    bgrid: &[f64],
    newton: &NewtonOptions,
    solver: LinearSolverKind,
    at_t2: f64,
) -> Result<(), MpdeError> {
    let sys = MpdeStepSystem::new(dae, colloc, a0h, theta, qlin, g_prev, f1, bgrid);
    let policy = NewtonPolicy {
        linear_solver: solver,
        ..*newton
    };
    let result = engine.solve(&sys, x, &policy);
    let s = engine.stats();
    stats.newton_iters += s.iterations;
    stats.factorisations += s.factorisations;
    stats.symbolic_reuses += s.symbolic_reuses;
    match result {
        Ok(_) => Ok(()),
        Err(NewtonError::Singular { .. }) => Err(MpdeError::Singular { at_t2 }),
        Err(NewtonError::NoConvergence { residual, .. }) => {
            Err(MpdeError::NewtonFailed { at_t2, residual })
        }
        Err(NewtonError::BadInput(msg)) => Err(MpdeError::BadInput(msg)),
    }
}

/// Deck adapter: runs a `.mpde` directive. The spec's AM forcing fields
/// map onto an [`AmForcing`] into the named KCL row; its step keys pick
/// fixed-step mode (the default, `dt=`) or — when `rtol` is positive —
/// LTE-adaptive stepping with `dt` as the initial step.
///
/// # Errors
///
/// [`MpdeError::BadInput`] when the forced node index is out of range;
/// otherwise see [`solve_envelope_mpde`].
pub fn run_mpde_spec<D: Dae + ?Sized>(
    dae: &D,
    spec: &circuitdae::MpdeSpec,
) -> Result<MpdeResult, MpdeError> {
    run_mpde_spec_warm(dae, spec, None)
}

/// [`run_mpde_spec`] with a continuation warm start: `init` (the
/// `states[0]` collocation slice of a neighbouring grid point's
/// [`MpdeResult`]) seeds the `t2 = 0` steady solve, skipping the DC
/// operating point. See [`solve_envelope_mpde_from`].
///
/// # Errors
///
/// As [`run_mpde_spec`].
pub fn run_mpde_spec_warm<D: Dae + ?Sized>(
    dae: &D,
    spec: &circuitdae::MpdeSpec,
    init: Option<&[f64]>,
) -> Result<MpdeResult, MpdeError> {
    if spec.node >= dae.dim() {
        return Err(MpdeError::BadInput(format!(
            "forced node index {} out of range (dim = {})",
            spec.node,
            dae.dim()
        )));
    }
    let forcing = AmForcing {
        node: spec.node,
        carrier_amplitude: spec.amplitude,
        mod_depth: spec.mod_depth,
        mod_freq_hz: spec.mod_freq_hz,
    };
    let step = if spec.rtol > 0.0 {
        Some(StepPolicy::Adaptive {
            rtol: spec.rtol,
            atol: spec.atol,
            dt_init: spec.dt,
            dt_min: spec.dt_min,
            dt_max: spec.dt_max,
        })
    } else if spec.dt > 0.0 {
        Some(StepPolicy::Fixed(spec.dt))
    } else {
        None
    };
    solve_envelope_mpde_from(
        dae,
        &forcing,
        spec.f1_hz,
        spec.t_stop,
        &MpdeOptions {
            harmonics: spec.harmonics,
            linear_solver: spec.solver,
            integrator: spec.integrator,
            step,
            ..Default::default()
        },
        init,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::{Circuit, Device, Waveform};
    use transim::{run_transient, Integrator, StepControl, TransientOptions};

    fn rc(r: f64, c: f64) -> circuitdae::CircuitDae {
        let mut ckt = Circuit::new();
        let n = ckt.node("out");
        ckt.add(Device::resistor(n, Circuit::GND, r));
        ckt.add(Device::capacitor(n, Circuit::GND, c));
        // Placeholder source so b(t) machinery exists; MPDE ignores it.
        ckt.add(Device::current_source(Circuit::GND, n, Waveform::Dc(0.0)));
        ckt.build().unwrap()
    }

    #[test]
    fn am_envelope_matches_quasi_static_filter_response() {
        // Carrier 1 MHz ≫ envelope 1 kHz: the filter sees the carrier with
        // quasi-static envelope, so the fast-axis amplitude at each t2 must
        // track |H(j2πf1)|·A·(1 + m sin 2π f_mod t2).
        let (rv, cv) = (1.0e3, 1.0e-9);
        let dae = rc(rv, cv);
        let f1 = 1.0e6;
        let fmod = 1.0e3;
        let forcing = AmForcing {
            node: 0,
            carrier_amplitude: 1.0e-3,
            mod_depth: 0.5,
            mod_freq_hz: fmod,
        };
        let sol = solve_envelope_mpde(
            &dae,
            &forcing,
            f1,
            1.0e-3,
            &MpdeOptions {
                harmonics: 4,
                dt2: 1.0e-5,
                ..Default::default()
            },
        )
        .unwrap();
        let w = 2.0 * std::f64::consts::PI * f1;
        let hmag = rv / (1.0 + (w * rv * cv).powi(2)).sqrt();
        let env = sol.envelope_amplitude(0);
        for (idx, &t) in sol.t2.iter().enumerate() {
            // Skip the first couple of points (carrier phase transients).
            if idx < 2 {
                continue;
            }
            let want = 1.0e-3 * hmag * (1.0 + 0.5 * (2.0 * std::f64::consts::PI * fmod * t).sin());
            let got = env[idx];
            assert!(
                (got - want).abs() / want < 0.05,
                "t2={t}: envelope {got} vs {want}"
            );
        }
    }

    #[test]
    fn reconstruction_matches_direct_transient() {
        // Full univariate comparison on a shorter run.
        let (rv, cv) = (1.0e3, 1.0e-9);
        let f1 = 1.0e6;
        let fmod = 2.0e4; // closer separation so the run is short
        let forcing = AmForcing {
            node: 0,
            carrier_amplitude: 1.0e-3,
            mod_depth: 0.3,
            mod_freq_hz: fmod,
        };
        let dae = rc(rv, cv);
        let sol = solve_envelope_mpde(
            &dae,
            &forcing,
            f1,
            5.0e-5,
            &MpdeOptions {
                harmonics: 4,
                dt2: 5.0e-7,
                ..Default::default()
            },
        )
        .unwrap();

        // Direct transient of the same circuit with the univariate source.
        struct Univariate {
            inner: circuitdae::CircuitDae,
            forcing: AmForcing,
            f1: f64,
        }
        impl circuitdae::Dae for Univariate {
            fn dim(&self) -> usize {
                self.inner.dim()
            }
            fn eval_q(&self, x: &[f64], out: &mut [f64]) {
                self.inner.eval_q(x, out);
            }
            fn eval_f(&self, x: &[f64], out: &mut [f64]) {
                self.inner.eval_f(x, out);
            }
            fn eval_b(&self, t: f64, out: &mut [f64]) {
                self.forcing.eval((t * self.f1).fract(), t, out);
            }
            fn jac_q(&self, x: &[f64], out: &mut numkit::DMat) {
                self.inner.jac_q(x, out);
            }
            fn jac_f(&self, x: &[f64], out: &mut numkit::DMat) {
                self.inner.jac_f(x, out);
            }
        }
        let uni = Univariate {
            inner: rc(rv, cv),
            forcing,
            f1,
        };
        // Start the transient from the MPDE's own initial slice value at
        // t1 = 0 (a point on the fast periodic steady state).
        let x0 = vec![sol.states[0][0]];
        let tr = run_transient(
            &uni,
            &x0,
            0.0,
            5.0e-5,
            &TransientOptions {
                integrator: Integrator::Trapezoidal,
                step: StepControl::Fixed(2.0e-9),
                ..Default::default()
            },
        )
        .unwrap();
        let mut max_err = 0.0_f64;
        let mut max_amp = 0.0_f64;
        for i in 0..500 {
            let t = 1.0e-5 + i as f64 * 5.0e-8; // skip initial transient
            let a = sol.reconstruct(0, &[t])[0];
            let b = tr.sample(0, t);
            max_err = max_err.max((a - b).abs());
            max_amp = max_amp.max(b.abs());
        }
        assert!(
            max_err < 0.05 * max_amp,
            "max err {max_err} vs amplitude {max_amp}"
        );
    }

    #[test]
    fn bad_inputs() {
        let dae = rc(1e3, 1e-9);
        let f = AmForcing {
            node: 0,
            carrier_amplitude: 1.0,
            mod_depth: 0.0,
            mod_freq_hz: 1.0,
        };
        assert!(solve_envelope_mpde(&dae, &f, -1.0, 1.0, &MpdeOptions::default()).is_err());
        assert!(solve_envelope_mpde(&dae, &f, 1.0, -1.0, &MpdeOptions::default()).is_err());
    }

    #[test]
    fn sparse_backends_match_dense_envelope() {
        let dae = rc(1e3, 1e-9);
        let forcing = AmForcing {
            node: 0,
            carrier_amplitude: 1.0e-3,
            mod_depth: 0.5,
            mod_freq_hz: 1.0e3,
        };
        let base = MpdeOptions {
            harmonics: 4,
            dt2: 5.0e-5,
            ..Default::default()
        };
        let dense = solve_envelope_mpde(&dae, &forcing, 1.0e6, 5.0e-4, &base).unwrap();
        for kind in [
            LinearSolverKind::SparseLu,
            LinearSolverKind::gmres_default(),
        ] {
            let opts = MpdeOptions {
                linear_solver: kind,
                ..base
            };
            let sol = solve_envelope_mpde(&dae, &forcing, 1.0e6, 5.0e-4, &opts).unwrap();
            assert_eq!(dense.t2.len(), sol.t2.len());
            for (a, b) in dense.states.iter().zip(sol.states.iter()) {
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!((x - y).abs() < 1e-9, "{}: {x} vs {y}", kind.label());
                }
            }
        }
    }
}
