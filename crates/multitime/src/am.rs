//! The paper's two-tone AM example (eqs. (1)–(2), Figures 1–3).
//!
//! `y(t) = sin(2πt/T1)·sin(2πt/T2)` with `T1 = 0.02 s`, `T2 = 1 s`:
//! 50 fast sinusoids under a slow envelope. Sampled directly it needs
//! `n·T2/T1` points per slow period (750 at 15 points/cycle — Figure 1);
//! the bivariate form `ŷ(t1,t2) = sin(2πt1/T1)·sin(2πt2/T2)` needs only an
//! `n × n` grid (225 — Figure 2), independent of the rate separation.

use crate::bivariate::BivariateGrid;

/// Fast period `T1` (seconds).
pub const T1: f64 = 0.02;
/// Slow period `T2` (seconds).
pub const T2: f64 = 1.0;

const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

/// The univariate signal `y(t)` of eq. (1).
pub fn signal(t: f64) -> f64 {
    (TWO_PI / T1 * t).sin() * (TWO_PI / T2 * t).sin()
}

/// The bivariate form `ŷ(t1, t2)` of eq. (2).
pub fn bivariate(t1: f64, t2: f64) -> f64 {
    (TWO_PI / T1 * t1).sin() * (TWO_PI / T2 * t2).sin()
}

/// Uniform univariate sampling over one slow period at `n_per_cycle`
/// points per fast cycle — the representation behind Figure 1. Returns
/// `(times, values)`; the sample count is `n_per_cycle·T2/T1` (750 for 15).
pub fn sample_univariate(n_per_cycle: usize) -> (Vec<f64>, Vec<f64>) {
    let total = (n_per_cycle as f64 * T2 / T1).round() as usize;
    let times: Vec<f64> = (0..total).map(|k| k as f64 / total as f64 * T2).collect();
    let values = times.iter().map(|&t| signal(t)).collect();
    (times, values)
}

/// Uniform bivariate sampling on an odd `n × n` grid — Figure 2.
pub fn sample_bivariate(n: usize) -> BivariateGrid {
    BivariateGrid::from_fn(n, n, T1, T2, bivariate)
}

/// Maximum reconstruction error of *linear interpolation* of the
/// univariate samples, probed densely over one slow period — the fair
/// accuracy metric for the Figure 1 representation.
pub fn univariate_error(n_per_cycle: usize, probes: usize) -> f64 {
    let (times, values) = sample_univariate(n_per_cycle);
    let total = times.len();
    (0..probes)
        .map(|k| {
            let t = k as f64 / probes as f64 * T2;
            // Locate interval (uniform grid).
            let pos = t / T2 * total as f64;
            let i = (pos.floor() as usize).min(total - 1);
            let j = (i + 1) % total;
            let w = pos - pos.floor();
            let interp = values[i] * (1.0 - w) + values[j] * w;
            (interp - signal(t)).abs()
        })
        .fold(0.0_f64, f64::max)
}

/// Maximum reconstruction error of the bivariate grid along the sawtooth
/// path (Figure 3), probed densely over one slow period.
pub fn bivariate_error(n: usize, probes: usize) -> f64 {
    sample_bivariate(n).path_error(signal, T2, probes)
}

/// The sample-count comparison behind the paper's "750 vs 225" claim:
/// returns `(univariate_count, bivariate_count)` for a given per-cycle
/// resolution.
pub fn sample_counts(n_per_cycle: usize) -> (usize, usize) {
    let uni = (n_per_cycle as f64 * T2 / T1).round() as usize;
    let biv = n_per_cycle * n_per_cycle;
    (uni, biv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_counts() {
        let (uni, biv) = sample_counts(15);
        assert_eq!(uni, 750);
        assert_eq!(biv, 225);
    }

    #[test]
    fn signal_matches_bivariate_on_diagonal() {
        for k in 0..50 {
            let t = k as f64 * 0.017;
            assert!((signal(t) - bivariate(t, t)).abs() < 1e-12);
        }
    }

    #[test]
    fn bivariate_beats_univariate_at_equal_budget() {
        // At equal *total* sample budget (225), the bivariate form is
        // essentially exact while 225 univariate samples (4.5/cycle)
        // badly undersample the carrier.
        let biv_err = bivariate_error(15, 2000);
        // 225 univariate samples over T2 = 4.5 per fast cycle.
        let (times, values) = {
            let total = 225;
            let times: Vec<f64> = (0..total).map(|k| k as f64 / total as f64 * T2).collect();
            let values: Vec<f64> = times.iter().map(|&t| signal(t)).collect();
            (times, values)
        };
        let mut uni_err = 0.0_f64;
        for k in 0..2000 {
            let t = k as f64 / 2000.0 * T2;
            let pos = t / T2 * times.len() as f64;
            let i = (pos.floor() as usize).min(times.len() - 1);
            let j = (i + 1) % times.len();
            let w = pos - pos.floor();
            let interp = values[i] * (1.0 - w) + values[j] * w;
            uni_err = uni_err.max((interp - signal(t)).abs());
        }
        assert!(biv_err < 1e-9, "bivariate error {biv_err}");
        assert!(
            uni_err > 0.15,
            "univariate error {uni_err} suspiciously small"
        );
    }

    #[test]
    fn univariate_error_decreases_with_resolution() {
        let coarse = univariate_error(5, 1000);
        let fine = univariate_error(40, 1000);
        assert!(fine < coarse / 10.0, "{coarse} -> {fine}");
    }

    #[test]
    fn bivariate_error_saturates_at_machine_precision() {
        // The signal is band-limited: any odd grid ≥ 3 is exact.
        assert!(bivariate_error(3, 500) < 1e-9);
        assert!(bivariate_error(15, 500) < 1e-9);
    }
}
