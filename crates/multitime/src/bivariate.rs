//! Uniformly sampled doubly periodic bivariate surfaces.

/// A doubly periodic surface `x̂(t1, t2)` sampled on a uniform
/// `n1 × n2` grid over `[0, T1) × [0, T2)` (both odd so band-limited
/// interpolation applies along each axis).
///
/// # Example
///
/// ```
/// use multitime::BivariateGrid;
///
/// let g = BivariateGrid::from_fn(9, 9, 1.0, 1.0, |t1, t2| {
///     (2.0 * std::f64::consts::PI * t1).sin() * (2.0 * std::f64::consts::PI * t2).cos()
/// });
/// let v = g.eval(0.25, 0.0);
/// assert!((v - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct BivariateGrid {
    n1: usize,
    n2: usize,
    t1_period: f64,
    t2_period: f64,
    /// Row-major: `values[j][i]` = sample at `(i·T1/n1, j·T2/n2)`.
    values: Vec<Vec<f64>>,
}

impl BivariateGrid {
    /// Samples `f(t1, t2)` on the grid.
    ///
    /// # Panics
    ///
    /// Panics when `n1`/`n2` are even or zero, or periods non-positive.
    pub fn from_fn(
        n1: usize,
        n2: usize,
        t1_period: f64,
        t2_period: f64,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Self {
        assert!(n1 % 2 == 1 && n1 > 0, "n1 must be odd");
        assert!(n2 % 2 == 1 && n2 > 0, "n2 must be odd");
        assert!(
            t1_period > 0.0 && t2_period > 0.0,
            "periods must be positive"
        );
        let values = (0..n2)
            .map(|j| {
                let t2 = j as f64 / n2 as f64 * t2_period;
                (0..n1)
                    .map(|i| f(i as f64 / n1 as f64 * t1_period, t2))
                    .collect()
            })
            .collect();
        BivariateGrid {
            n1,
            n2,
            t1_period,
            t2_period,
            values,
        }
    }

    /// Grid dimensions `(n1, n2)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// Total stored samples — the representation-cost metric of Figures
    /// 1–2 (225 for the paper's 15×15 AM grid).
    pub fn sample_count(&self) -> usize {
        self.n1 * self.n2
    }

    /// Raw row access (`j`-th row holds the `t1` sweep at `t2_j`).
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn row(&self, j: usize) -> &[f64] {
        &self.values[j]
    }

    /// Band-limited (trig × trig) evaluation at an arbitrary point.
    pub fn eval(&self, t1: f64, t2: f64) -> f64 {
        // Interpolate along t1 within each row, then along t2.
        let u1 = (t1 / self.t1_period).rem_euclid(1.0);
        let u2 = (t2 / self.t2_period).rem_euclid(1.0);
        let col: Vec<f64> = self
            .values
            .iter()
            .map(|row| fourier::interp::trig_interp_barycentric(row, u1))
            .collect();
        fourier::interp::trig_interp_barycentric(&col, u2)
    }

    /// Evaluation along the sawtooth path `t_i = t mod T_i` (Figure 3) —
    /// reconstructing the univariate signal `x(t) = x̂(t, t)`.
    pub fn eval_path(&self, t: f64) -> f64 {
        self.eval(t, t)
    }

    /// Maximum absolute reconstruction error of the path evaluation
    /// against a reference univariate signal, probed at `m` uniform times
    /// over `[0, horizon)`.
    pub fn path_error(&self, reference: impl Fn(f64) -> f64, horizon: f64, m: usize) -> f64 {
        (0..m)
            .map(|k| {
                let t = k as f64 / m as f64 * horizon;
                (self.eval_path(t) - reference(t)).abs()
            })
            .fold(0.0_f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

    #[test]
    fn reproduces_grid_samples() {
        let g = BivariateGrid::from_fn(7, 9, 2.0, 3.0, |a, b| a + 10.0 * b);
        assert_eq!(g.shape(), (7, 9));
        assert_eq!(g.sample_count(), 63);
        // Row 0 is the t1 sweep at t2 = 0.
        assert!((g.row(0)[1] - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn band_limited_surface_exact() {
        let f = |t1: f64, t2: f64| (TWO_PI * t1).sin() * (2.0 * TWO_PI * t2).cos() + 0.3;
        let g = BivariateGrid::from_fn(9, 11, 1.0, 1.0, f);
        for &(a, b) in &[(0.11, 0.77), (0.5, 0.25), (0.9, 0.05)] {
            assert!((g.eval(a, b) - f(a, b)).abs() < 1e-9, "({a},{b})");
        }
    }

    #[test]
    fn eval_is_doubly_periodic() {
        let f = |t1: f64, t2: f64| (TWO_PI * t1).cos() + (TWO_PI * t2).sin();
        let g = BivariateGrid::from_fn(9, 9, 0.5, 2.0, |a, b| f(a / 0.5, b / 2.0));
        let v = g.eval(0.1, 0.3);
        assert!((g.eval(0.1 + 0.5, 0.3) - v).abs() < 1e-9);
        assert!((g.eval(0.1, 0.3 + 2.0) - v).abs() < 1e-9);
    }

    #[test]
    fn path_reconstruction_of_product_signal() {
        // x(t) = sin(2πt/T1)·sin(2πt/T2) with T1=0.1, T2=1: the bivariate
        // form is band-limited, so path evaluation is near-exact.
        let (t1p, t2p) = (0.1, 1.0);
        let g = BivariateGrid::from_fn(9, 9, t1p, t2p, |a, b| {
            (TWO_PI * a / t1p).sin() * (TWO_PI * b / t2p).sin()
        });
        let reference = |t: f64| (TWO_PI * t / t1p).sin() * (TWO_PI * t / t2p).sin();
        let err = g.path_error(reference, 1.0, 500);
        assert!(err < 1e-9, "path error {err}");
    }

    #[test]
    #[should_panic]
    fn even_grid_rejected() {
        let _ = BivariateGrid::from_fn(8, 9, 1.0, 1.0, |_, _| 0.0);
    }
}
