//! The paper's FM example (eqs. (3)–(11), Figures 4–6).
//!
//! `x(t) = cos(2πf0·t + k·cos(2πf2·t))` with `f0 = 1 MHz`, `f2 = 20 kHz`
//! and modulation index `k = 8π`. Its *unwarped* bivariate form (eq. (5))
//! undulates `≈ k/π` times along `t2`, defeating compact sampling
//! (Figure 5). The *warped* form (eqs. (6)–(7)),
//!
//! ```text
//! x̂2(t1, t2) = cos(2πt1),   φ(t) = f0·t + (k/2π)·cos(2πf2·t),
//! ```
//!
//! is constant along `t2` and recovers `x(t) = x̂2(φ(t), t)` exactly
//! (Figure 6). The alternative pair (eq. (11)) differs in `φ'` by exactly
//! `f2` — the intrinsic O(f2) ambiguity of local frequency the paper
//! discusses.

use crate::bivariate::BivariateGrid;

/// Carrier frequency `f0` (Hz).
pub const F0: f64 = 1.0e6;
/// Modulation frequency `f2` (Hz).
pub const F2: f64 = 2.0e4;
/// Modulation index `k = 8π`.
pub const K: f64 = 8.0 * std::f64::consts::PI;

const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

/// The FM signal of eq. (3).
pub fn signal(t: f64) -> f64 {
    (TWO_PI * F0 * t + K * (TWO_PI * F2 * t).cos()).cos()
}

/// Instantaneous frequency of eq. (4): `f0 − k·f2·sin(2πf2·t)`.
pub fn instantaneous_frequency(t: f64) -> f64 {
    F0 - K * F2 * (TWO_PI * F2 * t).sin()
}

/// The *unwarped* bivariate form `x̂1` of eq. (5) (`t1` in seconds over
/// `[0, 1/f0)`, `t2` in seconds over `[0, 1/f2)`).
pub fn unwarped(t1: f64, t2: f64) -> f64 {
    (TWO_PI * F0 * t1 + K * (TWO_PI * F2 * t2).cos()).cos()
}

/// The *warped* bivariate form `x̂2` of eq. (6) (`t1` is the dimensionless
/// warped phase with unit period; constant along `t2`).
pub fn warped_x2(t1: f64) -> f64 {
    (TWO_PI * t1).cos()
}

/// The warping function `φ(t)` of eq. (7), in cycles.
pub fn warping_phi(t: f64) -> f64 {
    F0 * t + K / TWO_PI * (TWO_PI * F2 * t).cos()
}

/// The alternative bivariate form `x̂3` of eq. (11).
pub fn alt_x3(t1: f64, t2: f64) -> f64 {
    (TWO_PI * t1 + TWO_PI * F2 * t2).cos()
}

/// The alternative warping function `φ3` of eq. (11), in cycles.
pub fn alt_phi3(t: f64) -> f64 {
    F0 * t + K / TWO_PI * (TWO_PI * F2 * t).cos() - F2 * t
}

/// Reconstruction through the warped representation:
/// `x(t) = x̂2(φ(t) mod 1)`.
pub fn reconstruct_warped(t: f64) -> f64 {
    warped_x2(warping_phi(t).rem_euclid(1.0))
}

/// Reconstruction through the alternative representation (eq. (10)):
/// `x(t) = x̂3(φ3(t) mod 1, t)`.
pub fn reconstruct_alt(t: f64) -> f64 {
    alt_x3(alt_phi3(t).rem_euclid(1.0), t)
}

/// Samples the *unwarped* form on an `n1 × n2` grid and reports the
/// maximum band-limited-reconstruction error of `x(t)` along the path —
/// the quantitative version of Figure 5's "cannot be sampled efficiently".
pub fn unwarped_grid_error(n1: usize, n2: usize, probes: usize) -> f64 {
    let grid = BivariateGrid::from_fn(n1, n2, 1.0 / F0, 1.0 / F2, unwarped);
    grid.path_error(signal, 1.0 / F2, probes)
}

/// Number of samples the warped representation needs for the same job:
/// `n1` samples of `x̂2` plus `n_phi` samples of the T2-periodic part of
/// `φ` — both tiny. Returns the max reconstruction error when `φ` is
/// stored as `f0·t` plus a trigonometric interpolant of its periodic part
/// on `n_phi` points.
pub fn warped_grid_error(n1: usize, n_phi: usize, probes: usize) -> f64 {
    assert!(n1 % 2 == 1 && n_phi % 2 == 1, "grids must be odd");
    // Store x̂2 on n1 samples.
    let x2_samples: Vec<f64> = (0..n1).map(|s| warped_x2(s as f64 / n1 as f64)).collect();
    // Store the periodic part p(t) = φ(t) − f0·t on n_phi samples over T2.
    let t2p = 1.0 / F2;
    let p_samples: Vec<f64> = (0..n_phi)
        .map(|s| {
            let t = s as f64 / n_phi as f64 * t2p;
            warping_phi(t) - F0 * t
        })
        .collect();
    (0..probes)
        .map(|k| {
            let t = k as f64 / probes as f64 * t2p;
            let p = fourier::interp::trig_interp_barycentric(&p_samples, t / t2p);
            let phi = F0 * t + p;
            let x = fourier::interp::trig_interp_barycentric(&x2_samples, phi.rem_euclid(1.0));
            (x - signal(t)).abs()
        })
        .fold(0.0_f64, f64::max)
}

/// Counts undulations (sign changes of the finite-difference derivative)
/// along the `t2` axis of the unwarped form at fixed `t1 = 0` — the
/// paper's "about m oscillations as a function of t2" (`k ≈ 2πm`).
pub fn undulation_count_t2(samples: usize) -> usize {
    let t2p = 1.0 / F2;
    let vals: Vec<f64> = (0..samples)
        .map(|s| unwarped(0.0, s as f64 / samples as f64 * t2p))
        .collect();
    let mut count = 0;
    let mut prev_slope = 0.0_f64;
    for w in vals.windows(2) {
        let slope = w[1] - w[0];
        if slope * prev_slope < 0.0 {
            count += 1;
        }
        if slope != 0.0 {
            prev_slope = slope;
        }
    }
    count / 2 // two extrema per oscillation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warped_reconstruction_is_exact() {
        for k in 0..200 {
            let t = k as f64 * 2.7e-7;
            assert!((reconstruct_warped(t) - signal(t)).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn alt_reconstruction_is_exact() {
        // Eq. (11) is a different (x̂, φ) pair for the *same* signal.
        for k in 0..200 {
            let t = k as f64 * 3.1e-7;
            assert!((reconstruct_alt(t) - signal(t)).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn phi_derivatives_differ_by_exactly_f2() {
        // The paper: all compact warpings have φ' differing by O(f2); for
        // these two closed forms the difference is exactly f2.
        let h = 1e-9;
        for k in 1..20 {
            let t = k as f64 * 2.3e-6;
            let d1 = (warping_phi(t + h) - warping_phi(t - h)) / (2.0 * h);
            let d3 = (alt_phi3(t + h) - alt_phi3(t - h)) / (2.0 * h);
            assert!(((d1 - d3) - F2).abs() < 1.0, "t={t}: {d1} vs {d3}");
        }
    }

    #[test]
    fn phi_derivative_is_instantaneous_frequency() {
        let h = 1e-9;
        for k in 1..20 {
            let t = k as f64 * 1.7e-6;
            let d = (warping_phi(t + h) - warping_phi(t - h)) / (2.0 * h);
            let f = instantaneous_frequency(t);
            assert!((d - f).abs() / f < 1e-4, "t={t}: {d} vs {f}");
        }
    }

    #[test]
    fn unwarped_needs_far_more_t2_samples_than_warped() {
        // Warped: tiny grids suffice.
        let warped_err = warped_grid_error(9, 9, 400);
        assert!(warped_err < 1e-6, "warped error {warped_err}");
        // Unwarped with the same t2 budget is useless…
        let coarse = unwarped_grid_error(9, 9, 400);
        assert!(coarse > 0.5, "coarse unwarped error {coarse}");
        // …and needs ~10× the t2 samples to become accurate.
        let fine = unwarped_grid_error(9, 129, 400);
        assert!(fine < 1e-3, "fine unwarped error {fine}");
    }

    #[test]
    fn undulation_count_matches_modulation_index() {
        // Along one t2 period the outer phase k·cos(2πf2·t2) travels from
        // +k down to −k and back: total travel 4k = 32π, i.e. 2k/π = 16
        // oscillations of the cosine (the counter loses ~1 at the turning
        // points).
        let m = undulation_count_t2(4000);
        assert!((14..=17).contains(&m), "undulations {m}");
    }

    #[test]
    fn instantaneous_frequency_range() {
        // f0 ± k·f2 = 1 MHz ± 0.5027 MHz.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in 0..1000 {
            let f = instantaneous_frequency(k as f64 * 5e-8);
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!((lo - (F0 - K * F2)).abs() / F0 < 0.01, "lo {lo}");
        assert!((hi - (F0 + K * F2)).abs() / F0 < 0.01, "hi {hi}");
    }
}
