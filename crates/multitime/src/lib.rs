//! Multi-time signal representations (paper Section 3, Figures 1–6).
//!
//! Before the WaMPDE operates on circuits, the paper develops the key
//! representational ideas on closed-form signals:
//!
//! * [`am`] — the two-tone AM signal of eq. (1) and its compact bivariate
//!   form (2): Figures 1–3, including the 750-vs-225 sample count;
//! * [`fm`] — the FM signal of eq. (3): its *unwarped* bivariate form (5)
//!   that needs huge grids (Figure 5), and the *warped* form (6)–(7) plus
//!   warping function that restores compactness (Figure 6); also the
//!   alternative representation (11) demonstrating the non-uniqueness and
//!   the O(f2) ambiguity of local frequency;
//! * [`BivariateGrid`] — a uniformly sampled doubly periodic surface with
//!   band-limited evaluation and reconstruction along the sawtooth path
//!   `t_i = t mod T_i` (Figure 3).

pub mod am;
pub mod bivariate;
pub mod fm;

pub use bivariate::BivariateGrid;
