//! Shared damped-Newton engine.
//!
//! Every nonlinear solver in the workspace — transient/DC Newton,
//! shooting's outer cycle iteration, harmonic balance, the MPDE and
//! WaMPDE envelopes, and the quasiperiodic boundary solve — reduces to
//! the same loop: evaluate a residual, factor a Jacobian, damp a step,
//! test convergence. This crate owns that loop once, mirroring the
//! `linsolve` (linear solvers) and `timekit` (time stepping)
//! extractions:
//!
//! * [`NewtonSystem`] — the problem: residual, Jacobian (dense, with an
//!   optional sparse triplet stamp), and optional scaling/damping hooks
//!   for solvers with structured unknowns (collocation blocks plus a
//!   frequency border, shooting's `(x0, T)` pair).
//! * [`NewtonPolicy`] — the configuration: iteration budget, abs/rel
//!   step-norm tolerances (or a relative residual tolerance), the
//!   [`Damping`] strategy (`full`, SPICE-style halving `line-search`, or
//!   `trust-region`), the linear-solver backend, and the symbolic-reuse
//!   ablation knob.
//! * [`NewtonEngine`] — the loop. Holding one engine across time steps
//!   (or gmin-continuation stages, or shooting restarts) carries the
//!   [`linsolve::FactorCache`] along, so on the sparse-LU backend every
//!   factorisation after the first reuses the cached symbolic analysis
//!   (elimination ordering and factor patterns) and performs numeric-only
//!   refactorisation — the hot-path win for Newton, which re-factors the
//!   same sparsity pattern every iteration.
//! * [`NewtonStats`] / [`NewtonError`] — one per-solve report and one
//!   solver-agnostic failure enum; each consumer maps them into its own
//!   types (`TransimError::NewtonFailed`, `WampdeError::LinearSolve`, …).
//!
//! # Convergence laws
//!
//! Two laws are supported, matching the two families of consumers:
//!
//! * **Step-norm** (the default, `residual_tol: None`): converged when
//!   the damped update satisfies
//!   [`NewtonSystem::update_norm`]`(λ·Δx, x, abstol, reltol) ≤ 1` — a
//!   weighted RMS that systems override for block scaling.
//! * **Relative residual** (`residual_tol: Some(tol)`): converged when
//!   `‖r‖₂ / `[`NewtonSystem::residual_scale`]` < tol`, checked *before*
//!   factoring (shooting's law, where each residual costs a full flow
//!   integration and the Jacobian rides along with it).
//!
//! # Example
//!
//! Implement [`NewtonSystem`] for your residual and hand it to an engine
//! — here `r(x) = x² − 2` from the starting guess `x = 1`:
//!
//! ```
//! use newtonkit::{NewtonEngine, NewtonPolicy, NewtonSystem};
//! use numkit::DMat;
//!
//! struct Sqrt2;
//!
//! impl NewtonSystem for Sqrt2 {
//!     fn dim(&self) -> usize {
//!         1
//!     }
//!     fn residual(&self, x: &[f64], out: &mut [f64]) {
//!         out[0] = x[0] * x[0] - 2.0;
//!     }
//!     fn jacobian(&self, x: &[f64], out: &mut DMat) {
//!         out[(0, 0)] = 2.0 * x[0];
//!     }
//! }
//!
//! # fn main() -> Result<(), newtonkit::NewtonError> {
//! let mut x = vec![1.0];
//! let stats = NewtonEngine::new().solve(&Sqrt2, &mut x, &NewtonPolicy::default())?;
//! assert!((x[0] - 2.0_f64.sqrt()).abs() < 1e-10);
//! assert!(stats.iterations > 0);
//! # Ok(())
//! # }
//! ```

use linsolve::{CyclicShape, FactorCache, FactorStats, LinearSolverKind, NewtonMatrix};
use numkit::vecops::{norm2, wrms_norm};
use numkit::DMat;
use sparsekit::Triplets;
use std::fmt;

/// A square nonlinear system `r(x) = 0` for [`NewtonEngine::solve`].
///
/// The dense [`NewtonSystem::jacobian`] is mandatory; systems that can
/// assemble their Jacobian sparsely (circuit DAE steps, collocation
/// blocks) additionally implement [`NewtonSystem::jacobian_triplets`] so
/// the sparse backends skip the `O(dim²)` dense stamp. The remaining
/// methods are scaling/damping hooks with neutral defaults.
pub trait NewtonSystem {
    /// Number of unknowns.
    fn dim(&self) -> usize;

    /// Residual `r(x)` into `out`.
    fn residual(&self, x: &[f64], out: &mut [f64]);

    /// Jacobian `∂r/∂x` into `out` (`dim × dim`).
    fn jacobian(&self, x: &[f64], out: &mut DMat);

    /// Sparse Jacobian pushed as triplets into `out` (a cleared
    /// `dim × dim` buffer; duplicates sum). Returns `false` when the
    /// system has no sparse assembly — the engine then stamps densely
    /// and converts.
    fn jacobian_triplets(&self, _x: &[f64], _out: &mut Triplets) -> bool {
        false
    }

    /// Weighted norm of the damped update `dx_scaled = λ·Δx` against the
    /// (already updated) iterate `x`; the step-norm law declares
    /// convergence when this drops to `≤ 1`. The default is the
    /// per-component WRMS norm; collocation solvers override it with
    /// block scaling (per-block magnitude weights, the frequency unknown
    /// weighted by its own magnitude).
    fn update_norm(&self, dx_scaled: &[f64], x: &[f64], abstol: f64, reltol: f64) -> f64 {
        wrms_norm(dx_scaled, x, abstol, reltol)
    }

    /// Scale dividing `‖r‖₂` in the relative-residual convergence law
    /// (ignored under the step-norm law). Default 1 (absolute residual).
    fn residual_scale(&self) -> f64 {
        1.0
    }

    /// Largest admissible damping factor for a proposed step
    /// ([`Damping::TrustRegion`] only): the engine starts from
    /// `min(1, damp_limit)`. Shooting caps the state move at a fraction
    /// of the orbit amplitude here.
    fn damp_limit(&self, _x: &[f64], _dx: &[f64]) -> f64 {
        1.0
    }

    /// Block-cyclic structure of the Jacobian, if the system has one
    /// (the quasiperiodic cyclic system does). Forwarded to the
    /// factorisation cache so the
    /// [`linsolve::LinearSolverKind::GmresCirculant`] backend can build
    /// its structure-exploiting preconditioner; `None` (the default)
    /// makes that backend fall back to ILU(0).
    fn cyclic_shape(&self) -> Option<CyclicShape> {
        None
    }

    /// Hard admissibility check for a damped step
    /// ([`Damping::TrustRegion`] only): the engine halves `λ` until this
    /// accepts (or the floor is reached and the solve fails). Shooting
    /// keeps the period unknown within a factor of 2 here.
    fn step_allowed(&self, _x: &[f64], _dx: &[f64], _lambda: f64) -> bool {
        true
    }
}

/// How a Newton step is damped before being applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Damping {
    /// Always take the full step (classical Newton).
    Full,
    /// SPICE-style halving line search on `‖r‖₂`: the step is halved
    /// until the residual stops growing, down to `min_lambda`, at which
    /// point it is accepted anyway (tolerating mild residual growth far
    /// from the solution while preventing divergence).
    LineSearch {
        /// Smallest damping factor tried before accepting regardless.
        min_lambda: f64,
    },
    /// Trust-region damping for solvers whose residual is too expensive
    /// to line-search (one evaluation = one flow integration): the step
    /// starts at [`NewtonSystem::damp_limit`] and is halved until
    /// [`NewtonSystem::step_allowed`] accepts; reaching `min_lambda`
    /// fails the solve.
    TrustRegion {
        /// Smallest damping factor before declaring failure.
        min_lambda: f64,
    },
}

impl Default for Damping {
    /// The unified workspace default: halving line search down to 1/64.
    fn default() -> Self {
        Damping::LineSearch {
            min_lambda: 1.0 / 64.0,
        }
    }
}

/// Configuration of one Newton solve.
///
/// **Breaking note (defaults unification):** this policy replaces the
/// four hand-rolled loops' option structs. The unified defaults are the
/// historical `transim::NewtonOptions` values — `max_iter = 50`,
/// `abstol = 1e-12`, `reltol = 1e-9`, halving line search down to
/// `λ = 1/64` — which the MPDE and WaMPDE loops already shared; the old
/// `min_damping` field is now [`Damping::LineSearch::min_lambda`].
/// Shooting keeps its own budget (40) and relative-residual law through
/// `ShootingOptions`, mapped onto [`NewtonPolicy::residual_tol`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonPolicy {
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Absolute tolerance of the step-norm convergence law.
    pub abstol: f64,
    /// Relative tolerance of the step-norm convergence law.
    pub reltol: f64,
    /// Damping strategy.
    pub damping: Damping,
    /// `Some(tol)` switches to the relative-residual convergence law:
    /// converged when `‖r‖₂ / residual_scale < tol`, checked before
    /// each factorisation.
    pub residual_tol: Option<f64>,
    /// Linear-solver backend for the per-iteration factorisation.
    pub linear_solver: LinearSolverKind,
    /// Reuse cached symbolic analysis across sparse-LU factorisations
    /// (on by default; the ablation knob for `repro --table newton`).
    pub reuse_symbolic: bool,
}

impl Default for NewtonPolicy {
    fn default() -> Self {
        NewtonPolicy {
            max_iter: 50,
            abstol: 1e-12,
            reltol: 1e-9,
            damping: Damping::default(),
            residual_tol: None,
            linear_solver: LinearSolverKind::default(),
            reuse_symbolic: true,
        }
    }
}

/// Per-solve report of [`NewtonEngine::solve`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NewtonStats {
    /// Newton steps applied.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual_norm: f64,
    /// Residual evaluations (including line-search trials).
    pub residual_evals: usize,
    /// Jacobian factorisations.
    pub factorisations: usize,
    /// Factorisations that reused cached symbolic analysis.
    pub symbolic_reuses: usize,
    /// Steps applied with `λ < 1`.
    pub damped_steps: usize,
    /// Line-search floor hits: steps accepted at `min_lambda` despite a
    /// growing residual (the only way an accepted damped step may
    /// increase `‖r‖₂`).
    pub min_lambda_hits: usize,
}

/// Solver-agnostic Newton failure.
#[derive(Debug, Clone, PartialEq)]
pub enum NewtonError {
    /// A factorisation or back-solve failed.
    Singular {
        /// Human-readable cause from the linear-solver layer.
        cause: String,
    },
    /// The iteration budget was spent (or the residual left the finite
    /// range, or trust-region damping underflowed) without convergence.
    NoConvergence {
        /// Newton steps applied.
        iterations: usize,
        /// Last residual 2-norm.
        residual: f64,
    },
    /// Invalid configuration.
    BadInput(String),
}

impl fmt::Display for NewtonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NewtonError::Singular { cause } => write!(f, "newton jacobian singular: {cause}"),
            NewtonError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "newton did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NewtonError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for NewtonError {}

/// The shared damped-Newton loop with a persistent factorisation cache.
///
/// Create one engine per solver run (transient, envelope, continuation
/// ladder) and call [`NewtonEngine::solve`] per step: the engine's
/// [`linsolve::FactorCache`] then spans every factorisation of the run,
/// so symbolic analysis is done once per sparsity pattern rather than
/// once per Newton iteration.
#[derive(Debug, Default)]
pub struct NewtonEngine {
    cache: Option<FactorCache>,
    // `None` = inherit the thread-ambient pool (see
    // [`linsolve::SharedSymbolic::install`]); `Some(ov)` = pin `ov`.
    shared_override: Option<Option<linsolve::SharedSymbolic>>,
    // Pinned core budget installed around each solve; `None` = inherit
    // the thread-ambient [`linsolve::CoreBudget`], if any.
    budget: Option<linsolve::CoreBudget>,
    stats: NewtonStats,
    // Scratch buffers reused across solves (resized on dimension change).
    r: Vec<f64>,
    dx: Vec<f64>,
    dx_scaled: Vec<f64>,
    trial: Vec<f64>,
    r_trial: Vec<f64>,
    jac: Option<DMat>,
    trip: Triplets,
}

impl NewtonEngine {
    /// A fresh engine with an empty factorisation cache.
    pub fn new() -> Self {
        NewtonEngine::default()
    }

    /// Statistics of the most recent [`NewtonEngine::solve`] call —
    /// populated on the error paths too, unlike the success return value.
    pub fn stats(&self) -> NewtonStats {
        self.stats
    }

    /// Pins a batch-shared symbolic pool on this engine's factor cache
    /// (overriding any thread-ambient [`linsolve::SharedSymbolic`]);
    /// `Some(None)`-style detaching is expressed by passing `None`.
    pub fn set_shared_symbolic(&mut self, shared: Option<linsolve::SharedSymbolic>) {
        if let Some(cache) = &mut self.cache {
            cache.set_shared_symbolic(shared.clone());
        }
        self.shared_override = Some(shared);
    }

    /// Pins a [`linsolve::CoreBudget`] on this engine: every
    /// [`NewtonEngine::solve`] call installs it as the thread-ambient
    /// budget for its duration, so the stamping, factorisation, and
    /// GMRES SpMV paths underneath lease their intra-solve threads from
    /// it. Pass `None` to detach and inherit whatever budget the
    /// calling thread has installed (the sweep executor's, usually).
    /// Thread counts never change results: every leased kernel is
    /// bitwise identical to its serial form.
    pub fn set_core_budget(&mut self, budget: Option<linsolve::CoreBudget>) {
        self.budget = budget;
    }

    /// Cumulative factorisation counters across the engine's lifetime.
    pub fn factor_stats(&self) -> FactorStats {
        self.cache
            .as_ref()
            .map(FactorCache::stats)
            .unwrap_or_default()
    }

    /// Solves `r(x) = 0` by damped Newton, updating `x` in place.
    ///
    /// # Errors
    ///
    /// * [`NewtonError::Singular`] when a factorisation or back-solve
    ///   fails;
    /// * [`NewtonError::NoConvergence`] when the iteration budget is
    ///   spent, the residual becomes non-finite, or trust-region damping
    ///   underflows its floor.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != sys.dim()`.
    pub fn solve<S: NewtonSystem + ?Sized>(
        &mut self,
        sys: &S,
        x: &mut [f64],
        policy: &NewtonPolicy,
    ) -> Result<NewtonStats, NewtonError> {
        let n = sys.dim();
        assert_eq!(x.len(), n, "newton: x length mismatch");

        // A pinned budget scopes over the whole solve: stamping,
        // factorisation, and back-solve all lease from it.
        let _budget_guard = self.budget.as_ref().map(linsolve::CoreBudget::install);
        let cache = match &mut self.cache {
            Some(c) => {
                c.set_kind(policy.linear_solver);
                c
            }
            slot => {
                let c = slot.insert(FactorCache::new(policy.linear_solver));
                if let Some(ov) = &self.shared_override {
                    c.set_shared_symbolic(ov.clone());
                }
                c
            }
        };
        cache.set_reuse(policy.reuse_symbolic);
        cache.set_cyclic_shape(sys.cyclic_shape());
        let factor_base = cache.stats();
        let nspan = obskit::span("newton");

        let mut stats = NewtonStats::default();
        self.r.resize(n, 0.0);
        self.r.fill(0.0);
        self.dx.resize(n, 0.0);
        self.dx_scaled.resize(n, 0.0);
        self.trial.resize(n, 0.0);
        self.r_trial.resize(n, 0.0);
        if self.trip.nrows() != n || self.trip.ncols() != n {
            self.trip = Triplets::new(n, n);
        }
        if self.jac.as_ref().is_some_and(|j| j.nrows() != n) {
            self.jac = None;
        }

        sys.residual(x, &mut self.r);
        stats.residual_evals += 1;
        let mut rnorm = norm2(&self.r);
        let scale = sys.residual_scale();

        let outcome: Result<(), NewtonError> = 'solve: {
            for iter in 1..=policy.max_iter {
                // Relative-residual law: check before paying for a
                // factorisation (shooting's flow already ran).
                if let Some(tol) = policy.residual_tol {
                    if rnorm.is_finite() && rnorm / scale < tol {
                        break 'solve Ok(());
                    }
                }
                if !rnorm.is_finite() {
                    break 'solve Err(NewtonError::NoConvergence {
                        iterations: stats.iterations,
                        residual: rnorm,
                    });
                }

                let ispan = obskit::span("newton-iter");
                ispan.attr("iter", iter);
                let factor_pre = cache.stats();

                // Factor the Jacobian: sparse backends prefer a
                // triplet-assembled stamp; dense (or systems without
                // sparse assembly) stamp the full matrix. The dense
                // buffer is allocated lazily so the sparse path of a
                // large system never touches the O(n²) matrix.
                let use_triplets = !matches!(policy.linear_solver, LinearSolverKind::Dense) && {
                    self.trip.clear();
                    sys.jacobian_triplets(x, &mut self.trip)
                };
                let factored = if use_triplets {
                    cache.factor_matrix(&NewtonMatrix::Triplets(&self.trip))
                } else {
                    let jac = self.jac.get_or_insert_with(|| DMat::zeros(n, n));
                    sys.jacobian(x, jac);
                    cache.factor_matrix(&NewtonMatrix::Dense(jac))
                };
                if let Err(e) = factored {
                    break 'solve Err(NewtonError::Singular { cause: e.cause });
                }
                let factor_reused = cache.stats().symbolic_reuses > factor_pre.symbolic_reuses;

                // dx = -J⁻¹ r.
                self.dx.copy_from_slice(&self.r);
                if let Err(e) = cache.solve_in_place(&mut self.dx) {
                    break 'solve Err(NewtonError::Singular { cause: e.cause });
                }
                for v in self.dx.iter_mut() {
                    *v = -*v;
                }

                // Damp and apply the step, leaving `r`/`rnorm` evaluated
                // at the updated iterate.
                let lambda = match policy.damping {
                    Damping::Full => {
                        for (xi, di) in x.iter_mut().zip(self.dx.iter()) {
                            *xi += di;
                        }
                        sys.residual(x, &mut self.r);
                        stats.residual_evals += 1;
                        rnorm = norm2(&self.r);
                        1.0
                    }
                    Damping::LineSearch { min_lambda } => {
                        let mut lambda = 1.0_f64;
                        loop {
                            for ((ti, &xi), &di) in
                                self.trial.iter_mut().zip(x.iter()).zip(self.dx.iter())
                            {
                                *ti = xi + lambda * di;
                            }
                            sys.residual(&self.trial, &mut self.r_trial);
                            stats.residual_evals += 1;
                            let rt = norm2(&self.r_trial);
                            if rt.is_finite() && (rt <= rnorm || lambda <= min_lambda) {
                                if rt > rnorm {
                                    stats.min_lambda_hits += 1;
                                }
                                x.copy_from_slice(&self.trial);
                                self.r.copy_from_slice(&self.r_trial);
                                rnorm = rt;
                                break lambda;
                            }
                            lambda *= 0.5;
                            // A residual that never evaluates finite can
                            // not be line-searched; bail instead of
                            // halving forever.
                            if lambda < min_lambda * 1e-18 {
                                break 'solve Err(NewtonError::NoConvergence {
                                    iterations: stats.iterations,
                                    residual: rt,
                                });
                            }
                        }
                    }
                    Damping::TrustRegion { min_lambda } => {
                        let mut lambda = sys.damp_limit(x, &self.dx).min(1.0);
                        // `partial_cmp` keeps the NaN-rejecting behavior
                        // of `!(lambda > 0.0)`.
                        if lambda.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                            break 'solve Err(NewtonError::NoConvergence {
                                iterations: stats.iterations,
                                residual: rnorm,
                            });
                        }
                        loop {
                            if sys.step_allowed(x, &self.dx, lambda) {
                                break;
                            }
                            lambda *= 0.5;
                            if lambda < min_lambda {
                                stats.min_lambda_hits += 1;
                                break 'solve Err(NewtonError::NoConvergence {
                                    iterations: stats.iterations,
                                    residual: rnorm,
                                });
                            }
                        }
                        for (xi, di) in x.iter_mut().zip(self.dx.iter()) {
                            *xi += lambda * di;
                        }
                        sys.residual(x, &mut self.r);
                        stats.residual_evals += 1;
                        rnorm = norm2(&self.r);
                        lambda
                    }
                };
                stats.iterations = iter;
                if lambda < 1.0 {
                    stats.damped_steps += 1;
                }
                if obskit::enabled() {
                    ispan.attr("residual", rnorm);
                    ispan.attr("lambda", lambda);
                    obskit::point(
                        "newton.iter",
                        &[
                            ("iter", obskit::AttrValue::U64(iter as u64)),
                            ("residual", obskit::AttrValue::F64(rnorm)),
                            ("lambda", obskit::AttrValue::F64(lambda)),
                            (
                                "factor",
                                obskit::AttrValue::Str(if factor_reused {
                                    "reused"
                                } else {
                                    "fresh"
                                }),
                            ),
                        ],
                    );
                }

                // Step-norm law: converged when the weighted damped
                // update drops below 1 (and the residual is finite).
                if policy.residual_tol.is_none() {
                    for i in 0..n {
                        self.dx_scaled[i] = lambda * self.dx[i];
                    }
                    let update = sys.update_norm(&self.dx_scaled, x, policy.abstol, policy.reltol);
                    if update <= 1.0 && rnorm.is_finite() {
                        break 'solve Ok(());
                    }
                }
            }
            Err(NewtonError::NoConvergence {
                iterations: policy.max_iter,
                residual: rnorm,
            })
        };

        stats.residual_norm = rnorm;
        let fs = cache.stats();
        stats.factorisations = fs.factorisations - factor_base.factorisations;
        stats.symbolic_reuses = fs.symbolic_reuses - factor_base.symbolic_reuses;
        self.stats = stats;
        if obskit::enabled() {
            nspan.attr("iterations", stats.iterations);
            nspan.attr("converged", outcome.is_ok());
            obskit::counter_add("newton.solves", 1);
            obskit::counter_add("newton.iters", stats.iterations as u64);
            if outcome.is_err() {
                obskit::counter_add("newton.failures", 1);
            }
        }
        outcome.map(|()| stats)
    }
}

/// One-shot convenience over [`NewtonEngine::solve`] (no cross-solve
/// factorisation cache; symbolic reuse still spans the iterations of
/// this single solve).
///
/// # Errors
///
/// See [`NewtonEngine::solve`].
pub fn newton_solve<S: NewtonSystem + ?Sized>(
    sys: &S,
    x: &mut [f64],
    policy: &NewtonPolicy,
) -> Result<NewtonStats, NewtonError> {
    NewtonEngine::new().solve(sys, x, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// r(x) = x² − 4 (root at ±2).
    struct Quadratic;

    impl NewtonSystem for Quadratic {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] - 4.0;
        }
        fn jacobian(&self, x: &[f64], out: &mut DMat) {
            out[(0, 0)] = 2.0 * x[0];
        }
    }

    /// 2-d system with root (1, 1).
    struct TwoDim;

    impl NewtonSystem for TwoDim {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] + x[1] * x[1] - 2.0;
            out[1] = x[0] - x[1];
        }
        fn jacobian(&self, x: &[f64], out: &mut DMat) {
            out[(0, 0)] = 2.0 * x[0];
            out[(0, 1)] = 2.0 * x[1];
            out[(1, 0)] = 1.0;
            out[(1, 1)] = -1.0;
        }
    }

    #[test]
    fn scalar_quadratic_converges() {
        let mut x = vec![3.0];
        let rep = newton_solve(&Quadratic, &mut x, &NewtonPolicy::default()).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!(rep.iterations < 10);
        assert!(rep.residual_norm < 1e-8);
        assert_eq!(rep.factorisations, rep.iterations);
    }

    #[test]
    fn negative_start_finds_negative_root() {
        let mut x = vec![-5.0];
        newton_solve(&Quadratic, &mut x, &NewtonPolicy::default()).unwrap();
        assert!((x[0] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_dim_system() {
        let mut x = vec![2.0, 0.5];
        newton_solve(&TwoDim, &mut x, &NewtonPolicy::default()).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_backends_reach_the_same_root() {
        for kind in [
            LinearSolverKind::SparseLu,
            LinearSolverKind::gmres_default(),
        ] {
            let mut x = vec![2.0, 0.5];
            let policy = NewtonPolicy {
                linear_solver: kind,
                ..Default::default()
            };
            newton_solve(&TwoDim, &mut x, &policy).unwrap();
            assert!((x[0] - 1.0).abs() < 1e-9, "{}", kind.label());
            assert!((x[1] - 1.0).abs() < 1e-9, "{}", kind.label());
        }
    }

    #[test]
    fn triplet_jacobian_path_is_used_when_offered() {
        use std::cell::Cell;
        /// TwoDim with a sparse Jacobian and a call counter proving the
        /// sparse path ran instead of the dense stamp.
        struct SparseTwoDim {
            triplet_calls: Cell<usize>,
        }
        impl NewtonSystem for SparseTwoDim {
            fn dim(&self) -> usize {
                2
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                TwoDim.residual(x, out);
            }
            fn jacobian(&self, _x: &[f64], _out: &mut DMat) {
                panic!("dense jacobian must not be called on the sparse path");
            }
            fn jacobian_triplets(&self, x: &[f64], out: &mut Triplets) -> bool {
                self.triplet_calls.set(self.triplet_calls.get() + 1);
                out.push(0, 0, 2.0 * x[0]);
                out.push(0, 1, 2.0 * x[1]);
                out.push(1, 0, 1.0);
                out.push(1, 1, -1.0);
                true
            }
        }
        let sys = SparseTwoDim {
            triplet_calls: Cell::new(0),
        };
        let mut x = vec![2.0, 0.5];
        let policy = NewtonPolicy {
            linear_solver: LinearSolverKind::SparseLu,
            ..Default::default()
        };
        let rep = newton_solve(&sys, &mut x, &policy).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!(sys.triplet_calls.get() > 0);
        // Constant pattern: every factorisation after the first reused
        // the symbolic analysis.
        assert_eq!(rep.symbolic_reuses, rep.factorisations - 1);
    }

    #[test]
    fn pinned_core_budget_does_not_change_results() {
        let policy = NewtonPolicy {
            linear_solver: LinearSolverKind::Klu,
            ..Default::default()
        };
        let mut serial = vec![2.0, 0.5];
        let mut engine = NewtonEngine::new();
        engine.solve(&TwoDim, &mut serial, &policy).unwrap();

        let mut budgeted = vec![2.0, 0.5];
        let mut engine = NewtonEngine::new();
        engine.set_core_budget(Some(linsolve::CoreBudget::new(4, 4)));
        engine.solve(&TwoDim, &mut budgeted, &policy).unwrap();
        assert!(
            linsolve::CoreBudget::ambient().is_none(),
            "budget install must not leak past solve()"
        );
        for (s, b) in serial.iter().zip(budgeted.iter()) {
            assert_eq!(s.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn singular_jacobian_detected() {
        struct Flat;
        impl NewtonSystem for Flat {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, _x: &[f64], out: &mut [f64]) {
                out[0] = 1.0;
            }
            fn jacobian(&self, _x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 0.0;
            }
        }
        let mut x = vec![0.0];
        assert!(matches!(
            newton_solve(&Flat, &mut x, &NewtonPolicy::default()),
            Err(NewtonError::Singular { .. })
        ));
    }

    #[test]
    fn iteration_budget_respected() {
        struct Hard;
        impl NewtonSystem for Hard {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0].atan() + 2.0; // no root: atan ∈ (-π/2, π/2)
            }
            fn jacobian(&self, x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 1.0 / (1.0 + x[0] * x[0]);
            }
        }
        let mut x = vec![0.0];
        let policy = NewtonPolicy {
            max_iter: 8,
            ..Default::default()
        };
        assert!(matches!(
            newton_solve(&Hard, &mut x, &policy),
            Err(NewtonError::NoConvergence { iterations: 8, .. })
        ));
    }

    #[test]
    fn damping_rescues_overshoot() {
        // Start far away where full Newton overshoots on x³-1.
        struct Cubic;
        impl NewtonSystem for Cubic {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0].powi(3) - 1.0;
            }
            fn jacobian(&self, x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 3.0 * x[0] * x[0];
            }
        }
        let mut x = vec![0.01];
        let rep = newton_solve(&Cubic, &mut x, &NewtonPolicy::default()).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!(rep.damped_steps > 0, "{rep:?}");
    }

    #[test]
    fn residual_law_converges_without_factoring_at_the_root() {
        // Starting exactly at the root with the relative-residual law:
        // no factorisation, no step.
        let mut x = vec![2.0];
        let policy = NewtonPolicy {
            residual_tol: Some(1e-8),
            ..Default::default()
        };
        let rep = newton_solve(&Quadratic, &mut x, &policy).unwrap();
        assert_eq!(rep.iterations, 0);
        assert_eq!(rep.factorisations, 0);
        assert_eq!(rep.residual_evals, 1);
    }

    #[test]
    fn trust_region_respects_damp_limit_and_step_bound() {
        use std::cell::Cell;
        /// Linear system whose hooks cap the step and log the λ used.
        struct Limited {
            seen_lambda: Cell<f64>,
        }
        impl NewtonSystem for Limited {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0] - 8.0;
            }
            fn jacobian(&self, _x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 1.0;
            }
            fn damp_limit(&self, _x: &[f64], dx: &[f64]) -> f64 {
                // Never move more than 2 at once.
                (2.0 / dx[0].abs()).min(1.0)
            }
            fn step_allowed(&self, _x: &[f64], dx: &[f64], lambda: f64) -> bool {
                self.seen_lambda.set(lambda);
                lambda * dx[0].abs() <= 2.0 + 1e-12
            }
        }
        let sys = Limited {
            seen_lambda: Cell::new(f64::NAN),
        };
        let mut x = vec![0.0];
        let policy = NewtonPolicy {
            damping: Damping::TrustRegion {
                min_lambda: 1.0 / 1024.0,
            },
            residual_tol: Some(1e-10),
            max_iter: 10,
            ..Default::default()
        };
        let rep = newton_solve(&sys, &mut x, &policy).unwrap();
        assert!((x[0] - 8.0).abs() < 1e-9);
        // The 8-long first step was capped to 2, so at least 4 steps ran.
        assert!(rep.iterations >= 4, "{rep:?}");
        assert!(rep.damped_steps > 0);
    }

    #[test]
    fn trust_region_floor_fails_cleanly() {
        struct Never;
        impl NewtonSystem for Never {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0] - 1.0;
            }
            fn jacobian(&self, _x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 1.0;
            }
            fn step_allowed(&self, _x: &[f64], _dx: &[f64], _lambda: f64) -> bool {
                false
            }
        }
        let mut x = vec![0.0];
        let policy = NewtonPolicy {
            damping: Damping::TrustRegion {
                min_lambda: 1.0 / 1024.0,
            },
            ..Default::default()
        };
        assert!(matches!(
            newton_solve(&Never, &mut x, &policy),
            Err(NewtonError::NoConvergence { iterations: 0, .. })
        ));
    }

    #[test]
    fn non_finite_residual_fails_instead_of_spinning() {
        struct Nan;
        impl NewtonSystem for Nan {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, _x: &[f64], out: &mut [f64]) {
                out[0] = f64::NAN;
            }
            fn jacobian(&self, _x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 1.0;
            }
        }
        let mut x = vec![0.0];
        let err = newton_solve(&Nan, &mut x, &NewtonPolicy::default()).unwrap_err();
        assert!(matches!(err, NewtonError::NoConvergence { .. }), "{err}");
    }

    #[test]
    fn engine_reuses_symbolic_across_solves() {
        use std::cell::Cell;
        struct SparseLinear {
            rhs: Cell<f64>,
        }
        impl NewtonSystem for SparseLinear {
            fn dim(&self) -> usize {
                2
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = 3.0 * x[0] + x[1] - self.rhs.get();
                out[1] = x[0] + 2.0 * x[1];
            }
            fn jacobian(&self, _x: &[f64], _out: &mut DMat) {
                panic!("sparse path expected");
            }
            fn jacobian_triplets(&self, _x: &[f64], out: &mut Triplets) -> bool {
                out.push(0, 0, 3.0);
                out.push(0, 1, 1.0);
                out.push(1, 0, 1.0);
                out.push(1, 1, 2.0);
                true
            }
        }
        let sys = SparseLinear {
            rhs: Cell::new(1.0),
        };
        let policy = NewtonPolicy {
            linear_solver: LinearSolverKind::SparseLu,
            ..Default::default()
        };
        let mut engine = NewtonEngine::new();
        let mut x = vec![0.0, 0.0];
        engine.solve(&sys, &mut x, &policy).unwrap();
        // Second solve (new rhs, same pattern): first factorisation of
        // the new solve already reuses the cached symbolic analysis.
        sys.rhs.set(-2.0);
        let mut x = vec![0.0, 0.0];
        let rep = engine.solve(&sys, &mut x, &policy).unwrap();
        assert_eq!(rep.symbolic_reuses, rep.factorisations, "{rep:?}");
        assert!(engine.factor_stats().symbolic_reuses >= rep.factorisations);
    }

    #[test]
    fn reuse_can_be_disabled() {
        let policy = NewtonPolicy {
            linear_solver: LinearSolverKind::SparseLu,
            reuse_symbolic: false,
            ..Default::default()
        };
        let mut x = vec![2.0, 0.5];
        struct SparseTwo;
        impl NewtonSystem for SparseTwo {
            fn dim(&self) -> usize {
                2
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                TwoDim.residual(x, out);
            }
            fn jacobian(&self, x: &[f64], out: &mut DMat) {
                TwoDim.jacobian(x, out);
            }
            fn jacobian_triplets(&self, x: &[f64], out: &mut Triplets) -> bool {
                out.push(0, 0, 2.0 * x[0]);
                out.push(0, 1, 2.0 * x[1]);
                out.push(1, 0, 1.0);
                out.push(1, 1, -1.0);
                true
            }
        }
        let rep = newton_solve(&SparseTwo, &mut x, &policy).unwrap();
        assert_eq!(rep.symbolic_reuses, 0, "{rep:?}");
        assert!(rep.factorisations > 1);
    }

    #[test]
    fn stats_available_after_failure() {
        struct Hard;
        impl NewtonSystem for Hard {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0].atan() + 2.0;
            }
            fn jacobian(&self, x: &[f64], out: &mut DMat) {
                out[(0, 0)] = 1.0 / (1.0 + x[0] * x[0]);
            }
        }
        let mut engine = NewtonEngine::new();
        let mut x = vec![0.0];
        let policy = NewtonPolicy {
            max_iter: 3,
            ..Default::default()
        };
        assert!(engine.solve(&Hard, &mut x, &policy).is_err());
        let stats = engine.stats();
        assert_eq!(stats.iterations, 3);
        assert_eq!(stats.factorisations, 3);
        assert!(stats.residual_evals >= 4);
    }

    #[test]
    fn error_display() {
        let e = NewtonError::NoConvergence {
            iterations: 5,
            residual: 1e-2,
        };
        assert!(e.to_string().contains("5 iterations"));
        let e = NewtonError::Singular { cause: "x".into() };
        assert!(e.to_string().contains("singular"));
        assert!(NewtonError::BadInput("y".into()).to_string().contains("y"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NewtonError>();
        assert_send_sync::<NewtonPolicy>();
        assert_send_sync::<NewtonStats>();
    }
}
