//! Property tests for the shared Newton engine:
//!
//! * accepted damped steps never increase the residual norm unless the
//!   line search bottomed out at its `min_lambda` floor (the SPICE
//!   escape hatch, reported in `NewtonStats::min_lambda_hits`);
//! * iteration counts always respect the configured budget;
//! * per-solve statistics are internally consistent (factorisation,
//!   reuse, and residual-evaluation counters).

use newtonkit::{NewtonEngine, NewtonError, NewtonPolicy, NewtonSystem};
use numkit::vecops::norm2;
use numkit::DMat;
use proptest::prelude::*;
use sparsekit::Triplets;

/// Diagonally dominant linear part plus a cubic diagonal perturbation:
/// `r_i = Σ_j A_ij·x_j + c_i·x_i³ − b_i`. Well-posed for every draw, and
/// nonlinear enough to exercise damping.
struct PolySys {
    n: usize,
    a: Vec<f64>, // row-major n×n
    c: Vec<f64>,
    b: Vec<f64>,
}

impl PolySys {
    fn build(n: usize, off: &[f64], c: &[f64], b: &[f64]) -> Self {
        let mut a = vec![0.0; n * n];
        let mut k = 0;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    a[i * n + j] = 4.0 + c[i]; // dominant diagonal
                } else {
                    a[i * n + j] = off[k % off.len()] - 0.5; // in (-0.5, 0.5)
                    k += 1;
                }
            }
        }
        PolySys {
            n,
            a,
            c: c.to_vec(),
            b: b.to_vec(),
        }
    }
}

impl NewtonSystem for PolySys {
    fn dim(&self) -> usize {
        self.n
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = -self.b[i] + self.c[i] * x[i].powi(3);
            for (j, &xj) in x.iter().enumerate() {
                acc += self.a[i * self.n + j] * xj;
            }
            *slot = acc;
        }
    }

    fn jacobian(&self, x: &[f64], out: &mut DMat) {
        for (i, &xi) in x.iter().enumerate() {
            for j in 0..self.n {
                out[(i, j)] = self.a[i * self.n + j];
            }
            out[(i, i)] += 3.0 * self.c[i] * xi * xi;
        }
    }

    fn jacobian_triplets(&self, x: &[f64], out: &mut Triplets) -> bool {
        // Push every entry (zeros included) so the pattern is constant
        // across iterations and the symbolic cache always applies.
        for (i, &xi) in x.iter().enumerate() {
            for j in 0..self.n {
                out.push(i, j, self.a[i * self.n + j]);
            }
            out.push(i, i, 3.0 * self.c[i] * xi * xi);
        }
        true
    }
}

fn rnorm_at(sys: &PolySys, x: &[f64]) -> f64 {
    let mut r = vec![0.0; sys.dim()];
    sys.residual(x, &mut r);
    norm2(&r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Driving the engine one iteration at a time, every accepted damped
    /// step leaves `‖r‖₂` no larger than before — except when the line
    /// search bottomed out, which the stats must report.
    #[test]
    fn accepted_damped_steps_never_increase_residual(
        off in prop::collection::vec(0.0..1.0f64, 12),
        c in prop::collection::vec(0.0..0.4f64, 4),
        b in prop::collection::vec(-2.0..2.0f64, 4),
        x0 in prop::collection::vec(-3.0..3.0f64, 4),
    ) {
        let sys = PolySys::build(4, &off, &c, &b);
        let mut engine = NewtonEngine::new();
        let one_step = NewtonPolicy { max_iter: 1, ..Default::default() };
        let mut x = x0.clone();
        let mut prev = rnorm_at(&sys, &x);
        for _step in 0..25 {
            let converged = match engine.solve(&sys, &mut x, &one_step) {
                Ok(_) => true,
                Err(NewtonError::NoConvergence { .. }) => false,
                Err(e) => panic!("unexpected {e}"),
            };
            let stats = engine.stats();
            let now = rnorm_at(&sys, &x);
            prop_assert!(
                now <= prev || stats.min_lambda_hits > 0,
                "residual grew {prev} -> {now} without a floor hit: {stats:?}"
            );
            prev = now;
            if converged {
                break;
            }
        }
    }

    /// The engine never exceeds its iteration budget, converged or not.
    #[test]
    fn iteration_counts_respect_budgets(
        off in prop::collection::vec(0.0..1.0f64, 12),
        c in prop::collection::vec(0.0..0.4f64, 3),
        b in prop::collection::vec(-2.0..2.0f64, 3),
        x0 in prop::collection::vec(-3.0..3.0f64, 3),
        budget in 1usize..8,
    ) {
        let sys = PolySys::build(3, &off, &c, &b);
        let policy = NewtonPolicy { max_iter: budget, ..Default::default() };
        let mut engine = NewtonEngine::new();
        let mut x = x0.clone();
        let _ = engine.solve(&sys, &mut x, &policy);
        let stats = engine.stats();
        prop_assert!(stats.iterations <= budget, "{stats:?}");
        if let Err(NewtonError::NoConvergence { iterations, .. }) =
            engine.solve(&sys, &mut x, &NewtonPolicy { max_iter: 0, ..policy })
        {
            prop_assert_eq!(iterations, 0);
        }
    }

    /// Counter consistency: one factorisation per iteration, at least one
    /// residual evaluation per iteration plus the initial one, reuse and
    /// damping counters bounded by the factorisation/iteration counts —
    /// and on the constant-pattern sparse path, every factorisation after
    /// the first reuses the symbolic analysis.
    #[test]
    fn stats_are_consistent(
        off in prop::collection::vec(0.0..1.0f64, 12),
        c in prop::collection::vec(0.0..0.4f64, 4),
        b in prop::collection::vec(-2.0..2.0f64, 4),
        x0 in prop::collection::vec(-3.0..3.0f64, 4),
        sparse in 0usize..2,
    ) {
        let sys = PolySys::build(4, &off, &c, &b);
        let policy = NewtonPolicy {
            linear_solver: if sparse == 1 {
                linsolve::LinearSolverKind::SparseLu
            } else {
                linsolve::LinearSolverKind::Dense
            },
            ..Default::default()
        };
        let mut engine = NewtonEngine::new();
        let mut x = x0.clone();
        let result = engine.solve(&sys, &mut x, &policy);
        let stats = engine.stats();
        prop_assert_eq!(stats.factorisations, stats.iterations, "{:?}", stats);
        prop_assert!(stats.residual_evals > stats.iterations, "{stats:?}");
        prop_assert!(stats.symbolic_reuses <= stats.factorisations, "{stats:?}");
        prop_assert!(stats.damped_steps <= stats.iterations, "{stats:?}");
        prop_assert!(stats.min_lambda_hits <= stats.damped_steps, "{stats:?}");
        if sparse == 1 {
            prop_assert_eq!(
                stats.symbolic_reuses,
                stats.factorisations.saturating_sub(1),
                "constant pattern must reuse: {:?}", stats
            );
        }
        if let Ok(rep) = result {
            prop_assert_eq!(rep, stats);
            prop_assert!(rep.residual_norm.is_finite());
        }
    }
}
