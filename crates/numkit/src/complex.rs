//! Minimal but complete complex arithmetic.
//!
//! The standard library offers no complex type; external crates are out of
//! scope for this reproduction, so we provide our own. [`Complex64`] is a
//! plain `(re, im)` pair of `f64` with value semantics and the full set of
//! arithmetic operators, including mixed `f64` operands.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use numkit::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` — a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (no square root).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z == 0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    // Complex division is multiplication by the reciprocal; clippy's
    // suspicious-arithmetic-impl heuristic expects a literal `/` here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-14;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-14);
    }

    #[test]
    fn division_by_self_is_one() {
        let z = Complex64::new(-2.5, 7.25);
        let one = z / z;
        assert!((one.re - 1.0).abs() < EPS);
        assert!(one.im.abs() < EPS);
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.7;
        let e = Complex64::new(0.0, theta).exp();
        let c = Complex64::cis(theta);
        assert!((e - c).abs() < EPS);
    }

    #[test]
    fn exp_addition_law() {
        let a = Complex64::new(0.3, -0.9);
        let b = Complex64::new(-1.1, 0.4);
        let lhs = (a + b).exp();
        let rhs = a.exp() * b.exp();
        assert!((lhs - rhs).abs() < 1e-13);
    }

    #[test]
    fn mixed_real_ops() {
        let z = Complex64::new(1.0, 1.0);
        assert_eq!(z + 1.0, Complex64::new(2.0, 1.0));
        assert_eq!(z - 1.0, Complex64::new(0.0, 1.0));
        assert_eq!(z * 2.0, Complex64::new(2.0, 2.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, 0.5));
        assert_eq!(2.0 * z, Complex64::new(2.0, 2.0));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 0.0);
        z += Complex64::I;
        z *= Complex64::new(0.0, 1.0);
        z -= Complex64::new(-1.0, 0.0);
        z /= Complex64::new(0.0, 1.0);
        assert!((z - Complex64::new(1.0, 0.0)).abs() < EPS);
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Complex64::new(1.0, 1.0); 10];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, Complex64::new(10.0, 10.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn norm_sqr_matches_abs() {
        let z = Complex64::new(3.0, -4.0);
        assert!((z.norm_sqr() - z.abs() * z.abs()).abs() < 1e-12);
    }
}
