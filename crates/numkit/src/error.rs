//! Error type shared by the dense numerical kernels.

use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// A matrix was numerically singular at the given elimination step.
    Singular {
        /// Pivot (column) index at which elimination broke down.
        pivot: usize,
    },
    /// Operand shapes are incompatible, e.g. mat-vec with wrong length.
    DimensionMismatch {
        /// What the operation expected.
        expected: String,
        /// What it got.
        found: String,
    },
    /// An argument was out of its legal domain (e.g. empty knot set).
    InvalidArgument(String),
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::Singular { pivot } => {
                write!(f, "matrix is numerically singular at pivot {pivot}")
            }
            NumError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_singular() {
        let e = NumError::Singular { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is numerically singular at pivot 3");
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = NumError::DimensionMismatch {
            expected: "3x3".into(),
            found: "2x3".into(),
        };
        assert!(e.to_string().contains("expected 3x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumError>();
    }
}
