//! Interpolation on non-uniform 1-D grids.
//!
//! Two schemes are provided:
//!
//! * [`interp_linear`] — piecewise linear, used for quick lookups;
//! * [`Pchip`] — monotone piecewise-cubic Hermite (Fritsch–Carlson), used to
//!   interpolate slow-time-scale envelopes (`ω(t2)`, Fourier coefficients)
//!   without the overshoot a plain cubic spline would introduce.

use crate::error::NumError;

/// Locates the interval `[xs[i], xs[i+1])` containing `x` by binary search.
///
/// Clamps to the first/last interval when `x` is outside the knot range.
fn bracket(xs: &[f64], x: f64) -> usize {
    let n = xs.len();
    if x <= xs[0] {
        return 0;
    }
    if x >= xs[n - 1] {
        return n - 2;
    }
    // partition_point returns the first index with xs[i] > x.
    let hi = xs.partition_point(|&v| v <= x);
    hi.saturating_sub(1).min(n - 2)
}

/// Piecewise-linear interpolation of `(xs, ys)` at `x`.
///
/// Values outside the knot range are extrapolated from the end segments.
///
/// # Errors
///
/// Returns [`NumError::InvalidArgument`] when fewer than two knots are given
/// or the lengths differ.
pub fn interp_linear(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, NumError> {
    if xs.len() < 2 || xs.len() != ys.len() {
        return Err(NumError::InvalidArgument(
            "interp_linear needs >=2 knots with matching values".into(),
        ));
    }
    let i = bracket(xs, x);
    let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    Ok(ys[i] + t * (ys[i + 1] - ys[i]))
}

/// Monotone piecewise-cubic Hermite interpolant (PCHIP, Fritsch–Carlson).
///
/// Preserves monotonicity of the data — no spurious oscillation between
/// knots — which matters when interpolating local-frequency envelopes that
/// must stay positive.
///
/// # Example
///
/// ```
/// use numkit::interp::Pchip;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let p = Pchip::new(&[0.0, 1.0, 2.0], &[0.0, 1.0, 4.0])?;
/// let y = p.eval(1.5);
/// assert!(y > 1.0 && y < 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Pchip {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Knot derivatives.
    d: Vec<f64>,
}

impl Pchip {
    /// Builds the interpolant from strictly increasing knots.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidArgument`] for fewer than two knots,
    /// mismatched lengths, or non-increasing knots.
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumError> {
        if xs.len() < 2 || xs.len() != ys.len() {
            return Err(NumError::InvalidArgument(
                "pchip needs >=2 knots with matching values".into(),
            ));
        }
        for w in xs.windows(2) {
            if w[1] <= w[0] {
                return Err(NumError::InvalidArgument(
                    "pchip knots must be strictly increasing".into(),
                ));
            }
        }
        let n = xs.len();
        let mut h = vec![0.0; n - 1];
        let mut delta = vec![0.0; n - 1];
        for i in 0..n - 1 {
            h[i] = xs[i + 1] - xs[i];
            delta[i] = (ys[i + 1] - ys[i]) / h[i];
        }
        let mut d = vec![0.0; n];
        if n == 2 {
            d[0] = delta[0];
            d[1] = delta[0];
        } else {
            // Interior: weighted harmonic mean when slopes agree in sign.
            for i in 1..n - 1 {
                if delta[i - 1] * delta[i] > 0.0 {
                    let w1 = 2.0 * h[i] + h[i - 1];
                    let w2 = h[i] + 2.0 * h[i - 1];
                    d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
                } else {
                    d[i] = 0.0;
                }
            }
            d[0] = edge_derivative(h[0], h[1], delta[0], delta[1]);
            d[n - 1] = edge_derivative(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
        }
        Ok(Pchip {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            d,
        })
    }

    /// Evaluates the interpolant at `x` (clamped extrapolation at the ends).
    pub fn eval(&self, x: f64) -> f64 {
        let i = bracket(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let (t2, t3) = (t * t, t * t * t);
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i] + h10 * h * self.d[i] + h01 * self.ys[i + 1] + h11 * h * self.d[i + 1]
    }

    /// Evaluates at many points.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// The knot abscissae.
    pub fn knots(&self) -> &[f64] {
        &self.xs
    }
}

/// One-sided three-point derivative estimate for PCHIP end conditions,
/// limited per Fritsch–Carlson to keep the interpolant monotone.
fn edge_derivative(h0: f64, h1: f64, d0: f64, d1: f64) -> f64 {
    let d = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if d * d0 <= 0.0 {
        0.0
    } else if d0 * d1 < 0.0 && d.abs() > 3.0 * d0.abs() {
        3.0 * d0
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_midpoint() {
        let y = interp_linear(&[0.0, 1.0], &[0.0, 2.0], 0.5).unwrap();
        assert!((y - 1.0).abs() < 1e-15);
    }

    #[test]
    fn linear_extrapolates() {
        let y = interp_linear(&[0.0, 1.0], &[0.0, 2.0], 2.0).unwrap();
        assert!((y - 4.0).abs() < 1e-15);
    }

    #[test]
    fn linear_rejects_short_input() {
        assert!(interp_linear(&[0.0], &[0.0], 0.5).is_err());
    }

    #[test]
    fn pchip_reproduces_knots() {
        let xs = [0.0, 0.5, 1.3, 2.0];
        let ys = [1.0, -1.0, 0.5, 3.0];
        let p = Pchip::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((p.eval(*x) - y).abs() < 1e-13);
        }
    }

    #[test]
    fn pchip_is_monotone_on_monotone_data() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(2)).collect();
        let p = Pchip::new(&xs, &ys).unwrap();
        let fine: Vec<f64> = (0..900).map(|i| i as f64 / 100.0).collect();
        let vals = p.eval_many(&fine);
        for w in vals.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "pchip overshoot: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn pchip_two_points_is_linear() {
        let p = Pchip::new(&[0.0, 2.0], &[0.0, 4.0]).unwrap();
        assert!((p.eval(1.0) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn pchip_rejects_unsorted() {
        assert!(Pchip::new(&[0.0, 0.0, 1.0], &[1.0, 2.0, 3.0]).is_err());
        assert!(Pchip::new(&[1.0, 0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn pchip_exact_on_linear_data() {
        let xs = [0.0, 1.0, 2.5, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let p = Pchip::new(&xs, &ys).unwrap();
        for i in 0..40 {
            let x = i as f64 * 0.1;
            assert!((p.eval(x) - (3.0 * x - 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn bracket_clamps() {
        let xs = [0.0, 1.0, 2.0];
        assert_eq!(bracket(&xs, -5.0), 0);
        assert_eq!(bracket(&xs, 5.0), 1);
        assert_eq!(bracket(&xs, 0.5), 0);
        assert_eq!(bracket(&xs, 1.5), 1);
    }
}
