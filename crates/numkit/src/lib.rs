//! Dense numerical kernels for the WaMPDE suite.
//!
//! This crate provides the foundation every other crate in the workspace
//! builds on:
//!
//! * [`DMat`] — a dense, row-major, `f64` matrix with the usual algebra;
//! * [`DenseLu`] — LU factorisation with partial pivoting, the reference
//!   linear solver for small circuit Jacobians;
//! * [`Complex64`] — complex arithmetic (the standard library has none),
//!   used by the FFT and harmonic-balance machinery;
//! * [`interp`] — linear and monotone-cubic (PCHIP) interpolation used to
//!   post-process slow-time-scale solution envelopes;
//! * [`vecops`] — small vector kernels (dot products, norms, AXPY) with a
//!   compensated-summation option for long accumulations.
//!
//! # Example
//!
//! ```
//! use numkit::{DMat, DenseLu};
//!
//! # fn main() -> Result<(), numkit::NumError> {
//! let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
//! let lu = DenseLu::factor(&a)?;
//! let x = lu.solve(&[3.0, 5.0])?;
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod complex;
pub mod error;
pub mod interp;
pub mod lu;
pub mod matrix;
pub mod vecops;

pub use complex::Complex64;
pub use error::NumError;
pub use lu::DenseLu;
pub use matrix::DMat;
