//! Dense LU factorisation with partial pivoting.

use crate::error::NumError;
use crate::matrix::DMat;

/// LU factorisation with partial (row) pivoting, `P·A = L·U`.
///
/// This is the reference direct solver used for small circuit Jacobians
/// and as the ground truth the sparse solver is validated against.
///
/// # Example
///
/// ```
/// use numkit::{DMat, DenseLu};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let a = DMat::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
/// let lu = DenseLu::factor(&a)?;
/// let x = lu.solve(&[2.0, 3.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseLu {
    lu: DMat,
    perm: Vec<usize>,
    sign: f64,
}

impl DenseLu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::DimensionMismatch`] if `a` is not square.
    /// * [`NumError::Singular`] if a pivot underflows the singularity
    ///   threshold (`~1e-300` scaled by the matrix magnitude).
    pub fn factor(a: &DMat) -> Result<Self, NumError> {
        if a.nrows() != a.ncols() {
            return Err(NumError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_abs().max(1.0);
        let tiny = scale * 1e-280;

        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax <= tiny {
                return Err(NumError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= m * u;
                    }
                }
            }
        }
        Ok(DenseLu { lu, perm, sign })
    }

    /// Dimension of the factored system.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b`, overwriting `b` with the solution.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), NumError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("{}", b.len()),
            });
        }
        // Apply permutation: y = P·b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = b[self.perm[i]];
        }
        // Forward solve L·z = y (unit diagonal).
        for i in 1..n {
            let row = self.lu.row(i);
            let mut acc = y[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                acc -= row[j] * yj;
            }
            y[i] = acc;
        }
        // Back solve U·x = z.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = y[i];
            for (j, yj) in y.iter().enumerate().skip(i + 1) {
                acc -= row[j] * yj;
            }
            y[i] = acc / row[i];
        }
        b.copy_from_slice(&y);
        Ok(())
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Cheap condition estimate: ratio of extreme `|U_kk|` pivots.
    ///
    /// Not a rigorous condition number, but a useful diagnostic for
    /// near-singular circuit Jacobians.
    pub fn pivot_condition_estimate(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0_f64;
        for i in 0..self.dim() {
            let p = self.lu[(i, i)].abs();
            lo = lo.min(p);
            hi = hi.max(p);
        }
        if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }
}

/// Solves the dense system `A·x = b` in one call (factor + solve).
///
/// # Errors
///
/// Propagates factorisation errors; see [`DenseLu::factor`].
pub fn solve_dense(a: &DMat, b: &[f64]) -> Result<Vec<f64>, NumError> {
    DenseLu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_inf(a: &DMat, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b.iter())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0_f64, f64::max)
    }

    #[test]
    fn solves_diagonal() {
        let a = DMat::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let x = solve_dense(&a, &[2.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn solves_with_pivoting() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve_dense(&a, &[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn detects_singular() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            DenseLu::factor(&a),
            Err(NumError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = DMat::zeros(2, 3);
        assert!(matches!(
            DenseLu::factor(&a),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_system_small_residual() {
        // Deterministic pseudo-random fill (LCG) to avoid a rand dependency here.
        let n = 25;
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 10.0; // diagonal dominance => well-conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve_dense(&a, &b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn determinant_of_triangular() {
        let a = DMat::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        assert!((lu.det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivot() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_in_place_matches_solve() {
        let a = DMat::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        let mut b = [1.0, 2.0];
        let x = lu.solve(&b).unwrap();
        lu.solve_in_place(&mut b).unwrap();
        assert_eq!(b.to_vec(), x);
    }

    #[test]
    fn pivot_condition_estimate_identity() {
        let lu = DenseLu::factor(&DMat::identity(5)).unwrap();
        assert_eq!(lu.pivot_condition_estimate(), 1.0);
    }

    #[test]
    fn rhs_length_mismatch() {
        let lu = DenseLu::factor(&DMat::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
