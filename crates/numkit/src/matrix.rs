//! Dense row-major matrices.

use crate::error::NumError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// `DMat` is the workhorse container for small circuit Jacobians and the
/// spectral differentiation operators. It favours explicit, allocation-free
/// inner loops over operator sugar; element access is through `m[(i, j)]`.
///
/// # Example
///
/// ```
/// use numkit::DMat;
///
/// let mut a = DMat::zeros(2, 2);
/// a[(0, 0)] = 1.0;
/// a[(1, 1)] = 2.0;
/// let y = a.matvec(&[3.0, 4.0]);
/// assert_eq!(y, vec![3.0, 8.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Creates an `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DMat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        DMat { nrows, ncols, data }
    }

    /// Builds an `nrows × ncols` matrix by evaluating `f(i, j)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DMat::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Matrix–vector product `y = A·x` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
    }

    /// Transposed matrix–vector product `y = Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_transposed: x length mismatch");
        let mut y = vec![0.0; self.ncols];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &aij) in self.row(i).iter().enumerate() {
                y[j] += aij * xi;
            }
        }
        y
    }

    /// Dense matrix–matrix product `C = A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, other: &DMat) -> Result<DMat, NumError> {
        if self.ncols != other.nrows {
            return Err(NumError::DimensionMismatch {
                expected: format!("inner dim {}", self.ncols),
                found: format!("{}", other.nrows),
            });
        }
        let mut c = DMat::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let crow = c.row_mut(i);
                for (cj, bj) in crow.iter_mut().zip(brow.iter()) {
                    *cj += aik * bj;
                }
            }
        }
        Ok(c)
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DMat {
        let mut t = DMat::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// In-place scaled accumulate `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &DMat) {
        assert_eq!(self.nrows, other.nrows, "axpy: row mismatch");
        assert_eq!(self.ncols, other.ncols, "axpy: col mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Scales the whole matrix by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        self.data.iter_mut().for_each(|v| *v *= alpha);
    }

    /// Maximum absolute element (∞-norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Induced ∞-norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.ncols + j]
    }
}

impl fmt::Display for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DMat::zeros(2, 3);
        assert_eq!(z.nrows(), 2);
        assert_eq!(z.ncols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i3 = DMat::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i3[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_index() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn matvec_identity() {
        let i = DMat::identity(4);
        let x = [1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [1.0, -1.0];
        let via_t = m.transpose().matvec(&x);
        let direct = m.matvec_transposed(&x);
        assert_eq!(via_t, direct);
    }

    #[test]
    fn matmul_known_product() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, DMat::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn matmul_dimension_error() {
        let a = DMat::zeros(2, 3);
        let b = DMat::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = DMat::identity(2);
        let b = DMat::identity(2);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        a.scale(0.5);
        assert_eq!(a[(1, 1)], 1.5);
    }

    #[test]
    fn norms() {
        let m = DMat::from_rows(&[&[3.0, -4.0], &[1.0, 1.0]]);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.norm_inf(), 7.0);
        assert!((m.norm_fro() - (27.0f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn from_fn_builds_expected() {
        let m = DMat::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 1)], 11.0);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = DMat::identity(3);
        m.fill_zero();
        assert_eq!(m.max_abs(), 0.0);
    }
}
