//! Small dense-vector kernels: dot products, norms, AXPY, compensated sums.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics when lengths differ.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Maximum-magnitude norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// In-place `y += alpha·x`.
///
/// # Panics
///
/// Panics when lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    x.iter_mut().for_each(|v| *v *= alpha);
}

/// Weighted RMS norm used for integrator/Newton convergence control:
/// `sqrt(mean((x_i / (atol + rtol·|ref_i|))²))`.
///
/// A value `<= 1` means "within tolerance". This is the standard error
/// norm of ODE/DAE codes (SUNDIALS, DASSL).
///
/// # Panics
///
/// Panics when lengths differ.
pub fn wrms_norm(x: &[f64], reference: &[f64], atol: f64, rtol: f64) -> f64 {
    assert_eq!(x.len(), reference.len(), "wrms_norm: length mismatch");
    if x.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for (xi, ri) in x.iter().zip(reference.iter()) {
        let w = atol + rtol * ri.abs();
        let e = xi / w;
        acc += e * e;
    }
    (acc / x.len() as f64).sqrt()
}

/// Neumaier (improved Kahan) compensated summation.
///
/// Accurate for the long, cancellation-prone accumulations that arise when
/// integrating the warping function `φ(t) = ∫ω dτ` over thousands of steps.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompensatedSum {
    sum: f64,
    comp: f64,
}

impl CompensatedSum {
    /// Creates a fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.comp += (self.sum - t) + v;
        } else {
            self.comp += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

/// Sums a slice with compensation.
pub fn compensated_sum(xs: &[f64]) -> f64 {
    let mut acc = CompensatedSum::new();
    for &x in xs {
        acc.add(x);
    }
    acc.value()
}

/// Linearly spaced grid of `n` points covering `[a, b]` inclusive.
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let h = (b - a) / (n - 1) as f64;
    (0..n).map(|i| a + h * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, [3.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, [1.0, -2.0]);
    }

    #[test]
    fn wrms_within_tolerance_is_leq_one() {
        let x = [1e-9, -1e-9];
        let r = [1.0, 1.0];
        assert!(wrms_norm(&x, &r, 1e-9, 1e-6) <= 1.0 + 1e-12);
    }

    #[test]
    fn wrms_empty_is_zero() {
        assert_eq!(wrms_norm(&[], &[], 1e-9, 1e-6), 0.0);
    }

    #[test]
    fn compensated_sum_beats_naive() {
        // 1 + 1e-16 repeated: naive summation loses the small terms.
        let mut xs = vec![1.0];
        xs.extend(std::iter::repeat_n(1e-16, 10_000));
        let naive: f64 = xs.iter().sum();
        let comp = compensated_sum(&xs);
        let exact = 1.0 + 1e-12;
        assert!((comp - exact).abs() < (naive - exact).abs() || naive == exact);
        assert!((comp - exact).abs() < 1e-15);
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[4], 1.0);
        assert!((g[1] - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn linspace_rejects_single_point() {
        let _ = linspace(0.0, 1.0, 1);
    }
}
