//! Property-based tests for the dense kernels.

use numkit::interp::{interp_linear, Pchip};
use numkit::vecops::{compensated_sum, linspace, norm2, wrms_norm};
use numkit::{Complex64, DMat, DenseLu};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LU solve then multiply returns the rhs for well-conditioned systems.
    #[test]
    fn lu_solve_residual(
        n in 1usize..20,
        seed in prop::collection::vec(-1.0f64..1.0, 400),
        rhs in prop::collection::vec(-10.0f64..10.0, 20),
    ) {
        let mut a = DMat::zeros(n, n);
        let mut k = 0;
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = seed[k % seed.len()];
                k += 1;
            }
            a[(i, i)] += n as f64 + 2.0; // diagonal dominance
        }
        let b: Vec<f64> = (0..n).map(|i| rhs[i % rhs.len()]).collect();
        let x = DenseLu::factor(&a).unwrap().solve(&b).unwrap();
        let back = a.matvec(&x);
        for (p, q) in back.iter().zip(b.iter()) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }

    /// det(P·A) = ±det(A): the determinant of a permuted identity is ±1.
    #[test]
    fn determinant_of_scaled_identity(scale in 0.1f64..10.0, n in 1usize..8) {
        let mut a = DMat::identity(n);
        a.scale(scale);
        let lu = DenseLu::factor(&a).unwrap();
        prop_assert!((lu.det() - scale.powi(n as i32)).abs() < 1e-9 * scale.powi(n as i32));
    }

    /// Complex multiplication is associative and distributive (within fp
    /// tolerance).
    #[test]
    fn complex_field_axioms(
        a in (-1e3f64..1e3, -1e3f64..1e3),
        b in (-1e3f64..1e3, -1e3f64..1e3),
        c in (-1e3f64..1e3, -1e3f64..1e3),
    ) {
        let (a, b, c) = (
            Complex64::new(a.0, a.1),
            Complex64::new(b.0, b.1),
            Complex64::new(c.0, c.1),
        );
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        let scale = a.abs() * b.abs() * c.abs() + 1.0;
        prop_assert!((lhs - rhs).abs() < 1e-10 * scale);
        let dist = a * (b + c);
        let dist2 = a * b + a * c;
        prop_assert!((dist - dist2).abs() < 1e-10 * scale);
    }

    /// |z·w| = |z|·|w|.
    #[test]
    fn complex_abs_multiplicative(
        z in (-1e3f64..1e3, -1e3f64..1e3),
        w in (-1e3f64..1e3, -1e3f64..1e3),
    ) {
        let (z, w) = (Complex64::new(z.0, z.1), Complex64::new(w.0, w.1));
        prop_assert!(((z * w).abs() - z.abs() * w.abs()).abs() < 1e-7 * (1.0 + z.abs() * w.abs()));
    }

    /// Compensated summation is at least as accurate as naive summation
    /// against a shuffled-order reference.
    #[test]
    fn compensated_sum_is_stable(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        // Reference: sum in descending-magnitude order with f64 is close
        // enough for these magnitudes; the property checked is agreement.
        let comp = compensated_sum(&xs);
        let naive: f64 = xs.iter().sum();
        prop_assert!((comp - naive).abs() <= 1e-6 * xs.iter().map(|v| v.abs()).sum::<f64>().max(1.0));
    }

    /// Linear interpolation is exact on affine data.
    #[test]
    fn linear_interp_affine(a in -5.0f64..5.0, b in -5.0f64..5.0, x in 0.0f64..3.0) {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|&t| a * t + b).collect();
        let got = interp_linear(&xs, &ys, x).unwrap();
        prop_assert!((got - (a * x + b)).abs() < 1e-10);
    }

    /// PCHIP stays within the data range on monotone data (no overshoot).
    #[test]
    fn pchip_bounded(increments in prop::collection::vec(0.001f64..1.0, 3..15)) {
        let mut ys = vec![0.0];
        for d in &increments {
            ys.push(ys.last().unwrap() + d);
        }
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let p = Pchip::new(&xs, &ys).unwrap();
        let top = *ys.last().unwrap();
        for k in 0..100 {
            let x = (ys.len() - 1) as f64 * k as f64 / 99.0;
            let v = p.eval(x);
            prop_assert!(v >= -1e-9 && v <= top + 1e-9, "out of range at {x}: {v}");
        }
    }

    /// wrms norm scales linearly with its argument.
    #[test]
    fn wrms_homogeneous(xs in prop::collection::vec(-1.0f64..1.0, 1..20), s in 0.1f64..10.0) {
        let reference = vec![1.0; xs.len()];
        let base = wrms_norm(&xs, &reference, 1e-9, 1e-3);
        let scaled: Vec<f64> = xs.iter().map(|v| v * s).collect();
        let got = wrms_norm(&scaled, &reference, 1e-9, 1e-3);
        prop_assert!((got - s * base).abs() < 1e-9 * (1.0 + got));
    }

    /// linspace endpoints and spacing.
    #[test]
    fn linspace_uniform(a in -10.0f64..10.0, span in 0.1f64..10.0, n in 2usize..50) {
        let g = linspace(a, a + span, n);
        prop_assert!((g[0] - a).abs() < 1e-12);
        prop_assert!((g[n - 1] - (a + span)).abs() < 1e-12);
        let h = span / (n - 1) as f64;
        for w in g.windows(2) {
            prop_assert!((w[1] - w[0] - h).abs() < 1e-9);
        }
        prop_assert!(norm2(&g).is_finite());
    }
}
