//! The collecting recorder and its two export sinks.

use crate::json;
use crate::metrics::MetricsRegistry;
use crate::recorder::{AttrValue, Recorder, SpanId};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// One recorded span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Recorder-assigned id (1-based, creation order).
    pub id: SpanId,
    /// Enclosing span at creation time, if any.
    pub parent: Option<SpanId>,
    /// Span name (`sweep`, `job`, `analysis`, `time-step`, …).
    pub name: &'static str,
    /// Small dense thread index (0 = first thread seen).
    pub tid: u64,
    /// Start, nanoseconds since the recorder's epoch.
    pub t0_ns: u64,
    /// End, nanoseconds since the epoch (`None` while live).
    pub t1_ns: Option<u64>,
    /// Structured attributes in attachment order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// One recorded instant event (a convergence-trace row).
#[derive(Debug, Clone)]
pub struct PointRecord {
    /// Event name (`step.accept`, `newton.iter`, …).
    pub name: &'static str,
    /// Enclosing span at emission time, if any.
    pub parent: Option<SpanId>,
    /// Small dense thread index.
    pub tid: u64,
    /// Timestamp, nanoseconds since the epoch.
    pub t_ns: u64,
    /// Structured attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    points: Vec<PointRecord>,
    metrics: MetricsRegistry,
    tids: HashMap<ThreadId, u64>,
}

impl Inner {
    fn tid(&mut self) -> u64 {
        let next = self.tids.len() as u64;
        *self.tids.entry(std::thread::current().id()).or_insert(next)
    }
}

/// A [`Recorder`] that collects spans, points and metrics in memory and
/// exports them as a Chrome `trace_event` JSON file and a metrics JSONL
/// dump.
///
/// One instance is shared (via `Arc`) by every thread of a run; a
/// single mutex guards the buffers. That is deliberate: events are
/// microsecond-scale (time steps, Newton iterations, factorisations),
/// so contention is negligible next to the numeric work — `repro
/// --table obs` asserts the end-to-end overhead stays under 5%.
pub struct CollectingRecorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for CollectingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectingRecorder {
    /// A fresh recorder; its clock epoch is `now`.
    pub fn new() -> Self {
        CollectingRecorder {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking instrumented thread must not silence everyone
        // else's data: recover the poisoned buffers.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Snapshot of all spans recorded so far (creation order).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Snapshot of all instant events recorded so far.
    pub fn points(&self) -> Vec<PointRecord> {
        self.lock().points.clone()
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        self.lock().metrics.clone()
    }

    /// Current value of a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().metrics.counter(name)
    }

    /// True when nothing at all has been recorded.
    pub fn is_empty(&self) -> bool {
        let g = self.lock();
        g.spans.is_empty()
            && g.points.is_empty()
            && g.metrics.counters().next().is_none()
            && g.metrics.histograms().next().is_none()
    }

    /// Export everything as Chrome `trace_event` JSON (the
    /// `{"traceEvents":[…]}` object form), loadable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// Spans become `"ph":"X"` complete events (`ts`/`dur` in
    /// microseconds), instant events become `"ph":"i"`, and attributes
    /// land in `args`. Spans still live at export time are closed at
    /// the latest observed timestamp.
    pub fn to_chrome_trace(&self) -> String {
        let g = self.lock();
        let horizon_ns = g
            .spans
            .iter()
            .filter_map(|s| s.t1_ns)
            .chain(g.spans.iter().map(|s| s.t0_ns))
            .chain(g.points.iter().map(|p| p.t_ns))
            .max()
            .unwrap_or(0);

        let mut out = String::new();
        out.push_str("{\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"wampde\"}}",
        );
        for s in &g.spans {
            out.push(',');
            out.push_str("{\"name\":");
            json::string_into(&mut out, s.name);
            let t1 = s.t1_ns.unwrap_or(horizon_ns).max(s.t0_ns);
            let _ = write!(
                out,
                ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
                s.tid,
                us(s.t0_ns),
                us(t1 - s.t0_ns)
            );
            out.push_str(",\"args\":");
            let mut attrs = s.attrs.clone();
            attrs.push(("span_id", AttrValue::U64(s.id.0)));
            if let Some(p) = s.parent {
                attrs.push(("parent_id", AttrValue::U64(p.0)));
            }
            json::attrs_into(&mut out, &attrs);
            out.push('}');
        }
        for p in &g.points {
            out.push(',');
            out.push_str("{\"name\":");
            json::string_into(&mut out, p.name);
            let _ = write!(
                out,
                ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}",
                p.tid,
                us(p.t_ns)
            );
            out.push_str(",\"args\":");
            json::attrs_into(&mut out, &p.attrs);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Export metrics and convergence-trace rows as JSON lines.
    ///
    /// Three record kinds, one JSON object per line:
    ///
    /// ```text
    /// {"kind":"counter","name":"sweep.cache_hits","value":12}
    /// {"kind":"histogram","name":"step.h","count":40,"sum":…,"min":…,"max":…}
    /// {"kind":"point","name":"step.reject","t_us":…,"tid":0,"attrs":{"h":…,"reason":"lte"}}
    /// ```
    ///
    /// Counters and histograms come first, sorted by name; points
    /// follow in recording order.
    pub fn to_metrics_jsonl(&self) -> String {
        let g = self.lock();
        let mut out = String::new();
        for (name, v) in g.metrics.counters() {
            out.push_str("{\"kind\":\"counter\",\"name\":");
            json::string_into(&mut out, name);
            let _ = writeln!(out, ",\"value\":{v}}}");
        }
        for (name, h) in g.metrics.histograms() {
            out.push_str("{\"kind\":\"histogram\",\"name\":");
            json::string_into(&mut out, name);
            let _ = write!(out, ",\"count\":{},\"sum\":", h.count);
            json::f64_into(&mut out, h.sum);
            out.push_str(",\"min\":");
            json::f64_into(&mut out, h.min);
            out.push_str(",\"max\":");
            json::f64_into(&mut out, h.max);
            out.push_str("}\n");
        }
        for p in &g.points {
            out.push_str("{\"kind\":\"point\",\"name\":");
            json::string_into(&mut out, p.name);
            let _ = write!(out, ",\"t_us\":{},\"tid\":{}", us(p.t_ns), p.tid);
            out.push_str(",\"attrs\":");
            json::attrs_into(&mut out, &p.attrs);
            out.push_str("}\n");
        }
        out
    }

    /// Write [`CollectingRecorder::to_chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_trace())
    }

    /// Write [`CollectingRecorder::to_metrics_jsonl`] to `path`.
    pub fn write_metrics_jsonl(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_metrics_jsonl())
    }
}

/// Nanoseconds → microseconds, rendered shortest-round-trip by `{}`.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

impl Recorder for CollectingRecorder {
    fn span_begin(&self, name: &'static str, parent: Option<SpanId>) -> SpanId {
        let t0_ns = self.now_ns();
        let mut g = self.lock();
        let tid = g.tid();
        let id = SpanId(g.spans.len() as u64 + 1);
        g.spans.push(SpanRecord {
            id,
            parent,
            name,
            tid,
            t0_ns,
            t1_ns: None,
            attrs: Vec::new(),
        });
        id
    }

    fn span_end(&self, id: SpanId) {
        let t1 = self.now_ns();
        let mut g = self.lock();
        if let Some(s) =
            id.0.checked_sub(1)
                .and_then(|i| g.spans.get_mut(i as usize))
        {
            if s.t1_ns.is_none() {
                s.t1_ns = Some(t1);
            }
        }
    }

    fn span_attr(&self, id: SpanId, key: &'static str, value: AttrValue) {
        let mut g = self.lock();
        if let Some(s) =
            id.0.checked_sub(1)
                .and_then(|i| g.spans.get_mut(i as usize))
        {
            s.attrs.push((key, value));
        }
    }

    fn point(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let t_ns = self.now_ns();
        let mut g = self.lock();
        let tid = g.tid();
        g.points.push(PointRecord {
            name,
            parent,
            tid,
            t_ns,
            attrs: attrs.to_vec(),
        });
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.lock().metrics.counter_add(name, delta);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.lock().metrics.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NoopRecorder;
    use crate::tls;
    use std::sync::Arc;

    #[test]
    fn disabled_thread_records_nothing() {
        // No recorder installed: every entry point is inert.
        assert!(!tls::enabled());
        {
            let s = tls::span("time-step");
            assert!(s.id().is_none());
            s.attr("h", 1e-9);
            tls::point("step.accept", &[("h", AttrValue::F64(1e-9))]);
            tls::counter_add("step.accepted", 1);
            tls::observe("step.h", 1e-9);
        }
        // A recorder installed *afterwards* sees none of it.
        let rec = Arc::new(CollectingRecorder::new());
        {
            let _g = tls::install(rec.clone());
            assert!(tls::enabled());
        }
        assert!(!tls::enabled());
        assert!(rec.is_empty());
    }

    #[test]
    fn noop_recorder_records_nothing() {
        let _g = tls::install(Arc::new(NoopRecorder));
        assert!(tls::enabled());
        let s = tls::span("sweep");
        // NoopRecorder hands out the reserved invalid id and drops
        // every event on the floor.
        assert_eq!(s.id(), Some(SpanId(0)));
        s.attr("jobs", 4u64);
        tls::counter_add("sweep.jobs", 4);
        tls::point("step.accept", &[]);
        drop(s);
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let rec = Arc::new(CollectingRecorder::new());
        {
            let _g = tls::install(rec.clone());
            let outer = tls::span("sweep");
            {
                let inner = tls::span("job");
                inner.attr("job", 3u64);
                drop(inner);
            }
            drop(outer);
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "sweep");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "job");
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].attrs, vec![("job", AttrValue::U64(3))]);
        for s in &spans {
            let t1 = s.t1_ns.expect("span closed");
            assert!(t1 >= s.t0_ns);
        }
        // The inner span closed first.
        assert!(spans[1].t1_ns.unwrap() <= spans[0].t1_ns.unwrap());
    }

    #[test]
    fn handle_crosses_threads_with_parenting() {
        let rec = Arc::new(CollectingRecorder::new());
        {
            let _g = tls::install(rec.clone());
            let _sweep = tls::span("sweep");
            let handle = tls::current().expect("handle");
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _g = tls::install_handle(handle);
                    let job = tls::span("job");
                    tls::counter_add("sweep.executed", 1);
                    drop(job);
                });
            });
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        let sweep = &spans[0];
        let job = &spans[1];
        assert_eq!(job.parent, Some(sweep.id));
        assert_ne!(job.tid, sweep.tid, "worker got its own lane");
        assert_eq!(rec.counter("sweep.executed"), 1);
    }

    #[test]
    fn chrome_trace_has_events_and_valid_shape() {
        let rec = Arc::new(CollectingRecorder::new());
        {
            let _g = tls::install(rec.clone());
            let s = tls::span("analysis");
            s.attr("kind", "tran");
            tls::point("step.reject", &[("reason", AttrValue::Str("lte"))]);
            drop(s);
        }
        let json = rec.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"analysis\""));
        assert!(json.contains("\"kind\":\"tran\""));
        assert!(json.contains("\"reason\":\"lte\""));
    }

    #[test]
    fn metrics_jsonl_lines_are_objects() {
        let rec = Arc::new(CollectingRecorder::new());
        {
            let _g = tls::install(rec.clone());
            tls::counter_add("factor.fresh", 2);
            tls::observe("step.h", 0.5);
            tls::point("newton.iter", &[("residual", AttrValue::F64(1e-10))]);
        }
        let jsonl = rec.to_metrics_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"counter\""));
        assert!(lines[0].contains("\"factor.fresh\""));
        assert!(lines[1].contains("\"kind\":\"histogram\""));
        assert!(lines[2].contains("\"kind\":\"point\""));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn nested_install_restores_previous_recorder() {
        let outer = Arc::new(CollectingRecorder::new());
        let inner = Arc::new(CollectingRecorder::new());
        let _g1 = tls::install(outer.clone());
        tls::counter_add("c", 1);
        {
            let _g2 = tls::install(inner.clone());
            tls::counter_add("c", 10);
        }
        tls::counter_add("c", 2);
        assert_eq!(outer.counter("c"), 3);
        assert_eq!(inner.counter("c"), 10);
    }
}
