//! Minimal JSON rendering helpers for the two sinks.
//!
//! obskit is dependency-free by design (it sits below every other
//! crate in the workspace), so it carries its own tiny writers. The
//! conventions match `sweepkit::stream`: `f64` renders via `Display`
//! (shortest round-trip form) and non-finite values render as `null`.

use crate::recorder::AttrValue;
use std::fmt::Write as _;

/// Escape `s` as the body of a JSON string (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render a quoted JSON string.
pub fn string_into(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Render an `f64` as a JSON number (`null` when non-finite).
pub fn f64_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Render an [`AttrValue`] as a JSON value.
pub fn attr_into(out: &mut String, v: &AttrValue) {
    match *v {
        AttrValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        AttrValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        AttrValue::F64(x) => f64_into(out, x),
        AttrValue::Str(s) => string_into(out, s),
        AttrValue::Bool(b) => {
            out.push_str(if b { "true" } else { "false" });
        }
    }
}

/// Render an attribute list as a JSON object.
pub fn attrs_into(out: &mut String, attrs: &[(&'static str, AttrValue)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        string_into(out, k);
        out.push(':');
        attr_into(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_numbers() {
        let mut s = String::new();
        string_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");

        let mut n = String::new();
        f64_into(&mut n, 0.1);
        n.push(',');
        f64_into(&mut n, f64::NAN);
        assert_eq!(n, "0.1,null");
    }

    #[test]
    fn attrs_render_as_object() {
        let mut s = String::new();
        attrs_into(
            &mut s,
            &[
                ("h", AttrValue::F64(0.5)),
                ("reason", AttrValue::Str("lte")),
                ("ok", AttrValue::Bool(true)),
                ("iter", AttrValue::U64(3)),
            ],
        );
        assert_eq!(s, "{\"h\":0.5,\"reason\":\"lte\",\"ok\":true,\"iter\":3}");
    }
}
