//! Workspace-wide instrumentation: spans, metrics, convergence traces.
//!
//! Every layer of this workspace used to invent its own stats struct
//! (`NewtonStats`, `FactorStats`, `MpdeStats`, …) and mostly drop it on
//! the floor. `obskit` replaces the printf archaeology with one small,
//! dependency-free substrate:
//!
//! * **Hierarchical spans** — `sweep → job → analysis → time-step →
//!   newton-iter → factor/solve` — with monotonic-clock timings and
//!   structured attributes. Instrumentation sites call the free
//!   functions ([`span`], [`point`], [`counter_add`], [`observe`]);
//!   when no recorder is installed they cost one thread-local load and
//!   a branch, and record nothing.
//! * **A metrics registry** ([`MetricsRegistry`]) of named counters and
//!   histograms that unifies the per-layer stats, plus [`RunStats`] —
//!   the shared accept/reject/Newton/factorisation summary that
//!   `transim`, `mpde` and `wampde` all alias.
//! * **Two sinks** on [`CollectingRecorder`]: a Chrome `trace_event`
//!   JSON exporter (loadable in `chrome://tracing` / Perfetto) and a
//!   JSONL metrics/convergence dump (per-step `h`, LTE, rejection
//!   reason; per-iter residual norm, damping λ, fresh/reused
//!   factorisation).
//!
//! # Enabling a trace
//!
//! Recording is scoped and thread-local: install a recorder with
//! [`install`], and propagate it to worker threads by capturing
//! [`current`] before spawning and calling [`install_handle`] inside
//! each worker (this also parents the worker's spans correctly).
//!
//! ```
//! use std::sync::Arc;
//!
//! let rec = Arc::new(obskit::CollectingRecorder::new());
//! {
//!     let _g = obskit::install(rec.clone());
//!     let _sweep = obskit::span("sweep");
//!     obskit::counter_add("sweep.jobs", 4);
//! }
//! assert_eq!(rec.counter("sweep.jobs"), 4);
//! let chrome_json = rec.to_chrome_trace();
//! assert!(chrome_json.contains("\"traceEvents\""));
//! ```
//!
//! Determinism contract: instrumentation must never perturb numerics.
//! Nothing in this crate feeds back into solver state; the integration
//! tests in `crates/bench` assert byte-identical numeric artifacts for
//! traced and untraced sweeps.

mod collect;
mod json;
mod metrics;
mod recorder;
mod tls;

pub use collect::{CollectingRecorder, PointRecord, SpanRecord};
pub use metrics::{Histogram, MetricsRegistry, RunStats};
pub use recorder::{AttrValue, NoopRecorder, Recorder, SpanId};
pub use tls::{
    counter_add, current, enabled, install, install_handle, observe, point, span, span_with,
    InstallGuard, Span, TraceHandle,
};
