//! Named-counter/histogram registry and the unified run-stats summary.

use std::collections::BTreeMap;

/// Summary statistics of one histogram metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`+inf` when empty).
    pub min: f64,
    /// Largest observed value (`-inf` when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Fold one observation in.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// One namespace of named counters and histograms.
///
/// Names are dot-separated (`sweep.cache_hits`, `newton.iters`,
/// `factor.fresh`, `step.rejected.lte`, …); see `docs/OBSERVABILITY.md`
/// for the full catalogue. `BTreeMap` keeps exports deterministically
/// sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was made.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Absorb a [`RunStats`] under `prefix` (e.g. `tran`), producing
    /// counters `prefix.steps`, `prefix.rejected`, `prefix.newton_iters`,
    /// `prefix.factorisations`, `prefix.symbolic_reuses`.
    pub fn absorb_run_stats(&mut self, prefix: &str, stats: &RunStats) {
        self.counter_add(&format!("{prefix}.steps"), stats.steps as u64);
        self.counter_add(&format!("{prefix}.rejected"), stats.rejected as u64);
        self.counter_add(&format!("{prefix}.newton_iters"), stats.newton_iters as u64);
        self.counter_add(
            &format!("{prefix}.factorisations"),
            stats.factorisations as u64,
        );
        self.counter_add(
            &format!("{prefix}.symbolic_reuses"),
            stats.symbolic_reuses as u64,
        );
    }

    /// Fold another registry into this one (used when merging per-shard
    /// or per-thread registries).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in other.counters() {
            self.counter_add(name, v);
        }
        for (name, h) in other.histograms() {
            let mine = self.histograms.entry(name.to_string()).or_default();
            mine.count += h.count;
            mine.sum += h.sum;
            mine.min = mine.min.min(h.min);
            mine.max = mine.max.max(h.max);
        }
    }
}

/// The unified per-run summary shared by the stepping solvers.
///
/// `transim::TransientStats`, `mpde::MpdeStats` and
/// `wampde::EnvelopeStats` are all aliases of this type, so the metrics
/// registry and the sweep manifest can consume any solver's stats
/// without per-crate adapters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Accepted time steps.
    pub steps: usize,
    /// Rejected step attempts (LTE or Newton failure).
    pub rejected: usize,
    /// Total Newton iterations across all steps.
    pub newton_iters: usize,
    /// Numeric factorisations performed.
    pub factorisations: usize,
    /// Factorisations that reused a cached symbolic analysis.
    pub symbolic_reuses: usize,
}

impl RunStats {
    /// Former spelling of the [`RunStats::newton_iters`] field, kept as
    /// an accessor for source compatibility.
    #[deprecated(since = "0.1.0", note = "use the `newton_iters` field")]
    pub fn newton_iterations(&self) -> usize {
        self.newton_iters
    }

    /// Accumulate another run's stats into this one.
    pub fn merge(&mut self, other: &RunStats) {
        self.steps += other.steps;
        self.rejected += other.rejected;
        self.newton_iters += other.newton_iters;
        self.factorisations += other.factorisations;
        self.symbolic_reuses += other.symbolic_reuses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("b.two", 2);
        reg.counter_add("a.one", 1);
        reg.counter_add("b.two", 3);
        let names: Vec<_> = reg.counters().map(|(n, v)| (n.to_string(), v)).collect();
        assert_eq!(
            names,
            vec![("a.one".to_string(), 1), ("b.two".to_string(), 5)]
        );
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut reg = MetricsRegistry::new();
        reg.observe("step.h", 1.0);
        reg.observe("step.h", 3.0);
        let h = reg.histogram("step.h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn run_stats_absorb_and_merge() {
        let a = RunStats {
            steps: 10,
            rejected: 2,
            newton_iters: 30,
            factorisations: 5,
            symbolic_reuses: 25,
        };
        let mut b = RunStats::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.steps, 20);
        assert_eq!(b.newton_iters, 60);

        let mut reg = MetricsRegistry::new();
        reg.absorb_run_stats("tran", &a);
        assert_eq!(reg.counter("tran.steps"), 10);
        assert_eq!(reg.counter("tran.newton_iters"), 30);
        assert_eq!(reg.counter("tran.symbolic_reuses"), 25);
    }

    #[test]
    fn deprecated_accessor_matches_field() {
        let s = RunStats {
            newton_iters: 7,
            ..RunStats::default()
        };
        #[allow(deprecated)]
        let v = s.newton_iterations();
        assert_eq!(v, 7);
    }

    #[test]
    fn registry_merge_folds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.observe("h", 2.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 4);
        b.observe("h", 6.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
    }
}
