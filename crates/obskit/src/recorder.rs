//! The [`Recorder`] trait and the value types that flow through it.

/// Opaque span identifier handed out by a [`Recorder`].
///
/// `0` is reserved as "invalid"; [`CollectingRecorder`](crate::CollectingRecorder)
/// numbers spans from 1 in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A structured attribute value attached to spans and points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (step sizes, residual norms, λ).
    F64(f64),
    /// Static string (rejection reason, factorisation kind, …).
    Str(&'static str),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// Sink for instrumentation events.
///
/// Implementations stamp their own monotonic-clock times so that the
/// hot path (the free functions [`crate::span`], [`crate::counter_add`],
/// [`crate::observe`], [`crate::point`]) stays a plain
/// virtual call with no allocation when nothing needs one.
///
/// All methods take `&self`: one recorder is shared across the worker
/// threads of a sweep, so implementations synchronise internally.
pub trait Recorder: Send + Sync {
    /// Open a span. `parent` is the innermost live span on the calling
    /// thread (threaded through [`crate::install_handle`] across thread
    /// boundaries).
    fn span_begin(&self, name: &'static str, parent: Option<SpanId>) -> SpanId;
    /// Close a span previously returned by [`Recorder::span_begin`].
    fn span_end(&self, id: SpanId);
    /// Attach an attribute to a live span.
    fn span_attr(&self, id: SpanId, key: &'static str, value: AttrValue);
    /// Record an instant event with attributes (a convergence-trace row).
    fn point(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        attrs: &[(&'static str, AttrValue)],
    );
    /// Add to a named monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Record one observation into a named histogram.
    fn observe(&self, name: &'static str, value: f64);
}

/// A recorder that records nothing.
///
/// Useful to exercise instrumented code paths without any collection
/// cost; the unit tests use it to prove the contract that a no-op sink
/// observes no data.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn span_begin(&self, _name: &'static str, _parent: Option<SpanId>) -> SpanId {
        SpanId(0)
    }
    #[inline]
    fn span_end(&self, _id: SpanId) {}
    #[inline]
    fn span_attr(&self, _id: SpanId, _key: &'static str, _value: AttrValue) {}
    #[inline]
    fn point(
        &self,
        _name: &'static str,
        _parent: Option<SpanId>,
        _attrs: &[(&'static str, AttrValue)],
    ) {
    }
    #[inline]
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    #[inline]
    fn observe(&self, _name: &'static str, _value: f64) {}
}
