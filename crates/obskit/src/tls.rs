//! Thread-local recorder plumbing: the zero-overhead-when-disabled
//! entry points the rest of the workspace calls.
//!
//! The active recorder is a thread-local, not a global: parallel test
//! threads and concurrent sweeps must never observe each other's
//! instrumentation. Worker threads opt in explicitly by capturing
//! [`current`] on the spawning thread and calling [`install_handle`]
//! inside the worker, which also parents the worker's spans under the
//! spawner's innermost span.

use crate::recorder::{AttrValue, Recorder, SpanId};
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::Arc;

struct ActiveTrace {
    rec: Arc<dyn Recorder>,
    /// Innermost-last stack of live spans on this thread. The bottom
    /// entry may be a foreign parent seeded by [`install_handle`].
    stack: Vec<SpanId>,
    /// Number of seeded (foreign) entries at the bottom of `stack`
    /// that this thread must not pop.
    seeded: usize,
}

thread_local! {
    // Separate enabled flag so the disabled hot path is one TLS load
    // plus a branch, with no RefCell borrow.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Is a recorder installed on this thread?
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// A clonable handle to the active recorder, for crossing thread
/// boundaries. Captured with [`current`], consumed by [`install_handle`].
#[derive(Clone)]
pub struct TraceHandle {
    rec: Arc<dyn Recorder>,
    parent: Option<SpanId>,
}

/// Snapshot the calling thread's recorder (and innermost span, which
/// becomes the parent of spans opened under [`install_handle`]).
/// Returns `None` when no recorder is installed — pass that through
/// unchanged and the worker side stays uninstrumented too.
pub fn current() -> Option<TraceHandle> {
    ACTIVE.with(|a| {
        a.borrow().as_ref().map(|t| TraceHandle {
            rec: Arc::clone(&t.rec),
            parent: t.stack.last().copied(),
        })
    })
}

/// RAII guard returned by [`install`] / [`install_handle`]. Restores
/// the previous thread-local state on drop. Not `Send`: it must drop
/// on the thread that created it.
pub struct InstallGuard {
    prev: Option<ActiveTrace>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ENABLED.with(|e| e.set(prev.is_some()));
        ACTIVE.with(|a| *a.borrow_mut() = prev);
    }
}

fn install_inner(trace: ActiveTrace) -> InstallGuard {
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(trace));
    ENABLED.with(|e| e.set(true));
    InstallGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// Install `rec` as this thread's recorder until the guard drops.
pub fn install(rec: Arc<dyn Recorder>) -> InstallGuard {
    install_inner(ActiveTrace {
        rec,
        stack: Vec::new(),
        seeded: 0,
    })
}

/// Install a handle captured on another thread (see [`current`]).
/// Spans opened on this thread are parented under the span that was
/// innermost when the handle was captured.
pub fn install_handle(handle: TraceHandle) -> InstallGuard {
    let (stack, seeded) = match handle.parent {
        Some(p) => (vec![p], 1),
        None => (Vec::new(), 0),
    };
    install_inner(ActiveTrace {
        rec: handle.rec,
        stack,
        seeded,
    })
}

/// RAII span guard: closes the span (and pops it from the thread's
/// span stack) on drop. Inert — a plain `Option<SpanId>::None` — when
/// no recorder is installed.
#[must_use = "a span ends when dropped; binding it to `_` ends it immediately"]
pub struct Span {
    id: Option<SpanId>,
}

impl Span {
    /// An inert span that records nothing.
    #[inline]
    pub const fn disabled() -> Self {
        Span { id: None }
    }

    /// The recorder-assigned id, if live.
    #[inline]
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// Attach an attribute to this span.
    #[inline]
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(id) = self.id {
            with_rec(|rec| rec.span_attr(id, key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(id) = self.id.take() {
            ACTIVE.with(|a| {
                if let Some(t) = a.borrow_mut().as_mut() {
                    // Spans are strictly nested RAII guards, so the id
                    // being closed is the innermost one — but guard
                    // against misuse across install scopes.
                    if t.stack.len() > t.seeded && t.stack.last() == Some(&id) {
                        t.stack.pop();
                    }
                    t.rec.span_end(id);
                }
            });
        }
    }
}

#[inline]
fn with_rec<R>(f: impl FnOnce(&dyn Recorder) -> R) -> Option<R> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|t| f(t.rec.as_ref())))
}

/// Open a span named `name` under the thread's innermost span.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    let id = ACTIVE.with(|a| {
        a.borrow_mut().as_mut().map(|t| {
            let id = t.rec.span_begin(name, t.stack.last().copied());
            t.stack.push(id);
            id
        })
    });
    Span { id }
}

/// Open a span with initial attributes.
#[inline]
pub fn span_with(name: &'static str, attrs: &[(&'static str, AttrValue)]) -> Span {
    let s = span(name);
    if let Some(id) = s.id {
        with_rec(|rec| {
            for &(k, v) in attrs {
                rec.span_attr(id, k, v);
            }
        });
    }
    s
}

/// Record an instant event (a convergence-trace row) with attributes.
#[inline]
pub fn point(name: &'static str, attrs: &[(&'static str, AttrValue)]) {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow().as_ref() {
            t.rec.point(name, t.stack.last().copied(), attrs);
        }
    });
}

/// Add `delta` to the named counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_rec(|rec| rec.counter_add(name, delta));
}

/// Record one observation into the named histogram.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_rec(|rec| rec.observe(name, value));
}
