//! Periodic steady state of unforced oscillators by shooting.
//!
//! For an autonomous oscillator, the boundary-value problem is
//!
//! ```text
//! Φ_T(x0) − x0 = 0        (state returns after one period)
//! (b − f(x0))_k = 0       (phase anchor: q̇_k = 0 at t = 0)
//! ```
//!
//! with unknowns `(x0, T)`. [`find_periodic_orbit`] solves it with Newton,
//! computing the flow `Φ_T` by fixed-step implicit integration and the
//! monodromy `∂Φ_T/∂x0` by per-step sensitivity propagation — the
//! classical approach (Aprille & Trick \[AT72\]) the paper lists among the
//! baselines that work for *unforced* oscillators but cannot handle
//! FM-quasiperiodic forcing (Section 2).
//!
//! The resulting [`PeriodicOrbit`] provides the nominal period and a
//! uniformly resampled waveform — exactly what the WaMPDE needs as its
//! initial condition.
//!
//! # Example
//!
//! ```no_run
//! use circuitdae::analytic::VanDerPol;
//! use shooting::{oscillator_steady_state, ShootingOptions};
//!
//! let vdp = VanDerPol::unforced(0.5);
//! let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();
//! assert!((orbit.period - vdp.approx_period()).abs() / orbit.period < 0.01);
//! ```

use circuitdae::Dae;
use linsolve::{FactorCache, FactoredJacobian, LinearSolverKind, NewtonMatrix};
use newtonkit::{Damping, NewtonEngine, NewtonError, NewtonPolicy, NewtonSystem};
use numkit::vecops::norm2;
use numkit::DMat;
use sparsekit::Triplets;
use std::cell::RefCell;
use std::fmt;
use transim::{
    run_transient, Integrator, NewtonOptions, StepControl, TransientOptions, TransientResult,
};

/// Errors from the shooting solver.
#[derive(Debug, Clone, PartialEq)]
pub enum ShootingError {
    /// Underlying transient/Newton machinery failed.
    Transient(transim::TransimError),
    /// The outer Newton iteration on `(x0, T)` did not converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// Could not detect an oscillation to initialise from.
    NoOscillation,
    /// Invalid configuration.
    BadInput(String),
}

impl fmt::Display for ShootingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShootingError::Transient(e) => write!(f, "transient failure: {e}"),
            ShootingError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "shooting newton did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            ShootingError::NoOscillation => {
                write!(f, "no oscillation detected during warm-up transient")
            }
            ShootingError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for ShootingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShootingError::Transient(e) => Some(e),
            _ => None,
        }
    }
}

impl From<transim::TransimError> for ShootingError {
    fn from(e: transim::TransimError) -> Self {
        ShootingError::Transient(e)
    }
}

/// Options for [`find_periodic_orbit`] / [`oscillator_steady_state`].
#[derive(Debug, Clone, Copy)]
pub struct ShootingOptions {
    /// Fixed integration steps per period for the flow evaluation.
    pub steps_per_period: usize,
    /// Integrator used for the flow (Trapezoidal recommended).
    pub integrator: Integrator,
    /// Maximum outer Newton iterations on `(x0, T)`.
    pub max_iter: usize,
    /// Convergence tolerance on the boundary residual, relative to the
    /// orbit amplitude.
    pub tol: f64,
    /// Index of the variable used for the phase anchor and for period
    /// detection (typically the oscillating node voltage).
    pub phase_var: usize,
    /// Number of warm-up periods simulated before period detection in
    /// [`oscillator_steady_state`].
    pub warmup_periods: f64,
    /// Relative kick applied to the DC solution to start the oscillation.
    pub kick: f64,
    /// Linear-solver backend for the flow-step Newton solves, the
    /// monodromy propagation, and the bordered boundary system.
    pub linear_solver: LinearSolverKind,
}

impl Default for ShootingOptions {
    fn default() -> Self {
        ShootingOptions {
            steps_per_period: 512,
            integrator: Integrator::Trapezoidal,
            max_iter: 40,
            tol: 1e-8,
            phase_var: 0,
            warmup_periods: 40.0,
            kick: 0.1,
            linear_solver: LinearSolverKind::default(),
        }
    }
}

/// A periodic steady-state orbit of an autonomous system.
#[derive(Debug, Clone)]
pub struct PeriodicOrbit {
    /// State at the phase-anchor time.
    pub x0: Vec<f64>,
    /// Oscillation period (s).
    pub period: f64,
    /// States sampled at `steps_per_period` uniform times across one period
    /// (first sample = `x0`).
    pub samples: Vec<Vec<f64>>,
    /// Monodromy matrix `∂Φ_T/∂x0` at the solution.
    pub monodromy: DMat,
    /// Outer Newton iterations used.
    pub iterations: usize,
}

impl PeriodicOrbit {
    /// Fundamental frequency (Hz).
    pub fn frequency(&self) -> f64 {
        1.0 / self.period
    }

    /// Resamples variable traces onto an odd uniform grid of `n` points
    /// over one period via linear interpolation of the stored samples
    /// (adequate because `steps_per_period ≫ n`). Returns a row-major
    /// `n × dim` sample matrix: `out[s][i]` = variable `i` at phase `s/n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is even or zero.
    pub fn resample_uniform(&self, n: usize) -> Vec<Vec<f64>> {
        assert!(n % 2 == 1 && n > 0, "resample grid must be odd");
        let m = self.samples.len();
        let dim = self.x0.len();
        (0..n)
            .map(|s| {
                let phase = s as f64 / n as f64 * m as f64;
                let lo = (phase.floor() as usize) % m;
                let hi = (lo + 1) % m;
                let w = phase - phase.floor();
                (0..dim)
                    .map(|i| self.samples[lo][i] * (1.0 - w) + self.samples[hi][i] * w)
                    .collect()
            })
            .collect()
    }
}

/// End state, monodromy matrix, and trajectory samples of one flow
/// integration.
type FlowOutput = (Vec<f64>, DMat, Vec<Vec<f64>>);

/// Integrates the flow over `[0, T]` with `steps` fixed implicit steps,
/// returning `(x(T), monodromy, samples)`.
fn flow_with_monodromy<D: Dae + ?Sized>(
    dae: &D,
    x0: &[f64],
    period: f64,
    steps: usize,
    integrator: Integrator,
    solver: LinearSolverKind,
) -> Result<FlowOutput, ShootingError> {
    let n = dae.dim();
    let h = period / steps as f64;
    let opts = TransientOptions {
        integrator,
        step: StepControl::Fixed(h),
        newton: NewtonOptions {
            linear_solver: solver,
            ..Default::default()
        },
    };
    let res = run_transient(dae, x0, 0.0, period, &opts)?;
    let states = &res.states;

    // Monodromy by chaining per-step sensitivities:
    //   BE:   (C_i/h + G_i) δx_i = (C_{i-1}/h) δx_{i-1}
    //   Trap: (C_i/h + G_i/2) δx_i = (C_{i-1}/h − G_{i-1}/2) δx_{i-1}
    let theta = match integrator {
        Integrator::BackwardEuler => 1.0,
        Integrator::Trapezoidal => 0.5,
        Integrator::Bdf2 => {
            return Err(ShootingError::BadInput(
                "monodromy propagation supports BackwardEuler/Trapezoidal".into(),
            ))
        }
    };
    let mut m = DMat::identity(n);
    let mut c_prev = DMat::zeros(n, n);
    let mut g_prev = DMat::zeros(n, n);
    let mut c_cur = DMat::zeros(n, n);
    let mut g_cur = DMat::zeros(n, n);
    dae.jac_q(&states[0], &mut c_prev);
    dae.jac_f(&states[0], &mut g_prev);
    // One factor cache for the whole chain: every step's sensitivity
    // matrix A shares the C/G sparsity pattern, so the sparse backends
    // redo only numeric factorisation after the first step.
    let mut factors = FactorCache::new(solver);

    for (i, state) in states.iter().enumerate().skip(1) {
        // Use the actual step taken (the final step may be a float-rounding
        // remainder smaller than the nominal h).
        let hi = res.times[i] - res.times[i - 1];
        dae.jac_q(state, &mut c_cur);
        dae.jac_f(state, &mut g_cur);
        // A = C_i/h + θ·G_i ;  B = C_{i-1}/h − (1−θ)·G_{i-1}
        let mut a = c_cur.clone();
        a.scale(1.0 / hi);
        a.axpy(theta, &g_cur);
        let mut bmat = c_prev.clone();
        bmat.scale(1.0 / hi);
        if theta < 1.0 {
            bmat.axpy(-(1.0 - theta), &g_prev);
        }
        factors
            .factor_matrix(&NewtonMatrix::Dense(&a))
            .map_err(|_| {
                ShootingError::Transient(transim::TransimError::SingularJacobian {
                    at_time: i as f64 * h,
                })
            })?;
        // M ← A⁻¹ B M, column by column.
        let bm = bmat.matmul(&m).expect("dimension-consistent product");
        let mut m_new = DMat::zeros(n, n);
        let mut col = vec![0.0; n];
        for j in 0..n {
            for i2 in 0..n {
                col[i2] = bm[(i2, j)];
            }
            factors.solve_in_place(&mut col).expect("factored system");
            for i2 in 0..n {
                m_new[(i2, j)] = col[i2];
            }
        }
        m = m_new;
        std::mem::swap(&mut c_prev, &mut c_cur);
        std::mem::swap(&mut g_prev, &mut g_cur);
    }

    Ok((states.last().expect("nonempty").clone(), m, res.states))
}

/// Time derivative `ẋ = −C(x)⁻¹·(f(x) − b(0))` (autonomous systems with
/// nonsingular `C`, which all the oscillator circuits here satisfy).
fn state_derivative<D: Dae + ?Sized>(dae: &D, x: &[f64]) -> Result<Vec<f64>, ShootingError> {
    let n = dae.dim();
    let mut c = DMat::zeros(n, n);
    dae.jac_q(x, &mut c);
    let mut rhs = vec![0.0; n];
    dae.eval_f(x, &mut rhs);
    let mut b = vec![0.0; n];
    dae.eval_b(0.0, &mut b);
    for i in 0..n {
        rhs[i] = b[i] - rhs[i];
    }
    let lu = FactoredJacobian::factor_matrix(&NewtonMatrix::Dense(&c), LinearSolverKind::Dense)
        .map_err(|_| {
            ShootingError::BadInput(
                "mass matrix C is singular: shooting needs ODE-like DAEs".into(),
            )
        })?;
    lu.solve_in_place(&mut rhs)
        .map_err(|_| ShootingError::BadInput("mass matrix solve failed".into()))?;
    Ok(rhs)
}

/// One flow evaluation memoised at the current iterate `(x0, T)`: the
/// residual and the Jacobian of the cycle system share it, so routing
/// shooting through the shared Newton engine costs exactly one flow
/// integration per iteration — the same as the historical loop.
struct FlowMemo {
    z: Vec<f64>,
    x_end: Vec<f64>,
    monodromy: DMat,
    samples: Vec<Vec<f64>>,
}

/// The shooting boundary-value problem `(x(T) − x0, (b − f)_k(x0)) = 0`
/// over the unknowns `z = [x0, T]`, as a [`NewtonSystem`] with
/// trust-region damping hooks: the state move is capped at a fraction of
/// the orbit amplitude and the period unknown is kept within a factor of
/// 2 per step (a full line search would cost one flow integration per
/// trial — not worth it here).
struct CycleSystem<'a, D: Dae + ?Sized> {
    dae: &'a D,
    n: usize,
    k: usize,
    b0: Vec<f64>,
    scale: f64,
    steps: usize,
    integrator: Integrator,
    solver: LinearSolverKind,
    flow: RefCell<Option<FlowMemo>>,
    /// First underlying failure (transient blow-up, singular mass
    /// matrix); reported instead of the generic engine error.
    error: RefCell<Option<ShootingError>>,
}

impl<D: Dae + ?Sized> CycleSystem<'_, D> {
    /// Ensures the memoised flow matches `z`, recomputing if needed.
    /// Returns `false` (and records the error) when the flow fails.
    fn ensure_flow(&self, z: &[f64]) -> bool {
        if let Some(memo) = self.flow.borrow().as_ref() {
            if memo.z == z {
                return true;
            }
        }
        match flow_with_monodromy(
            self.dae,
            &z[..self.n],
            z[self.n],
            self.steps,
            self.integrator,
            self.solver,
        ) {
            Ok((x_end, monodromy, samples)) => {
                *self.flow.borrow_mut() = Some(FlowMemo {
                    z: z.to_vec(),
                    x_end,
                    monodromy,
                    samples,
                });
                true
            }
            Err(e) => {
                self.error.borrow_mut().get_or_insert(e);
                false
            }
        }
    }
}

impl<D: Dae + ?Sized> NewtonSystem for CycleSystem<'_, D> {
    fn dim(&self) -> usize {
        self.n + 1
    }

    fn residual(&self, z: &[f64], out: &mut [f64]) {
        if !self.ensure_flow(z) {
            // Poison the residual: the engine reports NoConvergence and
            // the caller surfaces the recorded underlying error.
            out.fill(f64::NAN);
            return;
        }
        let flow = self.flow.borrow();
        let memo = flow.as_ref().expect("flow memoised");
        let mut fvec = vec![0.0; self.n];
        self.dae.eval_f(&z[..self.n], &mut fvec);
        for i in 0..self.n {
            out[i] = memo.x_end[i] - z[i];
        }
        out[self.n] = self.b0[self.k] - fvec[self.k];
    }

    fn jacobian(&self, z: &[f64], out: &mut DMat) {
        // Bordered Jacobian:
        //   [ M − I        ẋ(T) ]
        //   [ −G_k(x0)      0   ]
        // The engine always evaluates the residual at `z` first, so the
        // monodromy rides along from the memoised flow.
        if !self.ensure_flow(z) {
            out.fill_zero();
            return;
        }
        let flow = self.flow.borrow();
        let memo = flow.as_ref().expect("flow memoised");
        let n = self.n;
        let xdot_end = match state_derivative(self.dae, &memo.x_end) {
            Ok(v) => v,
            Err(e) => {
                self.error.borrow_mut().get_or_insert(e);
                out.fill_zero();
                return;
            }
        };
        let mut g0 = DMat::zeros(n, n);
        self.dae.jac_f(&z[..n], &mut g0);
        out.fill_zero();
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] = memo.monodromy[(i, j)] - if i == j { 1.0 } else { 0.0 };
            }
            out[(i, n)] = xdot_end[i];
            out[(n, i)] = -g0[(self.k, i)];
        }
    }

    fn jacobian_triplets(&self, z: &[f64], out: &mut Triplets) -> bool {
        // The bordered cycle Jacobian is dense (the monodromy couples
        // everything); stamp it once and convert so sparse backends
        // still work.
        let mut jac = DMat::zeros(self.n + 1, self.n + 1);
        self.jacobian(z, &mut jac);
        for i in 0..=self.n {
            for j in 0..=self.n {
                out.push(i, j, jac[(i, j)]);
            }
        }
        true
    }

    fn residual_scale(&self) -> f64 {
        self.scale
    }

    fn damp_limit(&self, _z: &[f64], dx: &[f64]) -> f64 {
        let orbit_amp = self
            .flow
            .borrow()
            .as_ref()
            .map(|memo| {
                memo.samples
                    .iter()
                    .flat_map(|s| s.iter())
                    .fold(0.0_f64, |m, v| m.max(v.abs()))
            })
            .unwrap_or(0.0)
            .max(1e-12);
        let dx_norm = norm2(&dx[..self.n]);
        if dx_norm > 0.3 * orbit_amp {
            0.3 * orbit_amp / dx_norm
        } else {
            1.0
        }
    }

    fn step_allowed(&self, z: &[f64], dx: &[f64], lambda: f64) -> bool {
        let period_new = z[self.n] + lambda * dx[self.n];
        period_new > 0.5 * z[self.n] && period_new < 2.0 * z[self.n]
    }
}

/// Solves for a periodic orbit from an initial guess `(x0, period)`.
///
/// The iteration runs on the shared `newtonkit` engine with trust-region
/// damping and the relative-residual convergence law
/// (`‖F‖₂ / max(‖x0_guess‖, 1) < tol`), matching the historical
/// behaviour: one flow integration per iteration, state moves capped at
/// 30 % of the orbit amplitude, the period kept within a factor of 2 per
/// step.
///
/// # Errors
///
/// See [`ShootingError`]. In particular the Newton iteration fails cleanly
/// when the guess is not in the basin of a periodic orbit.
pub fn find_periodic_orbit<D: Dae + ?Sized>(
    dae: &D,
    x0_guess: &[f64],
    period_guess: f64,
    opts: &ShootingOptions,
) -> Result<PeriodicOrbit, ShootingError> {
    let _sp = obskit::span_with("shooting", &[("phase", obskit::AttrValue::Str("orbit"))]);
    let n = dae.dim();
    if x0_guess.len() != n {
        return Err(ShootingError::BadInput("x0 guess has wrong length".into()));
    }
    // `partial_cmp` keeps the NaN-rejecting behavior of `!(guess > 0.0)`.
    if period_guess.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(ShootingError::BadInput(
            "period guess must be positive".into(),
        ));
    }
    if opts.phase_var >= n {
        return Err(ShootingError::BadInput("phase_var out of range".into()));
    }

    let mut b0 = vec![0.0; n];
    dae.eval_b(0.0, &mut b0);
    let sys = CycleSystem {
        dae,
        n,
        k: opts.phase_var,
        b0,
        scale: norm2(x0_guess).max(1.0),
        steps: opts.steps_per_period,
        integrator: opts.integrator,
        solver: opts.linear_solver,
        flow: RefCell::new(None),
        error: RefCell::new(None),
    };

    let mut z = x0_guess.to_vec();
    z.push(period_guess);
    let policy = NewtonPolicy {
        max_iter: opts.max_iter,
        residual_tol: Some(opts.tol),
        damping: Damping::TrustRegion {
            min_lambda: 1.0 / 1024.0,
        },
        linear_solver: opts.linear_solver,
        ..Default::default()
    };
    let mut engine = NewtonEngine::new();
    match engine.solve(&sys, &mut z, &policy) {
        Ok(stats) => {
            let memo = sys
                .flow
                .into_inner()
                .expect("converged solve memoises its final flow");
            let period = z[n];
            z.truncate(n);
            Ok(PeriodicOrbit {
                x0: z,
                period,
                samples: memo.samples,
                monodromy: memo.monodromy,
                // Historical meaning: flow evaluations until convergence
                // (= Newton steps + the converged evaluation).
                iterations: stats.residual_evals,
            })
        }
        Err(engine_err) => {
            if let Some(e) = sys.error.into_inner() {
                return Err(e);
            }
            Err(match engine_err {
                NewtonError::NoConvergence {
                    iterations,
                    residual,
                } => ShootingError::NoConvergence {
                    iterations,
                    residual: residual / sys.scale,
                },
                NewtonError::Singular { .. } => ShootingError::NoConvergence {
                    iterations: engine.stats().iterations,
                    residual: engine.stats().residual_norm / sys.scale,
                },
                NewtonError::BadInput(msg) => ShootingError::BadInput(msg),
            })
        }
    }
}

/// Estimates the period from the tail of a transient by averaging the last
/// rising-zero-crossing intervals of variable `var` (mean-removed).
///
/// Returns `(period, t_last_crossing)` or `None` when fewer than three
/// crossings exist.
pub fn estimate_period_from_transient(res: &TransientResult, var: usize) -> Option<(f64, f64)> {
    let sig = res.signal(var);
    let mean = sig.iter().sum::<f64>() / sig.len() as f64;
    let mut crossings = Vec::new();
    for i in 1..sig.len() {
        let (a, b) = (sig[i - 1] - mean, sig[i] - mean);
        if a <= 0.0 && b > 0.0 {
            let w = -a / (b - a);
            crossings.push(res.times[i - 1] + w * (res.times[i] - res.times[i - 1]));
        }
    }
    if crossings.len() < 3 {
        return None;
    }
    // Average the last up-to-8 intervals.
    let take = crossings.len().min(9);
    let tail = &crossings[crossings.len() - take..];
    let period = (tail[tail.len() - 1] - tail[0]) / (tail.len() - 1) as f64;
    Some((period, *crossings.last().expect("nonempty")))
}

/// Full pipeline for an autonomous oscillator: DC operating point →
/// kicked warm-up transient → period detection → shooting.
///
/// # Errors
///
/// [`ShootingError::NoOscillation`] when the warm-up never oscillates;
/// otherwise the shooting errors.
pub fn oscillator_steady_state<D: Dae + ?Sized>(
    dae: &D,
    opts: &ShootingOptions,
) -> Result<PeriodicOrbit, ShootingError> {
    oscillator_steady_state_with_stats(dae, opts).map(|(orbit, _)| orbit)
}

/// [`oscillator_steady_state`] additionally reporting the work done by
/// the warm-up/settle transients plus the orbit Newton as one
/// [`obskit::RunStats`] — the cost a continuation warm start avoids, so
/// batched sweeps can meter what they saved.
///
/// # Errors
///
/// As [`oscillator_steady_state`].
pub fn oscillator_steady_state_with_stats<D: Dae + ?Sized>(
    dae: &D,
    opts: &ShootingOptions,
) -> Result<(PeriodicOrbit, obskit::RunStats), ShootingError> {
    let _sp = obskit::span_with(
        "shooting",
        &[("phase", obskit::AttrValue::Str("steady-state"))],
    );
    let mut pipeline = obskit::RunStats::default();
    let dc = transim::dc_operating_point(dae, &NewtonOptions::default())?;

    // Kick the phase variable off the (typically unstable) equilibrium.
    let mut x = dc.clone();
    let kick = opts.kick.abs().max(1e-3);
    x[opts.phase_var] += kick * (1.0 + x[opts.phase_var].abs());

    // Rough period guess for the warm-up horizon: use the linearised
    // dynamics? Simpler and robust: simulate an adaptive transient over a
    // generous horizon and look for crossings, doubling until found.
    let mut horizon_guess = 1.0_f64;
    // Start from a horizon estimated via the state derivative magnitude.
    if let Ok(xdot) = state_derivative(dae, &x) {
        let rate = norm2(&xdot) / norm2(&x).max(1e-12);
        if rate.is_finite() && rate > 0.0 {
            horizon_guess = (2.0 * std::f64::consts::PI / rate) * 3.0;
        }
    }

    for _attempt in 0..8 {
        let opts_tr = TransientOptions {
            integrator: Integrator::Trapezoidal,
            step: StepControl::Adaptive {
                rtol: 1e-6,
                atol: 1e-12,
                dt_init: horizon_guess / 2000.0,
                dt_min: 0.0,
                dt_max: horizon_guess / 200.0,
            },
            newton: NewtonOptions {
                linear_solver: opts.linear_solver,
                ..Default::default()
            },
        };
        let warm = run_transient(
            dae,
            &x,
            0.0,
            horizon_guess * opts.warmup_periods / 10.0,
            &opts_tr,
        )?;
        pipeline.merge(&warm.stats);
        if let Some((period, _t_cross)) = estimate_period_from_transient(&warm, opts.phase_var) {
            // Settle onto the limit cycle, then pick the state at the last
            // *peak* of the phase variable: there q̇_k ≈ 0 already, so the
            // Newton iteration starts essentially on its phase anchor and
            // converges locally instead of wandering around the cycle.
            let settle = run_transient(
                dae,
                warm.last(),
                0.0,
                period * opts.warmup_periods,
                &opts_tr,
            )?;
            pipeline.merge(&settle.stats);
            let x0_guess = state_at_last_peak(&settle, opts.phase_var)
                .unwrap_or_else(|| settle.last().to_vec());
            let orbit = find_periodic_orbit(dae, &x0_guess, period, opts)?;
            pipeline.newton_iters += orbit.iterations;
            return Ok((orbit, pipeline));
        }
        horizon_guess *= 8.0;
    }
    Err(ShootingError::NoOscillation)
}

/// A converged neighbouring orbit used to seed the next grid point's
/// shooting solve (continuation warm start).
#[derive(Debug, Clone)]
pub struct ShootingWarmStart {
    /// Converged periodic state at the neighbouring parameter value.
    pub x0: Vec<f64>,
    /// Its period (the next point's period guess).
    pub period: f64,
}

impl ShootingWarmStart {
    /// The warm-start a converged orbit hands to the next grid point.
    pub fn from_orbit(orbit: &PeriodicOrbit) -> Self {
        ShootingWarmStart {
            x0: orbit.x0.clone(),
            period: orbit.period,
        }
    }
}

/// Deck adapter: runs a `.shooting` directive via
/// [`oscillator_steady_state`] with the spec's step count and phase
/// variable over otherwise-default options.
///
/// # Errors
///
/// [`ShootingError::BadInput`] when `phase_var` is out of range,
/// otherwise see [`oscillator_steady_state`].
pub fn run_shooting_spec<D: Dae + ?Sized>(
    dae: &D,
    spec: &circuitdae::ShootingSpec,
) -> Result<PeriodicOrbit, ShootingError> {
    run_shooting_spec_warm(dae, spec, None).map(|(orbit, _)| orbit)
}

/// [`run_shooting_spec`] with a continuation warm start: when `warm`
/// holds a neighbouring grid point's converged orbit, shooting starts
/// directly from it — skipping the DC solve, kicked warm-up transients,
/// period detection and settle phase entirely. A warm solve that fails
/// (the neighbour was too far away) transparently falls back to the
/// full cold pipeline, so warm starting changes cost, never
/// reachability.
///
/// Also returns the [`obskit::RunStats`] of the whole pipeline (cold
/// path) or of just the orbit Newton (warm path): the per-point cost a
/// sweep actually paid.
///
/// # Errors
///
/// [`ShootingError::BadInput`] when `phase_var` is out of range,
/// otherwise see [`oscillator_steady_state`].
pub fn run_shooting_spec_warm<D: Dae + ?Sized>(
    dae: &D,
    spec: &circuitdae::ShootingSpec,
    warm: Option<&ShootingWarmStart>,
) -> Result<(PeriodicOrbit, obskit::RunStats), ShootingError> {
    if spec.phase_var >= dae.dim() {
        return Err(ShootingError::BadInput(format!(
            "phase_var {} out of range (dim = {})",
            spec.phase_var,
            dae.dim()
        )));
    }
    let opts = ShootingOptions {
        steps_per_period: spec.steps_per_period,
        phase_var: spec.phase_var,
        linear_solver: spec.solver,
        ..Default::default()
    };
    if let Some(seed) = warm {
        if seed.x0.len() == dae.dim() && seed.period > 0.0 {
            if let Ok(orbit) = find_periodic_orbit(dae, &seed.x0, seed.period, &opts) {
                let stats = obskit::RunStats {
                    newton_iters: orbit.iterations,
                    ..Default::default()
                };
                return Ok((orbit, stats));
            }
        }
    }
    oscillator_steady_state_with_stats(dae, &opts)
}

/// State at the last interior local maximum of variable `var`.
fn state_at_last_peak(res: &TransientResult, var: usize) -> Option<Vec<f64>> {
    let sig = res.signal(var);
    for i in (1..sig.len().saturating_sub(1)).rev() {
        if sig[i] >= sig[i - 1] && sig[i] > sig[i + 1] {
            return Some(res.states[i].clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::analytic::VanDerPol;
    use circuitdae::circuits;

    #[test]
    fn vdp_period_matches_asymptotics() {
        let vdp = VanDerPol::unforced(0.2);
        let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();
        let expected = vdp.approx_period();
        assert!(
            (orbit.period - expected).abs() / expected < 5e-3,
            "period {} vs {}",
            orbit.period,
            expected
        );
        // Amplitude ≈ 2.
        let amp = orbit
            .samples
            .iter()
            .map(|x| x[0].abs())
            .fold(0.0_f64, f64::max);
        assert!((amp - 2.0).abs() < 0.05, "amplitude {amp}");
    }

    #[test]
    fn vdp_orbit_is_actually_periodic() {
        let vdp = VanDerPol::unforced(1.0);
        let opts = ShootingOptions::default();
        let orbit = oscillator_steady_state(&vdp, &opts).unwrap();
        // The discrete flow at the solver's own discretisation must return
        // to x0 (that is the fixed point shooting solves for).
        let (x_end, _m, _s) = flow_with_monodromy(
            &vdp,
            &orbit.x0,
            orbit.period,
            opts.steps_per_period,
            opts.integrator,
            opts.linear_solver,
        )
        .unwrap();
        for (a, b) in x_end.iter().zip(orbit.x0.iter()) {
            assert!((a - b).abs() < 1e-6, "{x_end:?} vs {:?}", orbit.x0);
        }
        // A finer discretisation agrees to integration accuracy O(h²).
        let (x_fine, _m, _s) = flow_with_monodromy(
            &vdp,
            &orbit.x0,
            orbit.period,
            4096,
            opts.integrator,
            opts.linear_solver,
        )
        .unwrap();
        for (a, b) in x_fine.iter().zip(orbit.x0.iter()) {
            assert!((a - b).abs() < 5e-3, "fine {x_fine:?} vs {:?}", orbit.x0);
        }
    }

    #[test]
    fn vdp_monodromy_has_unit_floquet_multiplier() {
        // One Floquet multiplier of an autonomous orbit is exactly 1
        // (perturbations along the orbit neither grow nor decay).
        let vdp = VanDerPol::unforced(0.5);
        let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();
        let m = &orbit.monodromy;
        // 2x2 eigenvalues via trace/det.
        let tr = m[(0, 0)] + m[(1, 1)];
        let det = m[(0, 0)] * m[(1, 1)] - m[(0, 1)] * m[(1, 0)];
        let disc = tr * tr / 4.0 - det;
        assert!(disc >= 0.0, "expected real multipliers, disc={disc}");
        let l1 = tr / 2.0 + disc.sqrt();
        let l2 = tr / 2.0 - disc.sqrt();
        let closest = if (l1 - 1.0).abs() < (l2 - 1.0).abs() {
            l1
        } else {
            l2
        };
        assert!((closest - 1.0).abs() < 0.02, "multipliers {l1}, {l2}");
        // The other multiplier must be inside the unit circle (stable orbit).
        let other = if closest == l1 { l2 } else { l1 };
        assert!(other.abs() < 1.0);
    }

    #[test]
    fn lc_vco_frequency_is_750khz() {
        let dae = circuits::lc_vco();
        let orbit = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let f = orbit.frequency();
        assert!((f - 0.75e6).abs() / 0.75e6 < 0.02, "frequency {f} Hz");
    }

    #[test]
    fn resample_uniform_shape() {
        let vdp = VanDerPol::unforced(0.5);
        let orbit = oscillator_steady_state(&vdp, &ShootingOptions::default()).unwrap();
        let grid = orbit.resample_uniform(15);
        assert_eq!(grid.len(), 15);
        assert_eq!(grid[0].len(), 2);
        // First sample is x0.
        for (a, b) in grid[0].iter().zip(orbit.x0.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_backend_finds_the_same_orbit() {
        let dae = circuits::ring_loaded_vco(6);
        let dense = oscillator_steady_state(&dae, &ShootingOptions::default()).unwrap();
        let sparse = oscillator_steady_state(
            &dae,
            &ShootingOptions {
                linear_solver: LinearSolverKind::SparseLu,
                ..Default::default()
            },
        )
        .unwrap();
        let rel = (dense.period - sparse.period).abs() / dense.period;
        assert!(rel < 1e-9, "period {} vs {}", dense.period, sparse.period);
    }

    #[test]
    fn bad_inputs() {
        let vdp = VanDerPol::unforced(0.5);
        let opts = ShootingOptions::default();
        assert!(find_periodic_orbit(&vdp, &[1.0], 6.0, &opts).is_err());
        assert!(find_periodic_orbit(&vdp, &[1.0, 0.0], -1.0, &opts).is_err());
        let bad_phase = ShootingOptions {
            phase_var: 5,
            ..Default::default()
        };
        assert!(find_periodic_orbit(&vdp, &[1.0, 0.0], 6.0, &bad_phase).is_err());
    }
}
