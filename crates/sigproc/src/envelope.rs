//! Amplitude-envelope extraction and settling analysis.

/// Peak-to-peak amplitude envelope from local extrema: returns
/// `(times, amplitudes)` where each entry is half the spread between one
/// local maximum and the nearest following local minimum.
pub fn amplitude_envelope(ts: &[f64], xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(ts.len(), xs.len(), "amplitude_envelope: length mismatch");
    let mut maxima = Vec::new();
    let mut minima = Vec::new();
    for i in 1..xs.len().saturating_sub(1) {
        if xs[i] >= xs[i - 1] && xs[i] > xs[i + 1] {
            maxima.push((ts[i], xs[i]));
        }
        if xs[i] <= xs[i - 1] && xs[i] < xs[i + 1] {
            minima.push((ts[i], xs[i]));
        }
    }
    let mut times = Vec::new();
    let mut amps = Vec::new();
    let mut j = 0;
    for &(tmax, vmax) in &maxima {
        while j < minima.len() && minima[j].0 < tmax {
            j += 1;
        }
        if j < minima.len() {
            times.push(0.5 * (tmax + minima[j].0));
            amps.push(0.5 * (vmax - minima[j].1));
        }
    }
    (times, amps)
}

/// Time after which a trace stays within `band` (relative) of its final
/// value — the settling-time readout for the paper's Figure 10
/// discussion. Returns `None` when the trace never settles.
pub fn settling_time(ts: &[f64], xs: &[f64], band: f64) -> Option<f64> {
    assert_eq!(ts.len(), xs.len(), "settling_time: length mismatch");
    let last = *xs.last()?;
    let tol = band * last.abs().max(f64::MIN_POSITIVE);
    // Walk backwards to the last point that violates the band.
    for i in (0..xs.len()).rev() {
        if (xs[i] - last).abs() > tol {
            return ts.get(i + 1).copied();
        }
    }
    ts.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_of_decaying_sine() {
        let n = 20000;
        let dt = 1e-3;
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        let xs: Vec<f64> = ts
            .iter()
            .map(|&t| (-0.2 * t).exp() * (2.0 * std::f64::consts::PI * 5.0 * t).sin())
            .collect();
        let (times, amps) = amplitude_envelope(&ts, &xs);
        assert!(times.len() > 50);
        for (t, a) in times.iter().zip(amps.iter()) {
            let want = (-0.2 * t).exp();
            assert!(
                (a - want).abs() < 0.05 * want + 0.01,
                "t={t}: {a} vs {want}"
            );
        }
    }

    #[test]
    fn settling_of_exponential() {
        let n = 10000;
        let dt = 1e-3;
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        // x(t) = 1 − e^{−t}: settles to within 1% of ~1 at t ≈ ln(100) ≈ 4.6.
        let xs: Vec<f64> = ts.iter().map(|&t| 1.0 - (-t).exp()).collect();
        let t_settle = settling_time(&ts, &xs, 0.01).unwrap();
        assert!((t_settle - 4.6).abs() < 0.3, "settling at {t_settle}");
    }

    #[test]
    fn settled_from_start() {
        let ts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let xs = vec![2.0; 10];
        assert_eq!(settling_time(&ts, &xs, 0.01), Some(0.0));
    }

    #[test]
    fn empty_inputs() {
        let (t, a) = amplitude_envelope(&[], &[]);
        assert!(t.is_empty() && a.is_empty());
        assert_eq!(settling_time(&[], &[], 0.1), None);
    }
}
