//! Waveform post-processing for oscillator experiments.
//!
//! The paper's evaluation compares methods through *observables*: the
//! local-frequency trace (Figures 7/10), waveform overlays (Figures 9/12)
//! and accumulated phase error (the core failing of transient simulation
//! that the WaMPDE eliminates). This crate computes those observables
//! from sampled waveforms:
//!
//! * [`zero_crossings`] / [`instantaneous_frequency`] — cycle-accurate
//!   frequency estimation by interpolated rising-edge detection;
//! * [`cumulative_phase`] / [`phase_error_trace`] — unwrapped oscillation
//!   phase and its deviation between a reference and a test waveform;
//! * [`metrics`] — RMS/∞ error norms between waveforms on a common grid;
//! * [`spectrum`] — windowed DFT magnitudes for spot checks.

pub mod envelope;
pub mod metrics;
pub mod phase;
pub mod spectrum;

pub use envelope::{amplitude_envelope, settling_time};
pub use metrics::{max_abs_error, rms, rms_error};
pub use phase::{
    cumulative_phase, instantaneous_frequency, phase_error_trace, zero_crossings, FrequencyTrace,
};
pub use spectrum::magnitude_spectrum;
