//! Waveform comparison metrics.

/// Root-mean-square of a sequence.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|v| v * v).sum::<f64>() / xs.len() as f64).sqrt()
}

/// RMS difference between two equal-length waveforms.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn rms_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rms_error: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let acc: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    (acc / a.len() as f64).sqrt()
}

/// Maximum absolute difference between two equal-length waveforms.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_error: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[2.0; 10]) - 2.0).abs() < 1e-15);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn rms_of_sine_is_inv_sqrt2() {
        let xs: Vec<f64> = (0..10000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin())
            .collect();
        assert!((rms(&xs) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn errors_between_shifted_constants() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.5, 0.5, 1.0];
        assert!((rms_error(&a, &b) - (0.5f64.powi(2) * 2.0 / 3.0).sqrt()).abs() < 1e-15);
        assert_eq!(max_abs_error(&a, &b), 0.5);
    }

    #[test]
    fn zero_for_identical() {
        let a = [0.3, -0.7, 2.0];
        assert_eq!(rms_error(&a, &a), 0.0);
        assert_eq!(max_abs_error(&a, &a), 0.0);
    }
}
