//! Zero-crossing based phase and frequency estimation.

/// Times of rising zero crossings of `(ts, xs)` after mean removal,
/// located by linear interpolation between samples.
///
/// # Panics
///
/// Panics when `ts.len() != xs.len()`.
pub fn zero_crossings(ts: &[f64], xs: &[f64]) -> Vec<f64> {
    assert_eq!(ts.len(), xs.len(), "zero_crossings: length mismatch");
    if xs.is_empty() {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let mut out = Vec::new();
    for i in 1..xs.len() {
        let a = xs[i - 1] - mean;
        let b = xs[i] - mean;
        if a <= 0.0 && b > 0.0 {
            let w = -a / (b - a);
            out.push(ts[i - 1] + w * (ts[i] - ts[i - 1]));
        }
    }
    out
}

/// A per-cycle instantaneous-frequency estimate.
#[derive(Debug, Clone)]
pub struct FrequencyTrace {
    /// Cycle mid-times.
    pub times: Vec<f64>,
    /// Frequency of each cycle (Hz).
    pub freq_hz: Vec<f64>,
}

impl FrequencyTrace {
    /// Minimum and maximum of the trace.
    ///
    /// # Panics
    ///
    /// Panics when the trace is empty.
    pub fn range(&self) -> (f64, f64) {
        assert!(!self.freq_hz.is_empty(), "empty frequency trace");
        let lo = self.freq_hz.iter().fold(f64::INFINITY, |m, v| m.min(*v));
        let hi = self
            .freq_hz
            .iter()
            .fold(f64::NEG_INFINITY, |m, v| m.max(*v));
        (lo, hi)
    }
}

/// Per-cycle instantaneous frequency from rising zero crossings — the
/// estimator used to extract Figure 7/10-style traces from transient
/// waveforms.
pub fn instantaneous_frequency(ts: &[f64], xs: &[f64]) -> FrequencyTrace {
    let crossings = zero_crossings(ts, xs);
    let mut times = Vec::new();
    let mut freq = Vec::new();
    for w in crossings.windows(2) {
        let period = w[1] - w[0];
        if period > 0.0 {
            times.push(0.5 * (w[0] + w[1]));
            freq.push(1.0 / period);
        }
    }
    FrequencyTrace {
        times,
        freq_hz: freq,
    }
}

/// Unwrapped oscillation phase (in cycles) at the crossing times: the
/// `k`-th rising crossing carries phase `k`.
///
/// Returns `(crossing_times, phase_cycles)`.
pub fn cumulative_phase(ts: &[f64], xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let crossings = zero_crossings(ts, xs);
    let phases = (0..crossings.len()).map(|k| k as f64).collect();
    (crossings, phases)
}

/// Phase error (in cycles) of a test waveform against a reference, as a
/// function of time.
///
/// Both waveforms' unwrapped phases are computed from rising crossings;
/// the reference phase is linearly interpolated at the test's crossing
/// times and subtracted. A transient run that accumulates phase error
/// (paper Figure 12) shows a growing trace; the WaMPDE's stays bounded.
///
/// Returns `(times, phase_error_cycles)` over the overlapping time span.
pub fn phase_error_trace(
    ts_ref: &[f64],
    xs_ref: &[f64],
    ts_test: &[f64],
    xs_test: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let (ct_ref, ph_ref) = cumulative_phase(ts_ref, xs_ref);
    let (ct_test, ph_test) = cumulative_phase(ts_test, xs_test);
    if ct_ref.len() < 2 || ct_test.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let mut times = Vec::new();
    let mut errs = Vec::new();
    for (t, p) in ct_test.iter().zip(ph_test.iter()) {
        if *t < ct_ref[0] || *t > *ct_ref.last().expect("nonempty") {
            continue;
        }
        // Interpolate the reference phase at t.
        let hi = ct_ref.partition_point(|&v| v <= *t).min(ct_ref.len() - 1);
        let lo = hi.saturating_sub(1);
        let w = if hi == lo {
            0.0
        } else {
            (*t - ct_ref[lo]) / (ct_ref[hi] - ct_ref[lo])
        };
        let ref_phase = ph_ref[lo] * (1.0 - w) + ph_ref[hi] * w;
        times.push(*t);
        errs.push(p - ref_phase);
    }
    // Remove the constant offset (the two waveforms' first crossings need
    // not coincide): report drift relative to the initial alignment.
    if let Some(&first) = errs.first() {
        for e in errs.iter_mut() {
            *e -= first;
        }
    }
    (times, errs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, n: usize, dt: f64) -> (Vec<f64>, Vec<f64>) {
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        let xs = ts
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * freq * t).sin())
            .collect();
        (ts, xs)
    }

    #[test]
    fn crossings_of_pure_sine() {
        let (ts, xs) = sine(10.0, 1000, 1e-3);
        let c = zero_crossings(&ts, &xs);
        // Rising crossings at t = 0, 0.1, 0.2, ... (the one at 0 may be
        // missed depending on the first sample's sign).
        assert!(c.len() >= 9);
        for w in c.windows(2) {
            assert!((w[1] - w[0] - 0.1).abs() < 1e-4);
        }
    }

    #[test]
    fn frequency_of_pure_sine() {
        let (ts, xs) = sine(50.0, 5000, 1e-4);
        let tr = instantaneous_frequency(&ts, &xs);
        let (lo, hi) = tr.range();
        assert!((lo - 50.0).abs() < 0.5, "lo {lo}");
        assert!((hi - 50.0).abs() < 0.5, "hi {hi}");
    }

    #[test]
    fn frequency_tracks_chirp() {
        // Linear chirp 10 → 20 Hz over 1 s.
        let n = 20000;
        let dt = 5e-5;
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        let xs: Vec<f64> = ts
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * (10.0 * t + 5.0 * t * t)).sin())
            .collect();
        let tr = instantaneous_frequency(&ts, &xs);
        // Instantaneous frequency is 10 + 10 t.
        for (t, f) in tr.times.iter().zip(tr.freq_hz.iter()) {
            let want = 10.0 + 10.0 * t;
            assert!((f - want).abs() < 0.5, "t={t}: {f} vs {want}");
        }
    }

    #[test]
    fn identical_signals_zero_phase_error() {
        let (ts, xs) = sine(25.0, 4000, 1e-4);
        let (times, errs) = phase_error_trace(&ts, &xs, &ts, &xs);
        assert!(!times.is_empty());
        for e in errs {
            assert!(e.abs() < 1e-9);
        }
    }

    #[test]
    fn detuned_signal_accumulates_phase_error() {
        let (ts_a, xs_a) = sine(25.0, 8000, 1e-4);
        let (ts_b, xs_b) = sine(25.5, 8000, 1e-4);
        let (times, errs) = phase_error_trace(&ts_a, &xs_a, &ts_b, &xs_b);
        // 0.5 Hz detune → phase error grows 0.5 cycles per second.
        let last_t = *times.last().unwrap();
        let last_e = *errs.last().unwrap();
        assert!(
            (last_e - 0.5 * last_t).abs() < 0.05,
            "t={last_t}: phase error {last_e}"
        );
    }

    #[test]
    fn offset_constant_removed() {
        // Same frequency, different initial phase: error stays ~0.
        let n = 4000;
        let dt = 1e-4;
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        let a: Vec<f64> = ts
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * 25.0 * t).sin())
            .collect();
        let b: Vec<f64> = ts
            .iter()
            .map(|&t| (2.0 * std::f64::consts::PI * 25.0 * t + 1.0).sin())
            .collect();
        let (_, errs) = phase_error_trace(&ts, &a, &ts, &b);
        for e in errs {
            assert!(e.abs() < 1e-3, "residual phase error {e}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(zero_crossings(&[], &[]).is_empty());
        let (t, e) = phase_error_trace(&[], &[], &[], &[]);
        assert!(t.is_empty() && e.is_empty());
    }
}
