//! Simple magnitude spectra for spot checks.

use numkit::Complex64;

/// Magnitude spectrum of a uniformly sampled waveform with a Hann window.
///
/// Returns `(frequencies_hz, magnitudes)` for the positive half-spectrum,
/// normalised so a unit-amplitude sinusoid at a bin centre reads ≈ 1.
///
/// # Panics
///
/// Panics when fewer than two samples are given or `dt <= 0`.
pub fn magnitude_spectrum(xs: &[f64], dt: f64) -> (Vec<f64>, Vec<f64>) {
    assert!(xs.len() >= 2, "need at least two samples");
    assert!(dt > 0.0, "dt must be positive");
    let n = xs.len();
    let windowed: Vec<Complex64> = xs
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let w = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos());
            Complex64::new(v * w, 0.0)
        })
        .collect();
    let spec = fourier::fft::fft_of_any_len(&windowed);
    let half = n / 2 + 1;
    // Hann coherent gain is 0.5; single-sided amplitude needs ×2 (except DC).
    let freqs: Vec<f64> = (0..half).map(|k| k as f64 / (n as f64 * dt)).collect();
    let mags: Vec<f64> = (0..half)
        .map(|k| {
            let scale = if k == 0 { 1.0 } else { 2.0 };
            scale * spec[k].abs() / (0.5 * n as f64)
        })
        .collect();
    (freqs, mags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tone_at_bin_centre() {
        let n = 1024;
        let dt = 1e-3;
        let f_tone = 50.0 / (n as f64 * dt); // exactly bin 50
        let xs: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f_tone * i as f64 * dt).sin())
            .collect();
        let (freqs, mags) = magnitude_spectrum(&xs, dt);
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(peak.0, 50);
        assert!((mags[50] - 1.0).abs() < 0.02, "peak magnitude {}", mags[50]);
        assert!((freqs[50] - f_tone).abs() < 1e-9);
    }

    #[test]
    fn dc_level() {
        let xs = vec![2.0; 256];
        let (_, mags) = magnitude_spectrum(&xs, 1.0);
        assert!((mags[0] - 2.0).abs() < 0.05, "dc {}", mags[0]);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_dt() {
        let _ = magnitude_spectrum(&[1.0, 2.0], 0.0);
    }
}
