//! Approximate-minimum-degree (AMD) fill-reducing ordering.
//!
//! The Gilbert–Peierls kernel in [`crate::lu`] eliminates columns in a
//! caller-chosen order; a bad order on circuit matrices (bordered,
//! `D⊗C`-coupled collocation Jacobians) produces dense-class fill. This
//! module implements the quotient-graph minimum-degree algorithm of the
//! AMD family (Amestoy, Davis & Duff, "An approximate minimum degree
//! ordering algorithm", SIMAX 1996) on the symmetrised pattern
//! `A + Aᵀ`:
//!
//! * eliminated pivots become **elements** (cliques) instead of being
//!   expanded edge-by-edge, so memory stays `O(nnz)`;
//! * freshly covered adjacency entries are pruned and subsumed elements
//!   are **absorbed** into the new element;
//! * degrees are maintained with the AMD *approximate external degree*
//!   bound `d̄_u = min(n−k, d_u + |Lp\u|, |A_u\u| + |Lp\u| +
//!   Σ_e |Le\Lp|)`, computed with the one-pass `|Le\Lp|` counting trick
//!   of the AMD paper.
//!
//! Supervariable (indistinguishable-node) detection is deliberately
//! omitted — circuit Jacobians at this workspace's sizes (≲ 20k) order
//! in milliseconds without it, and the simpler invariants keep the
//! permutation-validity proptests readable.

/// Computes an AMD elimination order for a symmetric sparsity pattern.
///
/// `pattern[i]` lists the neighbours of node `i` (self-loops are
/// ignored; the pattern is symmetrised internally, so callers may pass
/// an unsymmetric adjacency). Returns `order` with `order[k]` = the
/// node eliminated at step `k` — i.e. a permutation of `0..n` suitable
/// as a column (and, with matched pivoting, row) preorder.
pub fn amd(pattern: &[Vec<usize>]) -> Vec<usize> {
    let n = pattern.len();
    if n == 0 {
        return Vec::new();
    }

    // Symmetrise A + Aᵀ without duplicates or self-loops.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, nbrs) in pattern.iter().enumerate() {
        for &j in nbrs {
            if j != i && j < n {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }

    // Quotient-graph state. A node is a *variable* until eliminated,
    // then an *element* whose boundary set lives in `evars`; an element
    // absorbed into a later one is dead.
    const DEAD: usize = usize::MAX;
    let mut elems: Vec<Vec<usize>> = vec![Vec::new(); n]; // elements adjacent to a variable
    let mut evars: Vec<Vec<usize>> = vec![Vec::new(); n]; // boundary variables of an element
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut state: Vec<usize> = vec![0; n]; // 0 = variable, 1 = element, DEAD = absorbed
    let mut mark: Vec<bool> = vec![false; n];
    let mut wlen: Vec<usize> = vec![usize::MAX; n]; // |Le \ Lp| work counters
    let mut touched: Vec<usize> = Vec::new();

    // Min-degree extraction with lazy invalidation: stale heap entries
    // (degree changed since push) are skipped on pop.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> =
        (0..n).map(|i| std::cmp::Reverse((degree[i], i))).collect();

    let mut order = Vec::with_capacity(n);
    let mut lp: Vec<usize> = Vec::new();

    while order.len() < n {
        let p = loop {
            let std::cmp::Reverse((d, cand)) = heap.pop().expect("uneliminated variable remains");
            if state[cand] == 0 && degree[cand] == d {
                break cand;
            }
        };

        // --- Form the new element Lp = (A_p ∪ ⋃ Le) \ eliminated. ---
        lp.clear();
        mark[p] = true;
        for &u in &adj[p] {
            if state[u] == 0 && !mark[u] {
                mark[u] = true;
                lp.push(u);
            }
        }
        for &e in &elems[p] {
            if state[e] != 1 {
                continue; // absorbed earlier
            }
            for &u in &evars[e] {
                if state[u] == 0 && !mark[u] && u != p {
                    mark[u] = true;
                    lp.push(u);
                }
            }
            // e's clique is now covered by element p: absorb it.
            state[e] = DEAD;
            evars[e] = Vec::new();
        }
        lp.sort_unstable(); // canonical order keeps the run deterministic

        // --- One-pass |Le \ Lp| counters over elements touching Lp. ---
        touched.clear();
        for &u in &lp {
            for &e in &elems[u] {
                if state[e] != 1 {
                    continue;
                }
                if wlen[e] == usize::MAX {
                    wlen[e] = evars[e].iter().filter(|&&v| state[v] == 0).count();
                    touched.push(e);
                }
                wlen[e] -= 1; // u ∈ Le ∩ Lp
            }
        }

        // --- Update every boundary variable of the new element. ---
        let lp_size = lp.len();
        for &u in &lp {
            // Prune A_u: entries covered by element p (members of Lp, and
            // p itself) are represented by the element from now on.
            adj[u].retain(|&v| v != p && state[v] == 0 && !mark[v]);
            // Drop absorbed elements, count Σ|Le\Lp| for the live rest.
            let mut ext = 0usize;
            elems[u].retain(|&e| {
                if state[e] != 1 {
                    return false;
                }
                // Aggressive absorption: Le ⊆ Lp ∪ {p} adds nothing.
                if wlen[e] == 0 {
                    state[e] = DEAD;
                    evars[e] = Vec::new();
                    return false;
                }
                ext += wlen[e];
                true
            });
            elems[u].push(p);
            let bound_old = degree[u] + lp_size - 1;
            let bound_set = adj[u].len() + (lp_size - 1) + ext;
            let d = (n - order.len() - 1).min(bound_old).min(bound_set);
            degree[u] = d;
            heap.push(std::cmp::Reverse((d, u)));
        }

        // --- Retire p as an element. ---
        for &e in &touched {
            wlen[e] = usize::MAX;
        }
        for &u in &lp {
            mark[u] = false;
        }
        mark[p] = false;
        state[p] = 1;
        evars[p] = lp.clone();
        adj[p] = Vec::new();
        elems[p] = Vec::new();
        order.push(p);
    }
    order
}

/// AMD order for the (symmetrised) pattern of a square CSC matrix.
pub fn amd_csc(a: &crate::csc::Csc) -> Vec<usize> {
    let n = a.ncols().max(a.nrows());
    let mut pattern: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, col_pattern) in pattern.iter_mut().enumerate().take(a.ncols()) {
        let (rows, _) = a.col(j);
        col_pattern.extend_from_slice(rows);
    }
    amd(&pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&v| {
                if v >= n || seen[v] {
                    false
                } else {
                    seen[v] = true;
                    true
                }
            })
    }

    /// Dense Cholesky-style fill count under a given elimination order
    /// on the symmetrised pattern (reference metric for small cases).
    fn fill_count(pattern: &[Vec<usize>], order: &[usize]) -> usize {
        let n = pattern.len();
        let mut m = vec![vec![false; n]; n];
        for (i, nbrs) in pattern.iter().enumerate() {
            for &j in nbrs {
                m[i][j] = true;
                m[j][i] = true;
            }
        }
        let mut pos = vec![0usize; n];
        for (k, &v) in order.iter().enumerate() {
            pos[v] = k;
        }
        let mut fill = 0;
        for &p in order {
            let nbrs: Vec<usize> = (0..n)
                .filter(|&u| u != p && m[p][u] && pos[u] > pos[p])
                .collect();
            for (a, &u) in nbrs.iter().enumerate() {
                for &v in nbrs.iter().skip(a + 1) {
                    if !m[u][v] {
                        m[u][v] = true;
                        m[v][u] = true;
                        fill += 1;
                    }
                }
            }
        }
        fill
    }

    #[test]
    fn empty_and_singleton() {
        assert!(amd(&[]).is_empty());
        assert_eq!(amd(&[vec![]]), vec![0]);
    }

    #[test]
    fn path_graph_is_fill_free() {
        // A path eliminated endpoints-inward has zero fill; AMD must
        // find a zero-fill order (any order of degree-1 peeling works).
        let n = 12;
        let mut pattern: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, nbrs) in pattern.iter_mut().enumerate().take(n - 1) {
            nbrs.push(i + 1);
        }
        let order = amd(&pattern);
        assert!(is_permutation(&order, n));
        assert_eq!(fill_count(&pattern, &order), 0);
    }

    #[test]
    fn star_center_goes_last() {
        // Star graph: eliminating the hub first creates a clique on all
        // leaves; minimum degree must peel the leaves first.
        let n = 9;
        let pattern: Vec<Vec<usize>> = (0..n)
            .map(|i| if i == 0 { (1..n).collect() } else { vec![0] })
            .collect();
        let order = amd(&pattern);
        assert!(is_permutation(&order, n));
        // Once only one leaf remains the hub ties it at degree 1, so the
        // hub may go second-to-last; never earlier.
        let hub_pos = order.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= n - 2, "hub eliminated at {hub_pos}");
        assert_eq!(fill_count(&pattern, &order), 0);
    }

    #[test]
    fn arrowhead_beats_natural_order() {
        // Arrowhead with the dense row FIRST: natural order fills the
        // whole matrix; AMD defers the hub and stays fill-free.
        let n = 30;
        let mut pattern: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 1..n {
            pattern[0].push(i);
        }
        let order = amd(&pattern);
        let natural: Vec<usize> = (0..n).collect();
        let f_amd = fill_count(&pattern, &order);
        let f_nat = fill_count(&pattern, &natural);
        assert_eq!(f_amd, 0, "AMD order {order:?}");
        assert!(f_nat > 100);
    }

    #[test]
    fn grid_graph_low_fill() {
        // 2-D grid: natural (row-major) order fills one bandwidth per
        // node; AMD should do at least as well (nested-dissection-like
        // orders do far better, but MD beats natural comfortably).
        let k = 7;
        let n = k * k;
        let mut pattern: Vec<Vec<usize>> = vec![Vec::new(); n];
        for r in 0..k {
            for c in 0..k {
                let i = r * k + c;
                if c + 1 < k {
                    pattern[i].push(i + 1);
                }
                if r + 1 < k {
                    pattern[i].push(i + k);
                }
            }
        }
        let order = amd(&pattern);
        assert!(is_permutation(&order, n));
        let natural: Vec<usize> = (0..n).collect();
        assert!(fill_count(&pattern, &order) <= fill_count(&pattern, &natural));
    }

    #[test]
    fn csc_wrapper_orders_unsymmetric_input() {
        let mut t = Triplets::new(5, 5);
        t.push(0, 4, 1.0);
        t.push(1, 0, 1.0);
        t.push(2, 1, 1.0);
        t.push(3, 2, 1.0);
        t.push(4, 3, 1.0);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        let order = amd_csc(&t.to_csc());
        assert!(is_permutation(&order, 5));
    }

    #[test]
    fn deterministic_across_calls() {
        let n = 40;
        let mut pattern: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut s = 12345u64;
        for nbrs in pattern.iter_mut() {
            for _ in 0..3 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                nbrs.push(((s >> 33) as usize) % n);
            }
        }
        let a = amd(&pattern);
        let b = amd(&pattern);
        assert_eq!(a, b);
        assert!(is_permutation(&a, n));
    }
}
