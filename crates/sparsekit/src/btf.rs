//! Block-triangular form: maximum transversal + SCC condensation.
//!
//! The KLU recipe permutes a circuit matrix to *block upper triangular*
//! form before factorising: a maximum transversal (Duff's MC21,
//! augmenting-path bipartite matching) puts a zero-free diagonal in
//! place, then Tarjan's strongly-connected-components algorithm on the
//! matched column graph (the Duff/Reid MC13 step) groups the columns
//! into irreducible diagonal blocks in topological order. LU with
//! block-respecting (diagonal-preferred) pivoting then factors each
//! block independently — *no fill crosses a block boundary* — and
//! off-diagonal entries land directly in `U`.
//!
//! Both traversals are iterative (explicit stacks), so kilonode circuit
//! matrices order fine on shrunken test-thread stacks.

use crate::csc::Csc;
use crate::error::SparseError;

const NONE: usize = usize::MAX;

/// The block-triangular form of a square sparse matrix.
///
/// Positions `p = 0..n` index the permuted matrix; `col_order[p]` is
/// the original column placed at `p` and `match_row[col_order[p]]` the
/// original row placed at `p`, so the permuted diagonal is the maximum
/// transversal (structurally nonzero throughout). Blocks are contiguous
/// position ranges `block_ptr[b]..block_ptr[b + 1]` in topological
/// order: every off-block entry of the permuted matrix lies *above* its
/// diagonal block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtfForm {
    /// `match_row[c]` = the row matched to original column `c`.
    pub match_row: Vec<usize>,
    /// `col_order[p]` = original column at permuted position `p`.
    pub col_order: Vec<usize>,
    /// Block boundaries into positions; `block_ptr.len() == nblocks+1`.
    pub block_ptr: Vec<usize>,
}

impl BtfForm {
    /// Number of irreducible diagonal blocks.
    pub fn nblocks(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// Size of the largest diagonal block.
    pub fn max_block(&self) -> usize {
        self.block_ptr
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }
}

/// Maximum transversal by augmenting paths (MC21-style).
///
/// Returns `match_row` with `match_row[c]` = the row matched to column
/// `c`, or an error naming the first column that cannot be matched
/// (the matrix is structurally singular).
///
/// # Errors
///
/// * [`SparseError::DimensionMismatch`] for non-square input;
/// * [`SparseError::Singular`] when no perfect matching exists.
pub fn max_transversal(a: &Csc) -> Result<Vec<usize>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.nrows(), a.ncols()),
        });
    }
    let n = a.ncols();
    let mut match_row = vec![NONE; n]; // column -> row
    let mut match_col = vec![NONE; n]; // row -> column
                                       // cheap[c]: next unscanned entry of column c for the cheap-assignment
                                       // phase of each augmenting search (Duff's lookahead).
    let mut cheap = vec![0usize; n];
    let mut visited = vec![NONE; n]; // last search that touched a column
                                     // DFS frame: (column, next entry index to try).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    // Row chosen on the path out of each stacked column.
    let mut path_row: Vec<usize> = Vec::new();

    for root in 0..n {
        if match_row[root] != NONE {
            continue;
        }
        stack.clear();
        path_row.clear();
        stack.push((root, 0));
        visited[root] = root;
        let mut augmented = false;
        'search: while let Some(&mut (c, ref mut next)) = stack.last_mut() {
            let (rows, _) = a.col(c);
            // Cheap phase: any unmatched row ends the search at once.
            while cheap[c] < rows.len() {
                let r = rows[cheap[c]];
                cheap[c] += 1;
                if match_col[r] == NONE {
                    path_row.push(r);
                    augmented = true;
                    break 'search;
                }
            }
            // Recursive phase: step through matched rows.
            let mut advanced = false;
            while *next < rows.len() {
                let r = rows[*next];
                *next += 1;
                let c2 = match_col[r];
                debug_assert_ne!(c2, NONE);
                if visited[c2] != root {
                    visited[c2] = root;
                    path_row.push(r);
                    stack.push((c2, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stack.pop();
                if !stack.is_empty() {
                    path_row.pop();
                }
            }
        }
        if !augmented {
            return Err(SparseError::Singular { column: root });
        }
        // Flip the augmenting path: column stack[i] takes path_row[i].
        debug_assert_eq!(path_row.len(), stack.len());
        for (&(c, _), &r) in stack.iter().zip(path_row.iter()) {
            match_row[c] = r;
            match_col[r] = c;
        }
    }
    Ok(match_row)
}

/// Computes the block-triangular form of a square sparse matrix:
/// maximum transversal, then Tarjan SCC condensation of the matched
/// column graph in topological order.
///
/// # Errors
///
/// * [`SparseError::DimensionMismatch`] for non-square input;
/// * [`SparseError::Singular`] for a structurally singular matrix.
pub fn btf(a: &Csc) -> Result<BtfForm, SparseError> {
    let match_row = max_transversal(a)?;
    let n = a.ncols();
    let mut col_of_row = vec![NONE; n];
    for (c, &r) in match_row.iter().enumerate() {
        col_of_row[r] = c;
    }

    // Directed graph on columns: j -> k when column j has an entry in
    // k's matched row (the permuted entry B[k, j]). Tarjan emits SCCs
    // so that the target of any cross edge comes first, which is
    // exactly the block order that makes the permuted matrix block
    // *upper* triangular. Iterative Tarjan below.
    let mut index = vec![NONE; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut col_order: Vec<usize> = Vec::with_capacity(n);
    let mut block_ptr: Vec<usize> = vec![0];
    // DFS frame: (node, next edge offset).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != NONE {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let mut descended = false;
            let (rows, _) = a.col(v);
            while *ei < rows.len() {
                let w = col_of_row[rows[*ei]];
                *ei += 1;
                if index[w] == NONE {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    scc_stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v is finished: emit its SCC if it is a root.
            frames.pop();
            if let Some(&mut (parent, _)) = frames.last_mut() {
                lowlink[parent] = lowlink[parent].min(lowlink[v]);
            }
            if lowlink[v] == index[v] {
                let start = col_order.len();
                loop {
                    let w = scc_stack.pop().expect("scc member on stack");
                    on_stack[w] = false;
                    col_order.push(w);
                    if w == v {
                        break;
                    }
                }
                // Canonical within-block order (AMD reorders later
                // anyway, but determinism should not depend on stack
                // pop order).
                col_order[start..].sort_unstable();
                block_ptr.push(col_order.len());
            }
        }
    }

    Ok(BtfForm {
        match_row,
        col_order,
        block_ptr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;

    fn csc_from(entries: &[(usize, usize)], n: usize) -> Csc {
        let mut t = Triplets::new(n, n);
        for &(i, j) in entries {
            t.push(i, j, 1.0);
        }
        t.to_csc()
    }

    /// Position of each original row/column in the permuted matrix.
    fn positions(form: &BtfForm) -> (Vec<usize>, Vec<usize>) {
        let n = form.col_order.len();
        let mut col_pos = vec![0; n];
        let mut row_pos = vec![0; n];
        for (p, &c) in form.col_order.iter().enumerate() {
            col_pos[c] = p;
            row_pos[form.match_row[c]] = p;
        }
        (row_pos, col_pos)
    }

    /// Asserts the BTF contract on a matrix: zero-free diagonal and all
    /// off-block entries above the diagonal blocks.
    fn check_btf(a: &Csc) -> BtfForm {
        let form = btf(a).unwrap();
        let n = a.ncols();
        let (row_pos, col_pos) = positions(&form);
        // match_row is a permutation and every matched entry exists.
        let mut seen = vec![false; n];
        for (c, &r) in form.match_row.iter().enumerate() {
            assert!(!seen[r]);
            seen[r] = true;
            assert!(a.get(r, c) != 0.0, "diagonal ({r},{c}) missing");
        }
        // Block of each position.
        let mut block_of = vec![0usize; n];
        for b in 0..form.nblocks() {
            for slot in &mut block_of[form.block_ptr[b]..form.block_ptr[b + 1]] {
                *slot = b;
            }
        }
        // Every entry sits in-or-above its column's diagonal block.
        for j in 0..n {
            let (rows, _) = a.col(j);
            for &i in rows {
                assert!(
                    block_of[row_pos[i]] <= block_of[col_pos[j]],
                    "entry ({i},{j}) below its diagonal block"
                );
            }
        }
        form
    }

    #[test]
    fn identity_gives_n_blocks() {
        let a = csc_from(&[(0, 0), (1, 1), (2, 2)], 3);
        let form = check_btf(&a);
        assert_eq!(form.nblocks(), 3);
        assert_eq!(form.max_block(), 1);
    }

    #[test]
    fn full_cycle_is_one_block() {
        // Permutation cycle 0->1->2->0 plus diagonal: strongly connected.
        let a = csc_from(&[(0, 0), (1, 1), (2, 2), (1, 0), (2, 1), (0, 2)], 3);
        let form = check_btf(&a);
        assert_eq!(form.nblocks(), 1);
        assert_eq!(form.max_block(), 3);
    }

    #[test]
    fn lower_triangular_decouples() {
        // Strictly lower entries + diagonal: n singleton blocks.
        let a = csc_from(&[(0, 0), (1, 1), (2, 2), (1, 0), (2, 0), (2, 1)], 3);
        let form = check_btf(&a);
        assert_eq!(form.nblocks(), 3);
    }

    #[test]
    fn off_diagonal_matching_needed() {
        // Anti-diagonal: matching must pick (2,0), (1,1), (0,2).
        let a = csc_from(&[(2, 0), (1, 1), (0, 2)], 3);
        let form = check_btf(&a);
        assert_eq!(form.match_row, vec![2, 1, 0]);
        assert_eq!(form.nblocks(), 3);
    }

    #[test]
    fn two_sccs_ordered() {
        // Block {0,1} coupled both ways; block {2,3} coupled both ways;
        // entry (0, 2) couples block {2,3} -> {0,1} in permuted-upper
        // terms: columns 2,3 depend on rows of block {0,1}.
        let a = csc_from(
            &[
                (0, 0),
                (1, 1),
                (0, 1),
                (1, 0),
                (2, 2),
                (3, 3),
                (2, 3),
                (3, 2),
                (0, 2),
            ],
            4,
        );
        let form = check_btf(&a);
        assert_eq!(form.nblocks(), 2);
        assert_eq!(form.max_block(), 2);
    }

    #[test]
    fn structurally_singular_detected() {
        // Column 2 empty.
        let a = csc_from(&[(0, 0), (1, 1), (2, 0), (2, 1)], 3);
        assert!(matches!(btf(&a), Err(SparseError::Singular { .. })));
        // Two columns share their only row.
        let b = csc_from(&[(0, 0), (0, 1), (1, 2), (2, 2)], 3);
        assert!(matches!(btf(&b), Err(SparseError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let t = Triplets::new(2, 3);
        assert!(matches!(
            btf(&t.to_csc()),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn long_chain_runs_iteratively() {
        // A 20k-node chain would overflow a recursive DFS on a small
        // thread stack; the iterative implementation must handle it.
        let n = 20_000;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
            if i + 1 < n {
                t.push(i, i + 1, 1.0);
            }
        }
        let form = btf(&t.to_csc()).unwrap();
        assert_eq!(form.nblocks(), n);
    }

    #[test]
    fn augmenting_path_chain() {
        // Matching forced through a long augmenting chain: column k's
        // preferred row is taken by column k+1's only choice.
        let n = 50;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
            if i + 1 < n {
                t.push(i, i + 1, 1.0); // column i+1 also hits row i
            }
        }
        let form = check_btf(&t.to_csc());
        assert_eq!(form.col_order.len(), n);
    }
}
