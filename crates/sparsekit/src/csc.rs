//! Compressed sparse column storage.

use crate::csr::Csr;

/// A compressed-sparse-column matrix — the input format of [`crate::SparseLu`].
///
/// Columns are stored contiguously with strictly increasing row indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl Csc {
    /// Builds from raw CSC arrays.
    ///
    /// # Panics
    ///
    /// Panics when the arrays are inconsistent.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), ncols + 1, "indptr length must be ncols+1");
        assert_eq!(indices.len(), data.len(), "indices/data length mismatch");
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr tail must equal nnz"
        );
        debug_assert!(indices.iter().all(|&r| r < nrows), "row index out of range");
        Csc {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row indices and values of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.indptr[j], self.indptr[j + 1]);
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Column pointer array (length `ncols + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Row indices, column-major (the sparsity pattern together with
    /// [`Csc::indptr`]).
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, column-major.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Value at `(i, j)`, or `0.0` when not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (r, v) in rows.iter().zip(vals.iter()) {
                y[*r] += v * xj;
            }
        }
        y
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.indices {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut cols = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for j in 0..self.ncols {
            let (rows, v) = self.col(j);
            for (r, val) in rows.iter().zip(v.iter()) {
                let k = cursor[*r];
                cols[k] = j;
                vals[k] = *val;
                cursor[*r] += 1;
            }
        }
        Csr::from_raw(self.nrows, self.ncols, indptr, cols, vals)
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> numkit::DMat {
        let mut m = numkit::DMat::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (r, v) in rows.iter().zip(vals.iter()) {
                m[(*r, j)] = *v;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;

    fn sample() -> Csc {
        let mut t = Triplets::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            t.push(r, c, v);
        }
        t.to_csc()
    }

    #[test]
    fn col_access() {
        let a = sample();
        let (rows, vals) = a.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
    }

    #[test]
    fn matvec_matches_csr() {
        let a = sample();
        let x = [1.0, -2.0, 0.5];
        assert_eq!(a.matvec(&x), a.to_csr().matvec(&x));
    }

    #[test]
    fn get_values() {
        let a = sample();
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn csr_roundtrip() {
        let a = sample();
        assert_eq!(a.to_csr().to_csc(), a);
    }
}
