//! Compressed sparse row storage.

use crate::csc::Csc;

/// A compressed-sparse-row matrix.
///
/// Rows are stored contiguously with strictly increasing column indices —
/// the natural layout for matvec and for row-wise factorisations
/// like ILU(0).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl Csr {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics when the arrays are inconsistent (debug-grade validation).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), nrows + 1, "indptr length must be nrows+1");
        assert_eq!(indices.len(), data.len(), "indices/data length mismatch");
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr tail must equal nnz"
        );
        debug_assert!(
            indices.iter().all(|&c| c < ncols),
            "column index out of range"
        );
        Csr {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable stored values (pattern-preserving updates).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Value at `(i, j)`, or `0.0` when not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller buffer.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals.iter()) {
                acc += v * x[*c];
            }
            *yi = acc;
        }
    }

    /// Matrix–vector product into a caller buffer, rows partitioned
    /// across up to `threads` scoped threads.
    ///
    /// Each row is owned by exactly one thread and its dot product runs
    /// the same left-to-right accumulation as [`Csr::matvec_into`], so
    /// the result is bitwise identical to the serial product at every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec_into_threads(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        let workers = threads.min(self.nrows);
        if workers <= 1 {
            return self.matvec_into(x, y);
        }
        let chunk = self.nrows.div_ceil(workers);
        std::thread::scope(|scope| {
            for (c, y_rows) in y.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                scope.spawn(move || {
                    for (i, yi) in y_rows.iter_mut().enumerate() {
                        let (cols, vals) = self.row(base + i);
                        let mut acc = 0.0;
                        for (col, v) in cols.iter().zip(vals.iter()) {
                            acc += v * x[*col];
                        }
                        *yi = acc;
                    }
                });
            }
        });
    }

    /// Converts to CSC.
    pub fn to_csc(&self) -> Csc {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let mut indptr = counts.clone();
        let mut rows = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for i in 0..self.nrows {
            let (cols, v) = self.row(i);
            for (c, val) in cols.iter().zip(v.iter()) {
                let k = cursor[*c];
                rows[k] = i;
                vals[k] = *val;
                cursor[*c] += 1;
            }
        }
        // CSC indptr is the pre-increment counts; recompute cleanly.
        indptr.push(self.nnz());
        let mut ip = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            ip[c + 1] += 1;
        }
        for j in 0..self.ncols {
            ip[j + 1] += ip[j];
        }
        Csc::from_raw(self.nrows, self.ncols, ip, rows, vals)
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> numkit::DMat {
        let mut m = numkit::DMat::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals.iter()) {
                m[(i, *c)] = *v;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut t = Triplets::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            t.push(r, c, v);
        }
        t.to_csr()
    }

    #[test]
    fn identity_matvec() {
        let i = Csr::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_known() {
        let a = sample();
        let y = a.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn get_stored_and_zero() {
        let a = sample();
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn csc_roundtrip() {
        let a = sample();
        let back = a.to_csc().to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn to_dense_matches_gets() {
        let a = sample();
        let d = a.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d[(i, j)], a.get(i, j));
            }
        }
    }

    #[test]
    fn nnz_counts_stored() {
        assert_eq!(sample().nnz(), 5);
    }
}
