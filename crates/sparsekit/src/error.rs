//! Error type for the sparse kernels.

use std::fmt;

/// Errors produced by sparse factorisations and iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// The matrix was structurally or numerically singular.
    Singular {
        /// Column at which elimination broke down.
        column: usize,
    },
    /// Operand shapes are incompatible.
    DimensionMismatch {
        /// What the operation expected.
        expected: String,
        /// What it got.
        found: String,
    },
    /// An iterative solver failed to reach its tolerance.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Relative residual at exit.
        residual: f64,
    },
    /// An argument was out of its legal domain.
    InvalidArgument(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::Singular { column } => {
                write!(f, "sparse matrix is singular at column {column}")
            }
            SparseError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            SparseError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SparseError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SparseError::Singular { column: 2 }
            .to_string()
            .contains("column 2"));
        assert!(SparseError::NoConvergence {
            iterations: 10,
            residual: 0.5
        }
        .to_string()
        .contains("10 iterations"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
