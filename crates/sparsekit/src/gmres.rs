//! Restarted GMRES with right preconditioning.
//!
//! GMRES(m) per Saad & Schultz, the iterative workhorse the paper cites
//! (\[Saa96\]) for scaling WaMPDE/harmonic-balance Jacobian solves to large
//! circuits. Arnoldi uses modified Gram–Schmidt; the least-squares problem
//! is solved incrementally with Givens rotations.

use crate::error::SparseError;
use crate::op::{LinOp, Precond};

/// Options for [`gmres`].
#[derive(Debug, Clone, Copy)]
pub struct GmresOptions {
    /// Krylov subspace dimension before a restart.
    pub restart: usize,
    /// Maximum total iterations (across restarts).
    pub max_iters: usize,
    /// Relative residual target `‖b − A·x‖ / ‖b‖`.
    pub rtol: f64,
    /// Absolute residual floor (wins for tiny `‖b‖`).
    pub atol: f64,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            restart: 50,
            max_iters: 500,
            rtol: 1e-10,
            atol: 1e-14,
        }
    }
}

/// Convergence report returned by [`gmres`].
#[derive(Debug, Clone)]
pub struct GmresResult {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Total Arnoldi iterations used.
    pub iterations: usize,
    /// Final (estimated) residual norm.
    pub residual: f64,
}

/// Solves `A·x = b` by restarted, right-preconditioned GMRES.
///
/// Right preconditioning solves `A·M⁻¹·u = b`, `x = M⁻¹·u`, so the reported
/// residual is the *true* residual of the original system.
///
/// # Errors
///
/// * [`SparseError::DimensionMismatch`] when `b.len() != a.dim()`.
/// * [`SparseError::NoConvergence`] when the iteration budget is exhausted.
/// * [`SparseError::InvalidArgument`] for a zero restart length.
pub fn gmres<A: LinOp + ?Sized, P: Precond + ?Sized>(
    a: &A,
    precond: &P,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &GmresOptions,
) -> Result<GmresResult, SparseError> {
    let n = a.dim();
    if b.len() != n {
        return Err(SparseError::DimensionMismatch {
            expected: format!("rhs of length {n}"),
            found: format!("{}", b.len()),
        });
    }
    if opts.restart == 0 {
        return Err(SparseError::InvalidArgument("restart must be >= 1".into()));
    }
    let m = opts.restart.min(n.max(1));
    let bnorm = norm2(b);
    let target = (opts.rtol * bnorm).max(opts.atol);

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "gmres: x0 length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    if bnorm == 0.0 {
        return Ok(GmresResult {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }

    let mut total_iters = 0usize;
    let mut work = vec![0.0; n];
    let mut pwork = vec![0.0; n];

    loop {
        // r = b − A·x
        a.apply(&x, &mut work);
        let mut r: Vec<f64> = b.iter().zip(work.iter()).map(|(bi, wi)| bi - wi).collect();
        let beta = norm2(&r);
        if beta <= target {
            return Ok(GmresResult {
                x,
                iterations: total_iters,
                residual: beta,
            });
        }
        if total_iters >= opts.max_iters {
            return Err(SparseError::NoConvergence {
                iterations: total_iters,
                residual: beta / bnorm,
            });
        }

        // Arnoldi basis (m+1 vectors) and Hessenberg factors.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        scale_in_place(&mut r, 1.0 / beta);
        v.push(r);
        let mut h = vec![vec![0.0_f64; m]; m + 1]; // h[i][j]
        let mut cs = vec![0.0_f64; m];
        let mut sn = vec![0.0_f64; m];
        let mut g = vec![0.0_f64; m + 1];
        g[0] = beta;

        let mut k_used = 0usize;
        let mut converged = false;

        for j in 0..m {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // w = A · M⁻¹ · v_j
            precond.apply(&v[j], &mut pwork);
            a.apply(&pwork, &mut work);
            let mut w = work.clone();
            // Modified Gram–Schmidt.
            for (i, vi) in v.iter().enumerate().take(j + 1) {
                let hij = dot(&w, vi);
                h[i][j] = hij;
                axpy(-hij, vi, &mut w);
            }
            let hj1 = norm2(&w);
            h[j + 1][j] = hj1;
            // Apply previous Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            // New rotation annihilating h[j+1][j].
            let (c, s) = givens(h[j][j], h[j + 1][j]);
            cs[j] = c;
            sn[j] = s;
            h[j][j] = c * h[j][j] + s * h[j + 1][j];
            h[j + 1][j] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;

            k_used = j + 1;
            let res_est = g[j + 1].abs();
            if res_est <= target {
                converged = true;
                break;
            }
            if hj1 == 0.0 {
                // Lucky breakdown: Krylov space is invariant; solution exact.
                converged = true;
                break;
            }
            scale_in_place(&mut w, 1.0 / hj1);
            v.push(w);
        }

        // Solve the k×k triangular system H y = g.
        let k = k_used;
        let mut y = vec![0.0_f64; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for (jj, yjj) in y.iter().enumerate().skip(i + 1) {
                acc -= h[i][jj] * yjj;
            }
            y[i] = acc / h[i][i];
        }
        // u = Σ y_j v_j ;  x += M⁻¹ u
        let mut u = vec![0.0_f64; n];
        for (j, yj) in y.iter().enumerate() {
            axpy(*yj, &v[j], &mut u);
        }
        precond.apply(&u, &mut pwork);
        axpy(1.0, &pwork, &mut x);

        if converged {
            // Recompute the true residual before declaring victory.
            a.apply(&x, &mut work);
            let res: f64 = b
                .iter()
                .zip(work.iter())
                .map(|(bi, wi)| (bi - wi) * (bi - wi))
                .sum::<f64>()
                .sqrt();
            if res <= target * 1.001 + f64::EPSILON {
                return Ok(GmresResult {
                    x,
                    iterations: total_iters,
                    residual: res,
                });
            }
            // Otherwise fall through and restart from the improved x.
        }
    }
}

fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn dot(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

fn scale_in_place(x: &mut [f64], alpha: f64) {
    x.iter_mut().for_each(|v| *v *= alpha);
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() > b.abs() {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c * a.signum(), c * t * a.signum())
    } else {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t * b.signum(), s * b.signum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu0::Ilu0;
    use crate::op::{CsrOp, IdentityPrecond, JacobiPrecond};
    use crate::triplets::Triplets;

    fn laplacian_1d(n: usize) -> crate::csr::Csr {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_identity_instantly() {
        let a = crate::csr::Csr::identity(5);
        let op = CsrOp::new(&a);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = gmres(&op, &IdentityPrecond, &b, None, &GmresOptions::default()).unwrap();
        for (x, bb) in r.x.iter().zip(b.iter()) {
            assert!((x - bb).abs() < 1e-10);
        }
        assert!(r.iterations <= 2);
    }

    #[test]
    fn solves_laplacian_unpreconditioned() {
        let a = laplacian_1d(40);
        let op = CsrOp::new(&a);
        let b = vec![1.0; 40];
        let r = gmres(&op, &IdentityPrecond, &b, None, &GmresOptions::default()).unwrap();
        let back = a.matvec(&r.x);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn ilu0_reduces_iterations() {
        let a = laplacian_1d(60);
        let op = CsrOp::new(&a);
        let b = vec![1.0; 60];
        let plain = gmres(&op, &IdentityPrecond, &b, None, &GmresOptions::default()).unwrap();
        let ilu = Ilu0::factor(&a).unwrap();
        let pre = gmres(&op, &ilu, &b, None, &GmresOptions::default()).unwrap();
        assert!(
            pre.iterations < plain.iterations,
            "ILU0 {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn jacobi_precond_works() {
        let a = laplacian_1d(30);
        let op = CsrOp::new(&a);
        let b = vec![0.5; 30];
        let p = JacobiPrecond::from_csr(&a);
        let r = gmres(&op, &p, &b, None, &GmresOptions::default()).unwrap();
        let back = a.matvec(&r.x);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn restart_path_exercised() {
        // Diagonally dominant banded matrix: GMRES(5) converges but needs
        // more than one restart cycle (plain Laplacians stagnate at short
        // restarts, so they are unsuitable here).
        let n = 50;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.5);
            }
        }
        let a = t.to_csr();
        let op = CsrOp::new(&a);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let opts = GmresOptions {
            restart: 5,
            max_iters: 2000,
            ..Default::default()
        };
        let r = gmres(&op, &IdentityPrecond, &b, None, &opts).unwrap();
        assert!(r.iterations > 5, "must have restarted");
        let back = a.matvec(&r.x);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian_1d(10);
        let op = CsrOp::new(&a);
        let r = gmres(
            &op,
            &IdentityPrecond,
            &[0.0; 10],
            None,
            &GmresOptions::default(),
        )
        .unwrap();
        assert!(r.x.iter().all(|&v| v == 0.0));
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn warm_start_helps() {
        let a = laplacian_1d(30);
        let op = CsrOp::new(&a);
        let b = vec![1.0; 30];
        let exact = gmres(&op, &IdentityPrecond, &b, None, &GmresOptions::default())
            .unwrap()
            .x;
        let r = gmres(
            &op,
            &IdentityPrecond,
            &b,
            Some(&exact),
            &GmresOptions::default(),
        )
        .unwrap();
        assert_eq!(r.iterations, 0, "exact warm start converges immediately");
    }

    #[test]
    fn no_convergence_reported() {
        let a = laplacian_1d(40);
        let op = CsrOp::new(&a);
        let b = vec![1.0; 40];
        let opts = GmresOptions {
            restart: 2,
            max_iters: 3,
            rtol: 1e-14,
            atol: 0.0,
        };
        assert!(matches!(
            gmres(&op, &IdentityPrecond, &b, None, &opts),
            Err(SparseError::NoConvergence { .. })
        ));
    }

    #[test]
    fn bad_restart_rejected() {
        let a = crate::csr::Csr::identity(2);
        let op = CsrOp::new(&a);
        let opts = GmresOptions {
            restart: 0,
            ..Default::default()
        };
        assert!(gmres(&op, &IdentityPrecond, &[1.0, 1.0], None, &opts).is_err());
    }
}
