//! Zero-fill incomplete LU factorisation, ILU(0).

use crate::csr::Csr;
use crate::error::SparseError;
use crate::op::Precond;

/// ILU(0) preconditioner: an incomplete LU restricted to the sparsity
/// pattern of the input matrix.
///
/// The factors are stored in a single CSR matrix whose strictly-lower part
/// holds `L` (unit diagonal implicit) and whose upper part holds `U` — the
/// classical IKJ formulation (Saad, *Iterative Methods for Sparse Linear
/// Systems*, §10.3).
#[derive(Debug, Clone)]
pub struct Ilu0 {
    factors: Csr,
    diag_pos: Vec<usize>,
}

impl Ilu0 {
    /// Computes the ILU(0) factorisation of `a`.
    ///
    /// # Errors
    ///
    /// * [`SparseError::DimensionMismatch`] for non-square input.
    /// * [`SparseError::Singular`] when a diagonal entry is structurally
    ///   missing or becomes zero during elimination.
    pub fn factor(a: &Csr) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut f = a.clone();
        // Locate diagonal positions once.
        let mut diag_pos = vec![usize::MAX; n];
        for (i, dp) in diag_pos.iter_mut().enumerate() {
            let (lo, hi) = (f.indptr()[i], f.indptr()[i + 1]);
            let cols = &f.indices()[lo..hi];
            match cols.binary_search(&i) {
                Ok(k) => *dp = lo + k,
                Err(_) => return Err(SparseError::Singular { column: i }),
            }
        }

        // IKJ elimination restricted to the pattern.
        for i in 1..n {
            let (row_lo, row_hi) = (f.indptr()[i], f.indptr()[i + 1]);
            for kk in row_lo..row_hi {
                let k = f.indices()[kk];
                if k >= i {
                    break;
                }
                let dk = f.data()[diag_pos[k]];
                if dk == 0.0 {
                    return Err(SparseError::Singular { column: k });
                }
                let lik = f.data()[kk] / dk;
                f.data_mut()[kk] = lik;
                if lik == 0.0 {
                    continue;
                }
                // Subtract lik * U(k, j) for j > k where (i, j) is stored.
                let (k_lo, k_hi) = (f.indptr()[k], f.indptr()[k + 1]);
                let mut jj = kk + 1;
                for kj in k_lo..k_hi {
                    let j = f.indices()[kj];
                    if j <= k {
                        continue;
                    }
                    // Advance jj in row i to column >= j.
                    while jj < row_hi && f.indices()[jj] < j {
                        jj += 1;
                    }
                    if jj >= row_hi {
                        break;
                    }
                    if f.indices()[jj] == j {
                        let ukj = f.data()[kj];
                        f.data_mut()[jj] -= lik * ukj;
                    }
                }
            }
            if f.data()[diag_pos[i]] == 0.0 {
                return Err(SparseError::Singular { column: i });
            }
        }

        Ok(Ilu0 {
            factors: f,
            diag_pos,
        })
    }

    /// Dimension of the preconditioner.
    pub fn dim(&self) -> usize {
        self.factors.nrows()
    }
}

impl Precond for Ilu0 {
    /// Applies `y = U⁻¹ L⁻¹ x`.
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "ilu0 apply: x length mismatch");
        assert_eq!(y.len(), n, "ilu0 apply: y length mismatch");
        y.copy_from_slice(x);
        // Forward solve with unit-lower part.
        for i in 0..n {
            let (lo, hi) = (self.factors.indptr()[i], self.factors.indptr()[i + 1]);
            let mut acc = y[i];
            for k in lo..hi {
                let j = self.factors.indices()[k];
                if j >= i {
                    break;
                }
                acc -= self.factors.data()[k] * y[j];
            }
            y[i] = acc;
        }
        // Backward solve with the upper part.
        for i in (0..n).rev() {
            let hi = self.factors.indptr()[i + 1];
            let dpos = self.diag_pos[i];
            let mut acc = y[i];
            for k in (dpos + 1)..hi {
                let j = self.factors.indices()[k];
                acc -= self.factors.data()[k] * y[j];
            }
            y[i] = acc / self.factors.data()[dpos];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;

    #[test]
    fn exact_for_triangular_pattern() {
        // For a lower/upper triangular matrix, ILU(0) is the exact LU, so
        // apply() is an exact solve.
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 3.0);
        t.push(2, 1, 1.0);
        t.push(2, 2, 4.0);
        let a = t.to_csr();
        let p = Ilu0::factor(&a).unwrap();
        let b = [2.0, 5.0, 9.0];
        let mut y = [0.0; 3];
        p.apply(&b, &mut y);
        let back = a.matvec(&y);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_for_full_small_matrix() {
        // Dense pattern => ILU(0) == LU exactly.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 4.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 3.0);
        let a = t.to_csr();
        let p = Ilu0::factor(&a).unwrap();
        let b = [1.0, 1.0];
        let mut y = [0.0; 2];
        p.apply(&b, &mut y);
        let back = a.matvec(&y);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12, "{back:?}");
        }
    }

    #[test]
    fn missing_diagonal_is_error() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        assert!(matches!(
            Ilu0::factor(&t.to_csr()),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_is_error() {
        let t = Triplets::new(2, 3);
        assert!(Ilu0::factor(&t.to_csr()).is_err());
    }

    #[test]
    fn improves_over_identity_on_stiff_diagonal() {
        // Preconditioned residual of a diagonally-dominant system should be
        // dramatically smaller than the raw residual for the same vector.
        let n = 20;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 100.0 + i as f64);
            if i + 1 < n {
                t.push(i, i + 1, 1.0);
                t.push(i + 1, i, 1.0);
            }
        }
        let a = t.to_csr();
        let p = Ilu0::factor(&a).unwrap();
        let b = vec![1.0; n];
        let mut y = vec![0.0; n];
        p.apply(&b, &mut y);
        // The ILU(0)-preconditioned solve of a tridiagonal matrix is exact.
        let back = a.matvec(&y);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
