//! KLU-style symbolic analysis: BTF condensation + per-block AMD.
//!
//! This is the ordering pipeline of Davis & Palamadai Natarajan,
//! "Algorithm 907: KLU, a direct sparse solver for circuit simulation
//! problems" (ACM TOMS 2010): permute to block upper triangular form
//! ([`crate::btf()`]), then order each irreducible diagonal block with
//! approximate minimum degree ([`crate::amd()`]) on its symmetrised
//! pattern. The result is an [`OrderingPlan`] consumed by
//! [`crate::lu::SparseLu::factor_ordered`], which factors with
//! matched-diagonal-preferred pivoting so elimination (and therefore
//! fill) stays inside the diagonal blocks.
//!
//! The plan is purely symbolic — it depends only on the sparsity
//! pattern, so one plan serves every Newton refactorisation of the same
//! pattern.

use crate::amd::amd;
use crate::btf::{btf, BtfForm};
use crate::csc::Csc;
use crate::error::SparseError;

/// A fill-reducing, block-triangular elimination plan for [`Csc`]
/// matrices of one fixed sparsity pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderingPlan {
    /// `col_order[j]` = original column factored at position `j`
    /// (BTF block order, AMD-refined inside each block).
    pub col_order: Vec<usize>,
    /// `diag_row[c]` = preferred pivot row of original column `c`
    /// (the maximum-transversal match — structurally nonzero).
    pub diag_row: Vec<usize>,
    /// BTF block boundaries in factor positions (diagnostic).
    pub block_ptr: Vec<usize>,
}

impl OrderingPlan {
    /// Builds the plan for a matrix's sparsity pattern.
    ///
    /// # Errors
    ///
    /// * [`SparseError::DimensionMismatch`] for non-square input;
    /// * [`SparseError::Singular`] for a structurally singular matrix.
    pub fn for_matrix(a: &Csc) -> Result<Self, SparseError> {
        let form = btf(a)?;
        Ok(Self::from_btf(a, &form))
    }

    /// Refines a precomputed block-triangular form with per-block AMD.
    pub fn from_btf(a: &Csc, form: &BtfForm) -> Self {
        let n = a.ncols();
        // Position of each original row in the matched permutation.
        let mut row_pos = vec![0usize; n];
        let mut col_pos = vec![0usize; n];
        for (p, &c) in form.col_order.iter().enumerate() {
            col_pos[c] = p;
            row_pos[form.match_row[c]] = p;
        }

        let mut col_order = Vec::with_capacity(n);
        for b in 0..form.nblocks() {
            let start = form.block_ptr[b];
            let end = form.block_ptr[b + 1];
            let bn = end - start;
            if bn <= 2 {
                // AMD cannot improve a 1x1 or 2x2 block.
                col_order.extend_from_slice(&form.col_order[start..end]);
                continue;
            }
            // Local pattern of the diagonal block in matched position
            // coordinates (entry (i_local, j_local) when the permuted
            // matrix has one); AMD symmetrises internally.
            let mut pattern: Vec<Vec<usize>> = vec![Vec::new(); bn];
            for (local_j, &c) in form.col_order[start..end].iter().enumerate() {
                let (rows, _) = a.col(c);
                for &r in rows {
                    let p = row_pos[r];
                    if p >= start && p < end {
                        pattern[local_j].push(p - start);
                    }
                }
            }
            let local = amd(&pattern);
            // The AMD order is a symmetric permutation of the block's
            // matched positions: position `start + local[k]` is factored
            // k-th within the block, carrying its matched row with it.
            col_order.extend(local.iter().map(|&l| form.col_order[start + l]));
        }

        OrderingPlan {
            col_order,
            diag_row: form.match_row.clone(),
            block_ptr: form.block_ptr.clone(),
        }
    }

    /// Number of BTF blocks in the plan.
    pub fn nblocks(&self) -> usize {
        self.block_ptr.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::SparseLu;
    use crate::triplets::Triplets;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    /// Bordered tridiagonal system — the shape of a collocation
    /// Jacobian with a dense phase row and frequency column.
    fn bordered_tridiag(n: usize, seed: u64) -> Csc {
        let mut s = seed;
        let mut t = Triplets::new(n, n);
        for i in 0..n - 1 {
            t.push(i, i, 6.0 + lcg(&mut s));
            if i > 0 {
                t.push(i, i - 1, lcg(&mut s));
            }
            if i + 1 < n - 1 {
                t.push(i, i + 1, lcg(&mut s));
            }
            // Dense border column and row.
            t.push(i, n - 1, lcg(&mut s));
            t.push(n - 1, i, lcg(&mut s));
        }
        t.push(n - 1, n - 1, 6.0 + lcg(&mut s));
        t.to_csc()
    }

    #[test]
    fn plan_is_a_valid_permutation() {
        let a = bordered_tridiag(40, 3);
        let plan = OrderingPlan::for_matrix(&a).unwrap();
        let mut seen_c = [false; 40];
        let mut seen_r = [false; 40];
        for &c in &plan.col_order {
            assert!(!seen_c[c]);
            seen_c[c] = true;
        }
        for &r in &plan.diag_row {
            assert!(!seen_r[r]);
            seen_r[r] = true;
        }
        assert_eq!(plan.block_ptr.first(), Some(&0));
        assert_eq!(plan.block_ptr.last(), Some(&40));
    }

    #[test]
    fn border_ordered_late() {
        // The dense border variable must not be eliminated early: doing
        // so would fill the whole matrix. AMD defers max-degree nodes.
        let n = 60;
        let a = bordered_tridiag(n, 7);
        let plan = OrderingPlan::for_matrix(&a).unwrap();
        let pos = plan.col_order.iter().position(|&c| c == n - 1).unwrap();
        assert!(pos > n / 2, "border column at position {pos}");
    }

    #[test]
    fn ordered_factor_reduces_fill_on_bordered_system() {
        let n = 120;
        let a = bordered_tridiag(n, 11);
        let plan = OrderingPlan::for_matrix(&a).unwrap();
        let natural = SparseLu::factor(&a).unwrap();
        let ordered = SparseLu::factor_ordered(&a, &plan).unwrap();
        assert!(
            ordered.factor_nnz() <= natural.factor_nnz(),
            "ordered {} vs natural {}",
            ordered.factor_nnz(),
            natural.factor_nnz()
        );
        // And it still solves correctly.
        let b: Vec<f64> = (0..n).map(|i| (0.3 * i as f64).sin()).collect();
        let x = ordered.solve(&b).unwrap();
        let r = a
            .matvec(&x)
            .iter()
            .zip(b.iter())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0_f64, f64::max);
        assert!(r < 1e-9, "residual {r}");
    }

    #[test]
    fn structurally_singular_propagates() {
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        t.push(2, 2, 1.0);
        assert!(matches!(
            OrderingPlan::for_matrix(&t.to_csc()),
            Err(SparseError::Singular { .. })
        ));
    }
}
