//! Sparse linear algebra tuned for circuit-style Jacobians.
//!
//! Circuit and WaMPDE Jacobians are sparse, unsymmetric, and frequently
//! refactored with an unchanged pattern. This crate provides, from scratch
//! (no external sparse dependencies — see `DESIGN.md §5`):
//!
//! * [`Triplets`] — coordinate-format assembly buffer with duplicate
//!   summation, the natural target of MNA device stamps;
//! * [`Csr`] / [`Csc`] — compressed row/column storage with matvec and
//!   format conversion;
//! * [`SparseLu`] — left-looking Gilbert–Peierls LU with partial pivoting
//!   and an optional fill-reducing column preorder;
//! * the KLU-style symbolic pipeline — [`amd()`] approximate-minimum-degree
//!   ordering, [`btf()`] block-triangular form (maximum transversal +
//!   Tarjan SCC condensation), and the composed [`OrderingPlan`] driving
//!   [`SparseLu::factor_ordered`]'s equilibrated, matched-pivot path;
//! * [`gmres()`] — restarted GMRES with pluggable preconditioning
//!   ([`Ilu0`], [`JacobiPrecond`], or none) over a matrix-free
//!   [`LinOp`] abstraction, per the paper's note that "iterative linear
//!   techniques \[Saa96\] enable large systems to be handled efficiently".
//!
//! # Example
//!
//! ```
//! use sparsekit::{Triplets, SparseLu};
//!
//! # fn main() -> Result<(), sparsekit::SparseError> {
//! let mut t = Triplets::new(2, 2);
//! t.push(0, 0, 4.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! let lu = SparseLu::factor(&t.to_csc())?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod amd;
pub mod btf;
pub mod csc;
pub mod csr;
pub mod error;
pub mod gmres;
pub mod ilu0;
pub mod klu;
pub mod lu;
pub mod op;
pub mod triplets;

pub use amd::amd;
pub use btf::{btf, max_transversal, BtfForm};
pub use csc::Csc;
pub use csr::Csr;
pub use error::SparseError;
pub use gmres::{gmres, GmresOptions, GmresResult};
pub use ilu0::Ilu0;
pub use klu::OrderingPlan;
pub use lu::{ColumnOrdering, SparseLu};
pub use op::{CsrOp, IdentityPrecond, JacobiPrecond, LinOp, Precond};
pub use triplets::Triplets;
