//! Left-looking sparse LU factorisation (Gilbert–Peierls) with partial
//! pivoting and optional fill-reducing column preordering.
//!
//! This is the direct solver used for circuit Jacobians: unsymmetric,
//! structurally stable under threshold pivoting, and fast for the
//! moderately sized, very sparse matrices MNA produces.
//!
//! Newton iterations re-factor the *same sparsity pattern* with new
//! values every iteration, so the factorisation keeps its symbolic
//! by-products (column preorder, pivot order, factor patterns, the input
//! pattern itself) and offers [`SparseLu::refactor`]: a numeric-only
//! re-elimination along the cached structure that skips the per-column
//! reachability DFS and pivot search entirely. The numeric phase
//! eliminates pivots in ascending pivot-position order — a canonical
//! topological order that `refactor` replays exactly, so refactorised
//! factors are bitwise identical to a fresh factorisation that selects
//! the same pivots.

use crate::csc::Csc;
use crate::error::SparseError;
use crate::klu::OrderingPlan;

/// Column preordering strategies for [`SparseLu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnOrdering {
    /// Factor columns in their natural order.
    Natural,
    /// Order columns by ascending entry count — a lightweight Markowitz-style
    /// heuristic that curbs fill on circuit matrices without the complexity
    /// of full AMD/COLAMD.
    #[default]
    AscendingDegree,
}

const UNPIVOTED: usize = usize::MAX;

/// One diagonal block's disjoint slices of the factor arrays, claimed by
/// a phase-1 worker of [`SparseLu::factor_ordered_threads`].
struct BlockSlot<'s> {
    start: usize,
    l_cols: &'s mut [Vec<(usize, f64)>],
    u_cols: &'s mut [Vec<(usize, f64)>],
    u_diag: &'s mut [f64],
    perm_r: &'s mut [usize],
}

/// Sparse LU factors `P·A·Q = L·U` from Gilbert–Peierls elimination.
///
/// * `P` — row permutation chosen by threshold partial pivoting with a mild
///   preference for the diagonal (keeps MNA structure when possible);
/// * `Q` — column preorder chosen up front by [`ColumnOrdering`].
///
/// # Example
///
/// ```
/// use sparsekit::{Triplets, SparseLu};
///
/// # fn main() -> Result<(), sparsekit::SparseError> {
/// let mut t = Triplets::new(3, 3);
/// for i in 0..3 { t.push(i, i, 2.0); }
/// t.push(0, 1, 1.0);
/// t.push(2, 0, 1.0);
/// let lu = SparseLu::factor(&t.to_csc())?;
/// let x = lu.solve(&[1.0, 1.0, 1.0])?;
/// assert!(x.iter().all(|v| v.is_finite()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// L columns: (original row, multiplier), unit diagonal implicit.
    /// Structurally reached entries are kept even when numerically zero so
    /// the pattern stays valid for [`SparseLu::refactor`].
    l_cols: Vec<Vec<(usize, f64)>>,
    /// U columns: (pivot position, value) in ascending pivot order — the
    /// canonical elimination sequence replayed by [`SparseLu::refactor`].
    /// The diagonal is stored separately.
    u_cols: Vec<Vec<(usize, f64)>>,
    u_diag: Vec<f64>,
    /// perm_r[k] = original row pivoted at position k.
    perm_r: Vec<usize>,
    /// perm_c[j] = original column factored at position j.
    perm_c: Vec<usize>,
    /// Sparsity pattern of the factored input (CSC arrays), kept so
    /// [`SparseLu::refactor`] can verify the new matrix matches.
    a_indptr: Vec<usize>,
    a_indices: Vec<usize>,
    /// Pivot threshold of the original factorisation, replayed by
    /// [`SparseLu::refactor`]'s pivot-stability guard.
    pivot_threshold: f64,
    /// Preferred pivot row per original column. Identity for the plain
    /// paths (diagonal preference); the maximum-transversal match for
    /// [`SparseLu::factor_ordered`], which is what keeps elimination
    /// inside the BTF diagonal blocks.
    diag_row: Vec<usize>,
    /// Row equilibration `s[r] = 1 / max|A[r,:]|` of the ordered path
    /// (`None` for the plain paths). Recomputed from the new values on
    /// every [`SparseLu::refactor`] with the identical operation
    /// sequence, preserving the bitwise fresh-vs-refactor guarantee.
    row_scale: Option<Vec<f64>>,
}

impl SparseLu {
    /// Factors with the default ordering and pivot threshold.
    ///
    /// # Errors
    ///
    /// * [`SparseError::DimensionMismatch`] for non-square input.
    /// * [`SparseError::Singular`] when no acceptable pivot exists.
    pub fn factor(a: &Csc) -> Result<Self, SparseError> {
        Self::factor_with(a, ColumnOrdering::default(), 0.1)
    }

    /// Factors with explicit column ordering and pivot threshold.
    ///
    /// `pivot_threshold` in `(0, 1]` controls the diagonal preference: the
    /// natural (diagonal) candidate is kept whenever its magnitude is at
    /// least `pivot_threshold` times the column maximum. `1.0` recovers
    /// classic partial pivoting.
    ///
    /// # Errors
    ///
    /// See [`SparseLu::factor`]; additionally [`SparseError::InvalidArgument`]
    /// for a threshold outside `(0, 1]`.
    pub fn factor_with(
        a: &Csc,
        ordering: ColumnOrdering,
        pivot_threshold: f64,
    ) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let perm_c: Vec<usize> = match ordering {
            ColumnOrdering::Natural => (0..n).collect(),
            ColumnOrdering::AscendingDegree => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&j| a.col(j).0.len());
                order
            }
        };
        let diag_row: Vec<usize> = (0..n).collect();
        Self::factor_core(a, perm_c, diag_row, None, pivot_threshold)
    }

    /// Factors along a KLU-style [`OrderingPlan`] (BTF blocks, per-block
    /// AMD column order, matched-diagonal pivot preference) with row
    /// equilibration `s[r] = 1 / max|A[r,:]|`.
    ///
    /// Because the plan's block-upper-triangular structure confines
    /// elimination to the diagonal blocks (as long as the matched pivot
    /// passes the threshold test), fill cannot cross block boundaries.
    /// The resulting factorisation supports [`SparseLu::refactor`] and
    /// keeps its bitwise fresh-vs-refactor guarantee: scales are
    /// recomputed from the new values with the same operation sequence.
    ///
    /// # Errors
    ///
    /// * [`SparseError::DimensionMismatch`] when the plan's dimensions
    ///   disagree with the matrix;
    /// * otherwise as [`SparseLu::factor`].
    pub fn factor_ordered(a: &Csc, plan: &OrderingPlan) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() || plan.col_order.len() != a.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: format!("square matrix of dim {}", plan.col_order.len()),
                found: format!("{}x{}", a.nrows(), a.ncols()),
            });
        }
        let scale = Self::compute_row_scales(a);
        Self::factor_core(
            a,
            plan.col_order.clone(),
            plan.diag_row.clone(),
            Some(scale),
            0.1,
        )
    }

    /// Factors along a KLU-style [`OrderingPlan`] exactly like
    /// [`SparseLu::factor_ordered`], but distributes the independent BTF
    /// diagonal blocks across up to `threads` scoped threads.
    ///
    /// The block upper-triangular structure makes the diagonal blocks
    /// numerically independent: a column's within-block elimination only
    /// reads rows of its own block (L columns never cross a block
    /// boundary, and eliminations against earlier-block pivots only
    /// touch earlier-block rows), while its off-block U segment depends
    /// only on *completed* earlier-block L columns. The parallel path
    /// therefore factors every diagonal block concurrently into disjoint
    /// column ranges of the factor arrays (phase 1), then fills in the
    /// off-block U segments against the finished factors (phase 2) —
    /// reproducing the serial kernel's floating-point operation sequence
    /// per entry, so the assembled factor is **bitwise identical** to
    /// [`SparseLu::factor_ordered`] at every thread count and
    /// [`SparseLu::refactor`] replays it unchanged. When a recorder is
    /// installed ([`obskit`]), each block factorisation appears as a
    /// `factor.block` child span of the caller's innermost span.
    ///
    /// `threads <= 1`, or a plan with a single block, delegates to the
    /// serial kernel.
    ///
    /// # Errors
    ///
    /// As [`SparseLu::factor_ordered`]; a structurally or numerically
    /// singular block reports the same first failing column as the
    /// serial kernel.
    pub fn factor_ordered_threads(
        a: &Csc,
        plan: &OrderingPlan,
        threads: usize,
    ) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() || plan.col_order.len() != a.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: format!("square matrix of dim {}", plan.col_order.len()),
                found: format!("{}x{}", a.nrows(), a.ncols()),
            });
        }
        if threads <= 1 || plan.nblocks() <= 1 {
            return Self::factor_ordered(a, plan);
        }
        Self::factor_blocks_parallel(a, plan, threads)
    }

    /// The two-phase parallel kernel behind
    /// [`SparseLu::factor_ordered_threads`]. Requires a square matrix
    /// matching the plan, `threads >= 2`, and at least two BTF blocks.
    fn factor_blocks_parallel(
        a: &Csc,
        plan: &OrderingPlan,
        threads: usize,
    ) -> Result<Self, SparseError> {
        let n = a.nrows();
        let scale = Self::compute_row_scales(a);
        let nblocks = plan.nblocks();
        let block_ptr = &plan.block_ptr;
        let perm_c = &plan.col_order;
        let diag_row = &plan.diag_row;

        // BTF block of each original row: block b's rows are the
        // maximum-transversal matches of its columns.
        let mut row_block = vec![0usize; n];
        for b in 0..nblocks {
            for j in block_ptr[b]..block_ptr[b + 1] {
                row_block[diag_row[perm_c[j]]] = b;
            }
        }

        let mut l_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut u_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut u_diag = vec![0.0; n];
        let mut perm_r = vec![UNPIVOTED; n];

        // --- Phase 1: factor every diagonal block independently into
        // its own (disjoint) column range of the factor arrays. Blocks
        // are claimed from a shared queue, largest first. ---
        {
            let mut slots: Vec<BlockSlot> = Vec::with_capacity(nblocks);
            let mut lr = &mut l_cols[..];
            let mut ur = &mut u_cols[..];
            let mut dr = &mut u_diag[..];
            let mut pr = &mut perm_r[..];
            for b in 0..nblocks {
                let bn = block_ptr[b + 1] - block_ptr[b];
                let (l0, l1) = lr.split_at_mut(bn);
                let (u0, u1) = ur.split_at_mut(bn);
                let (d0, d1) = dr.split_at_mut(bn);
                let (p0, p1) = pr.split_at_mut(bn);
                lr = l1;
                ur = u1;
                dr = d1;
                pr = p1;
                slots.push(BlockSlot {
                    start: block_ptr[b],
                    l_cols: l0,
                    u_cols: u0,
                    u_diag: d0,
                    perm_r: p0,
                });
            }
            // Popped from the back: sort ascending by size so the
            // largest blocks are claimed first.
            slots.sort_by_key(|s| s.u_diag.len());
            let queue = std::sync::Mutex::new(slots);
            // First failure by block order — the same column the serial
            // kernel (which walks blocks in ascending order) reports.
            let first_err = std::sync::Mutex::new(None::<(usize, SparseError)>);
            let obs = obskit::current();
            let workers = threads.min(nblocks);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let queue = &queue;
                    let first_err = &first_err;
                    let obs = obs.clone();
                    let (row_block, scale) = (&row_block, &scale);
                    scope.spawn(move || {
                        let _obs = obs.map(obskit::install_handle);
                        // Dense work arrays reused across blocks. Stale
                        // pinv entries from a previous block are never
                        // read: every traversal is confined to the
                        // current block's rows.
                        let mut x = vec![0.0_f64; n];
                        let mut mark = vec![false; n];
                        let mut pinv = vec![UNPIVOTED; n];
                        loop {
                            let Some(slot) = queue.lock().unwrap().pop() else {
                                break;
                            };
                            let span = obskit::span("factor.block");
                            span.attr("dim", slot.u_diag.len());
                            let block = row_block[diag_row[perm_c[slot.start]]];
                            if let Err(e) = Self::factor_one_block(
                                a, perm_c, diag_row, row_block, scale, block, slot, &mut x,
                                &mut mark, &mut pinv,
                            ) {
                                let mut guard = first_err.lock().unwrap();
                                if guard.as_ref().is_none_or(|(b, _)| block < *b) {
                                    *guard = Some((block, e));
                                }
                            }
                        }
                    });
                }
            });
            if let Some((_, e)) = first_err.into_inner().unwrap() {
                return Err(e);
            }
        }

        // Global row -> pivot position map from the completed phase 1.
        let mut pinv = vec![UNPIVOTED; n];
        for (k, &r) in perm_r.iter().enumerate() {
            pinv[r] = k;
        }

        // --- Phase 2: off-block U segments. For each column, the U
        // entries at earlier-block pivot positions, eliminated through
        // the (now complete) earlier-block L columns in ascending pivot
        // order — exactly the prefix the serial kernel interleaves into
        // u_cols before the within-block entries. No pivoting happens
        // here, so this phase cannot fail. ---
        let mut off_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        {
            struct OffSlot<'s> {
                block: usize,
                start: usize,
                off: &'s mut [Vec<(usize, f64)>],
            }
            let mut slots: Vec<OffSlot> = Vec::with_capacity(nblocks - 1);
            let mut or = &mut off_cols[..];
            for b in 0..nblocks {
                let bn = block_ptr[b + 1] - block_ptr[b];
                let (o0, o1) = or.split_at_mut(bn);
                or = o1;
                if b > 0 {
                    // Block 0 has no earlier blocks, hence no segment.
                    slots.push(OffSlot {
                        block: b,
                        start: block_ptr[b],
                        off: o0,
                    });
                }
            }
            slots.sort_by_key(|s| s.off.len());
            let queue = std::sync::Mutex::new(slots);
            let obs = obskit::current();
            let workers = threads.min(nblocks - 1);
            let (l_cols, perm_r, pinv) = (&l_cols, &perm_r, &pinv);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let queue = &queue;
                    let obs = obs.clone();
                    let (row_block, scale) = (&row_block, &scale);
                    scope.spawn(move || {
                        let _obs = obs.map(obskit::install_handle);
                        let mut x = vec![0.0_f64; n];
                        let mut mark = vec![false; n];
                        let mut topo: Vec<usize> = Vec::new();
                        let mut elim: Vec<usize> = Vec::new();
                        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();
                        loop {
                            let Some(slot) = queue.lock().unwrap().pop() else {
                                break;
                            };
                            for jj in 0..slot.off.len() {
                                let j = slot.start + jj;
                                let col = perm_c[j];
                                let (rows, vals) = a.col(col);
                                // Reachability through earlier blocks
                                // only; every reached row is pivoted.
                                topo.clear();
                                for &r in rows {
                                    if row_block[r] >= slot.block || mark[r] {
                                        continue;
                                    }
                                    dfs_stack.push((r, 0));
                                    mark[r] = true;
                                    while let Some(&mut (node, ref mut child)) =
                                        dfs_stack.last_mut()
                                    {
                                        let children: &[(usize, f64)] = &l_cols[pinv[node]];
                                        if *child < children.len() {
                                            let next = children[*child].0;
                                            *child += 1;
                                            if !mark[next] {
                                                mark[next] = true;
                                                dfs_stack.push((next, 0));
                                            }
                                        } else {
                                            topo.push(node);
                                            dfs_stack.pop();
                                        }
                                    }
                                }
                                if topo.is_empty() {
                                    continue;
                                }
                                for (r, v) in rows.iter().zip(vals.iter()) {
                                    if row_block[*r] < slot.block {
                                        x[*r] = *v * scale[*r];
                                    }
                                }
                                elim.clear();
                                for &node in &topo {
                                    elim.push(pinv[node]);
                                }
                                elim.sort_unstable();
                                for &pk in &elim {
                                    let xk = x[perm_r[pk]];
                                    if xk != 0.0 {
                                        for &(r, l) in &l_cols[pk] {
                                            x[r] -= l * xk;
                                        }
                                    }
                                }
                                let seg = &mut slot.off[jj];
                                seg.reserve(elim.len());
                                for &pk in &elim {
                                    let node = perm_r[pk];
                                    seg.push((pk, x[node]));
                                    x[node] = 0.0;
                                    mark[node] = false;
                                }
                            }
                        }
                    });
                }
            });
        }
        // Assemble: the off-block segment (ascending earlier-block
        // pivots) precedes the within-block segment, matching the serial
        // kernel's ascending-pivot u_cols order.
        for (seg, ucol) in off_cols.iter_mut().zip(u_cols.iter_mut()) {
            if !seg.is_empty() {
                seg.append(ucol);
                std::mem::swap(seg, ucol);
            }
        }

        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            perm_r,
            perm_c: plan.col_order.clone(),
            a_indptr: a.indptr().to_vec(),
            a_indices: a.indices().to_vec(),
            pivot_threshold: 0.1,
            diag_row: plan.diag_row.clone(),
            row_scale: Some(scale),
        })
    }

    /// Phase-1 worker body: Gilbert–Peierls elimination of one diagonal
    /// block, confined to the block's rows. Mirrors [`SparseLu::factor_core`]
    /// restricted to block `block` — the restriction changes no
    /// floating-point operation, because within-block values are
    /// untouched by earlier-block eliminations.
    #[allow(clippy::too_many_arguments)]
    fn factor_one_block(
        a: &Csc,
        perm_c: &[usize],
        diag_row: &[usize],
        row_block: &[usize],
        scale: &[f64],
        block: usize,
        slot: BlockSlot<'_>,
        x: &mut [f64],
        mark: &mut [bool],
        pinv: &mut [usize],
    ) -> Result<(), SparseError> {
        let start = slot.start;
        let bn = slot.u_diag.len();
        let mut topo: Vec<usize> = Vec::with_capacity(bn);
        let mut elim: Vec<usize> = Vec::with_capacity(bn);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();
        for jj in 0..bn {
            let j = start + jj;
            let col = perm_c[j];
            let dr = diag_row[col];
            let (rows, vals) = a.col(col);

            // Symbolic: reachability DFS through the block's L graph.
            // Roots outside the block are earlier-block rows (the matrix
            // is block upper triangular); they feed the off-block U
            // segment of phase 2, not this elimination.
            topo.clear();
            for &r in rows {
                if row_block[r] != block || mark[r] {
                    continue;
                }
                dfs_stack.push((r, 0));
                mark[r] = true;
                while let Some(&mut (node, ref mut child)) = dfs_stack.last_mut() {
                    let pk = pinv[node];
                    let children: &[(usize, f64)] = if pk == UNPIVOTED {
                        &[]
                    } else {
                        &slot.l_cols[pk - start]
                    };
                    if *child < children.len() {
                        let next = children[*child].0;
                        *child += 1;
                        if !mark[next] {
                            mark[next] = true;
                            dfs_stack.push((next, 0));
                        }
                    } else {
                        topo.push(node);
                        dfs_stack.pop();
                    }
                }
            }

            // Numeric: scatter the block's rows of A(:,col) (scaled) and
            // eliminate in ascending pivot order, as the serial kernel.
            for (r, v) in rows.iter().zip(vals.iter()) {
                if row_block[*r] == block {
                    x[*r] = *v * scale[*r];
                }
            }
            elim.clear();
            for &node in &topo {
                if pinv[node] != UNPIVOTED {
                    elim.push(pinv[node]);
                }
            }
            elim.sort_unstable();
            for &pk in &elim {
                let xk = x[slot.perm_r[pk - start]];
                if xk != 0.0 {
                    for &(r, l) in &slot.l_cols[pk - start] {
                        x[r] -= l * xk;
                    }
                }
            }

            // Pivot selection — identical scan order and tie handling to
            // the serial kernel (topo order, strict maximum, matched
            // diagonal preferred at the 0.1 threshold).
            let mut max_abs = 0.0_f64;
            let mut max_row = UNPIVOTED;
            let mut diag_abs = 0.0_f64;
            for &node in &topo {
                if pinv[node] == UNPIVOTED {
                    let v = x[node].abs();
                    if v > max_abs {
                        max_abs = v;
                        max_row = node;
                    }
                    if node == dr {
                        diag_abs = v;
                    }
                }
            }
            if max_row == UNPIVOTED || max_abs == 0.0 {
                for &node in &topo {
                    x[node] = 0.0;
                    mark[node] = false;
                }
                return Err(SparseError::Singular { column: col });
            }
            let pivot_row = if diag_abs >= 0.1 * max_abs {
                dr
            } else {
                max_row
            };
            let pivot_val = x[pivot_row];

            pinv[pivot_row] = j;
            slot.perm_r[jj] = pivot_row;
            slot.u_diag[jj] = pivot_val;

            for &pk in &elim {
                let node = slot.perm_r[pk - start];
                slot.u_cols[jj].push((pk, x[node]));
                x[node] = 0.0;
                mark[node] = false;
            }
            for &node in &topo {
                if pinv[node] == UNPIVOTED {
                    slot.l_cols[jj].push((node, x[node] / pivot_val));
                    x[node] = 0.0;
                    mark[node] = false;
                } else if pinv[node] == j {
                    x[node] = 0.0;
                    mark[node] = false;
                }
            }
        }
        Ok(())
    }

    /// Row equilibration factors `s[r] = 1 / max|A[r,:]|` (`1.0` for
    /// empty or non-finite rows). One fixed traversal order — column
    /// major — so refactorisation reproduces fresh scales bit for bit.
    fn compute_row_scales(a: &Csc) -> Vec<f64> {
        let mut max_abs = vec![0.0_f64; a.nrows()];
        for j in 0..a.ncols() {
            let (rows, vals) = a.col(j);
            for (r, v) in rows.iter().zip(vals.iter()) {
                let av = v.abs();
                if av > max_abs[*r] {
                    max_abs[*r] = av;
                }
            }
        }
        max_abs
            .iter()
            .map(|&m| {
                if m > 0.0 && m.is_finite() {
                    1.0 / m
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// Shared Gilbert–Peierls elimination: column order `perm_c`,
    /// preferred pivot rows `diag_row`, optional row scaling.
    fn factor_core(
        a: &Csc,
        perm_c: Vec<usize>,
        diag_row: Vec<usize>,
        row_scale: Option<Vec<f64>>,
        pivot_threshold: f64,
    ) -> Result<Self, SparseError> {
        if !(pivot_threshold > 0.0 && pivot_threshold <= 1.0) {
            return Err(SparseError::InvalidArgument(
                "pivot threshold must lie in (0, 1]".into(),
            ));
        }
        let n = a.nrows();

        let mut l_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut u_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut u_diag = vec![0.0; n];
        let mut perm_r = vec![UNPIVOTED; n];
        let mut pinv = vec![UNPIVOTED; n]; // original row -> pivot position

        // Dense work arrays reused across columns.
        let mut x = vec![0.0_f64; n];
        let mut mark = vec![false; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut elim: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for j in 0..n {
            let col = perm_c[j];
            let dr = diag_row[col];
            let (rows, vals) = a.col(col);

            // --- Symbolic: reachability DFS through the L graph. ---
            topo.clear();
            for &r in rows {
                if mark[r] {
                    continue;
                }
                dfs_stack.push((r, 0));
                mark[r] = true;
                while let Some(&mut (node, ref mut child)) = dfs_stack.last_mut() {
                    let pk = pinv[node];
                    let children: &[(usize, f64)] = if pk == UNPIVOTED { &[] } else { &l_cols[pk] };
                    if *child < children.len() {
                        let next = children[*child].0;
                        *child += 1;
                        if !mark[next] {
                            mark[next] = true;
                            dfs_stack.push((next, 0));
                        }
                    } else {
                        topo.push(node);
                        dfs_stack.pop();
                    }
                }
            }

            // --- Numeric: scatter A(:,col) (row-scaled when
            // equilibrating), then eliminate pivots in ascending
            // pivot-position order — a valid topological order (every
            // l_cols[k] row sits at a later pivot position), and the
            // canonical sequence `refactor` replays bit for bit. ---
            match &row_scale {
                Some(s) => {
                    for (r, v) in rows.iter().zip(vals.iter()) {
                        x[*r] = *v * s[*r];
                    }
                }
                None => {
                    for (r, v) in rows.iter().zip(vals.iter()) {
                        x[*r] = *v;
                    }
                }
            }
            elim.clear();
            for &node in &topo {
                if pinv[node] != UNPIVOTED {
                    elim.push(pinv[node]);
                }
            }
            elim.sort_unstable();
            for &pk in &elim {
                let xk = x[perm_r[pk]];
                if xk != 0.0 {
                    for &(r, l) in &l_cols[pk] {
                        x[r] -= l * xk;
                    }
                }
            }

            // --- Pivot selection among not-yet-pivoted rows, preferring
            // the designated diagonal row (the matrix diagonal for the
            // plain paths, the transversal match for the ordered one). ---
            let mut max_abs = 0.0_f64;
            let mut max_row = UNPIVOTED;
            let mut diag_abs = 0.0_f64;
            for &node in &topo {
                if pinv[node] == UNPIVOTED {
                    let v = x[node].abs();
                    if v > max_abs {
                        max_abs = v;
                        max_row = node;
                    }
                    if node == dr {
                        diag_abs = v;
                    }
                }
            }
            if max_row == UNPIVOTED || max_abs == 0.0 {
                // Restore work arrays before bailing out.
                for &node in &topo {
                    x[node] = 0.0;
                    mark[node] = false;
                }
                return Err(SparseError::Singular { column: col });
            }
            let pivot_row = if diag_abs >= pivot_threshold * max_abs {
                dr
            } else {
                max_row
            };
            let pivot_val = x[pivot_row];

            pinv[pivot_row] = j;
            perm_r[j] = pivot_row;
            u_diag[j] = pivot_val;

            // --- Emit factors and reset work arrays. Numerically zero
            // entries are kept: they pin the structural pattern so a
            // later `refactor` stays correct when new values flow into
            // the same positions. U entries land in ascending pivot
            // order (the elimination sequence). ---
            for &pk in &elim {
                let node = perm_r[pk];
                u_cols[j].push((pk, x[node]));
                x[node] = 0.0;
                mark[node] = false;
            }
            for &node in &topo {
                if pinv[node] == UNPIVOTED {
                    l_cols[j].push((node, x[node] / pivot_val));
                    x[node] = 0.0;
                    mark[node] = false;
                } else if pinv[node] == j {
                    // The pivot itself; value already captured in u_diag.
                    x[node] = 0.0;
                    mark[node] = false;
                }
                // pinv[node] < j entries were reset in the elim loop.
            }
        }

        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            perm_r,
            perm_c,
            a_indptr: a.indptr().to_vec(),
            a_indices: a.indices().to_vec(),
            pivot_threshold,
            diag_row,
            row_scale,
        })
    }

    /// Numeric-only refactorisation: re-eliminates a matrix with the
    /// *same sparsity pattern* as the originally factored one along the
    /// cached structure (column preorder, pivot order, factor patterns),
    /// skipping the symbolic reachability analysis and pivot search.
    ///
    /// The replayed elimination performs the identical floating-point
    /// operation sequence as a fresh factorisation that selects the same
    /// pivots, so the resulting factors are bitwise identical to it.
    ///
    /// # Errors
    ///
    /// * [`SparseError::DimensionMismatch`] for a different shape;
    /// * [`SparseError::InvalidArgument`] when the sparsity pattern
    ///   differs from the factored one;
    /// * [`SparseError::Singular`] when the new values would make the
    ///   original factorisation's pivot-selection rule choose a
    ///   different pivot row (the values have drifted too far for the
    ///   frozen pivot order) — the factors are left invalid and the
    ///   caller must factor afresh.
    pub fn refactor(&mut self, a: &Csc) -> Result<(), SparseError> {
        if a.nrows() != self.n || a.ncols() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: format!("{0}x{0} matrix", self.n),
                found: format!("{}x{}", a.nrows(), a.ncols()),
            });
        }
        if a.indptr() != &self.a_indptr[..] || a.indices() != &self.a_indices[..] {
            return Err(SparseError::InvalidArgument(
                "refactor requires the originally factored sparsity pattern".into(),
            ));
        }
        let n = self.n;
        // Scaled factorisations recompute the equilibration from the new
        // values with the same traversal as the fresh path, so the
        // replayed elimination sees bitwise-identical scaled entries.
        if self.row_scale.is_some() {
            self.row_scale = Some(Self::compute_row_scales(a));
        }
        let mut x = vec![0.0_f64; n];
        for j in 0..n {
            let col = self.perm_c[j];
            let (rows, vals) = a.col(col);
            match &self.row_scale {
                Some(s) => {
                    for (r, v) in rows.iter().zip(vals.iter()) {
                        x[*r] = *v * s[*r];
                    }
                }
                None => {
                    for (r, v) in rows.iter().zip(vals.iter()) {
                        x[*r] = *v;
                    }
                }
            }
            // Replay the canonical elimination sequence (ascending pivot
            // order, as stored in u_cols[j]).
            for &(pk, _) in &self.u_cols[j] {
                let xk = x[self.perm_r[pk]];
                if xk != 0.0 {
                    for &(r, l) in &self.l_cols[pk] {
                        x[r] -= l * xk;
                    }
                }
            }
            let pivot_row = self.perm_r[j];
            let pivot_val = x[pivot_row];
            // Pivot-stability guard: accept the frozen pivot only when
            // the original pivot-selection rule (threshold partial
            // pivoting with diagonal preference) still selects the same
            // row for the new values — this is what keeps refactorised
            // factors bitwise identical to fresh ones. The candidate set
            // is frozen with the structure: the pivot row plus the
            // stored L rows (the rows that were unpivoted when this
            // column was factored). Exact-magnitude ties keep the frozen
            // pivot, exactly as the fresh scan kept its first maximum
            // (symmetric circuit stamps tie routinely). A failed guard
            // invalidates the factors and callers fall back to a fresh
            // factorisation.
            let pivot_abs = pivot_val.abs();
            let dr = self.diag_row[col];
            let mut other_max = 0.0_f64;
            let mut diag_abs = if pivot_row == dr { pivot_abs } else { 0.0 };
            for &(node, _) in &self.l_cols[j] {
                let v = x[node].abs();
                other_max = other_max.max(v);
                if node == dr {
                    diag_abs = v;
                }
            }
            let same_pivot = if pivot_row == dr {
                // The diagonal stays preferred while it clears the
                // threshold against the column maximum.
                pivot_abs >= self.pivot_threshold * other_max
            } else {
                // An off-diagonal pivot was the column maximum with the
                // diagonal below threshold; require the same.
                pivot_abs >= other_max && diag_abs < self.pivot_threshold * pivot_abs
            };
            if !pivot_val.is_finite() || pivot_abs == 0.0 || !same_pivot {
                return Err(SparseError::Singular { column: col });
            }
            self.u_diag[j] = pivot_val;
            for k in 0..self.u_cols[j].len() {
                let node = self.perm_r[self.u_cols[j][k].0];
                self.u_cols[j][k].1 = x[node];
                x[node] = 0.0;
            }
            x[pivot_row] = 0.0;
            for k in 0..self.l_cols[j].len() {
                let node = self.l_cols[j][k].0;
                self.l_cols[j][k].1 = x[node] / pivot_val;
                x[node] = 0.0;
            }
        }
        Ok(())
    }

    /// Dimension of the factored system.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored entries in `L` and `U` (a fill-in diagnostic).
    pub fn factor_nnz(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
            + self.n
    }

    /// Solves `A·x = b` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] for a wrong-length rhs.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b`, overwriting `b`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] for a wrong-length rhs.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), SparseError> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: format!("rhs of length {}", self.n),
                found: format!("{}", b.len()),
            });
        }
        // Forward: L z = P (S b), with y kept in original row indexing
        // (S is the row equilibration of the ordered path, if any).
        let mut y = b.to_vec();
        if let Some(s) = &self.row_scale {
            for (yi, si) in y.iter_mut().zip(s.iter()) {
                *yi *= si;
            }
        }
        let mut z = vec![0.0; self.n];
        for k in 0..self.n {
            let zk = y[self.perm_r[k]];
            z[k] = zk;
            if zk != 0.0 {
                for &(r, l) in &self.l_cols[k] {
                    y[r] -= l * zk;
                }
            }
        }
        // Backward: U x̃ = z, column-oriented.
        for j in (0..self.n).rev() {
            let xj = z[j] / self.u_diag[j];
            z[j] = xj;
            if xj != 0.0 {
                for &(p, u) in &self.u_cols[j] {
                    z[p] -= u * xj;
                }
            }
        }
        // Undo column permutation.
        for (j, &c) in self.perm_c.iter().enumerate() {
            b[c] = z[j];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;
    use numkit::DMat;

    fn residual_inf(a: &Csc, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b.iter())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0_f64, f64::max)
    }

    #[test]
    fn solves_identity() {
        let mut t = Triplets::new(3, 3);
        for i in 0..3 {
            t.push(i, i, 1.0);
        }
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let x = lu.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_permutation_matrix() {
        // Requires off-diagonal pivoting.
        let mut t = Triplets::new(3, 3);
        t.push(0, 1, 1.0);
        t.push(1, 2, 1.0);
        t.push(2, 0, 1.0);
        let a = t.to_csc();
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[10.0, 20.0, 30.0]).unwrap();
        assert!(residual_inf(&a, &x, &[10.0, 20.0, 30.0]) < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0); // second column empty
        assert!(matches!(
            SparseLu::factor(&t.to_csc()),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let t = Triplets::new(2, 3);
        assert!(matches!(
            SparseLu::factor(&t.to_csc()),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_threshold() {
        let mut t = Triplets::new(1, 1);
        t.push(0, 0, 1.0);
        assert!(SparseLu::factor_with(&t.to_csc(), ColumnOrdering::Natural, 0.0).is_err());
        assert!(SparseLu::factor_with(&t.to_csc(), ColumnOrdering::Natural, 1.5).is_err());
    }

    /// Deterministic pseudo-random generator (avoids dev-dependency churn in
    /// the hot unit-test path; proptest covers the randomized contract).
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    fn random_sparse(n: usize, per_row: usize, seed: u64) -> Csc {
        let mut s = seed;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0 + lcg(&mut s));
            for _ in 0..per_row {
                let j = ((lcg(&mut s) + 0.5) * n as f64) as usize % n;
                t.push(i, j, lcg(&mut s));
            }
        }
        t.to_csc()
    }

    #[test]
    fn random_systems_both_orderings() {
        for seed in 1..5u64 {
            let a = random_sparse(60, 4, seed);
            let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).sin()).collect();
            for ord in [ColumnOrdering::Natural, ColumnOrdering::AscendingDegree] {
                let lu = SparseLu::factor_with(&a, ord, 0.1).unwrap();
                let x = lu.solve(&b).unwrap();
                assert!(
                    residual_inf(&a, &x, &b) < 1e-9,
                    "residual too large for seed {seed} ordering {ord:?}"
                );
            }
        }
    }

    #[test]
    fn matches_dense_lu() {
        let a = random_sparse(25, 3, 42);
        let b: Vec<f64> = (0..25).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let xs = SparseLu::factor(&a).unwrap().solve(&b).unwrap();
        let dense: DMat = a.to_dense();
        let xd = numkit::lu::solve_dense(&dense, &b).unwrap();
        for (s, d) in xs.iter().zip(xd.iter()) {
            assert!((s - d).abs() < 1e-9);
        }
    }

    #[test]
    fn strict_partial_pivoting_threshold_one() {
        let a = random_sparse(30, 3, 7);
        let b = vec![1.0; 30];
        let lu = SparseLu::factor_with(&a, ColumnOrdering::Natural, 1.0).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn factor_nnz_reported() {
        let a = random_sparse(20, 2, 3);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.factor_nnz() >= 20); // at least the diagonal
    }

    #[test]
    fn wrong_rhs_length() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    /// Two diagonally dominant matrices with the *same* pattern but
    /// different values (so both fresh factorisations pick the same —
    /// diagonal — pivots).
    fn same_pattern_pair(n: usize, seed: u64) -> (Csc, Csc) {
        let mut s1 = seed;
        let mut s2 = seed.wrapping_mul(31).wrapping_add(7);
        let mut t1 = Triplets::new(n, n);
        let mut t2 = Triplets::new(n, n);
        for i in 0..n {
            t1.push(i, i, 10.0 + lcg(&mut s1));
            t2.push(i, i, 10.0 + lcg(&mut s2));
            for _ in 0..3 {
                let j = ((lcg(&mut s1) + 0.5) * n as f64) as usize % n;
                t1.push(i, j, lcg(&mut s1));
                t2.push(i, j, lcg(&mut s2));
            }
        }
        (t1.to_csc(), t2.to_csc())
    }

    #[test]
    fn refactor_is_bitwise_identical_to_fresh() {
        for seed in 1..4u64 {
            let (a1, a2) = same_pattern_pair(40, seed);
            // Fresh factors of both matrices.
            let lu1 = SparseLu::factor(&a1).unwrap();
            let fresh2 = SparseLu::factor(&a2).unwrap();
            // Numeric-only refactorisation of a2 on a1's symbolic state.
            let mut reuse2 = lu1.clone();
            reuse2.refactor(&a2).unwrap();
            // Identical pivot orders and bitwise-identical factor values.
            assert_eq!(fresh2.perm_r, reuse2.perm_r, "seed {seed}");
            assert_eq!(fresh2.perm_c, reuse2.perm_c, "seed {seed}");
            assert_eq!(fresh2.u_diag, reuse2.u_diag, "seed {seed}");
            assert_eq!(fresh2.u_cols, reuse2.u_cols, "seed {seed}");
            assert_eq!(fresh2.l_cols, reuse2.l_cols, "seed {seed}");
            // And bitwise-identical solutions.
            let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.29).sin()).collect();
            let xf = fresh2.solve(&b).unwrap();
            let xr = reuse2.solve(&b).unwrap();
            assert_eq!(xf, xr, "seed {seed}");
        }
    }

    #[test]
    fn refactor_same_matrix_is_identity() {
        let a = random_sparse(30, 3, 11);
        let lu = SparseLu::factor(&a).unwrap();
        let mut re = lu.clone();
        re.refactor(&a).unwrap();
        assert_eq!(lu.u_diag, re.u_diag);
        assert_eq!(lu.u_cols, re.u_cols);
        assert_eq!(lu.l_cols, re.l_cols);
    }

    #[test]
    fn refactor_rejects_different_pattern() {
        let a = random_sparse(10, 2, 1);
        let mut lu = SparseLu::factor(&a).unwrap();
        // Same size, different pattern (pure diagonal).
        let mut t = Triplets::new(10, 10);
        for i in 0..10 {
            t.push(i, i, 1.0);
        }
        assert!(matches!(
            lu.refactor(&t.to_csc()),
            Err(SparseError::InvalidArgument(_))
        ));
        // Different size.
        let mut t = Triplets::new(3, 3);
        for i in 0..3 {
            t.push(i, i, 1.0);
        }
        assert!(matches!(
            lu.refactor(&t.to_csc()),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_rejects_pivot_order_drift() {
        // Values drift so far that fresh factorisation would repivot:
        // column 0's diagonal (the frozen pivot) falls below the 0.1
        // threshold against the grown off-diagonal, so the guard must
        // reject instead of silently reusing the stale pivot order.
        let mut t1 = Triplets::new(2, 2);
        t1.push(0, 0, 4.0);
        t1.push(1, 0, 1.0);
        t1.push(0, 1, 1.0);
        t1.push(1, 1, 4.0);
        let lu = SparseLu::factor(&t1.to_csc()).unwrap();
        let mut t2 = Triplets::new(2, 2);
        t2.push(0, 0, 0.05);
        t2.push(1, 0, 5.0); // dominates: fresh would pivot row 1 first
        t2.push(0, 1, 1.0);
        t2.push(1, 1, 4.0);
        let a2 = t2.to_csc();
        let mut reuse = lu.clone();
        assert!(matches!(
            reuse.refactor(&a2),
            Err(SparseError::Singular { .. })
        ));
        // A fresh factorisation of the drifted matrix still works (the
        // FactorCache fallback path).
        let fresh = SparseLu::factor(&a2).unwrap();
        let x = fresh.solve(&[1.0, 1.0]).unwrap();
        let r = residual_inf(&a2, &x, &[1.0, 1.0]);
        assert!(r < 1e-12, "residual {r}");
    }

    #[test]
    fn refactor_rejects_degenerate_pivot() {
        // Same pattern, but the new values zero out a pivot.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        let mut lu = SparseLu::factor(&t.to_csc()).unwrap();
        let mut t2 = Triplets::new(2, 2);
        t2.push(0, 0, 2.0);
        t2.push(1, 1, 0.0);
        assert!(matches!(
            lu.refactor(&t2.to_csc()),
            Err(SparseError::Singular { .. })
        ));
    }

    /// Same-pattern pair with a bordered-tridiagonal shape (the
    /// collocation-Jacobian structure the ordered path targets).
    fn bordered_pair(n: usize, seed: u64) -> (Csc, Csc) {
        let mut s1 = seed;
        let mut s2 = seed.wrapping_mul(131).wrapping_add(17);
        let mut t1 = Triplets::new(n, n);
        let mut t2 = Triplets::new(n, n);
        let mut both = |i: usize, j: usize, base: f64, s1: &mut u64, s2: &mut u64| {
            t1.push(i, j, base + lcg(s1));
            t2.push(i, j, base + lcg(s2));
        };
        for i in 0..n - 1 {
            both(i, i, 8.0, &mut s1, &mut s2);
            if i > 0 {
                both(i, i - 1, 0.0, &mut s1, &mut s2);
            }
            if i + 1 < n - 1 {
                both(i, i + 1, 0.0, &mut s1, &mut s2);
            }
            both(i, n - 1, 0.0, &mut s1, &mut s2);
            both(n - 1, i, 0.0, &mut s1, &mut s2);
        }
        both(n - 1, n - 1, 8.0, &mut s1, &mut s2);
        (t1.to_csc(), t2.to_csc())
    }

    #[test]
    fn ordered_factor_matches_dense() {
        let (a, _) = bordered_pair(50, 5);
        let plan = crate::klu::OrderingPlan::for_matrix(&a).unwrap();
        let lu = SparseLu::factor_ordered(&a, &plan).unwrap();
        let b: Vec<f64> = (0..50).map(|i| (0.17 * i as f64).cos()).collect();
        let xs = lu.solve(&b).unwrap();
        let xd = numkit::lu::solve_dense(&a.to_dense(), &b).unwrap();
        for (s, d) in xs.iter().zip(xd.iter()) {
            assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn ordered_refactor_is_bitwise_identical_to_fresh() {
        for seed in 1..4u64 {
            let (a1, a2) = bordered_pair(40, seed);
            let plan = crate::klu::OrderingPlan::for_matrix(&a1).unwrap();
            let lu1 = SparseLu::factor_ordered(&a1, &plan).unwrap();
            let fresh2 = SparseLu::factor_ordered(&a2, &plan).unwrap();
            let mut reuse2 = lu1.clone();
            reuse2.refactor(&a2).unwrap();
            assert_eq!(fresh2.perm_r, reuse2.perm_r, "seed {seed}");
            assert_eq!(fresh2.perm_c, reuse2.perm_c, "seed {seed}");
            assert_eq!(fresh2.row_scale, reuse2.row_scale, "seed {seed}");
            assert_eq!(fresh2.u_diag, reuse2.u_diag, "seed {seed}");
            assert_eq!(fresh2.u_cols, reuse2.u_cols, "seed {seed}");
            assert_eq!(fresh2.l_cols, reuse2.l_cols, "seed {seed}");
            let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.29).sin()).collect();
            assert_eq!(
                fresh2.solve(&b).unwrap(),
                reuse2.solve(&b).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn ordered_factor_handles_badly_scaled_rows() {
        // Rows spanning 12 decades: unscaled threshold pivoting will
        // still solve it, but the equilibrated path must too, and the
        // scales must be the recorded row maxima.
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1e9);
        t.push(0, 1, 2e9);
        t.push(1, 0, 1e-3);
        t.push(1, 1, 3e-3);
        t.push(2, 2, 5.0);
        let a = t.to_csc();
        let plan = crate::klu::OrderingPlan::for_matrix(&a).unwrap();
        let lu = SparseLu::factor_ordered(&a, &plan).unwrap();
        let x = lu.solve(&[3e9, 4e-3, 5.0]).unwrap();
        let r = residual_inf(&a, &x, &[3e9, 4e-3, 5.0]);
        assert!(r < 1e-6, "residual {r}"); // |b| ~ 1e9, so 1e-6 ≈ 1e-15 rel
        let s = lu.row_scale.as_ref().unwrap();
        assert_eq!(s[0], 1.0 / 2e9);
        assert_eq!(s[1], 1.0 / 3e-3);
        assert_eq!(s[2], 1.0 / 5.0);
    }

    #[test]
    fn ordered_refactor_rejects_drift_then_fresh_recovers() {
        // Same drifted pair as `refactor_rejects_pivot_order_drift`, but
        // through the ordered (equilibrated, matched-pivot) path: after
        // row scaling the frozen diagonal pivot of column 0 falls below
        // the 0.1 threshold against the grown off-diagonal, so the
        // guard must reject rather than reuse the stale pivot order.
        let mut t1 = Triplets::new(2, 2);
        t1.push(0, 0, 4.0);
        t1.push(1, 0, 1.0);
        t1.push(0, 1, 1.0);
        t1.push(1, 1, 4.0);
        let a1 = t1.to_csc();
        let plan = crate::klu::OrderingPlan::for_matrix(&a1).unwrap();
        let mut lu = SparseLu::factor_ordered(&a1, &plan).unwrap();
        let mut t2 = Triplets::new(2, 2);
        t2.push(0, 0, 0.05);
        t2.push(1, 0, 5.0); // dominates even after equilibration
        t2.push(0, 1, 1.0);
        t2.push(1, 1, 4.0);
        let a2 = t2.to_csc();
        assert!(matches!(
            lu.refactor(&a2),
            Err(SparseError::Singular { .. })
        ));
        // The fallback path (fresh ordered factor) still succeeds: the
        // pivot search walks off the matched diagonal.
        let fresh = SparseLu::factor_ordered(&a2, &plan).unwrap();
        let b = vec![1.0; 2];
        let x = fresh.solve(&b).unwrap();
        assert!(residual_inf(&a2, &x, &b) < 1e-12);
    }

    /// Same-pattern pair with several strongly connected diagonal
    /// blocks and random upper (earlier-row, later-column) coupling — a
    /// BTF-rich shape the parallel factoriser actually distributes.
    fn multiblock_pair(seed: u64) -> (Csc, Csc) {
        let sizes = [6usize, 1, 9, 4, 1, 5];
        let n: usize = sizes.iter().sum();
        let mut s1 = seed;
        let mut s2 = seed.wrapping_mul(131).wrapping_add(17);
        let mut sc = seed.wrapping_mul(977).wrapping_add(3);
        let mut t1 = Triplets::new(n, n);
        let mut t2 = Triplets::new(n, n);
        let mut both = |i: usize, j: usize, base: f64, s1: &mut u64, s2: &mut u64| {
            t1.push(i, j, base + lcg(s1));
            t2.push(i, j, base + lcg(s2));
        };
        let mut starts = Vec::new();
        let mut start = 0;
        for &bs in &sizes {
            starts.push(start);
            for i in 0..bs {
                both(start + i, start + i, 6.0, &mut s1, &mut s2);
                if i > 0 {
                    both(start + i, start + i - 1, 0.0, &mut s1, &mut s2);
                    both(start + i - 1, start + i, 0.0, &mut s1, &mut s2);
                }
            }
            start += bs;
        }
        for p in 0..sizes.len() {
            for q in p + 1..sizes.len() {
                for _ in 0..2 {
                    let i =
                        starts[p] + (((lcg(&mut sc) + 0.5) * sizes[p] as f64) as usize) % sizes[p];
                    let j =
                        starts[q] + (((lcg(&mut sc) + 0.5) * sizes[q] as f64) as usize) % sizes[q];
                    both(i, j, 0.0, &mut s1, &mut s2);
                }
            }
        }
        (t1.to_csc(), t2.to_csc())
    }

    #[test]
    fn parallel_ordered_factor_is_bitwise_identical() {
        for seed in 1..4u64 {
            let (a, _) = multiblock_pair(seed);
            let plan = crate::klu::OrderingPlan::for_matrix(&a).unwrap();
            assert!(plan.nblocks() > 1, "test matrix must be BTF-rich");
            let serial = SparseLu::factor_ordered(&a, &plan).unwrap();
            let b: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.31).sin()).collect();
            let xs = serial.solve(&b).unwrap();
            for threads in [1usize, 2, 3, 7] {
                let par = SparseLu::factor_ordered_threads(&a, &plan, threads).unwrap();
                assert_eq!(serial.perm_r, par.perm_r, "seed {seed} threads {threads}");
                assert_eq!(serial.perm_c, par.perm_c, "seed {seed} threads {threads}");
                assert_eq!(
                    serial.row_scale, par.row_scale,
                    "seed {seed} threads {threads}"
                );
                assert_eq!(serial.u_diag, par.u_diag, "seed {seed} threads {threads}");
                assert_eq!(serial.u_cols, par.u_cols, "seed {seed} threads {threads}");
                assert_eq!(serial.l_cols, par.l_cols, "seed {seed} threads {threads}");
                let xp = par.solve(&b).unwrap();
                for (p, q) in xs.iter().zip(xp.iter()) {
                    assert_eq!(p.to_bits(), q.to_bits(), "seed {seed} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_ordered_factor_supports_refactor() {
        // A parallel factor carries the same symbolic state as a serial
        // one, so `refactor` on it must reproduce a fresh serial factor
        // of the second matrix bit for bit.
        for seed in 1..4u64 {
            let (a1, a2) = multiblock_pair(seed);
            let plan = crate::klu::OrderingPlan::for_matrix(&a1).unwrap();
            let mut par = SparseLu::factor_ordered_threads(&a1, &plan, 3).unwrap();
            par.refactor(&a2).unwrap();
            let fresh = SparseLu::factor_ordered(&a2, &plan).unwrap();
            assert_eq!(fresh.u_diag, par.u_diag, "seed {seed}");
            assert_eq!(fresh.u_cols, par.u_cols, "seed {seed}");
            assert_eq!(fresh.l_cols, par.l_cols, "seed {seed}");
            assert_eq!(fresh.row_scale, par.row_scale, "seed {seed}");
        }
    }

    #[test]
    fn parallel_ordered_factor_reports_first_block_error() {
        // Three 2x2 blocks, the first and third numerically singular
        // (structurally full, so the plan still builds). The serial
        // kernel fails at the first bad column of the first bad block;
        // the parallel path must report the identical error even though
        // a later block also fails.
        let mut t = Triplets::new(6, 6);
        for (o, v) in [(0usize, 0.0f64), (2, 4.0), (4, 0.0)] {
            t.push(o, o, v);
            t.push(o + 1, o + 1, v);
            t.push(o, o + 1, v);
            t.push(o + 1, o, v);
        }
        let a = t.to_csc();
        let plan = crate::klu::OrderingPlan::for_matrix(&a).unwrap();
        assert!(plan.nblocks() >= 3);
        let es = SparseLu::factor_ordered(&a, &plan).unwrap_err();
        let ep = SparseLu::factor_ordered_threads(&a, &plan, 3).unwrap_err();
        assert_eq!(format!("{es:?}"), format!("{ep:?}"));
    }

    #[test]
    fn refactor_then_solve_matches_dense() {
        let (a1, a2) = same_pattern_pair(25, 9);
        let mut lu = SparseLu::factor(&a1).unwrap();
        lu.refactor(&a2).unwrap();
        let b: Vec<f64> = (0..25).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let xs = lu.solve(&b).unwrap();
        let xd = numkit::lu::solve_dense(&a2.to_dense(), &b).unwrap();
        for (s, d) in xs.iter().zip(xd.iter()) {
            assert!((s - d).abs() < 1e-9);
        }
    }
}
