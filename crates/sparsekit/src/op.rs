//! Linear-operator and preconditioner abstractions for Krylov solvers.

use crate::csr::Csr;

/// A square linear operator `y = A·x`, possibly matrix-free.
///
/// The WaMPDE Jacobian has the form `diag-blocks + ω·(D ⊗ C)`; applying it
/// is much cheaper than forming it, which is exactly the case Krylov
/// methods exploit.
pub trait LinOp {
    /// Operator dimension (square).
    fn dim(&self) -> usize;
    /// Computes `y = A·x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `x`/`y` lengths differ from [`LinOp::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// A preconditioner application `y = M⁻¹·x`.
pub trait Precond {
    /// Applies the (approximate) inverse.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// The identity preconditioner (no preconditioning).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPrecond;

impl Precond for IdentityPrecond {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
    }
}

/// Diagonal (Jacobi) preconditioner.
#[derive(Debug, Clone)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds from a CSR matrix, using `1.0` for zero/missing diagonals.
    pub fn from_csr(a: &Csr) -> Self {
        let n = a.nrows().min(a.ncols());
        let mut inv_diag = vec![1.0; n];
        for (i, d) in inv_diag.iter_mut().enumerate() {
            let v = a.get(i, i);
            if v != 0.0 {
                *d = 1.0 / v;
            }
        }
        JacobiPrecond { inv_diag }
    }
}

impl Precond for JacobiPrecond {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for ((yi, xi), d) in y.iter_mut().zip(x.iter()).zip(self.inv_diag.iter()) {
            *yi = xi * d;
        }
    }
}

/// Wraps a [`Csr`] matrix as a [`LinOp`].
#[derive(Debug, Clone)]
pub struct CsrOp<'a> {
    a: &'a Csr,
    threads: usize,
}

impl<'a> CsrOp<'a> {
    /// Wraps a borrowed CSR matrix (serial matvec).
    pub fn new(a: &'a Csr) -> Self {
        CsrOp { a, threads: 1 }
    }

    /// Wraps a borrowed CSR matrix whose products are row-partitioned
    /// across up to `threads` threads
    /// ([`Csr::matvec_into_threads`] — bitwise identical to serial).
    pub fn with_threads(a: &'a Csr, threads: usize) -> Self {
        CsrOp { a, threads }
    }
}

impl LinOp for CsrOp<'_> {
    fn dim(&self) -> usize {
        self.a.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        if self.threads > 1 {
            self.a.matvec_into_threads(x, y, self.threads);
        } else {
            self.a.matvec_into(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplets::Triplets;

    #[test]
    fn identity_precond_copies() {
        let x = [1.0, 2.0];
        let mut y = [0.0; 2];
        IdentityPrecond.apply(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn jacobi_scales_by_inverse_diagonal() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        let p = JacobiPrecond::from_csr(&t.to_csr());
        let mut y = [0.0; 2];
        p.apply(&[2.0, 4.0], &mut y);
        assert_eq!(y, [1.0, 1.0]);
    }

    #[test]
    fn jacobi_handles_missing_diagonal() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 3.0);
        t.push(1, 0, 3.0);
        let p = JacobiPrecond::from_csr(&t.to_csr());
        let mut y = [0.0; 2];
        p.apply(&[5.0, 7.0], &mut y);
        assert_eq!(y, [5.0, 7.0]); // falls back to identity rows
    }

    #[test]
    fn csr_op_applies_matrix() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 1, 3.0);
        let a = t.to_csr();
        let op = CsrOp::new(&a);
        assert_eq!(op.dim(), 2);
        let mut y = [0.0; 2];
        op.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, [3.0, 3.0]);
    }
}
