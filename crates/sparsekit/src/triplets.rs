//! Coordinate-format (COO) assembly buffer.

use crate::csc::Csc;
use crate::csr::Csr;

/// A coordinate-format sparse-matrix builder.
///
/// Device stamps push `(row, col, value)` entries without worrying about
/// duplicates; conversion to [`Csr`]/[`Csc`] sums duplicate coordinates,
/// matching SPICE-style MNA assembly semantics.
///
/// # Example
///
/// ```
/// use sparsekit::Triplets;
///
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicate: summed on conversion
/// let csr = t.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl Triplets {
    /// Creates an empty builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Triplets {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty builder with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Triplets {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw (pre-deduplication) entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no entries have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Appends one entry. Zero values are kept (they pin the pattern,
    /// which lets repeated factorisations reuse symbolic work).
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(row < self.nrows, "triplet row {row} out of bounds");
        assert!(col < self.ncols, "triplet col {col} out of bounds");
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Clears all entries, keeping allocations (for per-Newton reassembly).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
    }

    /// Scales every stored value by `s` (pattern unchanged).
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.vals {
            *v *= s;
        }
    }

    /// Appends every entry of `other` with its value scaled by `s` — the
    /// building block for Jacobian combinations like `a0/h·C + θ·G`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn append_scaled(&mut self, other: &Triplets, s: f64) {
        assert_eq!(self.nrows, other.nrows, "append_scaled: row mismatch");
        assert_eq!(self.ncols, other.ncols, "append_scaled: col mismatch");
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend(other.vals.iter().map(|v| v * s));
    }

    /// Appends every entry of `other` unchanged — the merge step for
    /// reassembling index-disjoint per-thread stamp arenas in canonical
    /// (serial) order, which keeps the [`Triplets::to_csr`] result
    /// bitwise identical to a single-arena assembly.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn append(&mut self, other: &Triplets) {
        assert_eq!(self.nrows, other.nrows, "append: row mismatch");
        assert_eq!(self.ncols, other.ncols, "append: col mismatch");
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
    }

    /// Iterates over raw `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicates.
    pub fn to_csr(&self) -> Csr {
        // Counting sort by row, then per-row sort by column and fold dups.
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let nnz_raw = self.vals.len();
        let mut order = vec![0usize; nnz_raw];
        let mut cursor = counts.clone();
        for (k, &r) in self.rows.iter().enumerate() {
            order[cursor[r]] = k;
            cursor[r] += 1;
        }
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(nnz_raw);
        let mut data = Vec::with_capacity(nnz_raw);
        indptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            for &k in &order[counts[r]..counts[r + 1]] {
                scratch.push((self.cols[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let col = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == col {
                    v += scratch[j].1;
                    j += 1;
                }
                indices.push(col);
                data.push(v);
                i = j;
            }
            indptr.push(indices.len());
        }
        Csr::from_raw(self.nrows, self.ncols, indptr, indices, data)
    }

    /// Converts to CSC, summing duplicates.
    pub fn to_csc(&self) -> Csc {
        self.to_csr().to_csc()
    }

    /// Converts to a dense matrix (mostly for tests and small systems).
    pub fn to_dense(&self) -> numkit::DMat {
        let mut m = numkit::DMat::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            m[(r, c)] += v;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut t = Triplets::new(3, 3);
        assert!(t.is_empty());
        t.push(0, 0, 1.0);
        t.push(2, 1, -2.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn push_out_of_bounds_panics() {
        let mut t = Triplets::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn duplicates_sum_on_conversion() {
        let mut t = Triplets::new(2, 2);
        t.push(1, 1, 1.5);
        t.push(1, 1, 2.5);
        t.push(0, 1, -1.0);
        let csr = t.to_csr();
        assert_eq!(csr.get(1, 1), 4.0);
        assert_eq!(csr.get(0, 1), -1.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn to_dense_matches() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 2, 5.0);
        t.push(1, 0, 3.0);
        t.push(0, 2, 1.0);
        let d = t.to_dense();
        assert_eq!(d[(0, 2)], 6.0);
        assert_eq!(d[(1, 0)], 3.0);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn scale_and_append_scaled() {
        let mut c = Triplets::new(2, 2);
        c.push(0, 0, 2.0);
        c.push(1, 1, 4.0);
        let mut g = Triplets::new(2, 2);
        g.push(0, 1, 1.0);
        g.push(1, 1, -2.0);
        // J = 10·C + 0.5·G.
        let mut j = Triplets::new(2, 2);
        j.append_scaled(&c, 10.0);
        j.append_scaled(&g, 0.5);
        let d = j.to_dense();
        assert_eq!(d[(0, 0)], 20.0);
        assert_eq!(d[(0, 1)], 0.5);
        assert_eq!(d[(1, 1)], 39.0);
        // In-place scale.
        j.scale(2.0);
        assert_eq!(j.to_dense()[(1, 1)], 78.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.nrows(), 2);
    }

    #[test]
    fn csc_roundtrip_values() {
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(2, 2, 3.0);
        t.push(0, 2, 4.0);
        let csc = t.to_csc();
        let d = csc.to_dense();
        assert_eq!(d[(1, 0)], 2.0);
        assert_eq!(d[(0, 2)], 4.0);
        assert_eq!(d[(2, 2)], 3.0);
    }

    #[test]
    fn empty_rows_handled() {
        let t = Triplets::new(4, 4);
        let csr = t.to_csr();
        assert_eq!(csr.nnz(), 0);
        let y = csr.matvec(&[1.0; 4]);
        assert_eq!(y, vec![0.0; 4]);
    }
}
