//! Property-based tests for the sparse kernels.

use proptest::prelude::*;
use sparsekit::{
    gmres, ColumnOrdering, CsrOp, GmresOptions, IdentityPrecond, Ilu0, SparseLu, Triplets,
};

/// Builds a random diagonally dominant matrix from a seed vector.
fn random_dd(n: usize, per_row: usize, seed: &[f64]) -> Triplets {
    let mut t = Triplets::new(n, n);
    let mut k = 0;
    for i in 0..n {
        t.push(i, i, 4.0 + per_row as f64 + seed[k % seed.len()].abs());
        k += 1;
        for _ in 0..per_row {
            let j = ((seed[k % seed.len()].abs() * 977.0) as usize) % n;
            t.push(i, j, seed[(k + 3) % seed.len()]);
            k += 2;
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO→CSR→CSC→CSR round-trips preserve every entry.
    #[test]
    fn format_roundtrip(
        n in 1usize..30,
        entries in prop::collection::vec((0usize..30, 0usize..30, -10.0f64..10.0), 0..80),
    ) {
        let mut t = Triplets::new(n, n);
        for (r, c, v) in entries {
            t.push(r % n, c % n, v);
        }
        let csr = t.to_csr();
        let back = csr.to_csc().to_csr();
        prop_assert_eq!(&csr, &back);
        // Dense agreement.
        let d1 = t.to_dense();
        let d2 = csr.to_dense();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((d1[(i, j)] - d2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    /// Sparse matvec agrees with dense matvec.
    #[test]
    fn matvec_agrees_with_dense(
        n in 1usize..25,
        entries in prop::collection::vec((0usize..25, 0usize..25, -5.0f64..5.0), 0..60),
        x in prop::collection::vec(-2.0f64..2.0, 25),
    ) {
        let mut t = Triplets::new(n, n);
        for (r, c, v) in entries {
            t.push(r % n, c % n, v);
        }
        let xv = &x[..n];
        let sparse = t.to_csr().matvec(xv);
        let dense = t.to_dense().matvec(xv);
        for (a, b) in sparse.iter().zip(dense.iter()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    /// Sparse LU under both orderings solves to small residual.
    #[test]
    fn lu_small_residual(
        n in 2usize..40,
        seed in prop::collection::vec(-1.0f64..1.0, 150),
        rhs in prop::collection::vec(-3.0f64..3.0, 40),
    ) {
        let t = random_dd(n, 3, &seed);
        let a = t.to_csc();
        let b: Vec<f64> = (0..n).map(|i| rhs[i % rhs.len()]).collect();
        for ordering in [ColumnOrdering::Natural, ColumnOrdering::AscendingDegree] {
            let lu = SparseLu::factor_with(&a, ordering, 0.1).unwrap();
            let x = lu.solve(&b).unwrap();
            let back = a.matvec(&x);
            for (p, q) in back.iter().zip(b.iter()) {
                prop_assert!((p - q).abs() < 1e-7, "ordering {ordering:?}");
            }
        }
    }

    /// GMRES+ILU0 matches the direct sparse solve.
    #[test]
    fn gmres_matches_direct(
        n in 2usize..30,
        seed in prop::collection::vec(-1.0f64..1.0, 120),
        rhs in prop::collection::vec(-3.0f64..3.0, 30),
    ) {
        let t = random_dd(n, 2, &seed);
        let a_csr = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| rhs[i % rhs.len()]).collect();
        let direct = SparseLu::factor(&t.to_csc()).unwrap().solve(&b).unwrap();
        let pre = Ilu0::factor(&a_csr).unwrap();
        let it = gmres(
            &CsrOp::new(&a_csr),
            &pre,
            &b,
            None,
            &GmresOptions { rtol: 1e-12, ..Default::default() },
        )
        .unwrap();
        for (p, q) in it.x.iter().zip(direct.iter()) {
            prop_assert!((p - q).abs() < 1e-6);
        }
    }

    /// GMRES without preconditioning still reaches its residual target.
    #[test]
    fn gmres_residual_contract(
        n in 2usize..25,
        seed in prop::collection::vec(-1.0f64..1.0, 100),
    ) {
        let t = random_dd(n, 2, &seed);
        let a = t.to_csr();
        let b = vec![1.0; n];
        let r = gmres(&CsrOp::new(&a), &IdentityPrecond, &b, None, &GmresOptions::default()).unwrap();
        let back = a.matvec(&r.x);
        let res: f64 = back.iter().zip(b.iter()).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let bnorm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(res <= 1e-8 * bnorm.max(1.0));
    }
}
