//! The uniform [`Analysis`] interface over the four solver entry points.
//!
//! Each existing solver has a bespoke signature (transient wants an
//! initial state and a span, shooting returns an orbit, the envelope
//! methods return bivariate surfaces). [`Analysis::run`] flattens all of
//! them to one shape — a [`ScenarioResult`] with a tabular waveform
//! section and a scalar-metric section — so sweep executors, CLIs, and
//! artifact writers need a single code path.

use crate::error::SweepError;
use circuitdae::{AnalysisSpec, CircuitDae, Dae};

/// The uniform result of one analysis run on one circuit instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Analysis keyword (`tran`, `shooting`, `mpde`, `wampde`).
    pub analysis: &'static str,
    /// Column names of the waveform table, starting with the abscissa.
    pub columns: Vec<String>,
    /// Waveform rows, one per abscissa sample.
    pub rows: Vec<Vec<f64>>,
    /// Scalar summary metrics, e.g. `("freq_hz", 7.5e5)`.
    pub metrics: Vec<(String, f64)>,
}

impl ScenarioResult {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Index of a waveform column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// A converged solver state handed from one grid point to the next
/// along a continuation chain (see `sweepkit::batch`).
///
/// Each analysis produces and consumes its own variant; a mismatched or
/// absent state simply means a cold start, never an error.
#[derive(Debug, Clone)]
pub enum WarmState {
    /// Converged DC operating point (`tran` chains).
    DcOp(Vec<f64>),
    /// Converged unforced periodic orbit (`shooting` / `wampde` chains).
    Orbit(shooting::ShootingWarmStart),
    /// Converged `t2 = 0` collocation state (`mpde` chains).
    Colloc(Vec<f64>),
}

/// One deck analysis, uniformly runnable on any circuit instance.
///
/// Implementations wrap the solver adapters (`transim::run_tran_spec`,
/// `shooting::run_shooting_spec`, `mpde::run_mpde_spec`,
/// `wampde::run_wampde_spec`); [`analysis_for`] picks the right one for a
/// parsed [`AnalysisSpec`].
pub trait Analysis: Send + Sync {
    /// The directive keyword, used in labels and artifact names.
    fn name(&self) -> &'static str;

    /// Runs the analysis on one (possibly sweep-overridden) circuit.
    ///
    /// # Errors
    ///
    /// The wrapped solver's error, converted to [`SweepError`].
    fn run(&self, dae: &CircuitDae) -> Result<ScenarioResult, SweepError> {
        self.run_warm(dae, None).map(|(res, _)| res)
    }

    /// Runs the analysis with an optional continuation warm start from a
    /// neighbouring grid point, returning this point's own converged
    /// state for the next link of the chain. `warm = None` (or a
    /// mismatched variant) is exactly [`Analysis::run`].
    ///
    /// # Errors
    ///
    /// The wrapped solver's error, converted to [`SweepError`].
    fn run_warm(
        &self,
        dae: &CircuitDae,
        warm: Option<&WarmState>,
    ) -> Result<(ScenarioResult, Option<WarmState>), SweepError>;
}

/// Dispatches a parsed directive to its solver-backed [`Analysis`].
pub fn analysis_for(spec: &AnalysisSpec) -> Box<dyn Analysis> {
    match spec.clone() {
        AnalysisSpec::Tran(s) => Box::new(TranAnalysis(s)),
        AnalysisSpec::Shooting(s) => Box::new(ShootingAnalysis(s)),
        AnalysisSpec::Mpde(s) => Box::new(MpdeAnalysis(s)),
        AnalysisSpec::Wampde(s) => Box::new(WampdeAnalysis(s)),
    }
}

/// `.tran` — conventional transient from the DC operating point.
struct TranAnalysis(circuitdae::TranSpec);

impl Analysis for TranAnalysis {
    fn name(&self) -> &'static str {
        "tran"
    }

    fn run_warm(
        &self,
        dae: &CircuitDae,
        warm: Option<&WarmState>,
    ) -> Result<(ScenarioResult, Option<WarmState>), SweepError> {
        let _sp = obskit::span_with("analysis", &[("kind", obskit::AttrValue::Str("tran"))]);
        let seed = match warm {
            Some(WarmState::DcOp(x)) if x.len() == dae.dim() => Some(x.as_slice()),
            _ => None,
        };
        let (res, dcop) = transim::run_tran_spec_warm(dae, &self.0, seed)?;
        let mut columns = vec!["t".to_string()];
        columns.extend(dae.var_names());
        let rows = res
            .times
            .iter()
            .zip(res.states.iter())
            .map(|(&t, x)| {
                let mut row = Vec::with_capacity(1 + x.len());
                row.push(t);
                row.extend_from_slice(x);
                row
            })
            .collect();
        Ok((
            ScenarioResult {
                analysis: self.name(),
                columns,
                rows,
                metrics: vec![
                    ("steps".into(), res.stats.steps as f64),
                    ("rejected".into(), res.stats.rejected as f64),
                    ("newton_iters".into(), res.stats.newton_iters as f64),
                    ("factorisations".into(), res.stats.factorisations as f64),
                    ("symbolic_reuses".into(), res.stats.symbolic_reuses as f64),
                ],
            },
            Some(WarmState::DcOp(dcop)),
        ))
    }
}

/// `.shooting` — unforced periodic steady state.
struct ShootingAnalysis(circuitdae::ShootingSpec);

impl Analysis for ShootingAnalysis {
    fn name(&self) -> &'static str {
        "shooting"
    }

    fn run_warm(
        &self,
        dae: &CircuitDae,
        warm: Option<&WarmState>,
    ) -> Result<(ScenarioResult, Option<WarmState>), SweepError> {
        let _sp = obskit::span_with("analysis", &[("kind", obskit::AttrValue::Str("shooting"))]);
        let seed = match warm {
            Some(WarmState::Orbit(w)) => Some(w),
            _ => None,
        };
        let (orbit, stats) = shooting::run_shooting_spec_warm(dae, &self.0, seed)?;
        let mut columns = vec!["t1".to_string()];
        columns.extend(dae.var_names());
        // Samples span one closed period (endpoint included), so the
        // phase column runs 0 ..= 1.
        let denom = orbit.samples.len().saturating_sub(1).max(1) as f64;
        let rows = orbit
            .samples
            .iter()
            .enumerate()
            .map(|(s, x)| {
                let mut row = Vec::with_capacity(1 + x.len());
                row.push(s as f64 / denom);
                row.extend_from_slice(x);
                row
            })
            .collect();
        // `newton_iters` covers the whole pipeline this point actually
        // paid for (warm-up/settle transients + orbit Newton on a cold
        // start; the orbit Newton alone on a warm one), so chained and
        // cold costs are directly comparable.
        let warm_state = WarmState::Orbit(shooting::ShootingWarmStart::from_orbit(&orbit));
        Ok((
            ScenarioResult {
                analysis: self.name(),
                columns,
                rows,
                metrics: vec![
                    ("period_s".into(), orbit.period),
                    ("freq_hz".into(), orbit.frequency()),
                    ("iterations".into(), orbit.iterations as f64),
                    ("newton_iters".into(), stats.newton_iters as f64),
                ],
            },
            Some(warm_state),
        ))
    }
}

/// `.mpde` — unwarped multirate envelope with AM forcing.
struct MpdeAnalysis(circuitdae::MpdeSpec);

impl Analysis for MpdeAnalysis {
    fn name(&self) -> &'static str {
        "mpde"
    }

    fn run_warm(
        &self,
        dae: &CircuitDae,
        warm: Option<&WarmState>,
    ) -> Result<(ScenarioResult, Option<WarmState>), SweepError> {
        let _sp = obskit::span_with("analysis", &[("kind", obskit::AttrValue::Str("mpde"))]);
        let seed = match warm {
            Some(WarmState::Colloc(x)) => Some(x.as_slice()),
            _ => None,
        };
        let res = mpde::run_mpde_spec_warm(dae, &self.0, seed)?;
        let names = dae.var_names();
        let mut columns = vec!["t2".to_string()];
        columns.extend(names.iter().map(|n| format!("amp({n})")));
        let amps: Vec<Vec<f64>> = (0..res.n).map(|v| res.envelope_amplitude(v)).collect();
        let rows = res
            .t2
            .iter()
            .enumerate()
            .map(|(idx, &t2)| {
                let mut row = Vec::with_capacity(1 + res.n);
                row.push(t2);
                row.extend(amps.iter().map(|a| a[idx]));
                row
            })
            .collect();
        let warm_state = res.states.first().cloned().map(WarmState::Colloc);
        Ok((
            ScenarioResult {
                analysis: self.name(),
                columns,
                rows,
                metrics: vec![
                    ("f1_hz".into(), res.f1_hz),
                    ("points".into(), res.t2.len() as f64),
                    ("steps".into(), res.stats.steps as f64),
                    ("rejected".into(), res.stats.rejected as f64),
                    ("newton_iters".into(), res.stats.newton_iters as f64),
                    ("factorisations".into(), res.stats.factorisations as f64),
                    ("symbolic_reuses".into(), res.stats.symbolic_reuses as f64),
                ],
            },
            warm_state,
        ))
    }
}

/// `.wampde` — warped multirate envelope (the paper's method).
struct WampdeAnalysis(circuitdae::WampdeSpec);

impl Analysis for WampdeAnalysis {
    fn name(&self) -> &'static str {
        "wampde"
    }

    fn run_warm(
        &self,
        dae: &CircuitDae,
        warm: Option<&WarmState>,
    ) -> Result<(ScenarioResult, Option<WarmState>), SweepError> {
        let _sp = obskit::span_with("analysis", &[("kind", obskit::AttrValue::Str("wampde"))]);
        let seed = match warm {
            Some(WarmState::Orbit(w)) => Some(w),
            _ => None,
        };
        let (env, orbit) = wampde::run_wampde_spec_warm(dae, &self.0, seed)?;
        let names = dae.var_names();
        let mut columns = vec![
            "t2".to_string(),
            "omega_hz".to_string(),
            "phi_cycles".to_string(),
        ];
        columns.extend(names.iter().map(|n| format!("amp({n})")));
        let rows = (0..env.len())
            .map(|idx| {
                let mut row = Vec::with_capacity(3 + env.n);
                row.push(env.t2[idx]);
                row.push(env.omega_hz[idx]);
                row.push(env.phi[idx]);
                for v in 0..env.n {
                    let s = env.var_samples(idx, v);
                    let max = s.iter().fold(f64::NEG_INFINITY, |m, x| m.max(*x));
                    let min = s.iter().fold(f64::INFINITY, |m, x| m.min(*x));
                    row.push((max - min) / 2.0);
                }
                row
            })
            .collect();
        let (lo, hi) = env.frequency_range();
        let warm_state = WarmState::Orbit(shooting::ShootingWarmStart::from_orbit(&orbit));
        Ok((
            ScenarioResult {
                analysis: self.name(),
                columns,
                rows,
                metrics: vec![
                    ("omega_min_hz".into(), lo),
                    ("omega_max_hz".into(), hi),
                    ("steps".into(), env.stats.steps as f64),
                    ("rejected".into(), env.stats.rejected as f64),
                    ("newton_iters".into(), env.stats.newton_iters as f64),
                    ("factorisations".into(), env.stats.factorisations as f64),
                    ("symbolic_reuses".into(), env.stats.symbolic_reuses as f64),
                ],
            },
            Some(warm_state),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::parse_deck;

    #[test]
    fn tran_analysis_produces_table_and_metrics() {
        let deck = parse_deck(
            "V1 in 0 DC(5)\n\
             R1 in out 1k\n\
             C1 out 0 1u\n\
             .tran 5m\n",
        )
        .unwrap();
        let dae = deck.base_circuit().unwrap();
        let a = analysis_for(&deck.analyses[0]);
        assert_eq!(a.name(), "tran");
        let res = a.run(&dae).unwrap();
        assert_eq!(res.columns[0], "t");
        assert_eq!(res.columns.len(), 1 + dae.dim());
        assert!(res.rows.len() > 2);
        assert!(res.metric("steps").unwrap() > 0.0);
        let vout = res.column("v(out)").unwrap();
        let last = res.rows.last().unwrap();
        assert!((last[vout] - 5.0).abs() < 0.05);
    }

    #[test]
    fn shooting_analysis_reports_frequency() {
        let deck = parse_deck(
            "C1 tank 0 4.503n\n\
             L1 tank 0 10u\n\
             GN1 tank 0 5m 1.667m\n\
             .shooting steps=128\n",
        )
        .unwrap();
        let dae = deck.base_circuit().unwrap();
        let res = analysis_for(&deck.analyses[0]).run(&dae).unwrap();
        let f = res.metric("freq_hz").unwrap();
        assert!((f - 0.75e6).abs() / 0.75e6 < 0.05, "f = {f}");
        assert_eq!(res.rows.len(), 129); // closed period, endpoint included
        assert_eq!(res.rows.last().unwrap()[0], 1.0);
    }

    #[test]
    fn mpde_analysis_runs_rc_lowpass() {
        let deck = parse_deck(
            "R1 out 0 1k\n\
             C1 out 0 1n\n\
             .mpde 1meg 2m amp=1m depth=0.5 fmod=1k\n",
        )
        .unwrap();
        let dae = deck.base_circuit().unwrap();
        let res = analysis_for(&deck.analyses[0]).run(&dae).unwrap();
        assert_eq!(res.columns, vec!["t2", "amp(v(out))"]);
        assert!(res.rows.len() > 10);
        assert_eq!(res.metric("f1_hz").unwrap(), 1e6);
    }

    #[test]
    fn options_solver_is_honored_end_to_end() {
        // The `.options solver=sparselu` deck line must reach the solver:
        // the run succeeds and matches the dense-deck result exactly for
        // this linear circuit (identical step sequences).
        const CARDS: &str = "V1 in 0 SIN(0 5 1k)\n\
                             R1 in out 1k\n\
                             C1 out 0 1u\n\
                             .tran 1m dt=20u\n";
        let dense_deck = parse_deck(CARDS).unwrap();
        let sparse_deck = parse_deck(&format!("{CARDS}.options solver=sparselu\n")).unwrap();
        assert_eq!(
            sparse_deck.analyses[0].solver(),
            circuitdae::LinearSolverKind::SparseLu
        );
        let dae = dense_deck.base_circuit().unwrap();
        let dense = analysis_for(&dense_deck.analyses[0]).run(&dae).unwrap();
        let sparse = analysis_for(&sparse_deck.analyses[0]).run(&dae).unwrap();
        assert_eq!(dense.rows.len(), sparse.rows.len());
        for (a, b) in dense.rows.iter().zip(sparse.rows.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn newton_reuse_metrics_reported() {
        // The per-directive `solver=sparselu` key routes the transient
        // through the sparse backend; the shared Newton engine then
        // reuses the symbolic analysis on every factorisation after the
        // first, and the counters surface as sweep metrics.
        let deck = parse_deck(
            "V1 in 0 SIN(0 5 1k)\n\
             R1 in out 1k\n\
             C1 out 0 1u\n\
             .tran 1m dt=20u solver=sparselu\n\
             .tran 1m dt=20u solver=dense\n",
        )
        .unwrap();
        let dae = deck.base_circuit().unwrap();
        let sparse = analysis_for(&deck.analyses[0]).run(&dae).unwrap();
        let fact = sparse.metric("factorisations").unwrap();
        let reuse = sparse.metric("symbolic_reuses").unwrap();
        assert!(fact > 0.0);
        assert_eq!(reuse, fact - 1.0, "one symbolic analysis for the run");
        // Dense LU has no symbolic phase to reuse.
        let dense = analysis_for(&deck.analyses[1]).run(&dae).unwrap();
        assert!(dense.metric("factorisations").unwrap() > 0.0);
        assert_eq!(dense.metric("symbolic_reuses").unwrap(), 0.0);
    }

    #[test]
    fn mpde_analysis_rejects_bad_node() {
        let deck = parse_deck(
            "R1 out 0 1k\n\
             C1 out 0 1n\n\
             .mpde 1meg 2m node=9\n",
        )
        .unwrap();
        let dae = deck.base_circuit().unwrap();
        let err = analysis_for(&deck.analyses[0]).run(&dae).unwrap_err();
        assert!(matches!(err, SweepError::Mpde(_)), "{err}");
    }
}
