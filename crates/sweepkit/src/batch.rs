//! Continuation-chain planning for batched sweeps.
//!
//! Neighbouring grid points differ by one small parameter step, so their
//! converged solutions are near-identical — the classic continuation
//! setup. The planner groups each analysis's jobs into **chains**:
//! maximal runs of consecutive grid points along the deck's
//! fastest-varying (last) sweep axis. The executor then dispatches whole
//! chains to workers; inside a chain, point *i + 1*'s solve is seeded
//! from point *i*'s converged state
//! ([`crate::analysis::Analysis::run_warm`]) and every point shares one
//! sparse symbolic analysis (`linsolve::SharedSymbolic`).
//!
//! The chain layout is a pure function of the grid — independent of the
//! worker count and the shard layout — which is what keeps batched
//! aggregate artifacts byte-identical for any `--jobs` × `--shards`
//! combination: a shard executes every chain containing at least one job
//! it owns (recomputing the non-owned positions as warm-up), and chain
//! execution itself is single-threaded and deterministic.
//!
//! With warm starts disabled every chain has length one, which is
//! exactly the independent-jobs executor of earlier releases.

/// The chain layout plus a contiguous per-batch arena of the grid's
/// parameter values (one flat `f64` slab instead of per-point `Vec`s, so
/// chain execution walks a dense, cache/SIMD-friendly layout).
#[derive(Debug, Clone)]
pub struct BatchPlan {
    chains: Vec<Vec<usize>>,
    values: Vec<f64>,
    stride: usize,
    n_analyses: usize,
}

impl BatchPlan {
    /// Plans chains over `grid` (row-major, last axis fastest — see
    /// [`crate::expand_grid`]) for a deck with `n_analyses` analysis
    /// directives. `run_len` is the fastest axis's point count; with
    /// `warm_start = false` (or `run_len = 1`) every chain is a single
    /// job.
    ///
    /// Job ids follow the executor's convention
    /// `id = point * n_analyses + analysis`.
    pub fn new(grid: &[Vec<f64>], run_len: usize, n_analyses: usize, warm_start: bool) -> Self {
        let n_points = grid.len().max(1);
        let stride = grid.first().map(Vec::len).unwrap_or(0);
        let mut values = Vec::with_capacity(n_points * stride);
        for point in grid {
            values.extend_from_slice(point);
        }
        let run = if warm_start {
            run_len.clamp(1, n_points)
        } else {
            1
        };
        // Rows outer, analyses inner: chains come out ordered by their
        // first job id, so singleton chains replay the classic id-ordered
        // dispatch exactly.
        let mut chains = Vec::new();
        let mut start = 0;
        while start < n_points {
            let len = run.min(n_points - start);
            for a in 0..n_analyses.max(1) {
                chains.push(
                    (start..start + len)
                        .map(|p| p * n_analyses.max(1) + a)
                        .collect(),
                );
            }
            start += len;
        }
        BatchPlan {
            chains,
            values,
            stride,
            n_analyses: n_analyses.max(1),
        }
    }

    /// The planned chains: each a list of job ids executed in order on
    /// one worker, later positions warm-started from earlier ones.
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// The swept parameter values of one grid point, read out of the
    /// contiguous arena.
    pub fn point_values(&self, point: usize) -> &[f64] {
        &self.values[point * self.stride..(point + 1) * self.stride]
    }

    /// The grid point of a job id.
    pub fn point_of(&self, id: usize) -> usize {
        id / self.n_analyses
    }

    /// The analysis index of a job id.
    pub fn analysis_of(&self, id: usize) -> usize {
        id % self.n_analyses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2x3() -> Vec<Vec<f64>> {
        // Two slow-axis values × three fast-axis values.
        let mut g = Vec::new();
        for &a in &[1.0, 2.0] {
            for &b in &[10.0, 20.0, 30.0] {
                g.push(vec![a, b]);
            }
        }
        g
    }

    #[test]
    fn chains_follow_the_fast_axis_per_analysis() {
        let plan = BatchPlan::new(&grid_2x3(), 3, 2, true);
        // Two rows × two analyses = four chains, ordered by first id.
        let chains = plan.chains();
        assert_eq!(chains.len(), 4);
        assert_eq!(chains[0], vec![0, 2, 4]); // row 0, analysis 0
        assert_eq!(chains[1], vec![1, 3, 5]); // row 0, analysis 1
        assert_eq!(chains[2], vec![6, 8, 10]); // row 1, analysis 0
        assert_eq!(chains[3], vec![7, 9, 11]);
        // Every job appears exactly once.
        let mut all: Vec<usize> = chains.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn cold_plan_is_singleton_chains_in_id_order() {
        let plan = BatchPlan::new(&grid_2x3(), 3, 2, false);
        let chains = plan.chains();
        assert_eq!(chains.len(), 12);
        for (i, c) in chains.iter().enumerate() {
            assert_eq!(c, &vec![i]);
        }
    }

    #[test]
    fn arena_matches_grid_values() {
        let grid = grid_2x3();
        let plan = BatchPlan::new(&grid, 3, 2, true);
        for (p, want) in grid.iter().enumerate() {
            assert_eq!(plan.point_values(p), want.as_slice());
        }
        assert_eq!(plan.point_of(7), 3);
        assert_eq!(plan.analysis_of(7), 1);
    }

    #[test]
    fn empty_grid_plans_one_point() {
        // A sweep-less deck has one implicit grid point.
        let plan = BatchPlan::new(&[vec![]], 1, 1, true);
        assert_eq!(plan.chains(), &[vec![0]]);
        assert_eq!(plan.point_values(0), &[] as &[f64]);
    }
}
