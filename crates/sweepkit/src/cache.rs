//! Content-hashed, persistent on-disk result cache for sweep jobs.
//!
//! Every (deck, grid-point, analysis) job is identified by a 128-bit
//! content hash over four ingredients ([`job_hash`]):
//!
//! 1. the deck fingerprint ([`circuitdae::Deck::fingerprint`] — device
//!    cards and sweep bindings),
//! 2. the grid-point values (raw IEEE-754 bits),
//! 3. the resolved analysis spec
//!    ([`circuitdae::AnalysisSpec::fingerprint`] — every option,
//!    including `.options`/CLI overrides), and
//! 4. a code-version salt ([`CACHE_SALT`]) so results computed by an
//!    older solver build are recomputed, never trusted.
//!
//! [`ResultCache`] keeps one file per job (`<hash>.sweepres`) in a flat
//! directory. Writes are write-then-rename, so a killed sweep can never
//! leave a readable-but-wrong entry: a torn temporary file is simply an
//! unreadable name the next run ignores. Reads treat *any* malformed
//! file as a miss and recompute — the cache can only change how fast an
//! answer arrives, never which answer.
//!
//! The stored [`ScenarioResult`] round-trips bit-exactly: floats are
//! serialised as the hex of their bit patterns, which is what makes the
//! determinism invariant (cold run bytes == warm run bytes) testable at
//! all.

use crate::analysis::ScenarioResult;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Code-version salt mixed into every job hash. Bump the format suffix
/// whenever the cache file layout or any solver numeric behaviour
/// changes in a way the spec fingerprints cannot see.
// fmt2: the `newton_iterations` metric was renamed `newton_iters`, which
// changes the serialised ScenarioResult bytes.
// fmt3: the KLU sparse kernel (BTF + AMD ordering + row equilibration)
// and the block-circulant GMRES preconditioner change the floating-point
// sequence of the sparse and quasiperiodic solve paths.
pub const CACHE_SALT: &str = concat!("sweepkit-", env!("CARGO_PKG_VERSION"), "-fmt3");

/// FNV-1a, 128-bit: tiny, dependency-free, and plenty for cache keys
/// (collision odds are negligible below ~2^60 distinct jobs).
fn fnv1a128(chunks: &[&[u8]]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u128::from(b);
            h = h.wrapping_mul(PRIME);
        }
        // Explicit chunk separator so ("ab", "c") != ("a", "bc").
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Content hash of one sweep job, as 32 lowercase hex characters.
///
/// `deck_fingerprint` and `spec_fingerprint` are the stable
/// serialisations from `circuitdae`; `values` are this grid point's
/// swept parameter values (hashed as raw bits, so `0.1 + 0.2` and
/// `0.3` are — correctly — different jobs).
pub fn job_hash(deck_fingerprint: &str, values: &[f64], spec_fingerprint: &str) -> String {
    let mut value_bits = Vec::with_capacity(values.len() * 8);
    for v in values {
        value_bits.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let h = fnv1a128(&[
        CACHE_SALT.as_bytes(),
        deck_fingerprint.as_bytes(),
        &value_bits,
        spec_fingerprint.as_bytes(),
    ]);
    format!("{h:032x}")
}

/// A flat-directory result cache, one file per job hash.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (and creates, if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of one job's entry.
    pub fn entry_path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.sweepres"))
    }

    /// Loads a cached result, or `None` on a miss. A malformed or torn
    /// file is a miss (the job is recomputed and the entry rewritten),
    /// never an error.
    pub fn load(&self, hash: &str) -> Option<ScenarioResult> {
        let text = fs::read_to_string(self.entry_path(hash)).ok()?;
        parse_result(&text)
    }

    /// Stores one job's result atomically: the serialisation is written
    /// to a process-unique temporary name in the same directory, then
    /// renamed over the final entry, so concurrent or interrupted
    /// writers can never produce a readable half-entry.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or renaming the entry.
    pub fn store(&self, hash: &str, result: &ScenarioResult) -> io::Result<()> {
        let final_path = self.entry_path(hash);
        let tmp_path = self.dir.join(format!("{hash}.tmp.{}", std::process::id()));
        fs::write(&tmp_path, render_result(result))?;
        match fs::rename(&tmp_path, &final_path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp_path);
                Err(e)
            }
        }
    }
}

/// Maps a stored analysis keyword back to the `'static` labels
/// [`ScenarioResult`] carries.
pub(crate) fn static_analysis(name: &str) -> Option<&'static str> {
    match name {
        "tran" => Some("tran"),
        "shooting" => Some("shooting"),
        "mpde" => Some("mpde"),
        "wampde" => Some("wampde"),
        _ => None,
    }
}

/// Serialises a result bit-exactly. Line-oriented, versioned, with a
/// trailing `end` marker so truncation is detectable.
fn render_result(r: &ScenarioResult) -> String {
    let ncols = r.rows.first().map_or(0, Vec::len);
    let mut s = String::new();
    s.push_str("sweepres 1\n");
    s.push_str(&format!("analysis {}\n", r.analysis));
    s.push_str(&format!("columns {}\n", r.columns.len()));
    for c in &r.columns {
        s.push_str(c);
        s.push('\n');
    }
    s.push_str(&format!("metrics {}\n", r.metrics.len()));
    for (name, v) in &r.metrics {
        s.push_str(&format!("{name} {:016x}\n", v.to_bits()));
    }
    s.push_str(&format!("rows {} {}\n", r.rows.len(), ncols));
    for row in &r.rows {
        let words: Vec<String> = row
            .iter()
            .map(|v| format!("{:016x}", v.to_bits()))
            .collect();
        s.push_str(&words.join(" "));
        s.push('\n');
    }
    s.push_str("end\n");
    s
}

fn parse_bits(word: &str) -> Option<f64> {
    u64::from_str_radix(word, 16).ok().map(f64::from_bits)
}

/// Strict inverse of [`render_result`]; any deviation returns `None`.
fn parse_result(text: &str) -> Option<ScenarioResult> {
    let mut lines = text.lines();
    if lines.next()? != "sweepres 1" {
        return None;
    }
    let analysis = static_analysis(lines.next()?.strip_prefix("analysis ")?)?;

    let ncolumns: usize = lines.next()?.strip_prefix("columns ")?.parse().ok()?;
    let mut columns = Vec::with_capacity(ncolumns);
    for _ in 0..ncolumns {
        columns.push(lines.next()?.to_string());
    }

    let nmetrics: usize = lines.next()?.strip_prefix("metrics ")?.parse().ok()?;
    let mut metrics = Vec::with_capacity(nmetrics);
    for _ in 0..nmetrics {
        let line = lines.next()?;
        let (name, bits) = line.rsplit_once(' ')?;
        metrics.push((name.to_string(), parse_bits(bits)?));
    }

    let shape = lines.next()?.strip_prefix("rows ")?;
    let (nrows, ncols) = shape.split_once(' ')?;
    let nrows: usize = nrows.parse().ok()?;
    let ncols: usize = ncols.parse().ok()?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let line = lines.next()?;
        let row: Option<Vec<f64>> = line.split(' ').map(parse_bits).collect();
        let row = row?;
        if row.len() != ncols {
            return None;
        }
        rows.push(row);
    }

    if lines.next()? != "end" || lines.next().is_some() {
        return None;
    }
    Some(ScenarioResult {
        analysis,
        columns,
        rows,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "sweepkit-cache-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_result() -> ScenarioResult {
        ScenarioResult {
            analysis: "wampde",
            columns: vec!["t2".into(), "amp(v(out))".into()],
            rows: vec![vec![0.0, 0.1 + 0.2], vec![1e-6, -3.5e10]],
            metrics: vec![("steps".into(), 131.0), ("omega_min_hz".into(), 7.5e5)],
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let r = sample_result();
        let back = parse_result(&render_result(&r)).unwrap();
        assert_eq!(r, back);
        // PartialEq on f64 misses -0.0 vs 0.0 and NaN subtleties; check
        // actual bits too.
        for (a, b) in r.rows.iter().flatten().zip(back.rows.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_or_corrupt_entries_are_misses() {
        let full = render_result(&sample_result());
        for cut in [0, 10, full.len() / 2, full.len() - 2] {
            assert!(parse_result(&full[..cut]).is_none(), "cut at {cut}");
        }
        assert!(parse_result(&full.replace("wampde", "bogus")).is_none());
        assert!(parse_result(&(full.clone() + "trailing\n")).is_none());
    }

    #[test]
    fn store_load_and_miss() {
        let dir = unique_dir("store");
        let cache = ResultCache::open(&dir).unwrap();
        let r = sample_result();
        let h = job_hash("deck", &[1.5], "wampde t_stop=...");
        assert!(cache.load(&h).is_none());
        cache.store(&h, &r).unwrap();
        assert_eq!(cache.load(&h).unwrap(), r);
        // A torn (garbage) entry reads as a miss, not an error.
        fs::write(cache.entry_path(&h), "sweepres 1\nanalysis wam").unwrap();
        assert!(cache.load(&h).is_none());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn job_hash_sensitivity() {
        let h = job_hash("deck", &[1.5], "spec");
        assert_eq!(h.len(), 32);
        assert_eq!(h, job_hash("deck", &[1.5], "spec"));
        assert_ne!(h, job_hash("deck2", &[1.5], "spec"));
        assert_ne!(h, job_hash("deck", &[1.5000000001], "spec"));
        assert_ne!(h, job_hash("deck", &[1.5, 2.0], "spec"));
        assert_ne!(h, job_hash("deck", &[1.5], "spec2"));
        // Chunk boundaries matter: moving a byte across the separator
        // must change the hash.
        assert_ne!(job_hash("ab", &[], "c"), job_hash("a", &[], "bc"));
    }
}
