//! Content-hashed, persistent on-disk result cache for sweep jobs.
//!
//! Every (deck, grid-point, analysis) job is identified by a 128-bit
//! content hash over four ingredients ([`job_hash`]):
//!
//! 1. the deck fingerprint ([`circuitdae::Deck::fingerprint`] — device
//!    cards and sweep bindings),
//! 2. the grid-point values (raw IEEE-754 bits),
//! 3. the resolved analysis spec
//!    ([`circuitdae::AnalysisSpec::fingerprint`] — every option,
//!    including `.options`/CLI overrides), and
//! 4. a code-version salt ([`CACHE_SALT`]) so results computed by an
//!    older solver build are recomputed, never trusted.
//!
//! [`ResultCache`] keeps one file per job (`<hash>.sweepres`) in a flat
//! directory. Writes are write-then-rename, so a killed sweep can never
//! leave a readable-but-wrong entry: a torn temporary file is simply an
//! unreadable name the next run ignores. Reads treat *any* malformed
//! file as a miss and recompute — the cache can only change how fast an
//! answer arrives, never which answer.
//!
//! The stored [`ScenarioResult`] round-trips bit-exactly: floats are
//! serialised as the hex of their bit patterns, which is what makes the
//! determinism invariant (cold run bytes == warm run bytes) testable at
//! all.

use crate::analysis::ScenarioResult;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Code-version salt mixed into every job hash. Bump the format suffix
/// whenever the cache file layout or any solver numeric behaviour
/// changes in a way the spec fingerprints cannot see.
// fmt2: the `newton_iterations` metric was renamed `newton_iters`, which
// changes the serialised ScenarioResult bytes.
// fmt3: the KLU sparse kernel (BTF + AMD ordering + row equilibration)
// and the block-circulant GMRES preconditioner change the floating-point
// sequence of the sparse and quasiperiodic solve paths.
// fmt4: batched execution. Warm-started chain positions are keyed under
// [`job_hash_mode`] (the plain [`job_hash`] key now *means* "computed
// cold"), and continuation seeding changes the Newton iterate sequence,
// so fmt3 entries must not satisfy fmt4 lookups in either direction.
pub const CACHE_SALT: &str = concat!("sweepkit-", env!("CARGO_PKG_VERSION"), "-fmt4");

/// FNV-1a, 128-bit: tiny, dependency-free, and plenty for cache keys
/// (collision odds are negligible below ~2^60 distinct jobs).
fn fnv1a128(chunks: &[&[u8]]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u128::from(b);
            h = h.wrapping_mul(PRIME);
        }
        // Explicit chunk separator so ("ab", "c") != ("a", "bc").
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Content hash of one sweep job, as 32 lowercase hex characters.
///
/// `deck_fingerprint` and `spec_fingerprint` are the stable
/// serialisations from `circuitdae`; `values` are this grid point's
/// swept parameter values (hashed as raw bits, so `0.1 + 0.2` and
/// `0.3` are — correctly — different jobs).
pub fn job_hash(deck_fingerprint: &str, values: &[f64], spec_fingerprint: &str) -> String {
    job_hash_mode(deck_fingerprint, values, spec_fingerprint, "")
}

/// [`job_hash`] with an execution-`mode` discriminator mixed in.
///
/// The batched executor stores a warm-started chain position under a
/// mode string encoding its predecessors' grid values (see
/// `executor`), so a warm result can never satisfy a cold lookup — or a
/// lookup from a chain with a different upstream — and vice versa. The
/// empty mode is identical to the plain [`job_hash`].
pub fn job_hash_mode(
    deck_fingerprint: &str,
    values: &[f64],
    spec_fingerprint: &str,
    mode: &str,
) -> String {
    let mut value_bits = Vec::with_capacity(values.len() * 8);
    for v in values {
        value_bits.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let h = fnv1a128(&[
        CACHE_SALT.as_bytes(),
        deck_fingerprint.as_bytes(),
        &value_bits,
        spec_fingerprint.as_bytes(),
        mode.as_bytes(),
    ]);
    format!("{h:032x}")
}

/// A flat-directory result cache, one file per job hash, optionally
/// size-bounded (see [`ResultCache::set_max_bytes`]).
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    max_bytes: Option<u64>,
}

impl ResultCache {
    /// Opens (and creates, if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            max_bytes: None,
        })
    }

    /// Bounds the total size of `.sweepres` entries. After every
    /// [`store`](ResultCache::store), least-recently-written entries
    /// (oldest mtime first) are evicted until the directory fits the
    /// budget again. `None` (the default) disables eviction.
    pub fn set_max_bytes(&mut self, max_bytes: Option<u64>) {
        self.max_bytes = max_bytes;
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of one job's entry.
    pub fn entry_path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.sweepres"))
    }

    /// Loads a cached result, or `None` on a miss. A malformed or torn
    /// file is a miss (the job is recomputed and the entry rewritten),
    /// never an error.
    pub fn load(&self, hash: &str) -> Option<ScenarioResult> {
        let text = fs::read_to_string(self.entry_path(hash)).ok()?;
        parse_result(&text)
    }

    /// Stores one job's result atomically: the serialisation is written
    /// to a process-unique temporary name in the same directory, then
    /// renamed over the final entry, so concurrent or interrupted
    /// writers can never produce a readable half-entry.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or renaming the entry.
    pub fn store(&self, hash: &str, result: &ScenarioResult) -> io::Result<()> {
        let final_path = self.entry_path(hash);
        let tmp_path = self.dir.join(format!("{hash}.tmp.{}", std::process::id()));
        fs::write(&tmp_path, render_result(result))?;
        match fs::rename(&tmp_path, &final_path) {
            Ok(()) => {
                if self.max_bytes.is_some() {
                    // Best effort: an eviction hiccup (e.g. a concurrent
                    // shard deleting the same entry) must not fail the
                    // store — the budget is advisory, correctness is not.
                    let _ = self.evict_to_limit();
                }
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp_path);
                Err(e)
            }
        }
    }

    /// Deletes oldest-mtime `.sweepres` entries until the directory's
    /// entry bytes fit `max_bytes`; a no-op without a budget. Deletion
    /// uses `remove_file` on final entry names only, so it composes with
    /// the write-then-rename protocol: a concurrent writer either fully
    /// re-creates an entry or leaves a plain miss, never a torn file.
    /// Returns the number of entries evicted.
    ///
    /// # Errors
    ///
    /// Any I/O failure listing the directory (individual stat/delete
    /// failures are skipped — another process may race us).
    pub fn evict_to_limit(&self) -> io::Result<usize> {
        let Some(budget) = self.max_bytes else {
            return Ok(0);
        };
        let mut entries: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "sweepres") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            entries.push((mtime, meta.len(), path));
        }
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= budget {
            return Ok(0);
        }
        // Oldest first; tie-break on the path name so eviction order is
        // deterministic on coarse-mtime filesystems.
        entries.sort_by(|a, b| (a.0, &a.2).cmp(&(b.0, &b.2)));
        let mut evicted = 0;
        for (_, len, path) in entries {
            if total <= budget {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                evicted += 1;
            }
        }
        Ok(evicted)
    }
}

/// Maps a stored analysis keyword back to the `'static` labels
/// [`ScenarioResult`] carries.
pub(crate) fn static_analysis(name: &str) -> Option<&'static str> {
    match name {
        "tran" => Some("tran"),
        "shooting" => Some("shooting"),
        "mpde" => Some("mpde"),
        "wampde" => Some("wampde"),
        _ => None,
    }
}

/// Serialises a result bit-exactly. Line-oriented, versioned, with a
/// trailing `end` marker so truncation is detectable.
fn render_result(r: &ScenarioResult) -> String {
    let ncols = r.rows.first().map_or(0, Vec::len);
    let mut s = String::new();
    s.push_str("sweepres 1\n");
    s.push_str(&format!("analysis {}\n", r.analysis));
    s.push_str(&format!("columns {}\n", r.columns.len()));
    for c in &r.columns {
        s.push_str(c);
        s.push('\n');
    }
    s.push_str(&format!("metrics {}\n", r.metrics.len()));
    for (name, v) in &r.metrics {
        s.push_str(&format!("{name} {:016x}\n", v.to_bits()));
    }
    s.push_str(&format!("rows {} {}\n", r.rows.len(), ncols));
    for row in &r.rows {
        let words: Vec<String> = row
            .iter()
            .map(|v| format!("{:016x}", v.to_bits()))
            .collect();
        s.push_str(&words.join(" "));
        s.push('\n');
    }
    s.push_str("end\n");
    s
}

fn parse_bits(word: &str) -> Option<f64> {
    u64::from_str_radix(word, 16).ok().map(f64::from_bits)
}

/// Strict inverse of [`render_result`]; any deviation returns `None`.
fn parse_result(text: &str) -> Option<ScenarioResult> {
    let mut lines = text.lines();
    if lines.next()? != "sweepres 1" {
        return None;
    }
    let analysis = static_analysis(lines.next()?.strip_prefix("analysis ")?)?;

    let ncolumns: usize = lines.next()?.strip_prefix("columns ")?.parse().ok()?;
    let mut columns = Vec::with_capacity(ncolumns);
    for _ in 0..ncolumns {
        columns.push(lines.next()?.to_string());
    }

    let nmetrics: usize = lines.next()?.strip_prefix("metrics ")?.parse().ok()?;
    let mut metrics = Vec::with_capacity(nmetrics);
    for _ in 0..nmetrics {
        let line = lines.next()?;
        let (name, bits) = line.rsplit_once(' ')?;
        metrics.push((name.to_string(), parse_bits(bits)?));
    }

    let shape = lines.next()?.strip_prefix("rows ")?;
    let (nrows, ncols) = shape.split_once(' ')?;
    let nrows: usize = nrows.parse().ok()?;
    let ncols: usize = ncols.parse().ok()?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let line = lines.next()?;
        let row: Option<Vec<f64>> = line.split(' ').map(parse_bits).collect();
        let row = row?;
        if row.len() != ncols {
            return None;
        }
        rows.push(row);
    }

    if lines.next()? != "end" || lines.next().is_some() {
        return None;
    }
    Some(ScenarioResult {
        analysis,
        columns,
        rows,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "sweepkit-cache-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_result() -> ScenarioResult {
        ScenarioResult {
            analysis: "wampde",
            columns: vec!["t2".into(), "amp(v(out))".into()],
            rows: vec![vec![0.0, 0.1 + 0.2], vec![1e-6, -3.5e10]],
            metrics: vec![("steps".into(), 131.0), ("omega_min_hz".into(), 7.5e5)],
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let r = sample_result();
        let back = parse_result(&render_result(&r)).unwrap();
        assert_eq!(r, back);
        // PartialEq on f64 misses -0.0 vs 0.0 and NaN subtleties; check
        // actual bits too.
        for (a, b) in r.rows.iter().flatten().zip(back.rows.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_or_corrupt_entries_are_misses() {
        let full = render_result(&sample_result());
        for cut in [0, 10, full.len() / 2, full.len() - 2] {
            assert!(parse_result(&full[..cut]).is_none(), "cut at {cut}");
        }
        assert!(parse_result(&full.replace("wampde", "bogus")).is_none());
        assert!(parse_result(&(full.clone() + "trailing\n")).is_none());
    }

    #[test]
    fn store_load_and_miss() {
        let dir = unique_dir("store");
        let cache = ResultCache::open(&dir).unwrap();
        let r = sample_result();
        let h = job_hash("deck", &[1.5], "wampde t_stop=...");
        assert!(cache.load(&h).is_none());
        cache.store(&h, &r).unwrap();
        assert_eq!(cache.load(&h).unwrap(), r);
        // A torn (garbage) entry reads as a miss, not an error.
        fs::write(cache.entry_path(&h), "sweepres 1\nanalysis wam").unwrap();
        assert!(cache.load(&h).is_none());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn job_hash_mode_discriminates() {
        let cold = job_hash("deck", &[1.5], "spec");
        assert_eq!(cold, job_hash_mode("deck", &[1.5], "spec", ""));
        let warm = job_hash_mode("deck", &[1.5], "spec", "warm:3ff8000000000000");
        assert_ne!(cold, warm);
        assert_ne!(
            warm,
            job_hash_mode("deck", &[1.5], "spec", "warm:4000000000000000")
        );
    }

    #[test]
    fn eviction_drops_oldest_entries_to_fit_budget() {
        let dir = unique_dir("evict");
        let mut cache = ResultCache::open(&dir).unwrap();
        let r = sample_result();
        let hashes: Vec<String> = (0..3)
            .map(|i| job_hash("deck", &[i as f64], "spec"))
            .collect();
        cache.store(&hashes[0], &r).unwrap();
        let entry_len = fs::metadata(cache.entry_path(&hashes[0])).unwrap().len();
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store(&hashes[1], &r).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Room for two entries: storing the third must evict the oldest.
        cache.set_max_bytes(Some(2 * entry_len + entry_len / 2));
        cache.store(&hashes[2], &r).unwrap();
        assert!(cache.load(&hashes[0]).is_none(), "oldest entry survives");
        assert!(cache.load(&hashes[1]).is_some());
        assert!(cache.load(&hashes[2]).is_some());
        // Without a budget nothing is ever pruned.
        cache.set_max_bytes(None);
        assert_eq!(cache.evict_to_limit().unwrap(), 0);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn job_hash_sensitivity() {
        let h = job_hash("deck", &[1.5], "spec");
        assert_eq!(h.len(), 32);
        assert_eq!(h, job_hash("deck", &[1.5], "spec"));
        assert_ne!(h, job_hash("deck2", &[1.5], "spec"));
        assert_ne!(h, job_hash("deck", &[1.5000000001], "spec"));
        assert_ne!(h, job_hash("deck", &[1.5, 2.0], "spec"));
        assert_ne!(h, job_hash("deck", &[1.5], "spec2"));
        // Chunk boundaries matter: moving a byte across the separator
        // must change the hash.
        assert_ne!(job_hash("ab", &[], "c"), job_hash("a", &[], "bc"));
    }
}
