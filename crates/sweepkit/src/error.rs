//! Unified error type for deck-driven runs.

use std::fmt;

/// Errors from deck loading, analysis runs, and the sweep executor.
///
/// Every per-crate error converts in via `From`, so deck-driven code
/// composes with `?` across the whole solver stack.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// Deck parsing or instantiation failed.
    Netlist(circuitdae::NetlistError),
    /// The transient baseline failed.
    Transim(transim::TransimError),
    /// The shooting solver failed.
    Shooting(shooting::ShootingError),
    /// The (unwarped) MPDE solver failed.
    Mpde(mpde::MpdeError),
    /// The WaMPDE solver failed.
    Wampde(wampde::WampdeError),
    /// A sweep job failed, tagged with its grid point and analysis.
    Job {
        /// Grid point index (row-major over the sweep directives).
        point: usize,
        /// Analysis label, e.g. `wampde0`.
        analysis: String,
        /// The underlying failure.
        cause: Box<SweepError>,
    },
    /// Invalid configuration.
    BadInput(String),
    /// An I/O failure on a result stream, cache, or shard artifact.
    Io(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Netlist(e) => write!(f, "deck: {e}"),
            SweepError::Transim(e) => write!(f, "tran: {e}"),
            SweepError::Shooting(e) => write!(f, "shooting: {e}"),
            SweepError::Mpde(e) => write!(f, "mpde: {e}"),
            SweepError::Wampde(e) => write!(f, "wampde: {e}"),
            SweepError::Job {
                point,
                analysis,
                cause,
            } => write!(f, "sweep point {point}, analysis {analysis}: {cause}"),
            SweepError::BadInput(msg) => write!(f, "bad input: {msg}"),
            SweepError::Io(msg) => write!(f, "i/o: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Netlist(e) => Some(e),
            SweepError::Transim(e) => Some(e),
            SweepError::Shooting(e) => Some(e),
            SweepError::Mpde(e) => Some(e),
            SweepError::Wampde(e) => Some(e),
            SweepError::Job { cause, .. } => Some(cause),
            SweepError::BadInput(_) | SweepError::Io(_) => None,
        }
    }
}

impl From<circuitdae::NetlistError> for SweepError {
    fn from(e: circuitdae::NetlistError) -> Self {
        SweepError::Netlist(e)
    }
}

impl From<transim::TransimError> for SweepError {
    fn from(e: transim::TransimError) -> Self {
        SweepError::Transim(e)
    }
}

impl From<shooting::ShootingError> for SweepError {
    fn from(e: shooting::ShootingError) -> Self {
        SweepError::Shooting(e)
    }
}

impl From<mpde::MpdeError> for SweepError {
    fn from(e: mpde::MpdeError) -> Self {
        SweepError::Mpde(e)
    }
}

impl From<wampde::WampdeError> for SweepError {
    fn from(e: wampde::WampdeError) -> Self {
        SweepError::Wampde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source_chain() {
        let inner: SweepError = wampde::WampdeError::BadInput("x".into()).into();
        let job = SweepError::Job {
            point: 3,
            analysis: "wampde0".into(),
            cause: Box::new(inner),
        };
        assert!(job.to_string().contains("point 3"));
        assert!(job.source().is_some());
        assert!(job.source().unwrap().source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SweepError>();
    }
}
