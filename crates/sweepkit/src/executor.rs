//! The parallel sweep executor: deck → job grid → worker pool →
//! deterministic, index-ordered aggregation.
//!
//! Every (grid point × analysis) pair is an independent job: workers
//! instantiate the deck's circuit with that point's overrides and run the
//! analysis. Jobs are distributed over a `std::thread` pool through mpsc
//! channels, and results are slotted back by job index, so the aggregated
//! output is **identical for any worker count** — `--jobs 1` and
//! `--jobs 8` produce byte-identical artifacts.

use crate::analysis::{analysis_for, Analysis, ScenarioResult};
use crate::error::SweepError;
use crate::grid::expand_grid;
use circuitdae::Deck;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

/// One completed job of a sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Grid point index (row-major over the deck's sweep directives).
    pub point: usize,
    /// Swept parameter values at this point (parallel to the labels).
    pub values: Vec<f64>,
    /// Index of the analysis directive in the deck.
    pub analysis_index: usize,
    /// Unique analysis label, e.g. `wampde0`.
    pub analysis: String,
    /// The analysis result.
    pub result: ScenarioResult,
}

/// The aggregated, deterministic result of a deck run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Labels of the swept parameters (`M1.control`, ...).
    pub param_labels: Vec<String>,
    /// The expanded grid, one value vector per point.
    pub grid: Vec<Vec<f64>>,
    /// Unique labels of the deck's analyses (`<keyword><directive idx>`).
    pub analysis_labels: Vec<String>,
    /// All runs, ordered point-major then by analysis — independent of
    /// the worker count.
    pub runs: Vec<RunRecord>,
}

impl SweepOutcome {
    /// Runs of one analysis (by directive index), in grid order.
    pub fn runs_of(&self, analysis_index: usize) -> impl Iterator<Item = &RunRecord> {
        self.runs
            .iter()
            .filter(move |r| r.analysis_index == analysis_index)
    }

    /// Long-format waveform table of one analysis: header
    /// `[point, <params...>, <result columns...>]`, with every grid
    /// point's rows stacked in order. Feed straight into a CSV writer.
    pub fn waveform_table(&self, analysis_index: usize) -> (Vec<String>, Vec<Vec<f64>>) {
        let mut header = vec!["point".to_string()];
        header.extend(self.param_labels.iter().cloned());
        let mut rows = Vec::new();
        let mut first = true;
        for rec in self.runs_of(analysis_index) {
            if first {
                header.extend(rec.result.columns.iter().cloned());
                first = false;
            }
            for row in &rec.result.rows {
                let mut out = Vec::with_capacity(1 + rec.values.len() + row.len());
                out.push(rec.point as f64);
                out.extend_from_slice(&rec.values);
                out.extend_from_slice(row);
                rows.push(out);
            }
        }
        (header, rows)
    }

    /// Per-point metric summary of one analysis: header
    /// `[point, <params...>, <metrics...>]`, one row per grid point.
    pub fn summary_table(&self, analysis_index: usize) -> (Vec<String>, Vec<Vec<f64>>) {
        let mut header = vec!["point".to_string()];
        header.extend(self.param_labels.iter().cloned());
        let mut rows = Vec::new();
        let mut first = true;
        for rec in self.runs_of(analysis_index) {
            if first {
                header.extend(rec.result.metrics.iter().map(|(n, _)| n.clone()));
                first = false;
            }
            let mut out = Vec::with_capacity(1 + rec.values.len() + rec.result.metrics.len());
            out.push(rec.point as f64);
            out.extend_from_slice(&rec.values);
            out.extend(rec.result.metrics.iter().map(|(_, v)| *v));
            rows.push(out);
        }
        (header, rows)
    }
}

/// Expands a deck's sweep grid and runs every (point × analysis) job on a
/// pool of `jobs` worker threads (clamped to `[1, job count]`).
///
/// Results are aggregated in job-index order, so the outcome is
/// deterministic and independent of `jobs`. On failure the error of the
/// *lowest-indexed* failing job is returned (also independent of `jobs`);
/// queued jobs above the failure are skipped rather than run to
/// completion.
///
/// # Errors
///
/// [`SweepError::BadInput`] for a deck without analyses, otherwise the
/// first failing job's error wrapped in [`SweepError::Job`].
pub fn run_deck(deck: &Deck, jobs: usize) -> Result<SweepOutcome, SweepError> {
    let analyses: Vec<Box<dyn Analysis>> = deck.analyses.iter().map(analysis_for).collect();
    if analyses.is_empty() {
        return Err(SweepError::BadInput(
            "deck has no analysis directive (.tran/.shooting/.mpde/.wampde)".into(),
        ));
    }
    let analysis_labels: Vec<String> = analyses
        .iter()
        .enumerate()
        .map(|(i, a)| format!("{}{i}", a.name()))
        .collect();
    let grid = expand_grid(&deck.sweeps);
    let n_jobs = grid.len() * analyses.len();
    let workers = jobs.max(1).min(n_jobs);

    // Job dispatch and result return both ride std channels; the single
    // consumed receiver is shared behind a mutex (std-only work queue).
    let (job_tx, job_rx) = mpsc::channel::<usize>();
    for id in 0..n_jobs {
        job_tx.send(id).expect("queue jobs");
    }
    drop(job_tx);
    let job_rx = Mutex::new(job_rx);
    let (res_tx, res_rx) = mpsc::channel::<(usize, Result<ScenarioResult, SweepError>)>();

    let mut slots: Vec<Option<ScenarioResult>> = vec![None; n_jobs];
    let mut first_failure: Option<(usize, SweepError)> = None;

    // Lowest failing job index seen so far; jobs above it are skipped so
    // a failing grid does not burn the whole remaining budget. Jobs
    // *below* it still run, so the reported error is always the overall
    // lowest-indexed failure, independent of worker count.
    let cancel_above = AtomicUsize::new(usize::MAX);

    thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = &job_rx;
            let res_tx = res_tx.clone();
            let grid = &grid;
            let analyses = &analyses;
            let cancel_above = &cancel_above;
            scope.spawn(move || loop {
                let id = match job_rx.lock().expect("job queue lock").recv() {
                    Ok(id) => id,
                    Err(_) => break, // queue drained
                };
                if id > cancel_above.load(Ordering::Relaxed) {
                    continue; // a lower-indexed job already failed
                }
                let point = id / analyses.len();
                let a = id % analyses.len();
                let run_one = || -> Result<ScenarioResult, SweepError> {
                    let dae = deck.instantiate(&grid[point])?;
                    analyses[a].run(&dae)
                };
                if res_tx.send((id, run_one())).is_err() {
                    break; // main thread gave up
                }
            });
        }
        drop(res_tx);
        for (id, res) in res_rx {
            match res {
                Ok(result) => slots[id] = Some(result),
                Err(e) => {
                    cancel_above.fetch_min(id, Ordering::Relaxed);
                    // Keep the lowest-indexed failure so the reported
                    // error does not depend on worker scheduling.
                    if first_failure.as_ref().is_none_or(|(fid, _)| id < *fid) {
                        first_failure = Some((id, e));
                    }
                }
            }
        }
    });

    if let Some((id, cause)) = first_failure {
        return Err(SweepError::Job {
            point: id / analyses.len(),
            analysis: analysis_labels[id % analyses.len()].clone(),
            cause: Box::new(cause),
        });
    }

    let runs = slots
        .into_iter()
        .enumerate()
        .map(|(id, slot)| {
            let point = id / analyses.len();
            let a = id % analyses.len();
            RunRecord {
                point,
                values: grid[point].clone(),
                analysis_index: a,
                analysis: analysis_labels[a].clone(),
                result: slot.expect("every job completed"),
            }
        })
        .collect();

    Ok(SweepOutcome {
        param_labels: deck.sweeps.iter().map(|s| s.label()).collect(),
        grid,
        analysis_labels,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuitdae::parse_deck;

    /// Sine-driven RC low-pass with a 3-point resistance sweep: cheap to
    /// run many times, and the output amplitude depends on R (the corner
    /// frequency moves), so results differ per grid point. A DC drive
    /// would start at its operating point and never move.
    const RC_DECK: &str = "V1 in 0 SIN(0 5 1k)\n\
                           R1 in out 1k\n\
                           C1 out 0 1u\n\
                           .tran 2m dt=20u\n\
                           .sweep R1 1k 3k 3\n";

    #[test]
    fn runs_all_grid_points_in_order() {
        let deck = parse_deck(RC_DECK).unwrap();
        let out = run_deck(&deck, 2).unwrap();
        assert_eq!(out.param_labels, vec!["R1"]);
        assert_eq!(out.grid.len(), 3);
        assert_eq!(out.runs.len(), 3);
        assert_eq!(out.analysis_labels, vec!["tran0"]);
        for (i, rec) in out.runs.iter().enumerate() {
            assert_eq!(rec.point, i);
            assert_eq!(rec.values, out.grid[i]);
        }
        // Larger R lowers the corner frequency, so the settled output
        // amplitude of the 1 kHz drive decreases along the grid.
        let vout = out.runs[0].result.column("v(out)").unwrap();
        let amps: Vec<f64> = out
            .runs
            .iter()
            .map(|r| {
                let half = r.result.rows.len() / 2;
                r.result.rows[half..]
                    .iter()
                    .fold(0.0_f64, |m, row| m.max(row[vout].abs()))
            })
            .collect();
        assert!(
            amps[0] > 1.2 * amps[1] && amps[1] > 1.2 * amps[2],
            "{amps:?}"
        );
    }

    #[test]
    fn outcome_is_independent_of_worker_count() {
        let deck = parse_deck(RC_DECK).unwrap();
        let one = run_deck(&deck, 1).unwrap();
        let four = run_deck(&deck, 4).unwrap();
        assert_eq!(one, four);
        let (h1, r1) = one.waveform_table(0);
        let (h4, r4) = four.waveform_table(0);
        assert_eq!(h1, h4);
        assert_eq!(r1.len(), r4.len());
        for (a, b) in r1.iter().zip(r4.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn tables_have_expected_shape() {
        let deck = parse_deck(RC_DECK).unwrap();
        let out = run_deck(&deck, 3).unwrap();
        let (header, rows) = out.waveform_table(0);
        assert_eq!(header[..2], ["point".to_string(), "R1".to_string()]);
        assert_eq!(header.len(), 2 + out.runs[0].result.columns.len());
        assert_eq!(
            rows.len(),
            out.runs.iter().map(|r| r.result.rows.len()).sum::<usize>()
        );
        let (sh, sr) = out.summary_table(0);
        assert_eq!(sr.len(), 3);
        assert!(sh.contains(&"steps".to_string()));
        // Summary rows carry the swept value in column 1.
        assert_eq!(sr[2][1], 3000.0);
    }

    #[test]
    fn bad_phase_var_is_an_error_not_a_panic() {
        // An out-of-range phase_var must surface as a Job error through
        // the pool, not panic a worker thread.
        let deck = parse_deck(
            "C1 tank 0 4.503n\n\
             L1 tank 0 10u\n\
             GN1 tank 0 5m 1.667m\n\
             .shooting phase_var=9\n",
        )
        .unwrap();
        let err = run_deck(&deck, 2).unwrap_err();
        match err {
            SweepError::Job { point, cause, .. } => {
                assert_eq!(point, 0);
                assert!(matches!(*cause, SweepError::Shooting(_)), "{cause}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn no_analysis_is_rejected() {
        let deck = parse_deck("R1 a 0 1k\nC1 a 0 1n\n").unwrap();
        assert!(matches!(run_deck(&deck, 1), Err(SweepError::BadInput(_))));
    }

    #[test]
    fn failing_point_reports_lowest_job_index() {
        // Sweep a diode's vt through a negative value: points 0 and 1
        // are invalid at instantiation time, point 2 is fine. The parser
        // would reject this, so build the failure via a valid parse and a
        // deck with values that fail only for the mpde node check.
        let deck = parse_deck(
            "R1 out 0 1k\n\
             C1 out 0 1n\n\
             .mpde 1meg 1m node=5\n\
             .sweep R1 1k 2k 2\n",
        )
        .unwrap();
        let err = run_deck(&deck, 4).unwrap_err();
        match err {
            SweepError::Job {
                point, analysis, ..
            } => {
                assert_eq!(point, 0);
                assert_eq!(analysis, "mpde0");
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
